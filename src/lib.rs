//! # SQ-DM: Accelerating Diffusion Models with Aggressive Quantization and Temporal Sparsity
//!
//! A from-scratch Rust reproduction of the DAC 2025 paper, spanning the
//! full stack the paper builds on:
//!
//! * [`tensor`] — dense `f32` tensors and NN math kernels,
//! * [`quant`] — the quantization formats of Tables I/II and the
//!   mixed-precision cost model,
//! * [`nn`] — layers with explicit backprop and fake-quantized execution,
//! * [`edm`] — a trainable Elucidated Diffusion Model (U-Net, Karras
//!   schedule, Heun sampler, SiLU→ReLU finetuning, synthetic datasets,
//!   sFID metric),
//! * [`sparsity`] — temporal per-channel sparsity analysis,
//! * [`accel`] — the cycle-level heterogeneous dense/sparse accelerator
//!   simulator,
//! * [`core`] — the end-to-end pipeline and one runnable experiment per
//!   table/figure.
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `sqdm-bench`'s `repro_*` binaries for full paper reproductions.
//!
//! # Examples
//!
//! ```
//! use sqdm::quant::{fake_quant, ChannelLayout, QuantFormat};
//! use sqdm::tensor::{Rng, Tensor};
//! # fn main() -> Result<(), sqdm::quant::QuantError> {
//! let mut rng = Rng::seed_from(0);
//! let acts = Tensor::randn([1, 16, 8, 8], &mut rng);
//! let q = fake_quant(&acts, QuantFormat::ours_int4(), ChannelLayout::ACTIVATION)?;
//! assert_eq!(q.dims(), acts.dims());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use sqdm_accel as accel;
pub use sqdm_core as core;
pub use sqdm_edm as edm;
pub use sqdm_nn as nn;
pub use sqdm_quant as quant;
pub use sqdm_sparsity as sparsity;
pub use sqdm_tensor as tensor;
