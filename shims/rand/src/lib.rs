//! Minimal, deterministic stand-in for the parts of the `rand` crate this
//! workspace uses (`StdRng::seed_from_u64`, `Rng::random`,
//! `Rng::random_range`), vendored because the build environment has no
//! network access to crates.io.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — fast, well distributed, and stable across platforms, which
//! is what the reproduction's fixed-seed methodology needs. It makes no
//! attempt to match the stream of the real `rand::rngs::StdRng`; the
//! workspace only relies on determinism per seed, not on a specific stream.

use std::ops::Range;

/// Low-level uniform bit generator, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be instantiated from a seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits,
/// mirroring `rand::distr::StandardUniform`.
pub trait StandardUniform: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled, mirroring `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); the rejection loop makes
                // the draw exactly uniform over `span` buckets.
                loop {
                    let x = rng.next_u64();
                    let hi = ((x as u128 * span as u128) >> 64) as u64;
                    let lo = (x as u128 * span as u128) as u64;
                    if lo >= span || lo >= lo.wrapping_neg() % span {
                        return self.start + hi as $ty;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, i64, i32);

/// High-level sampling methods, mirroring `rand::Rng`. Blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample of type `T`.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic for a given seed on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full 256-bit state,
            // as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng as _, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random::<f32>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let i = rng.random_range(0..7usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
