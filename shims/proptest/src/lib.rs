//! Minimal, deterministic stand-in for the parts of `proptest` this
//! workspace's property tests use, vendored because the build environment
//! has no network access to crates.io.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs'
//!   case number; rerunning is deterministic, so the case is reproducible.
//! * **Fixed seeding.** Every test function draws from a fixed-seed
//!   generator (set `SQDM_PROPTEST_SEED` to explore a different stream),
//!   so CI runs are stable.
//! * `prop_assert!` / `prop_assert_eq!` panic instead of returning
//!   `TestCaseError`, which is equivalent for `#[test]` harness purposes.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Source of randomness for strategies: a deterministic PRNG.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the deterministic per-test generator. Honors
    /// `SQDM_PROPTEST_SEED` for exploring alternative streams.
    pub fn deterministic() -> Self {
        let seed = std::env::var("SQDM_PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00Du64);
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values of an output type. Mirrors
/// `proptest::strategy::Strategy` minus shrinking.
pub trait Strategy: Sized {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy that always yields a clone of one value. Mirrors
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy_int!(usize, u64, u32, i64, i32);

macro_rules! impl_range_strategy_float {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let unit: $ty = rng.0.random();
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Types with a canonical "any value" strategy. Mirrors
/// `proptest::arbitrary::Arbitrary` without the parameterized machinery.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),* $(,)?) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.random()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over all values of `T`. Mirrors `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// One boxed arm of a [`Union`], paired with its selection weight.
pub type WeightedArm<T> = (u32, Box<dyn Fn(&mut TestRng) -> T>);

/// Weighted union of boxed strategies, built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<WeightedArm<T>>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, sampler)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<WeightedArm<T>>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.0.random_range(0..self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Collection strategies. Mirrors `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// Number-of-elements specification for [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.0.is_empty() {
                self.size.0.start
            } else {
                rng.0.random_range(self.size.0.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope. Mirrors
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Weighted or unweighted choice between strategies producing the same
/// value type. Mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((
            $weight,
            {
                let __s = $strategy;
                ::std::boxed::Box::new(move |__rng: &mut $crate::TestRng| {
                    $crate::Strategy::sample(&__s, __rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>
            },
        )),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1u32 => $strategy),+]
    };
}

/// Declares property test functions whose arguments are drawn from
/// strategies. Mirrors `proptest::proptest!`: each `fn name(pat in strategy,
/// ...)` body runs once per case with freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr;) => {};
    (
        $config:expr;
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic();
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::sample(&$strategy, &mut __rng);)+
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_impl! { $config; $($rest)* }
    };
}
