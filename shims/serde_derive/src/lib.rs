//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the vendored serde shim.
//!
//! The build environment has no access to crates.io, so this crate uses only
//! the compiler-provided `proc_macro` API: the input item is parsed by
//! walking its token stream directly (no `syn`), and the generated impl is
//! assembled as source text and re-parsed (no `quote`). Supported shapes are
//! exactly what the workspace needs: non-generic structs (named, tuple,
//! unit) and enums (unit, tuple and struct variants), with the
//! `#[serde(skip)]` field attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named or positional field of a struct or struct variant.
struct Field {
    /// Field identifier; positional index as text for tuple fields.
    name: String,
    /// Whether the field carries `#[serde(skip)]`.
    skip: bool,
}

/// One variant of an enum.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with the given number of fields.
    Tuple(usize),
    /// Struct variant with named fields.
    Named(Vec<Field>),
}

/// The parsed shape of the deriving item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        fields: Vec<Field>,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the shim's `serde::Serialize` for structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the shim's `serde::Deserialize` for structs and enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes one `#[...]` attribute (the `#` has already been peeked, not
/// consumed) and reports whether it is `#[serde(skip)]`.
fn consume_attr(iter: &mut TokenIter) -> Result<bool, String> {
    iter.next(); // the `#`
    let group = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
        _ => return Err("malformed attribute".into()),
    };
    let mut inner = group.stream().into_iter();
    let is_serde = matches!(&inner.next(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
    if !is_serde {
        return Ok(false);
    }
    match inner.next() {
        Some(TokenTree::Group(args)) => {
            let has_skip = args
                .stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"));
            if has_skip {
                Ok(true)
            } else {
                Err(format!(
                    "unsupported serde attribute `#[serde({})]` (shim supports only `skip`)",
                    args.stream()
                ))
            }
        }
        _ => Err("malformed #[serde] attribute".into()),
    }
}

/// Skips any run of attributes; returns true if one of them was
/// `#[serde(skip)]`.
fn skip_attrs(iter: &mut TokenIter) -> Result<bool, String> {
    let mut skip = false;
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        skip |= consume_attr(iter)?;
    }
    Ok(skip)
}

/// Skips a `pub` / `pub(...)` visibility qualifier if present.
fn skip_visibility(iter: &mut TokenIter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Consumes tokens up to (and including) the next top-level comma, treating
/// `<`/`>` pairs as nesting so commas inside generic arguments don't split.
fn skip_to_comma(iter: &mut TokenIter) {
    let mut angle_depth = 0i32;
    for token in iter.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Parses the fields of a brace-delimited body: `a: T, #[serde(skip)] b: U`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while iter.peek().is_some() {
        let skip = skip_attrs(&mut iter)?;
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_to_comma(&mut iter);
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Parses the fields of a parenthesized tuple body: `T, #[serde(skip)] U`.
fn parse_tuple_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while iter.peek().is_some() {
        let skip = skip_attrs(&mut iter)?;
        skip_visibility(&mut iter);
        if iter.peek().is_none() {
            break; // trailing comma
        }
        skip_to_comma(&mut iter);
        fields.push(Field {
            name: fields.len().to_string(),
            skip,
        });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while iter.peek().is_some() {
        skip_attrs(&mut iter)?;
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantKind::Tuple(parse_tuple_fields(g.stream())?.len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant and the separating comma.
        skip_to_comma(&mut iter);
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    // Outer attributes (including doc comments) and visibility.
    skip_attrs(&mut iter)?;
    skip_visibility(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, found `{other:?}`")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    fields: parse_tuple_fields(g.stream())?,
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: `{other:?}`")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unsupported enum body: `{other:?}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---------------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut b = String::new();
            b.push_str("#[allow(unused_imports)] use ::serde::ser::SerializeStruct as _;\n");
            b.push_str(&format!(
                "let mut __st = __serializer.serialize_struct({name:?}, {}usize)?;\n",
                live.len()
            ));
            for f in &live {
                b.push_str(&format!(
                    "__st.serialize_field({:?}, &self.{})?;\n",
                    f.name, f.name
                ));
            }
            b.push_str("__st.end()");
            (name, b)
        }
        Item::TupleStruct { name, fields } if fields.len() == 1 && !fields[0].skip => (
            name,
            format!("__serializer.serialize_newtype_struct({name:?}, &self.0)"),
        ),
        Item::TupleStruct { name, fields } => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut b = String::new();
            b.push_str("#[allow(unused_imports)] use ::serde::ser::SerializeTupleStruct as _;\n");
            b.push_str(&format!(
                "let mut __st = __serializer.serialize_tuple_struct({name:?}, {}usize)?;\n",
                live.len()
            ));
            for f in &live {
                b.push_str(&format!("__st.serialize_field(&self.{})?;\n", f.name));
            }
            b.push_str("__st.end()");
            (name, b)
        }
        Item::UnitStruct { name } => (
            name,
            format!("__serializer.serialize_unit_struct({name:?})"),
        ),
        Item::Enum { name, variants } => {
            let mut b = String::new();
            b.push_str(
                "#[allow(unused_imports)] use ::serde::ser::{SerializeTupleVariant as _, \
                 SerializeStructVariant as _};\n",
            );
            b.push_str("match self {\n");
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => b.push_str(&format!(
                        "{name}::{vname} => \
                         __serializer.serialize_unit_variant({name:?}, {idx}u32, {vname:?}),\n"
                    )),
                    VariantKind::Tuple(1) => b.push_str(&format!(
                        "{name}::{vname}(__f0) => __serializer.serialize_newtype_variant(\
                         {name:?}, {idx}u32, {vname:?}, __f0),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        b.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut __st = __serializer.serialize_tuple_variant(\
                             {name:?}, {idx}u32, {vname:?}, {n}usize)?;\n",
                            binders.join(", ")
                        ));
                        for binder in &binders {
                            b.push_str(&format!("__st.serialize_field({binder})?;\n"));
                        }
                        b.push_str("__st.end()\n},\n");
                    }
                    VariantKind::Named(fields) => {
                        let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        b.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut __st = __serializer.serialize_struct_variant(\
                             {name:?}, {idx}u32, {vname:?}, {}usize)?;\n",
                            binders.join(", "),
                            live.len()
                        ));
                        for f in &live {
                            b.push_str(&format!(
                                "__st.serialize_field({:?}, {})?;\n",
                                f.name, f.name
                            ));
                        }
                        for f in fields.iter().filter(|f| f.skip) {
                            b.push_str(&format!("let _ = {};\n", f.name));
                        }
                        b.push_str("__st.end()\n},\n");
                    }
                }
            }
            b.push('}');
            (name, b)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------------

/// Generates a struct-literal body restoring named fields from `__map`
/// (skipped fields come from `Default`).
fn named_fields_ctor(fields: &[Field]) -> String {
    let mut b = String::new();
    for f in fields {
        if f.skip {
            b.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
        } else {
            b.push_str(&format!(
                "{}: ::serde::de::field(__map, {:?})?,\n",
                f.name, f.name
            ));
        }
    }
    b
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let body = format!(
                "let __map = __value.as_map().ok_or_else(|| ::std::format!(\
                 \"expected map for struct `{name}`, found {{}}\", __value.kind()))?;\n\
                 Ok({name} {{\n{}}})",
                named_fields_ctor(fields)
            );
            (name, body)
        }
        Item::TupleStruct { name, fields } if fields.len() == 1 && !fields[0].skip => (
            name,
            format!("Ok({name}(::serde::de::Deserialize::from_value(__value)?))"),
        ),
        Item::TupleStruct { name, fields } => {
            let live = fields.iter().filter(|f| !f.skip).count();
            let mut b = format!(
                "let __items = __value.as_seq().ok_or_else(|| ::std::format!(\
                 \"expected sequence for tuple struct `{name}`, found {{}}\", \
                 __value.kind()))?;\n\
                 if __items.len() != {live}usize {{\n\
                 return Err(::std::format!(\"expected {live} fields for `{name}`, \
                 found {{}}\", __items.len()));\n}}\n\
                 Ok({name}("
            );
            let mut next = 0usize;
            for f in fields {
                if f.skip {
                    b.push_str("::core::default::Default::default(), ");
                } else {
                    b.push_str(&format!(
                        "::serde::de::Deserialize::from_value(&__items[{next}])?, "
                    ));
                    next += 1;
                }
            }
            b.push_str("))");
            (name, b)
        }
        Item::UnitStruct { name } => (name, format!("Ok({name})")),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => Ok({name}::{vname}),\n"));
                    }
                    VariantKind::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "{vname:?} => Ok({name}::{vname}(\
                             ::serde::de::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::de::Deserialize::from_value(&__items[{i}])?")
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let __items = __inner.as_seq().ok_or_else(|| ::std::format!(\
                             \"expected sequence for variant `{name}::{vname}`\"))?;\n\
                             if __items.len() != {n}usize {{\n\
                             return Err(::std::format!(\"expected {n} fields for \
                             `{name}::{vname}`, found {{}}\", __items.len()));\n}}\n\
                             Ok({name}::{vname}({}))\n}},\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        data_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let __map = __inner.as_map().ok_or_else(|| ::std::format!(\
                             \"expected map for variant `{name}::{vname}`\"))?;\n\
                             Ok({name}::{vname} {{\n{}}})\n}},\n",
                            named_fields_ctor(fields)
                        ));
                    }
                }
            }
            let body = format!(
                "match __value {{\n\
                 ::serde::de::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::std::format!(\
                 \"unknown variant `{{__other}}` for enum `{name}`\")),\n\
                 }},\n\
                 ::serde::de::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => Err(::std::format!(\
                 \"unknown variant `{{__other}}` for enum `{name}`\")),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::std::format!(\
                 \"expected variant of enum `{name}`, found {{}}\", __other.kind())),\n\
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_value(__value: &::serde::de::Value) \
         -> ::core::result::Result<Self, ::std::string::String> {{\n\
         #[allow(unused_variables)] let __value = __value;\n\
         {body}\n\
         }}\n\
         }}"
    )
}
