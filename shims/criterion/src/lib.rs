//! Minimal, API-compatible stand-in for the parts of Criterion.rs this
//! workspace's benches use, vendored because the build environment has no
//! network access to crates.io.
//!
//! It is a real (if simple) measurement harness, not a no-op: each
//! `bench_function` warms the closure up, picks an iteration count that
//! fills the configured measurement window, collects per-sample timings and
//! prints min / mean / max per iteration. Statistical analysis, plots and
//! baselines of real Criterion are out of scope.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Passed to bench closures; times the inner loop. Mirrors
/// `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the harness-chosen number of iterations and
    /// records the elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver. Mirrors the subset of `criterion::Criterion` the
/// workspace configures: sample count, warm-up time and measurement time.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets how long to run the routine before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up: repeat single iterations until the warm-up window is
        // spent, which also yields a per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));

        // Pick an iteration count so that `sample_size` samples roughly fill
        // the measurement window.
        let budget_per_sample = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (budget_per_sample / per_iter.max(1)).clamp(1, u128::from(u64::MAX)) as u64;

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        let min = per_iter_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter_ns.iter().copied().fold(0.0f64, f64::max);
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples x {iters} iters)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            per_iter_ns.len(),
        );
    }
}

/// A named collection of benchmarks sharing the parent's configuration.
/// Mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run(&full, &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Identity function that hides a value from the optimizer, so benchmarked
/// code is not removed as dead. Re-exported for parity with
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a single named group function, with an
/// optional custom [`Criterion`] configuration. Supports both call forms of
/// the real macro:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(10);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates the `main` function running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
