//! Minimal, API-compatible stand-in for the parts of `serde` this workspace
//! uses, vendored because the build environment has no network access to
//! crates.io.
//!
//! The `ser` side mirrors serde's real `Serialize`/`Serializer` data model
//! (the workspace's serialization tests implement a full JSON `Serializer`
//! against it). The `de` side is a simplified self-describing model built
//! around a [`de::Value`] tree; derived `Deserialize` impls reconstruct a
//! type from such a tree. Derive macros are re-exported from the companion
//! `serde_derive` shim crate.

pub mod ser;

pub mod de;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros live in a separate proc-macro crate, as in real serde. The
// trait and macro share a name in different namespaces, exactly like the
// real crate.
pub use serde_derive::{Deserialize, Serialize};
