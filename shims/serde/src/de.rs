//! Deserialization half of the shim.
//!
//! Real serde drives deserialization through a visitor-based `Deserializer`
//! trait; nothing in this workspace deserializes through an external format,
//! so the shim uses a simpler self-describing model: a [`Deserializer`]
//! produces a [`Value`] tree, and `#[derive(Deserialize)]` generates a
//! [`Deserialize::from_value`] that reconstructs the type from that tree.
//! The derived impls follow serde's conventions (structs as maps keyed by
//! field name, unit variants as strings, data variants as single-entry
//! maps, `#[serde(skip)]` fields restored via `Default`).

use std::fmt::Display;

/// Trait for deserialization errors, mirroring `serde::de::Error`.
pub trait Error: Sized + std::error::Error {
    /// Builds a custom error from a displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A self-describing value tree — the shim's deserialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unit / null.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, `Vec`, tuples, tuple structs).
    Seq(Vec<Value>),
    /// Map (structs keyed by field name, data-carrying enum variants as a
    /// single-entry map keyed by variant name).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the map entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the elements if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Short tag naming the value kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::U64(_) => "u64",
            Value::F64(_) => "f64",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A format that can produce a [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type produced on failure.
    type Error: Error;
    /// Parses the input into a value tree.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A data structure that can be reconstructed from a [`Value`] tree.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, String>;

    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.deserialize_value()?;
        Self::from_value(&value).map_err(D::Error::custom)
    }
}

/// Looks up `key` in a struct map and deserializes the matching value.
/// Support routine for derived [`Deserialize`] impls.
pub fn field<'de, T: Deserialize<'de>>(
    entries: &[(String, Value)],
    key: &str,
) -> Result<T, String> {
    let value = entries
        .iter()
        .find(|(name, _)| name == key)
        .map(|(_, value)| value)
        .ok_or_else(|| format!("missing field `{key}`"))?;
    T::from_value(value).map_err(|e| format!("field `{key}`: {e}"))
}

macro_rules! impl_deserialize_int {
    ($($ty:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, String> {
                match value {
                    Value::I64(v) => <$ty>::try_from(*v)
                        .map_err(|_| format!("{v} out of range for {}", stringify!($ty))),
                    Value::U64(v) => <$ty>::try_from(*v)
                        .map_err(|_| format!("{v} out of range for {}", stringify!($ty))),
                    other => Err(format!(
                        "expected integer for {}, found {}",
                        stringify!($ty),
                        other.kind()
                    )),
                }
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_deserialize_float {
    ($($ty:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, String> {
                match value {
                    Value::F64(v) => Ok(*v as $ty),
                    Value::I64(v) => Ok(*v as $ty),
                    Value::U64(v) => Ok(*v as $ty),
                    other => Err(format!(
                        "expected number for {}, found {}",
                        stringify!($ty),
                        other.kind()
                    )),
                }
            }
        }
    )*};
}

impl_deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Bool(v) => Ok(*v),
            other => Err(format!("expected bool, found {}", other.kind())),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Str(v) => Ok(v.clone()),
            other => Err(format!("expected string, found {}", other.kind())),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Str(v) if v.chars().count() == 1 => Ok(v.chars().next().unwrap()),
            other => Err(format!(
                "expected single-char string, found {}",
                other.kind()
            )),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Unit => Ok(()),
            other => Err(format!("expected unit, found {}", other.kind())),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Unit => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        T::from_value(value).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        let items = value
            .as_seq()
            .ok_or_else(|| format!("expected sequence, found {}", value.kind()))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, String> {
        let vec: Vec<T> = Vec::from_value(value)?;
        let len = vec.len();
        vec.try_into()
            .map_err(|_| format!("expected array of length {N}, found {len}"))
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident . $idx:tt),+) with $len:expr;)*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, String> {
                let items = value
                    .as_seq()
                    .ok_or_else(|| format!("expected sequence, found {}", value.kind()))?;
                if items.len() != $len {
                    return Err(format!("expected tuple of {}, found {}", $len, items.len()));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (A.0) with 1;
    (A.0, B.1) with 2;
    (A.0, B.1, C.2) with 3;
    (A.0, B.1, C.2, D.3) with 4;
}
