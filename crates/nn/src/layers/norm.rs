//! Group normalization.
//!
//! EDM's U-Net normalizes with GroupNorm before each convolution; keeping it
//! in the reproduction preserves the activation distributions that the
//! quantization study (Figure 5) depends on.

use crate::error::{NnError, Result};
use crate::param::Param;
use serde::{Deserialize, Serialize};
use sqdm_tensor::{arena, Tensor};

/// Group normalization over `[N, C, H, W]` with per-channel affine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupNorm {
    /// Number of channel groups.
    pub groups: usize,
    /// Per-channel scale, `[C]`.
    pub gamma: Param,
    /// Per-channel shift, `[C]`.
    pub beta: Param,
    eps: f32,
    #[serde(skip)]
    cache: Option<GnCache>,
}

#[derive(Debug, Clone)]
struct GnCache {
    x: Tensor,
    mean: Vec<f32>,    // per (n, group)
    inv_std: Vec<f32>, // per (n, group)
}

impl GroupNorm {
    /// Creates a GroupNorm layer with unit scale and zero shift.
    ///
    /// # Errors
    ///
    /// Returns a config error if `groups` does not divide `channels` or is
    /// zero.
    pub fn new(channels: usize, groups: usize) -> Result<Self> {
        if groups == 0 || !channels.is_multiple_of(groups) {
            return Err(NnError::Config {
                layer: "GroupNorm",
                reason: format!("groups {groups} must divide channels {channels}"),
            });
        }
        Ok(GroupNorm {
            groups,
            gamma: Param::new(Tensor::ones([channels])),
            beta: Param::new(Tensor::zeros([channels])),
            eps: 1e-5,
            cache: None,
        })
    }

    /// Forward pass over `[N, C, H, W]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors for non-rank-4 input or a channel mismatch.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        let (n, c, h, w) = x.shape().as_nchw()?;
        if c != self.gamma.value.len() {
            return Err(NnError::Config {
                layer: "GroupNorm",
                reason: format!(
                    "input has {c} channels, layer has {}",
                    self.gamma.value.len()
                ),
            });
        }
        let cpg = c / self.groups; // channels per group
        let gsize = cpg * h * w; // elements per (n, group)
        let xv = x.as_slice();
        let gamma = self.gamma.value.as_slice();
        let beta = self.beta.value.as_slice();
        let mut out = arena::take_zeroed::<f32>(xv.len());
        let mut means = arena::take_zeroed::<f32>(n * self.groups);
        let mut inv_stds = arena::take_zeroed::<f32>(n * self.groups);

        for nn in 0..n {
            for g in 0..self.groups {
                let start = (nn * c + g * cpg) * h * w;
                let slice = &xv[start..start + gsize];
                let mean = slice.iter().sum::<f32>() / gsize as f32;
                let var =
                    slice.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / gsize as f32;
                let inv_std = 1.0 / (var + self.eps).sqrt();
                means[nn * self.groups + g] = mean;
                inv_stds[nn * self.groups + g] = inv_std;
                for ci in 0..cpg {
                    let ch = g * cpg + ci;
                    let cstart = (nn * c + ch) * h * w;
                    for i in 0..h * w {
                        let xhat = (xv[cstart + i] - mean) * inv_std;
                        out[cstart + i] = gamma[ch] * xhat + beta[ch];
                    }
                }
            }
        }
        if train {
            self.cache = Some(GnCache {
                x: x.clone(),
                mean: means,
                inv_std: inv_stds,
            });
        } else {
            arena::recycle(means);
            arena::recycle(inv_stds);
        }
        Ok(Tensor::from_vec(out, [n, c, h, w])?)
    }

    /// Backward pass: accumulates `gamma`/`beta` gradients, returns the
    /// input gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingCache`] without a preceding training
    /// forward, or shape errors.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .take()
            .ok_or(NnError::MissingCache { layer: "GroupNorm" })?;
        let (n, c, h, w) = cache.x.shape().as_nchw()?;
        if grad_out.dims() != [n, c, h, w] {
            return Err(NnError::Tensor(sqdm_tensor::TensorError::ShapeMismatch {
                op: "GroupNorm::backward",
                lhs: grad_out.dims().to_vec(),
                rhs: vec![n, c, h, w],
            }));
        }
        let cpg = c / self.groups;
        let gsize = (cpg * h * w) as f32;
        let xv = cache.x.as_slice();
        let gv = grad_out.as_slice();
        let gamma = self.gamma.value.as_slice();
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        let mut dx = vec![0.0f32; xv.len()];

        for nn in 0..n {
            for g in 0..self.groups {
                let mean = cache.mean[nn * self.groups + g];
                let inv_std = cache.inv_std[nn * self.groups + g];
                // First accumulate the two group-level reductions.
                let mut sum_dxhat = 0.0f32;
                let mut sum_dxhat_xhat = 0.0f32;
                for ci in 0..cpg {
                    let ch = g * cpg + ci;
                    let cstart = (nn * c + ch) * h * w;
                    for i in 0..h * w {
                        let xhat = (xv[cstart + i] - mean) * inv_std;
                        let dy = gv[cstart + i];
                        dgamma[ch] += dy * xhat;
                        dbeta[ch] += dy;
                        let dxhat = dy * gamma[ch];
                        sum_dxhat += dxhat;
                        sum_dxhat_xhat += dxhat * xhat;
                    }
                }
                // dx = (dxhat - mean(dxhat) - xhat·mean(dxhat·xhat)) · inv_std
                let m1 = sum_dxhat / gsize;
                let m2 = sum_dxhat_xhat / gsize;
                for ci in 0..cpg {
                    let ch = g * cpg + ci;
                    let cstart = (nn * c + ch) * h * w;
                    for i in 0..h * w {
                        let xhat = (xv[cstart + i] - mean) * inv_std;
                        let dxhat = gv[cstart + i] * gamma[ch];
                        dx[cstart + i] = (dxhat - m1 - xhat * m2) * inv_std;
                    }
                }
            }
        }
        self.gamma
            .grad
            .add_scaled(&Tensor::from_vec(dgamma, [c])?, 1.0)?;
        self.beta
            .grad
            .add_scaled(&Tensor::from_vec(dbeta, [c])?, 1.0)?;
        Ok(Tensor::from_vec(dx, [n, c, h, w])?)
    }

    /// Mutable references to the layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_tensor::Rng;

    #[test]
    fn output_is_normalized_per_group() {
        let mut rng = Rng::seed_from(1);
        let mut gn = GroupNorm::new(4, 2).unwrap();
        let x = Tensor::randn([2, 4, 6, 6], &mut rng)
            .scale(3.0)
            .map(|v| v + 5.0);
        let y = gn.forward(&x, false).unwrap();
        // Each (n, group) slab should have ~zero mean, ~unit variance.
        for nn in 0..2 {
            let mut vals = Vec::new();
            for ch in 0..2 {
                vals.extend_from_slice(y.channel(nn, ch).unwrap().as_slice());
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn invalid_group_config_rejected() {
        assert!(GroupNorm::new(6, 4).is_err());
        assert!(GroupNorm::new(6, 0).is_err());
        assert!(GroupNorm::new(6, 3).is_ok());
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = Rng::seed_from(2);
        let mut gn = GroupNorm::new(2, 1).unwrap();
        gn.gamma.value = Tensor::from_slice(&[1.3, 0.7]);
        gn.beta.value = Tensor::from_slice(&[0.1, -0.2]);
        let x = Tensor::randn([1, 2, 3, 3], &mut rng);
        // Weighted-sum loss for a non-trivial upstream gradient.
        let wloss = Tensor::randn([1, 2, 3, 3], &mut rng);

        let y = gn.forward(&x, true).unwrap();
        let _ = y;
        let gin = gn.backward(&wloss).unwrap();

        let eps = 1e-2f32;
        let loss = |gn: &GroupNorm, x: &Tensor| -> f32 {
            let mut g = gn.clone();
            g.forward(x, false)
                .unwrap()
                .as_slice()
                .iter()
                .zip(wloss.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&gn, &xp) - loss(&gn, &xm)) / (2.0 * eps);
            let an = gin.as_slice()[idx];
            assert!((fd - an).abs() < 2e-2, "idx {idx}: fd={fd} an={an}");
        }
        // gamma gradient.
        for idx in 0..2 {
            let mut gp = gn.clone();
            gp.gamma.value.as_mut_slice()[idx] += eps;
            let mut gm = gn.clone();
            gm.gamma.value.as_mut_slice()[idx] -= eps;
            let fd = (loss(&gp, &x) - loss(&gm, &x)) / (2.0 * eps);
            let an = gn.gamma.grad.as_slice()[idx];
            assert!((fd - an).abs() < 2e-2, "gamma {idx}: fd={fd} an={an}");
        }
    }

    #[test]
    fn channel_mismatch_rejected() {
        let mut gn = GroupNorm::new(4, 2).unwrap();
        let x = Tensor::zeros([1, 6, 2, 2]);
        assert!(gn.forward(&x, false).is_err());
    }
}
