//! 2-D convolution layer.

use crate::error::{NnError, Result};
use crate::init::kaiming_normal;
use crate::param::Param;
use serde::{Deserialize, Serialize};
use sqdm_tensor::ops::{conv2d, conv2d_backward, Conv2dGeometry};
use sqdm_tensor::{Rng, Tensor};

/// A 2-D convolution with bias.
///
/// Weight layout `[K, C, kh, kw]`, input `[N, C, H, W]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// Convolution weight, `[K, C, kh, kw]`.
    pub weight: Param,
    /// Per-output-channel bias, `[K]`.
    pub bias: Param,
    geom: Conv2dGeometry,
    #[serde(skip)]
    cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialized weights.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        geom: Conv2dGeometry,
        rng: &mut Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(kaiming_normal(
                [out_channels, in_channels, kernel, kernel],
                fan_in,
                rng,
            )),
            bias: Param::new(Tensor::zeros([out_channels])),
            geom,
            cache: None,
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> Conv2dGeometry {
        self.geom
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Forward pass. With `train` set, caches the input for `backward`.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape/geometry errors.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        let y = conv2d(x, &self.weight.value, Some(&self.bias.value), self.geom)?;
        if train {
            self.cache = Some(x.clone());
        }
        Ok(y)
    }

    /// Inference forward pass with externally substituted weights (used by
    /// the fake-quantization wrapper). Does not touch the cache.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape/geometry errors.
    pub fn forward_with_weight(&self, x: &Tensor, weight: &Tensor) -> Result<Tensor> {
        Ok(conv2d(x, weight, Some(&self.bias.value), self.geom)?)
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// input gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingCache`] if `forward(…, true)` was not
    /// called first.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache
            .take()
            .ok_or(NnError::MissingCache { layer: "Conv2d" })?;
        let grads = conv2d_backward(&x, &self.weight.value, grad_out, self.geom)?;
        self.weight.grad.add_scaled(&grads.grad_weight, 1.0)?;
        self.bias.grad.add_scaled(&grads.grad_bias, 1.0)?;
        Ok(grads.grad_input)
    }

    /// Mutable references to the layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let mut rng = Rng::seed_from(1);
        let mut conv = Conv2d::new(3, 8, 3, Conv2dGeometry::same(3), &mut rng);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let y = conv.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
        assert_eq!(conv.out_channels(), 8);
        assert_eq!(conv.in_channels(), 3);
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = Rng::seed_from(2);
        let mut conv = Conv2d::new(1, 1, 3, Conv2dGeometry::same(3), &mut rng);
        let g = Tensor::zeros([1, 1, 4, 4]);
        assert!(matches!(
            conv.backward(&g),
            Err(NnError::MissingCache { .. })
        ));
    }

    #[test]
    fn gradients_accumulate_across_calls() {
        let mut rng = Rng::seed_from(3);
        let mut conv = Conv2d::new(1, 2, 3, Conv2dGeometry::same(3), &mut rng);
        let x = Tensor::randn([1, 1, 4, 4], &mut rng);
        let g = Tensor::ones([1, 2, 4, 4]);
        conv.forward(&x, true).unwrap();
        conv.backward(&g).unwrap();
        let g1 = conv.weight.grad.clone();
        conv.forward(&x, true).unwrap();
        conv.backward(&g).unwrap();
        let g2 = conv.weight.grad.clone();
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice()) {
            assert!((2.0 * a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn loss_decreases_under_gradient_steps() {
        // Sanity: training a conv to reproduce a fixed target reduces MSE.
        let mut rng = Rng::seed_from(4);
        let mut conv = Conv2d::new(2, 2, 3, Conv2dGeometry::same(3), &mut rng);
        let x = Tensor::randn([1, 2, 6, 6], &mut rng);
        let target = Tensor::randn([1, 2, 6, 6], &mut rng);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let y = conv.forward(&x, true).unwrap();
            let diff = y.sub(&target).unwrap();
            let loss = diff.map(|v| v * v).mean();
            let n = diff.len() as f32;
            let grad = diff.scale(2.0 / n);
            conv.backward(&grad).unwrap();
            for p in conv.params_mut() {
                let g = p.grad.clone();
                p.value.add_scaled(&g, -0.05).unwrap();
                p.zero_grad();
            }
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
        }
        assert!(last < 0.5 * first.unwrap(), "{first:?} -> {last}");
    }
}
