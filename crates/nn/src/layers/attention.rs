//! Single-head spatial self-attention with residual connection — the
//! paper's Attention block (present at selected U-Net resolutions, e.g.
//! `enc.16x16_block_1` in EDM1 for CIFAR-10).

use crate::error::{NnError, Result};
use crate::init::xavier_uniform;
use crate::param::Param;
use serde::{Deserialize, Serialize};
use sqdm_tensor::ops::{matmul, matmul_a_bt, matmul_at_b, softmax_rows, softmax_rows_backward};
use sqdm_tensor::{arena, Rng, Tensor};

/// Identifies one of the four attention projection matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttnProjection {
    /// The query projection `Wq`.
    Query,
    /// The key projection `Wk`.
    Key,
    /// The value projection `Wv`.
    Value,
    /// The output projection `Wo`.
    Output,
}

impl AttnProjection {
    /// All four projections in application order.
    pub const ALL: [AttnProjection; 4] = [
        AttnProjection::Query,
        AttnProjection::Key,
        AttnProjection::Value,
        AttnProjection::Output,
    ];

    /// Stable index of this projection in [`AttnProjection::ALL`].
    pub fn index(self) -> usize {
        match self {
            AttnProjection::Query => 0,
            AttnProjection::Key => 1,
            AttnProjection::Value => 2,
            AttnProjection::Output => 3,
        }
    }
}

/// Image self-attention over spatial positions, `[N, C, H, W] → same`.
///
/// Each pixel attends to every other pixel of its image:
/// `Y = X + softmax(QKᵀ/√C)·V·Woᵀ` with `Q = XWqᵀ`, `K = XWkᵀ`, `V = XWvᵀ`
/// computed per batch element over the flattened spatial axis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelfAttention2d {
    /// Query projection, `[C, C]`.
    pub wq: Param,
    /// Key projection, `[C, C]`.
    pub wk: Param,
    /// Value projection, `[C, C]`.
    pub wv: Param,
    /// Output projection, `[C, C]`.
    pub wo: Param,
    channels: usize,
    #[serde(skip)]
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    /// Per batch element: (X [S,C], Q, K, V [S,C], A [S,S], O [S,C]).
    per_batch: Vec<(Tensor, Tensor, Tensor, Tensor, Tensor, Tensor)>,
    n: usize,
}

/// Converts one batch element of `[N, C, H, W]` to `[S, C]` (S = H·W).
fn to_sc(x: &Tensor, n: usize) -> Result<Tensor> {
    let (_, c, h, w) = x.shape().as_nchw()?;
    let s = h * w;
    let xv = x.as_slice();
    let base = n * c * s;
    let mut out = arena::take_zeroed::<f32>(s * c);
    for ch in 0..c {
        for i in 0..s {
            out[i * c + ch] = xv[base + ch * s + i];
        }
    }
    Ok(Tensor::from_vec(out, [s, c])?)
}

/// Writes a `[S, C]` matrix back into batch element `n` of `[N, C, H, W]`.
fn from_sc(dst: &mut Tensor, src: &Tensor, n: usize) -> Result<()> {
    let (_, c, h, w) = dst.shape().as_nchw()?;
    let s = h * w;
    let sv = src.as_slice();
    let base = n * c * s;
    let dv = dst.as_mut_slice();
    for ch in 0..c {
        for i in 0..s {
            dv[base + ch * s + i] = sv[i * c + ch];
        }
    }
    Ok(())
}

impl SelfAttention2d {
    /// Creates an attention layer over `channels` feature channels.
    pub fn new(channels: usize, rng: &mut Rng) -> Self {
        let mk = |rng: &mut Rng| {
            Param::new(xavier_uniform(
                [channels, channels],
                channels,
                channels,
                rng,
            ))
        };
        SelfAttention2d {
            wq: mk(rng),
            wk: mk(rng),
            wv: mk(rng),
            wo: mk(rng),
            channels,
            cache: None,
        }
    }

    /// The channel count this layer was built for.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Inference forward with the four projections (`Q`, `K`, `V`, output)
    /// computed by a caller-supplied projector — the hook the quantized
    /// executor uses to run projections fake-quantized or on the integer
    /// engine while the attention math (scores, softmax, value mix) stays
    /// in f32.
    ///
    /// `project(xs, which)` must compute `xs · wᵀ` for `xs` `[S, C]` and
    /// the layer weight selected by `which` (see [`AttnProjection`]); the
    /// indirection lets the caller pre-quantize each weight once per
    /// forward instead of once per batch element. Per batch element the
    /// projector is invoked in `Query`, `Key`, `Value`, `Output` order,
    /// with the first three sharing one input tensor — a contract callers
    /// may rely on to quantize that input once. With
    /// `project = |xs, which| matmul_a_bt(xs, attn.projection_weight(which))`
    /// this is bitwise identical to `forward(x, false)`.
    ///
    /// # Errors
    ///
    /// Returns shape errors for non-rank-4 input or a channel mismatch,
    /// and propagates projector errors.
    pub fn forward_with_projector(
        &self,
        x: &Tensor,
        project: &mut dyn FnMut(&Tensor, AttnProjection) -> Result<Tensor>,
    ) -> Result<Tensor> {
        let (n, c, _h, _w) = x.shape().as_nchw()?;
        if c != self.channels {
            return Err(NnError::Config {
                layer: "SelfAttention2d",
                reason: format!("input has {c} channels, layer has {}", self.channels),
            });
        }
        let inv = 1.0 / (c as f32).sqrt();
        let mut out = x.clone(); // residual
        for nn in 0..n {
            let xs = to_sc(x, nn)?; // [S, C]
            let q = project(&xs, AttnProjection::Query)?;
            let k = project(&xs, AttnProjection::Key)?;
            let v = project(&xs, AttnProjection::Value)?;
            let p = matmul_a_bt(&q, &k)?.scale(inv); // [S, S]
            let a = softmax_rows(&p)?;
            let o = matmul(&a, &v)?; // [S, C]
            let y = project(&o, AttnProjection::Output)?; // [S, C]

            let mut slab = to_sc(&out, nn)?;
            slab.add_scaled(&y, 1.0)?;
            from_sc(&mut out, &slab, nn)?;
        }
        Ok(out)
    }

    /// The weight tensor of one projection, `[C, C]`.
    pub fn projection_weight(&self, which: AttnProjection) -> &Tensor {
        match which {
            AttnProjection::Query => &self.wq.value,
            AttnProjection::Key => &self.wk.value,
            AttnProjection::Value => &self.wv.value,
            AttnProjection::Output => &self.wo.value,
        }
    }

    /// Forward pass; caches intermediates when `train` is set.
    ///
    /// # Errors
    ///
    /// Returns shape errors for non-rank-4 input or a channel mismatch.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        let (n, c, _h, _w) = x.shape().as_nchw()?;
        if c != self.channels {
            return Err(NnError::Config {
                layer: "SelfAttention2d",
                reason: format!("input has {c} channels, layer has {}", self.channels),
            });
        }
        let inv = 1.0 / (c as f32).sqrt();
        let mut out = x.clone(); // residual
        let mut per_batch = Vec::with_capacity(n);
        for nn in 0..n {
            let xs = to_sc(x, nn)?; // [S, C]
            let q = matmul_a_bt(&xs, &self.wq.value)?;
            let k = matmul_a_bt(&xs, &self.wk.value)?;
            let v = matmul_a_bt(&xs, &self.wv.value)?;
            let p = matmul_a_bt(&q, &k)?.scale(inv); // [S, S]
            let a = softmax_rows(&p)?;
            let o = matmul(&a, &v)?; // [S, C]
            let y = matmul_a_bt(&o, &self.wo.value)?; // [S, C]

            // out[nn] += y
            let mut slab = to_sc(&out, nn)?;
            slab.add_scaled(&y, 1.0)?;
            from_sc(&mut out, &slab, nn)?;
            if train {
                per_batch.push((xs, q, k, v, a, o));
            }
        }
        if train {
            self.cache = Some(AttnCache { per_batch, n });
        }
        Ok(out)
    }

    /// Backward pass: accumulates projection gradients, returns the input
    /// gradient (including the residual path).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingCache`] without a preceding training
    /// forward.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.take().ok_or(NnError::MissingCache {
            layer: "SelfAttention2d",
        })?;
        let c = self.channels;
        let inv = 1.0 / (c as f32).sqrt();
        let mut grad_in = grad_out.clone(); // residual path
        for nn in 0..cache.n {
            let (xs, q, k, v, a, o) = &cache.per_batch[nn];
            let gy = to_sc(grad_out, nn)?; // [S, C]

            // Y = O Woᵀ → dO = gy Wo ; dWo += gyᵀ O
            let go = matmul(&gy, &self.wo.value)?;
            self.wo.grad.add_scaled(&matmul_at_b(&gy, o)?, 1.0)?;
            // O = A V → dA = go Vᵀ ; dV = Aᵀ go
            let ga = matmul_a_bt(&go, v)?;
            let gv = matmul_at_b(a, &go)?;
            // A = softmax(P), P = QKᵀ·inv
            let gp = softmax_rows_backward(a, &ga)?.scale(inv);
            let gq = matmul(&gp, k)?;
            let gk = matmul_at_b(&gp, q)?;
            // Q = X Wqᵀ → dX += gq Wq ; dWq += gqᵀ X  (same for K, V)
            self.wq.grad.add_scaled(&matmul_at_b(&gq, xs)?, 1.0)?;
            self.wk.grad.add_scaled(&matmul_at_b(&gk, xs)?, 1.0)?;
            self.wv.grad.add_scaled(&matmul_at_b(&gv, xs)?, 1.0)?;
            let mut gx = matmul(&gq, &self.wq.value)?;
            gx.add_scaled(&matmul(&gk, &self.wk.value)?, 1.0)?;
            gx.add_scaled(&matmul(&gv, &self.wv.value)?, 1.0)?;
            // Accumulate onto the residual gradient already in grad_in.
            let mut slab = to_sc(&grad_in, nn)?;
            slab.add_scaled(&gx, 1.0)?;
            from_sc(&mut grad_in, &slab, nn)?;
        }
        Ok(grad_in)
    }

    /// Mutable references to the layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_preserves_shape() {
        let mut rng = Rng::seed_from(1);
        let mut attn = SelfAttention2d::new(4, &mut rng);
        let x = Tensor::randn([2, 4, 3, 3], &mut rng);
        let y = attn.forward(&x, false).unwrap();
        assert_eq!(y.dims(), x.dims());
    }

    #[test]
    fn zero_projections_give_identity() {
        let mut rng = Rng::seed_from(2);
        let mut attn = SelfAttention2d::new(3, &mut rng);
        attn.wo.value = Tensor::zeros([3, 3]);
        let x = Tensor::randn([1, 3, 4, 4], &mut rng);
        let y = attn.forward(&x, false).unwrap();
        assert_eq!(y, x); // residual only
    }

    #[test]
    fn channel_mismatch_rejected() {
        let mut rng = Rng::seed_from(3);
        let mut attn = SelfAttention2d::new(4, &mut rng);
        assert!(attn.forward(&Tensor::zeros([1, 5, 2, 2]), false).is_err());
        let probe = attn.clone();
        assert!(probe
            .forward_with_projector(&Tensor::zeros([1, 5, 2, 2]), &mut |a, which| {
                Ok(matmul_a_bt(a, probe.projection_weight(which))?)
            })
            .is_err());
    }

    #[test]
    fn projector_identity_matches_plain_forward_bitwise() {
        let mut rng = Rng::seed_from(5);
        let mut attn = SelfAttention2d::new(4, &mut rng);
        let x = Tensor::randn([2, 4, 3, 3], &mut rng);
        let plain = attn.forward(&x, false).unwrap();
        let probe = attn.clone();
        let hooked = probe
            .forward_with_projector(&x, &mut |a, which| {
                Ok(matmul_a_bt(a, probe.projection_weight(which))?)
            })
            .unwrap();
        assert_eq!(plain, hooked);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = Rng::seed_from(4);
        let mut attn = SelfAttention2d::new(2, &mut rng);
        let x = Tensor::randn([1, 2, 2, 2], &mut rng);
        let wloss = Tensor::randn([1, 2, 2, 2], &mut rng);

        attn.forward(&x, true).unwrap();
        let gin = attn.backward(&wloss).unwrap();

        let eps = 1e-2f32;
        let loss = |attn: &SelfAttention2d, x: &Tensor| -> f32 {
            let mut a = attn.clone();
            a.forward(x, false)
                .unwrap()
                .as_slice()
                .iter()
                .zip(wloss.as_slice())
                .map(|(p, q)| p * q)
                .sum()
        };
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&attn, &xp) - loss(&attn, &xm)) / (2.0 * eps);
            let an = gin.as_slice()[idx];
            assert!((fd - an).abs() < 3e-2, "x idx {idx}: fd={fd} an={an}");
        }
        // Spot-check one projection gradient (wq).
        for idx in 0..4 {
            let mut ap = attn.clone();
            ap.wq.value.as_mut_slice()[idx] += eps;
            let mut am = attn.clone();
            am.wq.value.as_mut_slice()[idx] -= eps;
            let fd = (loss(&ap, &x) - loss(&am, &x)) / (2.0 * eps);
            let an = attn.wq.grad.as_slice()[idx];
            assert!((fd - an).abs() < 3e-2, "wq idx {idx}: fd={fd} an={an}");
        }
    }
}
