//! Activation layer wrapping the scalar functions from `sqdm-tensor`.

use crate::error::{NnError, Result};
use serde::{Deserialize, Serialize};
use sqdm_tensor::ops::Activation;
use sqdm_tensor::Tensor;

/// A stateless activation layer with cached pre-activations for backprop.
///
/// Switching `kind` from [`Activation::Silu`] to [`Activation::Relu`] is the
/// paper's §III-B model surgery; the layer exposes
/// [`set_kind`](ActLayer::set_kind) for exactly that.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActLayer {
    kind: Activation,
    #[serde(skip)]
    cache: Option<Tensor>,
}

impl ActLayer {
    /// Creates an activation layer.
    pub fn new(kind: Activation) -> Self {
        ActLayer { kind, cache: None }
    }

    /// The current activation function.
    pub fn kind(&self) -> Activation {
        self.kind
    }

    /// Replaces the activation function (SiLU → ReLU surgery).
    pub fn set_kind(&mut self, kind: Activation) {
        self.kind = kind;
    }

    /// Forward pass; caches pre-activations when `train` is set.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cache = Some(x.clone());
        }
        self.kind.forward(x)
    }

    /// Backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingCache`] without a preceding training
    /// forward.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache
            .take()
            .ok_or(NnError::MissingCache { layer: "ActLayer" })?;
        Ok(self.kind.backward(&x, grad_out)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surgery_swaps_function() {
        let mut a = ActLayer::new(Activation::Silu);
        let x = Tensor::from_slice(&[-1.0, 1.0]);
        let silu_out = a.forward(&x, false);
        assert!(silu_out.get(&[0]).unwrap() < 0.0);
        a.set_kind(Activation::Relu);
        assert_eq!(a.kind(), Activation::Relu);
        let relu_out = a.forward(&x, false);
        assert_eq!(relu_out.get(&[0]).unwrap(), 0.0);
    }

    #[test]
    fn backward_uses_pre_activation() {
        let mut a = ActLayer::new(Activation::Relu);
        let x = Tensor::from_slice(&[-2.0, 3.0]);
        a.forward(&x, true);
        let g = a.backward(&Tensor::from_slice(&[5.0, 5.0])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 5.0]);
        assert!(a.backward(&Tensor::from_slice(&[1.0, 1.0])).is_err());
    }
}
