//! Layer implementations with explicit forward/backward passes.

mod act;
mod attention;
mod conv;
mod linear;
mod norm;
mod pool;

pub use act::ActLayer;
pub use attention::{AttnProjection, SelfAttention2d};
pub use conv::Conv2d;
pub use linear::Linear;
pub use norm::GroupNorm;
pub use pool::{avg_pool2, avg_pool2_backward, upsample_nearest2, upsample_nearest2_backward};
