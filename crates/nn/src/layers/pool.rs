//! Spatial resampling: 2× average-pool downsampling and 2× nearest-neighbor
//! upsampling, the U-Net's encoder/decoder transitions.

use crate::error::{NnError, Result};
use sqdm_tensor::{arena, Tensor, TensorError};

/// 2× average pooling over `[N, C, H, W]` (H and W must be even).
///
/// # Errors
///
/// Returns an error for non-rank-4 input or odd spatial extents.
pub fn avg_pool2(x: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    if h % 2 != 0 || w % 2 != 0 {
        return Err(NnError::Tensor(TensorError::InvalidArgument {
            op: "avg_pool2",
            reason: format!("spatial extents must be even, got {h}x{w}"),
        }));
    }
    let (oh, ow) = (h / 2, w / 2);
    let xv = x.as_slice();
    let mut out = arena::take_zeroed::<f32>(n * c * oh * ow);
    for nc in 0..n * c {
        let src = &xv[nc * h * w..(nc + 1) * h * w];
        let dst = &mut out[nc * oh * ow..(nc + 1) * oh * ow];
        for oy in 0..oh {
            for ox in 0..ow {
                let s = src[(2 * oy) * w + 2 * ox]
                    + src[(2 * oy) * w + 2 * ox + 1]
                    + src[(2 * oy + 1) * w + 2 * ox]
                    + src[(2 * oy + 1) * w + 2 * ox + 1];
                dst[oy * ow + ox] = 0.25 * s;
            }
        }
    }
    Ok(Tensor::from_vec(out, [n, c, oh, ow])?)
}

/// Backward of [`avg_pool2`]: spreads each output gradient uniformly over
/// its 2×2 input window.
///
/// # Errors
///
/// Returns an error for non-rank-4 input.
pub fn avg_pool2_backward(grad_out: &Tensor) -> Result<Tensor> {
    let (n, c, oh, ow) = grad_out.shape().as_nchw()?;
    let (h, w) = (oh * 2, ow * 2);
    let gv = grad_out.as_slice();
    let mut out = arena::take_zeroed::<f32>(n * c * h * w);
    for nc in 0..n * c {
        let src = &gv[nc * oh * ow..(nc + 1) * oh * ow];
        let dst = &mut out[nc * h * w..(nc + 1) * h * w];
        for oy in 0..oh {
            for ox in 0..ow {
                let g = 0.25 * src[oy * ow + ox];
                dst[(2 * oy) * w + 2 * ox] = g;
                dst[(2 * oy) * w + 2 * ox + 1] = g;
                dst[(2 * oy + 1) * w + 2 * ox] = g;
                dst[(2 * oy + 1) * w + 2 * ox + 1] = g;
            }
        }
    }
    Ok(Tensor::from_vec(out, [n, c, h, w])?)
}

/// 2× nearest-neighbor upsampling over `[N, C, H, W]`.
///
/// # Errors
///
/// Returns an error for non-rank-4 input.
pub fn upsample_nearest2(x: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    let (oh, ow) = (h * 2, w * 2);
    let xv = x.as_slice();
    let mut out = arena::take_zeroed::<f32>(n * c * oh * ow);
    for nc in 0..n * c {
        let src = &xv[nc * h * w..(nc + 1) * h * w];
        let dst = &mut out[nc * oh * ow..(nc + 1) * oh * ow];
        for y in 0..oh {
            for x_ in 0..ow {
                dst[y * ow + x_] = src[(y / 2) * w + x_ / 2];
            }
        }
    }
    Ok(Tensor::from_vec(out, [n, c, oh, ow])?)
}

/// Backward of [`upsample_nearest2`]: sums each 2×2 output window back onto
/// its source pixel.
///
/// # Errors
///
/// Returns an error for non-rank-4 input or odd spatial extents.
pub fn upsample_nearest2_backward(grad_out: &Tensor) -> Result<Tensor> {
    let (n, c, oh, ow) = grad_out.shape().as_nchw()?;
    if oh % 2 != 0 || ow % 2 != 0 {
        return Err(NnError::Tensor(TensorError::InvalidArgument {
            op: "upsample_nearest2_backward",
            reason: format!("spatial extents must be even, got {oh}x{ow}"),
        }));
    }
    let (h, w) = (oh / 2, ow / 2);
    let gv = grad_out.as_slice();
    let mut out = arena::take_zeroed::<f32>(n * c * h * w);
    for nc in 0..n * c {
        let src = &gv[nc * oh * ow..(nc + 1) * oh * ow];
        let dst = &mut out[nc * h * w..(nc + 1) * h * w];
        for y in 0..oh {
            for x_ in 0..ow {
                dst[(y / 2) * w + x_ / 2] += src[y * ow + x_];
            }
        }
    }
    Ok(Tensor::from_vec(out, [n, c, h, w])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_tensor::Rng;

    #[test]
    fn avg_pool_values() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]).unwrap();
        let y = avg_pool2(&x).unwrap();
        assert_eq!(y.dims(), &[1, 1, 1, 1]);
        assert_eq!(y.get(&[0, 0, 0, 0]).unwrap(), 2.5);
    }

    #[test]
    fn upsample_replicates() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]).unwrap();
        let y = upsample_nearest2(&x).unwrap();
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
        assert_eq!(y.get(&[0, 0, 0, 1]).unwrap(), 1.0);
        assert_eq!(y.get(&[0, 0, 3, 3]).unwrap(), 4.0);
    }

    #[test]
    fn pool_then_upsample_shapes_round_trip() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let y = upsample_nearest2(&avg_pool2(&x).unwrap()).unwrap();
        assert_eq!(y.dims(), x.dims());
    }

    #[test]
    fn avg_pool_backward_is_adjoint() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn([1, 2, 4, 4], &mut rng);
        let y = avg_pool2(&x).unwrap();
        let g = Tensor::randn(y.dims(), &mut rng);
        let gx = avg_pool2_backward(&g).unwrap();
        let lhs: f32 = y
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(gx.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn upsample_backward_is_adjoint() {
        let mut rng = Rng::seed_from(3);
        let x = Tensor::randn([1, 2, 3, 3], &mut rng);
        let y = upsample_nearest2(&x).unwrap();
        let g = Tensor::randn(y.dims(), &mut rng);
        let gx = upsample_nearest2_backward(&g).unwrap();
        let lhs: f32 = y
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(gx.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn odd_extent_rejected() {
        assert!(avg_pool2(&Tensor::zeros([1, 1, 3, 4])).is_err());
        assert!(upsample_nearest2_backward(&Tensor::zeros([1, 1, 3, 4])).is_err());
    }
}
