//! Fully-connected (linear) layer.

use crate::error::{NnError, Result};
use crate::init::xavier_uniform;
use crate::param::Param;
use serde::{Deserialize, Serialize};
use sqdm_tensor::ops::{matmul, matmul_a_bt, matmul_at_b};
use sqdm_tensor::{Rng, Tensor};

/// A linear layer `y = x Wᵀ + b` over rank-2 inputs `[batch, in]`.
///
/// Weight layout `[out, in]`; used by the paper's Embedding blocks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, `[out, in]`.
    pub weight: Param,
    /// Bias vector, `[out]`.
    pub bias: Param,
    #[serde(skip)]
    cache: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Xavier-initialized weights.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Linear {
            weight: Param::new(xavier_uniform(
                [out_features, in_features],
                in_features,
                out_features,
                rng,
            )),
            bias: Param::new(Tensor::zeros([out_features])),
            cache: None,
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Forward pass over `[batch, in]`. With `train` set, caches the input.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (input must be rank 2 with matching feature
    /// count).
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        let mut y = matmul_a_bt(x, &self.weight.value)?;
        let (b, o) = (y.dims()[0], y.dims()[1]);
        let bias = self.bias.value.as_slice();
        let yv = y.as_mut_slice();
        for i in 0..b {
            for j in 0..o {
                yv[i * o + j] += bias[j];
            }
        }
        if train {
            self.cache = Some(x.clone());
        }
        Ok(y)
    }

    /// Inference forward with substituted weights (fake-quantization hook).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward_with_weight(&self, x: &Tensor, weight: &Tensor) -> Result<Tensor> {
        let mut y = matmul_a_bt(x, weight)?;
        let (b, o) = (y.dims()[0], y.dims()[1]);
        let bias = self.bias.value.as_slice();
        let yv = y.as_mut_slice();
        for i in 0..b {
            for j in 0..o {
                yv[i * o + j] += bias[j];
            }
        }
        Ok(y)
    }

    /// Backward pass: accumulates gradients, returns input gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingCache`] if no training forward preceded.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache
            .take()
            .ok_or(NnError::MissingCache { layer: "Linear" })?;
        // dW = gᵀ x, dx = g W, db = column sums of g.
        let gw = matmul_at_b(grad_out, &x)?;
        self.weight.grad.add_scaled(&gw, 1.0)?;
        let (b, o) = (grad_out.dims()[0], grad_out.dims()[1]);
        let gv = grad_out.as_slice();
        let mut db = vec![0.0f32; o];
        for i in 0..b {
            for j in 0..o {
                db[j] += gv[i * o + j];
            }
        }
        self.bias
            .grad
            .add_scaled(&Tensor::from_vec(db, [o])?, 1.0)?;
        Ok(matmul(grad_out, &self.weight.value)?)
    }

    /// Mutable references to the layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = Rng::seed_from(1);
        let mut lin = Linear::new(4, 3, &mut rng);
        lin.bias.value = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        lin.weight.value = Tensor::zeros([3, 4]);
        let x = Tensor::randn([2, 4], &mut rng);
        let y = lin.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(y.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(y.get(&[1, 2]).unwrap(), 3.0);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = Rng::seed_from(2);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x = Tensor::randn([2, 3], &mut rng);
        let y = lin.forward(&x, true).unwrap();
        let gout = Tensor::ones(y.dims());
        let gin = lin.backward(&gout).unwrap();

        let eps = 1e-2f32;
        // Input gradient check.
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let mut l2 = lin.clone();
            let fp = l2.forward(&xp, false).unwrap().sum();
            let fm = l2.forward(&xm, false).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - gin.as_slice()[idx]).abs() < 1e-2);
        }
        // Weight gradient check.
        for idx in 0..lin.weight.value.len() {
            let mut lp = lin.clone();
            lp.weight.value.as_mut_slice()[idx] += eps;
            let mut lm = lin.clone();
            lm.weight.value.as_mut_slice()[idx] -= eps;
            let fp = lp.forward(&x, false).unwrap().sum();
            let fm = lm.forward(&x, false).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - lin.weight.grad.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn feature_counts() {
        let mut rng = Rng::seed_from(3);
        let lin = Linear::new(7, 5, &mut rng);
        assert_eq!(lin.in_features(), 7);
        assert_eq!(lin.out_features(), 5);
    }
}
