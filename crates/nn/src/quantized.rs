//! Quantized inference execution.
//!
//! A [`QuantExecutor`] wraps a [`BlockPrecision`] plus an [`ExecMode`] and
//! executes layers either by **fake quantization** — weights and input
//! activations passed through quantize→dequantize, the standard
//! methodology for evaluating post-training quantization quality in a
//! floating-point pipeline (paper §II-A, §III-A) — or **natively** on the
//! integer engine ([`crate::native`]): i8 codes, exact i32 accumulation,
//! requantized epilogue. Native execution falls back to fake quantization
//! for precisions the engine does not support (FP16 slots, >8-bit grids).

use crate::error::Result;
use crate::layers::{AttnProjection, Conv2d, Linear, SelfAttention2d};
use crate::native;
use crate::packs::PackCache;
use serde::{Deserialize, Serialize};
use sqdm_quant::{fake_quant, BlockPrecision, ChannelLayout, ExecMode, Granularity, QuantFormat};
use sqdm_tensor::ops::int::ConvDeltaState;
use sqdm_tensor::ops::matmul_a_bt;
use sqdm_tensor::Tensor;
use std::sync::Arc;

/// Adapts a format for *activation* quantization.
///
/// Coarse formats calibrate weights per output channel, but activations get
/// a single per-tensor scale: a per-input-channel activation scale cannot be
/// folded out of an integer dot product over channels, so real INT8/INT4
/// deployments (and the paper's Table I baselines) scale activations per
/// tensor. Fine-grained block formats (MXINT8, VSQ, ours) rescale per block
/// in hardware and keep their granularity.
fn activation_format(fmt: QuantFormat) -> QuantFormat {
    match fmt.granularity {
        Granularity::PerChannel => QuantFormat {
            granularity: Granularity::PerTensor,
            ..fmt
        },
        _ => fmt,
    }
}

/// Executes layers under a given block precision and execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantExecutor {
    /// Precision applied to this block's weights and activations.
    pub precision: BlockPrecision,
    /// Whether layers run fake-quantized (f32) or on the integer engine.
    pub mode: ExecMode,
    /// Per-request batching: when set, every element of the input's batch
    /// axis is treated as an independent serving request — activations are
    /// quantized per sample (one scale per request, never across the
    /// batch) while weights are still quantized once per layer call. This
    /// makes a batched forward bitwise identical to the same requests run
    /// one at a time, which is the contract batched serving
    /// (`sqdm_edm::serve`) is built on.
    ///
    /// The batch size is read from the input on **every** call and no
    /// state is carried between calls, so it may differ per step — the
    /// continuous-batching scheduler re-packs its in-flight batch at every
    /// step boundary as streams join and retire (pinned by
    /// `varying_batch_sizes_across_calls_carry_no_state` below).
    pub batched: bool,
}

impl QuantExecutor {
    /// An executor that quantizes nothing (FP16/FP32 reference path).
    pub fn full_precision() -> Self {
        QuantExecutor {
            precision: BlockPrecision::FP16,
            mode: ExecMode::FakeQuant,
            batched: false,
        }
    }

    /// Creates a fake-quantizing executor for a block precision.
    pub fn new(precision: BlockPrecision) -> Self {
        QuantExecutor {
            precision,
            mode: ExecMode::FakeQuant,
            batched: false,
        }
    }

    /// This executor with the given execution mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// This executor with per-request batched execution enabled (see the
    /// [`QuantExecutor::batched`] field).
    pub fn with_batched(mut self, batched: bool) -> Self {
        self.batched = batched;
        self
    }

    /// A variant of this executor whose activation format is signed —
    /// for layers inside an unsigned (post-ReLU) block that consume signed
    /// tensors: residual skip convolutions and embedding projections.
    pub fn signed_activations(&self) -> Self {
        QuantExecutor {
            precision: BlockPrecision {
                weights: self.precision.weights,
                activations: self.precision.activations.map(|f| f.as_signed()),
            },
            mode: self.mode,
            batched: self.batched,
        }
    }

    /// True when this layer call should run on the integer engine.
    fn native(&self) -> bool {
        self.mode == ExecMode::NativeInt && native::supports(&self.precision)
    }

    /// Quantize-dequantizes an activation tensor (`[N, C, H, W]` layout)
    /// according to the block's activation format.
    ///
    /// # Errors
    ///
    /// Propagates quantizer layout errors.
    pub fn quant_activation(&self, x: &Tensor) -> Result<Tensor> {
        match self.precision.activations {
            None => Ok(x.clone()),
            Some(fmt) => Ok(fake_quant(
                x,
                activation_format(fmt),
                ChannelLayout::ACTIVATION,
            )?),
        }
    }

    /// Quantize-dequantizes a rank-2 activation (`[batch, features]`),
    /// treating features as the channel axis.
    ///
    /// # Errors
    ///
    /// Propagates quantizer layout errors.
    pub fn quant_activation_2d(&self, x: &Tensor) -> Result<Tensor> {
        match self.precision.activations {
            None => Ok(x.clone()),
            Some(fmt) => Ok(fake_quant(
                x,
                activation_format(fmt),
                ChannelLayout { axis: 0 },
            )?),
        }
    }

    /// Quantize-dequantizes a weight tensor according to the block's weight
    /// format (per output channel).
    ///
    /// # Errors
    ///
    /// Propagates quantizer layout errors.
    pub fn quant_weight(&self, w: &Tensor) -> Result<Tensor> {
        match self.precision.weights {
            None => Ok(w.clone()),
            Some(fmt) => Ok(fake_quant(w, fmt, ChannelLayout::WEIGHT)?),
        }
    }

    /// Quantize-dequantizes each sample of an `[N, C, H, W]` activation
    /// batch independently: sample `nn` gets its own quantization grid,
    /// exactly as if it were the only tensor in a single-request forward.
    ///
    /// # Errors
    ///
    /// Propagates quantizer layout errors.
    fn quant_activation_per_sample(&self, x: &Tensor) -> Result<Tensor> {
        let Some(fmt) = self.precision.activations else {
            return Ok(x.clone());
        };
        let (n, c, h, w) = x.shape().as_nchw()?;
        if n <= 1 {
            return self.quant_activation(x);
        }
        let mut out = Vec::with_capacity(x.len());
        for nn in 0..n {
            let sample = x.batch_sample(nn)?;
            let q = fake_quant(&sample, activation_format(fmt), ChannelLayout::ACTIVATION)?;
            out.extend_from_slice(q.as_slice());
        }
        Ok(Tensor::from_vec(out, [n, c, h, w])?)
    }

    /// Quantize-dequantizes each row of a `[batch, features]` activation
    /// independently — the rank-2 analogue of
    /// [`QuantExecutor::quant_activation_per_sample`].
    ///
    /// # Errors
    ///
    /// Propagates quantizer layout errors.
    fn quant_activation_2d_per_row(&self, x: &Tensor) -> Result<Tensor> {
        let Some(fmt) = self.precision.activations else {
            return Ok(x.clone());
        };
        let (b, f) = (x.dims()[0], x.dims()[1]);
        if b <= 1 {
            return self.quant_activation_2d(x);
        }
        let xv = x.as_slice();
        let mut out = Vec::with_capacity(xv.len());
        for r in 0..b {
            let row = Tensor::from_vec(xv[r * f..(r + 1) * f].to_vec(), [1, f])?;
            let q = fake_quant(&row, activation_format(fmt), ChannelLayout { axis: 0 })?;
            out.extend_from_slice(q.as_slice());
        }
        Ok(Tensor::from_vec(out, [b, f])?)
    }

    /// Runs a convolution under this executor's mode: fake-quantized, or
    /// natively on the integer engine when the precision supports it.
    ///
    /// With [`QuantExecutor::batched`] set this dispatches to
    /// [`QuantExecutor::conv_forward_batch`].
    ///
    /// # Errors
    ///
    /// Propagates quantizer and convolution errors.
    pub fn conv_forward(&self, conv: &Conv2d, x: &Tensor) -> Result<Tensor> {
        if self.batched {
            return self.conv_forward_batch(conv, x);
        }
        if self.native() {
            return native::conv_forward(conv, x, &self.precision);
        }
        let xq = self.quant_activation(x)?;
        let wq = self.quant_weight(&conv.weight.value)?;
        conv.forward_with_weight(&xq, &wq)
    }

    /// Runs a convolution over a batch of independent requests: each
    /// sample of the `[N, C, H, W]` input is quantized with its own
    /// activation grid, the weight is quantized once for the whole batch,
    /// and one batched kernel call produces every output. Bitwise
    /// identical to N separate [`QuantExecutor::conv_forward`] calls (in
    /// either execution mode, at any `SQDM_THREADS`).
    ///
    /// # Errors
    ///
    /// Propagates quantizer and convolution errors.
    pub fn conv_forward_batch(&self, conv: &Conv2d, x: &Tensor) -> Result<Tensor> {
        if self.native() {
            return native::conv_forward_batch(conv, x, &self.precision);
        }
        let xq = self.quant_activation_per_sample(x)?;
        let wq = self.quant_weight(&conv.weight.value)?;
        conv.forward_with_weight(&xq, &wq)
    }

    /// [`QuantExecutor::conv_forward`] with a weight-pack cache: the
    /// weight's quantization artifact (integer pack or fake-quant tensor)
    /// is fetched from `packs` instead of rebuilt every call. `None` falls
    /// back to the uncached path. Bitwise identical to the uncached
    /// forward in both execution modes — the cached artifact is exactly
    /// what the uncached path would have built.
    ///
    /// # Errors
    ///
    /// Propagates quantizer and convolution errors.
    pub fn conv_forward_cached(
        &self,
        conv: &Conv2d,
        x: &Tensor,
        packs: Option<&PackCache>,
    ) -> Result<Tensor> {
        let Some(cache) = packs else {
            return self.conv_forward(conv, x);
        };
        if self.native() {
            let pw = cache.native_pack(&conv.weight.value, &self.precision)?;
            return if self.batched {
                native::conv_forward_batch_prepared(conv, x, &pw)
            } else {
                native::conv_forward_prepared(conv, x, &pw)
            };
        }
        let wq = cache.fake_weight(&conv.weight.value, || self.quant_weight(&conv.weight.value))?;
        let xq = if self.batched {
            self.quant_activation_per_sample(x)?
        } else {
            self.quant_activation(x)?
        };
        conv.forward_with_weight(&xq, &wq)
    }

    /// [`QuantExecutor::conv_forward_cached`] through the temporal-delta
    /// kernel: on the integer engine, only reduction rows whose input
    /// codes changed since the previous call through `state` are
    /// recomputed. `changed_channels` (one flag per `(batch-element,
    /// input-channel)`) is unioned with the exact code difference inside
    /// the kernel, so an under-reporting change mask cannot corrupt the
    /// result — it only costs speed.
    ///
    /// The fake-quant, full-precision and batched (per-sample
    /// quantization) paths have no delta kernel and execute the plain
    /// cached forward, ignoring the mask and state.
    ///
    /// # Errors
    ///
    /// Propagates quantizer and convolution errors.
    pub fn conv_forward_delta_cached(
        &self,
        conv: &Conv2d,
        x: &Tensor,
        packs: Option<&PackCache>,
        changed_channels: &[bool],
        state: &mut ConvDeltaState,
        dense_threshold: f32,
    ) -> Result<Tensor> {
        if !self.native() || self.batched {
            return self.conv_forward_cached(conv, x, packs);
        }
        let pw = match packs {
            Some(cache) => cache.native_pack(&conv.weight.value, &self.precision)?,
            None => Arc::new(native::PreparedWeight::new(
                &conv.weight.value,
                &self.precision,
            )?),
        };
        native::conv_forward_delta_prepared(conv, x, &pw, changed_channels, state, dense_threshold)
    }

    /// Runs a linear layer under this executor's mode: fake-quantized, or
    /// natively on the integer engine when the precision supports it.
    ///
    /// With [`QuantExecutor::batched`] set this dispatches to
    /// [`QuantExecutor::linear_forward_batch`].
    ///
    /// # Errors
    ///
    /// Propagates quantizer and matmul errors.
    pub fn linear_forward(&self, lin: &Linear, x: &Tensor) -> Result<Tensor> {
        if self.batched {
            return self.linear_forward_batch(lin, x);
        }
        if self.native() {
            return native::linear_forward(lin, x, &self.precision);
        }
        let xq = self.quant_activation_2d(x)?;
        let wq = self.quant_weight(&lin.weight.value)?;
        lin.forward_with_weight(&xq, &wq)
    }

    /// Runs a linear layer over a batch of independent requests: each row
    /// of the `[batch, features]` input is quantized with its own
    /// activation grid, the weight once for the whole batch. Bitwise
    /// identical to per-row [`QuantExecutor::linear_forward`] calls.
    ///
    /// # Errors
    ///
    /// Propagates quantizer and matmul errors.
    pub fn linear_forward_batch(&self, lin: &Linear, x: &Tensor) -> Result<Tensor> {
        if self.native() {
            return native::linear_forward_batch(lin, x, &self.precision);
        }
        let xq = self.quant_activation_2d_per_row(x)?;
        let wq = self.quant_weight(&lin.weight.value)?;
        lin.forward_with_weight(&xq, &wq)
    }

    /// [`QuantExecutor::linear_forward`] with a weight-pack cache; see
    /// [`QuantExecutor::conv_forward_cached`] for the contract.
    ///
    /// # Errors
    ///
    /// Propagates quantizer and matmul errors.
    pub fn linear_forward_cached(
        &self,
        lin: &Linear,
        x: &Tensor,
        packs: Option<&PackCache>,
    ) -> Result<Tensor> {
        let Some(cache) = packs else {
            return self.linear_forward(lin, x);
        };
        if self.native() {
            let pw = cache.native_pack(&lin.weight.value, &self.precision)?;
            return if self.batched {
                native::linear_forward_batch_prepared(lin, x, &pw)
            } else {
                native::linear_forward_prepared(lin, x, &pw)
            };
        }
        let wq = cache.fake_weight(&lin.weight.value, || self.quant_weight(&lin.weight.value))?;
        let xq = if self.batched {
            self.quant_activation_2d_per_row(x)?
        } else {
            self.quant_activation_2d(x)?
        };
        lin.forward_with_weight(&xq, &wq)
    }

    /// Runs a self-attention block with quantized q/k/v/out projections
    /// (the attention math itself — scores, softmax, the value mix — stays
    /// in f32, as on real accelerators where only the projections are
    /// GEMMs worth quantizing).
    ///
    /// Under [`BlockPrecision::FP16`] this is bitwise identical to the
    /// layer's plain inference forward.
    ///
    /// This path is already batch-safe for serving: the projector runs per
    /// batch element on `[S, C]` slabs, so activations are quantized per
    /// request by construction, and the projection weights are prepared
    /// once per call — amortized across the batch. A batched forward is
    /// therefore bitwise identical to per-request forwards with no extra
    /// dispatch ([`QuantExecutor::attention_forward_batch`] is an alias).
    ///
    /// # Errors
    ///
    /// Propagates quantizer and matmul errors.
    pub fn attention_forward(&self, attn: &SelfAttention2d, x: &Tensor) -> Result<Tensor> {
        self.attention_forward_cached(attn, x, None)
    }

    /// [`QuantExecutor::attention_forward`] with a weight-pack cache: the
    /// four projection weights' quantization artifacts are fetched from
    /// `packs` instead of rebuilt on every forward — the projections are
    /// the hottest repack in the model, four prepared weights per
    /// attention call. `None` builds them locally (once per call, shared
    /// across the batch). Bitwise identical to the uncached forward.
    ///
    /// # Errors
    ///
    /// Propagates quantizer and matmul errors.
    pub fn attention_forward_cached(
        &self,
        attn: &SelfAttention2d,
        x: &Tensor,
        packs: Option<&PackCache>,
    ) -> Result<Tensor> {
        // Quantize each projection weight once per forward (the projector
        // runs once per batch element per projection) — or fetch it from
        // the cache — and each input once: per batch element the projector
        // is called in Q, K, V, Output order with Q/K/V sharing one input,
        // so the input is quantized at Query and reused for Key/Value;
        // Output consumes a different tensor and quantizes fresh.
        if self.native() {
            // A fixed array (not a `Vec`) so the steady-state serving loop
            // makes zero heap allocations per attention call.
            let prep = |w: AttnProjection| match packs {
                Some(cache) => cache.native_pack(attn.projection_weight(w), &self.precision),
                None => native::PreparedWeight::new(attn.projection_weight(w), &self.precision)
                    .map(Arc::new),
            };
            let [q, k, v, o] = AttnProjection::ALL;
            let prepared: [Arc<native::PreparedWeight>; 4] =
                [prep(q)?, prep(k)?, prep(v)?, prep(o)?];
            let mut qkv_input: Option<native::QuantizedActivation> = None;
            return attn.forward_with_projector(x, &mut |xs, which| {
                let pw = &prepared[which.index()];
                match which {
                    AttnProjection::Output => pw.project_prepared(&pw.prepare_input(xs)?),
                    AttnProjection::Query => {
                        let qa = pw.prepare_input(xs)?;
                        let y = pw.project_prepared(&qa);
                        qkv_input = Some(qa);
                        y
                    }
                    AttnProjection::Key | AttnProjection::Value => {
                        pw.project_prepared(qkv_input.as_ref().expect("Query projected first"))
                    }
                }
            });
        }
        let quant = |w: AttnProjection| match packs {
            Some(cache) => cache.fake_weight(attn.projection_weight(w), || {
                self.quant_weight(attn.projection_weight(w))
            }),
            None => self.quant_weight(attn.projection_weight(w)).map(Arc::new),
        };
        let [q, k, v, o] = AttnProjection::ALL;
        let quantized: [Arc<Tensor>; 4] = [quant(q)?, quant(k)?, quant(v)?, quant(o)?];
        let mut qkv_input: Option<Tensor> = None;
        attn.forward_with_projector(x, &mut |xs, which| {
            let xq = match which {
                AttnProjection::Output => self.quant_activation_2d(xs)?,
                AttnProjection::Query => {
                    let xq = self.quant_activation_2d(xs)?;
                    qkv_input = Some(xq.clone());
                    xq
                }
                AttnProjection::Key | AttnProjection::Value => {
                    qkv_input.as_ref().expect("Query projected first").clone()
                }
            };
            Ok(matmul_a_bt(&xq, &quantized[which.index()])?)
        })
    }

    /// Batched-serving alias of [`QuantExecutor::attention_forward`],
    /// which is per-request-safe by construction (see its documentation).
    ///
    /// # Errors
    ///
    /// Propagates quantizer and matmul errors.
    pub fn attention_forward_batch(&self, attn: &SelfAttention2d, x: &Tensor) -> Result<Tensor> {
        self.attention_forward(attn, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_quant::QuantFormat;
    use sqdm_tensor::ops::Conv2dGeometry;
    use sqdm_tensor::Rng;

    #[test]
    fn full_precision_is_exact() {
        let mut rng = Rng::seed_from(1);
        let mut conv = Conv2d::new(2, 3, 3, Conv2dGeometry::same(3), &mut rng);
        let x = Tensor::randn([1, 2, 6, 6], &mut rng);
        let exact = conv.forward(&x, false).unwrap();
        let execd = QuantExecutor::full_precision()
            .conv_forward(&conv, &x)
            .unwrap();
        assert_eq!(exact, execd);
    }

    #[test]
    fn mxint8_is_close_int4_is_coarser() {
        let mut rng = Rng::seed_from(2);
        let mut conv = Conv2d::new(4, 4, 3, Conv2dGeometry::same(3), &mut rng);
        let x = Tensor::randn([1, 4, 8, 8], &mut rng);
        let exact = conv.forward(&x, false).unwrap();
        let e8 = QuantExecutor::new(BlockPrecision::uniform(QuantFormat::mxint8()))
            .conv_forward(&conv, &x)
            .unwrap();
        let e4 = QuantExecutor::new(BlockPrecision::uniform(QuantFormat::int4()))
            .conv_forward(&conv, &x)
            .unwrap();
        let err8 = exact.mse(&e8).unwrap();
        let err4 = exact.mse(&e4).unwrap();
        assert!(err8 < err4, "mxint8 {err8} should beat int4 {err4}");
        assert!(err8 < 1e-3, "mxint8 error {err8}");
    }

    /// Extracts sample `nn` of an `[N, C, H, W]` tensor as `[1, C, H, W]`.
    fn sample_of(x: &Tensor, nn: usize) -> Tensor {
        x.batch_sample(nn).unwrap()
    }

    #[test]
    fn batched_conv_is_bitwise_identical_to_per_request_runs() {
        use sqdm_quant::ExecMode;
        let mut rng = Rng::seed_from(21);
        let mut conv = Conv2d::new(3, 4, 3, Conv2dGeometry::same(3), &mut rng);
        conv.bias.value = Tensor::randn([4], &mut rng);
        // Scale the samples very differently so a shared (batch-wide)
        // activation grid would visibly change per-request results.
        let mut x = Tensor::randn([3, 3, 6, 6], &mut rng);
        let stride = 3 * 6 * 6;
        for (nn, s) in [1.0f32, 37.0, 0.02].iter().enumerate() {
            for v in &mut x.as_mut_slice()[nn * stride..(nn + 1) * stride] {
                *v *= s;
            }
        }
        for mode in [ExecMode::FakeQuant, ExecMode::NativeInt] {
            let exec = QuantExecutor::new(BlockPrecision::uniform(QuantFormat::int8()))
                .with_mode(mode)
                .with_batched(true);
            let batched = exec.conv_forward(&conv, &x).unwrap();
            for nn in 0..3 {
                let single = exec
                    .with_batched(false)
                    .conv_forward(&conv, &sample_of(&x, nn))
                    .unwrap();
                let per = single.len();
                for (a, b) in batched.as_slice()[nn * per..(nn + 1) * per]
                    .iter()
                    .zip(single.as_slice())
                {
                    assert_eq!(a.to_bits(), b.to_bits(), "{mode:?} sample {nn}");
                }
            }
        }
    }

    #[test]
    fn batched_linear_is_bitwise_identical_to_per_request_runs() {
        use sqdm_quant::ExecMode;
        let mut rng = Rng::seed_from(22);
        let mut lin = Linear::new(10, 6, &mut rng);
        lin.bias.value = Tensor::randn([6], &mut rng);
        let mut x = Tensor::randn([4, 10], &mut rng);
        for (r, s) in [5.0f32, 0.1, 1.0, 80.0].iter().enumerate() {
            for v in &mut x.as_mut_slice()[r * 10..(r + 1) * 10] {
                *v *= s;
            }
        }
        for mode in [ExecMode::FakeQuant, ExecMode::NativeInt] {
            let exec = QuantExecutor::new(BlockPrecision::uniform(QuantFormat::int8()))
                .with_mode(mode)
                .with_batched(true);
            let batched = exec.linear_forward(&lin, &x).unwrap();
            for r in 0..4 {
                let row =
                    Tensor::from_vec(x.as_slice()[r * 10..(r + 1) * 10].to_vec(), [1, 10]).unwrap();
                let single = exec.with_batched(false).linear_forward(&lin, &row).unwrap();
                for (a, b) in batched.as_slice()[r * 6..(r + 1) * 6]
                    .iter()
                    .zip(single.as_slice())
                {
                    assert_eq!(a.to_bits(), b.to_bits(), "{mode:?} row {r}");
                }
            }
        }
    }

    #[test]
    fn varying_batch_sizes_across_calls_carry_no_state() {
        // Continuous-batching audit: the scheduler re-packs its in-flight
        // batch at every step boundary, so one executor sees a different
        // batch size on every call (grow, shrink, down to 1). Nothing in
        // the conv/linear batched paths may key state on a previous call's
        // batch size — every call must match the per-request reference.
        use sqdm_quant::ExecMode;
        let mut rng = Rng::seed_from(24);
        let mut conv = Conv2d::new(2, 3, 3, Conv2dGeometry::same(3), &mut rng);
        conv.bias.value = Tensor::randn([3], &mut rng);
        let stride = 2 * 5 * 5;
        for mode in [ExecMode::FakeQuant, ExecMode::NativeInt] {
            let exec = QuantExecutor::new(BlockPrecision::uniform(QuantFormat::int8()))
                .with_mode(mode)
                .with_batched(true);
            // The same executor value drives batch sizes 3 → 1 → 4 → 2.
            for (call, n) in [3usize, 1, 4, 2].into_iter().enumerate() {
                let mut x = Tensor::randn([n, 2, 5, 5], &mut rng);
                for nn in 0..n {
                    let s = 0.05 + 13.0 * (call + nn) as f32;
                    for v in &mut x.as_mut_slice()[nn * stride..(nn + 1) * stride] {
                        *v *= s;
                    }
                }
                let batched = exec.conv_forward(&conv, &x).unwrap();
                for nn in 0..n {
                    let single = exec
                        .with_batched(false)
                        .conv_forward(&conv, &sample_of(&x, nn))
                        .unwrap();
                    let per = single.len();
                    for (a, b) in batched.as_slice()[nn * per..(nn + 1) * per]
                        .iter()
                        .zip(single.as_slice())
                    {
                        assert_eq!(a.to_bits(), b.to_bits(), "{mode:?} call {call} sample {nn}");
                    }
                }
            }
        }
    }

    #[test]
    fn batching_actually_changes_shared_grid_results() {
        // Sanity check that the per-request contract is load-bearing: with
        // wildly different sample magnitudes, a batch-wide activation grid
        // (the non-batched executor) disagrees with per-request grids.
        let mut rng = Rng::seed_from(23);
        let conv = Conv2d::new(2, 2, 3, Conv2dGeometry::same(3), &mut rng);
        let mut x = Tensor::randn([2, 2, 5, 5], &mut rng);
        for v in &mut x.as_mut_slice()[..2 * 5 * 5] {
            *v *= 50.0;
        }
        let exec = QuantExecutor::new(BlockPrecision::uniform(QuantFormat::int8()));
        let shared = exec.conv_forward(&conv, &x).unwrap();
        let per_request = exec.with_batched(true).conv_forward(&conv, &x).unwrap();
        assert!(shared.mse(&per_request).unwrap() > 0.0);
    }

    #[test]
    fn cached_forwards_build_packs_once_and_match_uncached_bitwise() {
        use crate::layers::SelfAttention2d;
        use crate::PackCache;
        use sqdm_quant::ExecMode;
        let mut rng = Rng::seed_from(31);
        let mut conv = Conv2d::new(3, 4, 3, Conv2dGeometry::same(3), &mut rng);
        conv.bias.value = Tensor::randn([4], &mut rng);
        let mut lin = Linear::new(12, 5, &mut rng);
        lin.bias.value = Tensor::randn([5], &mut rng);
        let attn = SelfAttention2d::new(8, &mut rng);
        let xc = Tensor::randn([2, 3, 6, 6], &mut rng);
        let xl = Tensor::randn([3, 12], &mut rng);
        let xa = Tensor::randn([2, 8, 4, 4], &mut rng);
        for mode in [ExecMode::FakeQuant, ExecMode::NativeInt] {
            for batched in [false, true] {
                let exec = QuantExecutor::new(BlockPrecision::uniform(QuantFormat::int8()))
                    .with_mode(mode)
                    .with_batched(batched);
                let cache = PackCache::new();
                for round in 0..3 {
                    let c = exec.conv_forward_cached(&conv, &xc, Some(&cache)).unwrap();
                    let l = exec.linear_forward_cached(&lin, &xl, Some(&cache)).unwrap();
                    let a = exec
                        .attention_forward_cached(&attn, &xa, Some(&cache))
                        .unwrap();
                    assert_eq!(c, exec.conv_forward(&conv, &xc).unwrap(), "{mode:?} conv");
                    assert_eq!(l, exec.linear_forward(&lin, &xl).unwrap(), "{mode:?} lin");
                    assert_eq!(
                        a,
                        exec.attention_forward(&attn, &xa).unwrap(),
                        "{mode:?} attn"
                    );
                    // conv + linear + q/k/v/out: exactly 6 packs, built on
                    // round 0 and never again.
                    assert_eq!(cache.builds(), 6, "{mode:?} round {round}");
                }
            }
        }
    }

    #[test]
    fn linear_path_quantizes() {
        let mut rng = Rng::seed_from(3);
        let mut lin = Linear::new(8, 8, &mut rng);
        let x = Tensor::randn([2, 8], &mut rng);
        let exact = lin.forward(&x, false).unwrap();
        let q = QuantExecutor::new(BlockPrecision::uniform(QuantFormat::int4()))
            .linear_forward(&lin, &x)
            .unwrap();
        assert_eq!(q.dims(), exact.dims());
        assert!(exact.mse(&q).unwrap() > 0.0); // it actually quantized
    }
}
