//! Quantized inference execution.
//!
//! A [`QuantExecutor`] wraps a [`BlockPrecision`] plus an [`ExecMode`] and
//! executes layers either by **fake quantization** — weights and input
//! activations passed through quantize→dequantize, the standard
//! methodology for evaluating post-training quantization quality in a
//! floating-point pipeline (paper §II-A, §III-A) — or **natively** on the
//! integer engine ([`crate::native`]): i8 codes, exact i32 accumulation,
//! requantized epilogue. Native execution falls back to fake quantization
//! for precisions the engine does not support (FP16 slots, >8-bit grids).

use crate::error::Result;
use crate::layers::{AttnProjection, Conv2d, Linear, SelfAttention2d};
use crate::native;
use serde::{Deserialize, Serialize};
use sqdm_quant::{fake_quant, BlockPrecision, ChannelLayout, ExecMode, Granularity, QuantFormat};
use sqdm_tensor::ops::matmul_a_bt;
use sqdm_tensor::Tensor;

/// Adapts a format for *activation* quantization.
///
/// Coarse formats calibrate weights per output channel, but activations get
/// a single per-tensor scale: a per-input-channel activation scale cannot be
/// folded out of an integer dot product over channels, so real INT8/INT4
/// deployments (and the paper's Table I baselines) scale activations per
/// tensor. Fine-grained block formats (MXINT8, VSQ, ours) rescale per block
/// in hardware and keep their granularity.
fn activation_format(fmt: QuantFormat) -> QuantFormat {
    match fmt.granularity {
        Granularity::PerChannel => QuantFormat {
            granularity: Granularity::PerTensor,
            ..fmt
        },
        _ => fmt,
    }
}

/// Executes layers under a given block precision and execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantExecutor {
    /// Precision applied to this block's weights and activations.
    pub precision: BlockPrecision,
    /// Whether layers run fake-quantized (f32) or on the integer engine.
    pub mode: ExecMode,
}

impl QuantExecutor {
    /// An executor that quantizes nothing (FP16/FP32 reference path).
    pub fn full_precision() -> Self {
        QuantExecutor {
            precision: BlockPrecision::FP16,
            mode: ExecMode::FakeQuant,
        }
    }

    /// Creates a fake-quantizing executor for a block precision.
    pub fn new(precision: BlockPrecision) -> Self {
        QuantExecutor {
            precision,
            mode: ExecMode::FakeQuant,
        }
    }

    /// This executor with the given execution mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// A variant of this executor whose activation format is signed —
    /// for layers inside an unsigned (post-ReLU) block that consume signed
    /// tensors: residual skip convolutions and embedding projections.
    pub fn signed_activations(&self) -> Self {
        QuantExecutor {
            precision: BlockPrecision {
                weights: self.precision.weights,
                activations: self.precision.activations.map(|f| f.as_signed()),
            },
            mode: self.mode,
        }
    }

    /// True when this layer call should run on the integer engine.
    fn native(&self) -> bool {
        self.mode == ExecMode::NativeInt && native::supports(&self.precision)
    }

    /// Quantize-dequantizes an activation tensor (`[N, C, H, W]` layout)
    /// according to the block's activation format.
    ///
    /// # Errors
    ///
    /// Propagates quantizer layout errors.
    pub fn quant_activation(&self, x: &Tensor) -> Result<Tensor> {
        match self.precision.activations {
            None => Ok(x.clone()),
            Some(fmt) => Ok(fake_quant(
                x,
                activation_format(fmt),
                ChannelLayout::ACTIVATION,
            )?),
        }
    }

    /// Quantize-dequantizes a rank-2 activation (`[batch, features]`),
    /// treating features as the channel axis.
    ///
    /// # Errors
    ///
    /// Propagates quantizer layout errors.
    pub fn quant_activation_2d(&self, x: &Tensor) -> Result<Tensor> {
        match self.precision.activations {
            None => Ok(x.clone()),
            Some(fmt) => Ok(fake_quant(
                x,
                activation_format(fmt),
                ChannelLayout { axis: 0 },
            )?),
        }
    }

    /// Quantize-dequantizes a weight tensor according to the block's weight
    /// format (per output channel).
    ///
    /// # Errors
    ///
    /// Propagates quantizer layout errors.
    pub fn quant_weight(&self, w: &Tensor) -> Result<Tensor> {
        match self.precision.weights {
            None => Ok(w.clone()),
            Some(fmt) => Ok(fake_quant(w, fmt, ChannelLayout::WEIGHT)?),
        }
    }

    /// Runs a convolution under this executor's mode: fake-quantized, or
    /// natively on the integer engine when the precision supports it.
    ///
    /// # Errors
    ///
    /// Propagates quantizer and convolution errors.
    pub fn conv_forward(&self, conv: &Conv2d, x: &Tensor) -> Result<Tensor> {
        if self.native() {
            return native::conv_forward(conv, x, &self.precision);
        }
        let xq = self.quant_activation(x)?;
        let wq = self.quant_weight(&conv.weight.value)?;
        conv.forward_with_weight(&xq, &wq)
    }

    /// Runs a linear layer under this executor's mode: fake-quantized, or
    /// natively on the integer engine when the precision supports it.
    ///
    /// # Errors
    ///
    /// Propagates quantizer and matmul errors.
    pub fn linear_forward(&self, lin: &Linear, x: &Tensor) -> Result<Tensor> {
        if self.native() {
            return native::linear_forward(lin, x, &self.precision);
        }
        let xq = self.quant_activation_2d(x)?;
        let wq = self.quant_weight(&lin.weight.value)?;
        lin.forward_with_weight(&xq, &wq)
    }

    /// Runs a self-attention block with quantized q/k/v/out projections
    /// (the attention math itself — scores, softmax, the value mix — stays
    /// in f32, as on real accelerators where only the projections are
    /// GEMMs worth quantizing).
    ///
    /// Under [`BlockPrecision::FP16`] this is bitwise identical to the
    /// layer's plain inference forward.
    ///
    /// # Errors
    ///
    /// Propagates quantizer and matmul errors.
    pub fn attention_forward(&self, attn: &SelfAttention2d, x: &Tensor) -> Result<Tensor> {
        // Quantize each projection weight once per forward (the projector
        // runs once per batch element per projection), and each input
        // once: per batch element the projector is called in Q, K, V,
        // Output order with Q/K/V sharing one input, so the input is
        // quantized at Query and reused for Key/Value; Output consumes a
        // different tensor and quantizes fresh.
        if self.native() {
            let prepared = AttnProjection::ALL
                .iter()
                .map(|&w| native::PreparedWeight::new(attn.projection_weight(w), &self.precision))
                .collect::<Result<Vec<_>>>()?;
            let mut qkv_input: Option<native::QuantizedActivation> = None;
            return attn.forward_with_projector(x, &mut |xs, which| {
                let pw = &prepared[which.index()];
                match which {
                    AttnProjection::Output => pw.project_prepared(&pw.prepare_input(xs)?),
                    AttnProjection::Query => {
                        let qa = pw.prepare_input(xs)?;
                        let y = pw.project_prepared(&qa);
                        qkv_input = Some(qa);
                        y
                    }
                    AttnProjection::Key | AttnProjection::Value => {
                        pw.project_prepared(qkv_input.as_ref().expect("Query projected first"))
                    }
                }
            });
        }
        let quantized = AttnProjection::ALL
            .iter()
            .map(|&w| self.quant_weight(attn.projection_weight(w)))
            .collect::<Result<Vec<_>>>()?;
        let mut qkv_input: Option<Tensor> = None;
        attn.forward_with_projector(x, &mut |xs, which| {
            let xq = match which {
                AttnProjection::Output => self.quant_activation_2d(xs)?,
                AttnProjection::Query => {
                    let xq = self.quant_activation_2d(xs)?;
                    qkv_input = Some(xq.clone());
                    xq
                }
                AttnProjection::Key | AttnProjection::Value => {
                    qkv_input.as_ref().expect("Query projected first").clone()
                }
            };
            Ok(matmul_a_bt(&xq, &quantized[which.index()])?)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_quant::QuantFormat;
    use sqdm_tensor::ops::Conv2dGeometry;
    use sqdm_tensor::Rng;

    #[test]
    fn full_precision_is_exact() {
        let mut rng = Rng::seed_from(1);
        let mut conv = Conv2d::new(2, 3, 3, Conv2dGeometry::same(3), &mut rng);
        let x = Tensor::randn([1, 2, 6, 6], &mut rng);
        let exact = conv.forward(&x, false).unwrap();
        let execd = QuantExecutor::full_precision()
            .conv_forward(&conv, &x)
            .unwrap();
        assert_eq!(exact, execd);
    }

    #[test]
    fn mxint8_is_close_int4_is_coarser() {
        let mut rng = Rng::seed_from(2);
        let mut conv = Conv2d::new(4, 4, 3, Conv2dGeometry::same(3), &mut rng);
        let x = Tensor::randn([1, 4, 8, 8], &mut rng);
        let exact = conv.forward(&x, false).unwrap();
        let e8 = QuantExecutor::new(BlockPrecision::uniform(QuantFormat::mxint8()))
            .conv_forward(&conv, &x)
            .unwrap();
        let e4 = QuantExecutor::new(BlockPrecision::uniform(QuantFormat::int4()))
            .conv_forward(&conv, &x)
            .unwrap();
        let err8 = exact.mse(&e8).unwrap();
        let err4 = exact.mse(&e4).unwrap();
        assert!(err8 < err4, "mxint8 {err8} should beat int4 {err4}");
        assert!(err8 < 1e-3, "mxint8 error {err8}");
    }

    #[test]
    fn linear_path_quantizes() {
        let mut rng = Rng::seed_from(3);
        let mut lin = Linear::new(8, 8, &mut rng);
        let x = Tensor::randn([2, 8], &mut rng);
        let exact = lin.forward(&x, false).unwrap();
        let q = QuantExecutor::new(BlockPrecision::uniform(QuantFormat::int4()))
            .linear_forward(&lin, &x)
            .unwrap();
        assert_eq!(q.dims(), exact.dims());
        assert!(exact.mse(&q).unwrap() > 0.0); // it actually quantized
    }
}
