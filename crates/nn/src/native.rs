//! Native integer layer execution.
//!
//! Quantizes layer operands to ≤8-bit integer codes and runs the
//! `sqdm_tensor::ops::int` kernels — i8 multiply, exact i32 accumulation,
//! one requantization per scale block — instead of simulating quantization
//! in f32. This is the compute model the paper's accelerator executes; the
//! fake-quant path in [`crate::QuantExecutor`] remains the evaluation
//! reference.
//!
//! # Engine contract
//!
//! * **Weights** keep their format's granularity: per-tensor, per-channel,
//!   or per-block — weight scale blocks tile the GEMM reduction dimension,
//!   so blocked formats (MXINT8, INT4-FP8S) execute exactly.
//! * **Activations** get one per-tensor scale (zero point 0 — the
//!   workspace's grids are symmetric). Per-channel activation scales
//!   cannot be folded out of an integer dot product over channels, and
//!   per-block activation scales would need requantization inside im2col;
//!   real INT deployments — and the paper's Table I baselines — scale
//!   activations per tensor for exactly this reason. For formats whose
//!   fake-quant path also uses per-tensor activations (INT8, INT4), the
//!   two paths agree to accumulation rounding; for block-scaled
//!   activation formats the engine is a per-tensor approximation.
//! * **Supported precisions**: both weight and activation formats present
//!   with codes that fit i8. Anything else (FP16 slots, 16-bit surrogate
//!   grids) falls back to fake-quant at the call site.

use crate::error::Result;
use crate::layers::{Conv2d, Linear};
use sqdm_quant::{BlockPrecision, ChannelLayout, Granularity, QuantFormat, QuantizedTensor};
use sqdm_tensor::arena;
use sqdm_tensor::ops::int::{
    conv2d_i8_multi, conv2d_i8_packed_delta_multi, conv2d_i8_packed_multi, qgemm, qgemm_multi,
    qgemm_packed, qgemm_packed_multi, transpose_i8, ConvDeltaState, PackedQuantizedMatrix,
    QuantizedMatrix, XQuant,
};
use sqdm_tensor::ops::transpose;
use sqdm_tensor::Tensor;

/// Whether the integer engine can execute a block precision: both formats
/// must be present and their code grids must fit an i8 datapath.
pub fn supports(p: &BlockPrecision) -> bool {
    let fits = |f: &QuantFormat| f.grid.qmax() <= i8::MAX as i32 && f.grid.qmin() >= i8::MIN as i32;
    matches!((&p.weights, &p.activations), (Some(w), Some(a)) if fits(w) && fits(a))
}

/// Quantizes an activation tensor to per-tensor i8 codes.
///
/// The format's grid and scale encoding are honored; its granularity is
/// coerced to per-tensor (see the module contract). Encodes straight into
/// a pooled `Vec<i8>` — bitwise identical to the `QuantizedTensor`
/// per-tensor path (same abs-max scale, same grid rounding), but with no
/// i16 intermediate, so the serving hot loop stays allocation-free once
/// the arena is warm.
fn quantize_activation(x: &Tensor, fmt: QuantFormat) -> Result<(Vec<i8>, XQuant)> {
    let raw = x.abs_max() / fmt.grid.qmax() as f32;
    let s = fmt.scale_encoding.encode(raw);
    let mut codes = arena::take::<i8>(x.len());
    codes.extend(x.as_slice().iter().map(|&v| fmt.grid.encode(v, s) as i8));
    Ok((codes, XQuant::symmetric(s)))
}

/// Quantizes a weight tensor (channel axis 0) into the GEMM operand:
/// `[out, reduction]` codes with the format's scale blocks tiling the
/// reduction dimension.
fn quantize_weight(w: &Tensor, fmt: QuantFormat) -> Result<QuantizedMatrix> {
    let q = QuantizedTensor::quantize(w, fmt, ChannelLayout::WEIGHT)?;
    let rows = w.dims()[0];
    let cols = w.len() / rows.max(1);
    let codes: Vec<i8> = q.codes().iter().map(|&c| c as i8).collect();
    let qm = match fmt.granularity {
        // One scale for the whole tensor: replicate per row.
        Granularity::PerTensor => {
            QuantizedMatrix::per_channel(codes, rows, cols, vec![q.scales()[0]; rows])
        }
        // QuantizedTensor's slice = one output channel = one GEMM row, so
        // its scale layout is already `[rows, blocks_per_row]`.
        Granularity::PerChannel | Granularity::PerBlock(_) => {
            QuantizedMatrix::new(codes, rows, cols, q.scales().to_vec(), q.block_len())
        }
    };
    Ok(qm?)
}

/// Runs a convolution on the integer engine.
///
/// # Errors
///
/// Propagates quantizer layout errors and kernel shape errors.
pub fn conv_forward(conv: &Conv2d, x: &Tensor, p: &BlockPrecision) -> Result<Tensor> {
    debug_assert!(supports(p));
    let (wfmt, afmt) = (
        p.weights.expect("supports"),
        p.activations.expect("supports"),
    );
    let (n, c, h, w) = x.shape().as_nchw()?;
    let (xcodes, xq) = quantize_activation(x, afmt)?;
    let wq = quantize_weight(&conv.weight.value, wfmt)?;
    let kh = conv.weight.value.dims()[2];
    let kw = conv.weight.value.dims()[3];
    let mut xqs = arena::take::<XQuant>(n);
    xqs.resize(n, xq);
    let y = conv2d_i8_multi(
        &xcodes,
        n,
        c,
        h,
        w,
        &wq,
        kh,
        kw,
        Some(conv.bias.value.as_slice()),
        conv.geometry(),
        &xqs,
    )?;
    arena::recycle(xqs);
    arena::recycle(xcodes);
    Ok(y)
}

/// [`conv_forward`] on a cached [`PreparedWeight`]: the weight
/// quantization and kernel pack are reused across calls instead of
/// rebuilt. Bitwise identical to [`conv_forward`] under the prepared
/// weight's precision.
///
/// # Errors
///
/// Propagates quantizer layout errors and kernel shape errors.
pub fn conv_forward_prepared(conv: &Conv2d, x: &Tensor, pw: &PreparedWeight) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    let (xcodes, xq) = quantize_activation(x, pw.afmt)?;
    let kh = conv.weight.value.dims()[2];
    let kw = conv.weight.value.dims()[3];
    let mut xqs = arena::take::<XQuant>(n);
    xqs.resize(n, xq);
    let y = conv2d_i8_packed_multi(
        &pw.wq,
        &xcodes,
        n,
        c,
        h,
        w,
        kh,
        kw,
        Some(conv.bias.value.as_slice()),
        conv.geometry(),
        &xqs,
    )?;
    arena::recycle(xqs);
    arena::recycle(xcodes);
    Ok(y)
}

/// [`conv_forward_prepared`] through the temporal-delta kernel: only
/// reduction rows whose input codes changed since the previous call are
/// recomputed (see `sqdm_tensor::ops::int::conv2d_i8_packed_delta_multi`).
///
/// `changed_channels` holds one flag per `(batch-element, input-channel)`
/// and is unioned with the exact code difference inside the kernel, so an
/// under-reporting change mask cannot corrupt the result. The first call
/// through a fresh [`ConvDeltaState`], and any call whose activation
/// scale or geometry differs from the carried step, runs dense.
///
/// # Errors
///
/// Propagates quantizer layout errors and kernel shape errors.
pub fn conv_forward_delta_prepared(
    conv: &Conv2d,
    x: &Tensor,
    pw: &PreparedWeight,
    changed_channels: &[bool],
    state: &mut ConvDeltaState,
    dense_threshold: f32,
) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    // Sticky static-calibration grid: while the activation range stays
    // within [scale/2, scale] of the carried step's grid, re-quantize on
    // that same grid — consecutive steps then share one scale, the
    // code-space delta is meaningful, and the sparse carry engages. When
    // the range grows past the carried scale (would clip) or shrinks by
    // more than 2× (would waste a precision bit), re-calibrate fresh,
    // which forces one dense refresh inside the kernel.
    let raw = x.abs_max() / pw.afmt.grid.qmax() as f32;
    let xq = match state.carried_xq() {
        Some(prev) if prev.zero_point == 0 && raw <= prev.scale && prev.scale <= 2.0 * raw => prev,
        _ => XQuant::symmetric(pw.afmt.scale_encoding.encode(raw)),
    };
    let mut xcodes = arena::take::<i8>(x.len());
    xcodes.extend(
        x.as_slice()
            .iter()
            .map(|&v| pw.afmt.grid.encode(v, xq.scale) as i8),
    );
    let kh = conv.weight.value.dims()[2];
    let kw = conv.weight.value.dims()[3];
    let mut xqs = arena::take::<XQuant>(n);
    xqs.resize(n, xq);
    let y = conv2d_i8_packed_delta_multi(
        &pw.wq,
        &xcodes,
        n,
        c,
        h,
        w,
        kh,
        kw,
        Some(conv.bias.value.as_slice()),
        conv.geometry(),
        &xqs,
        changed_channels,
        state,
        dense_threshold,
    )?;
    arena::recycle(xqs);
    arena::recycle(xcodes);
    Ok(y)
}

/// Runs a convolution on the integer engine with **per-request**
/// activation quantization: each element of the batch axis is quantized
/// with its own per-tensor scale, while the weight is quantized once for
/// the whole batch.
///
/// This is the batched-serving entry point. Bitwise identical to calling
/// [`conv_forward`] on each `[1, C, H, W]` sample separately — packing
/// requests into one batch must not let one request's activation range
/// perturb another's quantization grid.
///
/// # Errors
///
/// Propagates quantizer layout errors and kernel shape errors.
pub fn conv_forward_batch(conv: &Conv2d, x: &Tensor, p: &BlockPrecision) -> Result<Tensor> {
    debug_assert!(supports(p));
    let (wfmt, afmt) = (
        p.weights.expect("supports"),
        p.activations.expect("supports"),
    );
    let (n, c, h, w) = x.shape().as_nchw()?;
    let (codes, xqs) = quantize_activation_per_sample(x, n, c * h * w, afmt)?;
    let wq = quantize_weight(&conv.weight.value, wfmt)?;
    let kh = conv.weight.value.dims()[2];
    let kw = conv.weight.value.dims()[3];
    let y = conv2d_i8_multi(
        &codes,
        n,
        c,
        h,
        w,
        &wq,
        kh,
        kw,
        Some(conv.bias.value.as_slice()),
        conv.geometry(),
        &xqs,
    )?;
    arena::recycle(codes);
    arena::recycle(xqs);
    Ok(y)
}

/// [`conv_forward_batch`] on a cached [`PreparedWeight`]: per-request
/// activation grids, shared immutable weight pack. Bitwise identical to
/// [`conv_forward_batch`] under the prepared weight's precision.
///
/// # Errors
///
/// Propagates quantizer layout errors and kernel shape errors.
pub fn conv_forward_batch_prepared(
    conv: &Conv2d,
    x: &Tensor,
    pw: &PreparedWeight,
) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    let (codes, xqs) = quantize_activation_per_sample(x, n, c * h * w, pw.afmt)?;
    let kh = conv.weight.value.dims()[2];
    let kw = conv.weight.value.dims()[3];
    let y = conv2d_i8_packed_multi(
        &pw.wq,
        &codes,
        n,
        c,
        h,
        w,
        kh,
        kw,
        Some(conv.bias.value.as_slice()),
        conv.geometry(),
        &xqs,
    )?;
    arena::recycle(codes);
    arena::recycle(xqs);
    Ok(y)
}

/// Quantizes each sample of an `[N, ...]` batch independently (one
/// per-tensor grid per sample), writing codes contiguously. Shared by the
/// batched conv entries; scratch comes from the arena.
fn quantize_activation_per_sample(
    x: &Tensor,
    n: usize,
    stride: usize,
    afmt: QuantFormat,
) -> Result<(Vec<i8>, Vec<XQuant>)> {
    let mut codes = arena::take_zeroed::<i8>(x.len());
    let mut xqs = arena::take::<XQuant>(n);
    for nn in 0..n {
        let sample = x.batch_sample(nn)?;
        let (sc, sq) = quantize_activation(&sample, afmt)?;
        codes[nn * stride..(nn + 1) * stride].copy_from_slice(&sc);
        arena::recycle(sc);
        xqs.push(sq);
    }
    Ok((codes, xqs))
}

/// Runs a linear layer on the integer engine with **per-request** (per
/// input row) activation quantization and one shared weight pack.
///
/// Bitwise identical to calling [`linear_forward`] on each `[1, in]` row
/// separately, for the same reason as [`conv_forward_batch`].
///
/// # Errors
///
/// Propagates quantizer layout errors and kernel shape errors.
pub fn linear_forward_batch(lin: &Linear, x: &Tensor, p: &BlockPrecision) -> Result<Tensor> {
    debug_assert!(supports(p));
    let (wfmt, afmt) = (
        p.weights.expect("supports"),
        p.activations.expect("supports"),
    );
    let wq = quantize_weight(&lin.weight.value, wfmt)?;
    linear_batch_core(lin, x, afmt, wq.rows(), &|xt, xqs, yt| {
        qgemm_multi(&wq, xt, 1, xqs, yt)
    })
}

/// [`linear_forward_batch`] on a cached [`PreparedWeight`]: per-request
/// activation grids, shared immutable weight pack. Bitwise identical to
/// [`linear_forward_batch`] under the prepared weight's precision.
///
/// # Errors
///
/// Propagates quantizer layout errors and kernel shape errors.
pub fn linear_forward_batch_prepared(
    lin: &Linear,
    x: &Tensor,
    pw: &PreparedWeight,
) -> Result<Tensor> {
    let rows = pw.wq.matrix().rows();
    linear_batch_core(lin, x, pw.afmt, rows, &|xt, xqs, yt| {
        qgemm_packed_multi(&pw.wq, xt, 1, xqs, yt)
    })
}

/// GEMM stage of [`linear_batch_core`]: `(transposed codes, per-row
/// quantization, product buffer)`.
type LinearGemmStage<'a> = dyn Fn(&[i8], &[XQuant], &mut [f32]) -> sqdm_tensor::Result<()> + 'a;

/// Shared body of the batched linear entries: per-row quantization into
/// the transposed `[in, batch]` GEMM layout, the caller-supplied GEMM,
/// transpose back, bias. Scratch comes from the arena.
fn linear_batch_core(
    lin: &Linear,
    x: &Tensor,
    afmt: QuantFormat,
    out_features: usize,
    gemm: &LinearGemmStage<'_>,
) -> Result<Tensor> {
    let (b, f) = (x.dims()[0], x.dims()[1]);
    let xv = x.as_slice();
    // Quantize each request row with its own scale, writing the codes
    // straight into the transposed `[in, batch]` GEMM layout — request
    // `r` becomes column stripe `r` of width 1.
    let mut xt = arena::take_zeroed::<i8>(xv.len());
    let mut xqs = arena::take::<XQuant>(b);
    for r in 0..b {
        let mut row = arena::take::<f32>(f);
        row.extend_from_slice(&xv[r * f..(r + 1) * f]);
        let row = Tensor::from_vec(row, [1, f])?;
        let (rc, rq) = quantize_activation(&row, afmt)?;
        for (ff, &code) in rc.iter().enumerate() {
            xt[ff * b + r] = code;
        }
        arena::recycle(rc);
        xqs.push(rq);
    }
    let mut yt = arena::take_zeroed::<f32>(out_features * b);
    gemm(&xt, &xqs, &mut yt)?;
    arena::recycle(xt);
    arena::recycle(xqs);
    let yt = Tensor::from_vec(yt, [out_features, b])?;
    let mut y = transpose(&yt)?;
    let bias = lin.bias.value.as_slice();
    let yv = y.as_mut_slice();
    for bi in 0..b {
        for j in 0..out_features {
            yv[bi * out_features + j] += bias[j];
        }
    }
    Ok(y)
}

/// Integer GEMM epilogue shared by linear and projection paths:
/// `y = (W · xᵀ)ᵀ` with `x` `[batch, in]` and `W` `[out, in]`.
fn project_codes(
    wq: &QuantizedMatrix,
    xcodes: &[i8],
    batch: usize,
    in_features: usize,
    xq: XQuant,
) -> Result<Tensor> {
    let xt = transpose_i8(xcodes, batch, in_features)?;
    let mut yt = arena::take_zeroed::<f32>(wq.rows() * batch);
    qgemm(wq, &xt, batch, xq, &mut yt)?;
    arena::recycle(xt);
    let yt = Tensor::from_vec(yt, [wq.rows(), batch])?;
    Ok(transpose(&yt)?)
}

/// Runs a linear layer on the integer engine.
///
/// # Errors
///
/// Propagates quantizer layout errors and kernel shape errors.
pub fn linear_forward(lin: &Linear, x: &Tensor, p: &BlockPrecision) -> Result<Tensor> {
    debug_assert!(supports(p));
    let (wfmt, afmt) = (
        p.weights.expect("supports"),
        p.activations.expect("supports"),
    );
    let (xcodes, xq) = quantize_activation(x, afmt)?;
    let wq = quantize_weight(&lin.weight.value, wfmt)?;
    let (b, i) = (x.dims()[0], x.dims()[1]);
    let mut y = project_codes(&wq, &xcodes, b, i, xq)?;
    arena::recycle(xcodes);
    let o = y.dims()[1];
    let bias = lin.bias.value.as_slice();
    let yv = y.as_mut_slice();
    for bi in 0..b {
        for j in 0..o {
            yv[bi * o + j] += bias[j];
        }
    }
    Ok(y)
}

/// [`linear_forward`] on a cached [`PreparedWeight`]: the weight
/// quantization and kernel pack are reused across calls. Bitwise
/// identical to [`linear_forward`] under the prepared weight's precision
/// (the packed and unpacked GEMMs agree bit for bit).
///
/// # Errors
///
/// Propagates quantizer layout errors and kernel shape errors.
pub fn linear_forward_prepared(lin: &Linear, x: &Tensor, pw: &PreparedWeight) -> Result<Tensor> {
    let b = x.dims()[0];
    let mut y = pw.project(x)?;
    let o = y.dims()[1];
    let bias = lin.bias.value.as_slice();
    let yv = y.as_mut_slice();
    for bi in 0..b {
        for j in 0..o {
            yv[bi * o + j] += bias[j];
        }
    }
    Ok(y)
}

/// A weight pre-quantized for repeated projections — lets callers that
/// apply the same weight to many inputs (the attention q/k/v/out
/// projections, once per batch element) pay the weight quantization once.
#[derive(Debug, Clone)]
pub struct PreparedWeight {
    wq: PackedQuantizedMatrix,
    afmt: QuantFormat,
}

impl PreparedWeight {
    /// Quantizes `weight` (`[Cout, C]`, channel axis 0) under the block
    /// precision's weight format and packs it into the cache-blocked
    /// kernel layout, so repeated projections skip the per-call repack.
    ///
    /// # Errors
    ///
    /// Propagates quantizer layout errors.
    pub fn new(weight: &Tensor, p: &BlockPrecision) -> Result<Self> {
        debug_assert!(supports(p));
        Ok(PreparedWeight {
            wq: PackedQuantizedMatrix::pack(quantize_weight(weight, p.weights.expect("supports"))?),
            afmt: p.activations.expect("supports"),
        })
    }

    /// Quantizes a projection input `x` (`[S, C]`) once, for reuse across
    /// every prepared weight of the same block precision (the Q/K/V
    /// projections all consume the same input).
    ///
    /// # Errors
    ///
    /// Propagates quantizer layout errors.
    pub fn prepare_input(&self, x: &Tensor) -> Result<QuantizedActivation> {
        let (codes, xq) = quantize_activation(x, self.afmt)?;
        let xt = transpose_i8(&codes, x.dims()[0], x.dims()[1])?;
        arena::recycle(codes);
        Ok(QuantizedActivation {
            xt,
            batch: x.dims()[0],
            xq,
        })
    }

    /// Runs the bias-free projection `x Wᵀ` on a pre-quantized input.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn project_prepared(&self, qa: &QuantizedActivation) -> Result<Tensor> {
        let rows = self.wq.matrix().rows();
        let mut yt = arena::take_zeroed::<f32>(rows * qa.batch);
        qgemm_packed(&self.wq, &qa.xt, qa.batch, qa.xq, &mut yt)?;
        let yt = Tensor::from_vec(yt, [rows, qa.batch])?;
        Ok(transpose(&yt)?)
    }

    /// The cache-blocked weight pack backing this prepared weight.
    pub fn pack(&self) -> &PackedQuantizedMatrix {
        &self.wq
    }

    /// The activation format inputs are quantized under.
    pub fn activation_format(&self) -> QuantFormat {
        self.afmt
    }

    /// Runs the bias-free projection `x Wᵀ` (`x` `[S, C]`) on the integer
    /// engine.
    ///
    /// # Errors
    ///
    /// Propagates quantizer layout errors and kernel shape errors.
    pub fn project(&self, x: &Tensor) -> Result<Tensor> {
        self.project_prepared(&self.prepare_input(x)?)
    }
}

/// A projection input quantized (and transposed into GEMM layout) once,
/// shared by several [`PreparedWeight::project_prepared`] calls.
#[derive(Debug, Clone)]
pub struct QuantizedActivation {
    /// Transposed codes, `[C, S]` row-major.
    xt: Vec<i8>,
    /// Number of input rows `S`.
    batch: usize,
    xq: XQuant,
}

impl Drop for QuantizedActivation {
    fn drop(&mut self) {
        arena::recycle(std::mem::take(&mut self.xt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_quant::IntGrid;
    use sqdm_tensor::Rng;

    fn pow2_per_channel_int8() -> QuantFormat {
        QuantFormat {
            grid: IntGrid::signed(8),
            granularity: Granularity::PerChannel,
            scale_encoding: sqdm_quant::ScaleEncoding::PowerOfTwo,
            name: "INT8-POW2",
        }
    }

    #[test]
    fn supports_requires_both_i8_formats() {
        assert!(supports(&BlockPrecision::uniform(QuantFormat::int8())));
        assert!(supports(
            &BlockPrecision::uniform(QuantFormat::ours_uint4())
        ));
        assert!(!supports(&BlockPrecision::FP16));
        assert!(!supports(&BlockPrecision::uniform(
            QuantFormat::fp16_surrogate()
        )));
        assert!(!supports(&BlockPrecision {
            weights: Some(QuantFormat::int8()),
            activations: None,
        }));
    }

    #[test]
    fn linear_matches_fake_quant_bitwise_on_pow2_scales() {
        // Power-of-two scales make every fake-quant f32 intermediate exact,
        // so the integer engine must reproduce it bit for bit.
        let mut rng = Rng::seed_from(11);
        let mut lin = Linear::new(12, 5, &mut rng);
        lin.bias.value = Tensor::randn([5], &mut rng);
        let x = Tensor::randn([3, 12], &mut rng);
        let fmt = pow2_per_channel_int8();
        let p = BlockPrecision::uniform(fmt);

        let native = linear_forward(&lin, &x, &p).unwrap();

        // Fake-quant reference with identical granularity: per-tensor
        // activations, per-channel weights.
        let pt = QuantFormat {
            granularity: Granularity::PerTensor,
            ..fmt
        };
        let xq = sqdm_quant::fake_quant(&x, pt, ChannelLayout { axis: 0 }).unwrap();
        let wq = sqdm_quant::fake_quant(&lin.weight.value, fmt, ChannelLayout::WEIGHT).unwrap();
        let fake = lin.forward_with_weight(&xq, &wq).unwrap();
        assert_eq!(native.dims(), fake.dims());
        for (a, b) in native.as_slice().iter().zip(fake.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn conv_matches_fake_quant_bitwise_on_pow2_scales() {
        use sqdm_tensor::ops::Conv2dGeometry;
        let mut rng = Rng::seed_from(12);
        let mut conv = Conv2d::new(3, 4, 3, Conv2dGeometry::same(3), &mut rng);
        conv.bias.value = Tensor::randn([4], &mut rng);
        let x = Tensor::randn([2, 3, 6, 6], &mut rng);
        let fmt = pow2_per_channel_int8();
        let p = BlockPrecision::uniform(fmt);

        let native = conv_forward(&conv, &x, &p).unwrap();

        let pt = QuantFormat {
            granularity: Granularity::PerTensor,
            ..fmt
        };
        let xq = sqdm_quant::fake_quant(&x, pt, ChannelLayout::ACTIVATION).unwrap();
        let wq = sqdm_quant::fake_quant(&conv.weight.value, fmt, ChannelLayout::WEIGHT).unwrap();
        let fake = conv.forward_with_weight(&xq, &wq).unwrap();
        for (a, b) in native.as_slice().iter().zip(fake.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn blocked_weight_format_executes() {
        // MXINT8 weights: 32-element scale blocks along the reduction dim.
        let mut rng = Rng::seed_from(13);
        let lin = Linear::new(80, 6, &mut rng);
        let x = Tensor::randn([2, 80], &mut rng);
        let p = BlockPrecision::uniform(QuantFormat::mxint8());
        let y = linear_forward(&lin, &x, &p).unwrap();
        assert_eq!(y.dims(), &[2, 6]);
        // Sanity: close to the unquantized layer at 8 bits.
        let mut lref = lin.clone();
        let exact = lref.forward(&x, false).unwrap();
        assert!(exact.mse(&y).unwrap() < 1e-3);
    }
}
