//! Shared weight-pack cache for multi-tenant serving.
//!
//! Quantizing and cache-block-packing a weight is pure — it depends only
//! on the weight values and the block precision — yet the hot paths used
//! to redo it on every layer call (worst of all the attention q/k/v/out
//! projections, rebuilt once per forward). A [`PackCache`] memoizes the
//! two artifacts an executor derives from a weight:
//!
//! * **native**: the [`PreparedWeight`] (i8 codes + cache-blocked kernel
//!   pack + activation format) consumed by the integer engine, and
//! * **fake**: the quantize→dequantized f32 weight tensor consumed by the
//!   fake-quant path,
//!
//! keyed on the weight's buffer identity. A cache belongs to **one
//! resident model**: entries are keyed by the weight buffer's address and
//! length, which is stable exactly as long as the model's parameters are
//! neither mutated nor reallocated. The registry
//! (`sqdm_edm::registry`) owns one cache per resident model for this
//! reason; solo sampling creates a short-lived cache per `sample()` call
//! so the ~50 denoiser forwards of one trajectory share packs without any
//! cross-model aliasing risk.
//!
//! Cached packs are shared as [`Arc`]s and never rebuilt: the
//! [`PackCache::builds`] counter counts actual constructions, which the
//! bench harness pins to "exactly once per (model, weight, grid)" under
//! multi-request serving.

use crate::error::Result;
use crate::native::PreparedWeight;
use sqdm_quant::BlockPrecision;
use sqdm_tensor::Tensor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of a weight buffer: base address + element count. Stable while
/// the owning model is resident and unmutated (the cache's contract).
type WeightId = (usize, usize);

/// Native-engine key: weight identity plus the activation grid's code
/// range. The same weight is packed once per activation signedness — an
/// unsigned (post-ReLU) block and its signed residual/embedding consumers
/// ([`crate::QuantExecutor::signed_activations`]) quantize activations on
/// different grids and so need distinct [`PreparedWeight`]s.
type NativeKey = (usize, usize, i32, i32);

fn weight_id(w: &Tensor) -> WeightId {
    (w.as_slice().as_ptr() as usize, w.len())
}

/// Memoizes per-weight quantization artifacts for one resident model.
///
/// Thread-safe: lookups lock a [`Mutex`] briefly and hand out [`Arc`]
/// clones, so concurrent denoiser forwards (batched serving across worker
/// threads) share one immutable pack per weight.
#[derive(Debug, Default)]
pub struct PackCache {
    native: Mutex<HashMap<NativeKey, Arc<PreparedWeight>>>,
    fake: Mutex<HashMap<WeightId, Arc<Tensor>>>,
    builds: AtomicUsize,
}

impl PackCache {
    /// An empty cache.
    pub fn new() -> Self {
        PackCache::default()
    }

    /// How many packs this cache has actually constructed (cache misses).
    /// Steady-state serving must not grow this: every weight of a resident
    /// model is built at most once per activation-grid variant.
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// The integer-engine pack for `weight` under block precision `p`,
    /// building it on first use. Subsequent calls with the same weight
    /// buffer and activation grid return the same [`Arc`].
    ///
    /// # Errors
    ///
    /// Propagates quantizer layout errors from the first (building) call.
    pub fn native_pack(&self, weight: &Tensor, p: &BlockPrecision) -> Result<Arc<PreparedWeight>> {
        let (wp, wl) = weight_id(weight);
        let (qmin, qmax) = p
            .activations
            .map(|f| (f.grid.qmin(), f.grid.qmax()))
            .unwrap_or((0, 0));
        let key = (wp, wl, qmin, qmax);
        let mut map = self.native.lock().expect("PackCache lock");
        if let Some(pw) = map.get(&key) {
            return Ok(Arc::clone(pw));
        }
        let pw = Arc::new(PreparedWeight::new(weight, p)?);
        self.builds.fetch_add(1, Ordering::Relaxed);
        map.insert(key, Arc::clone(&pw));
        Ok(pw)
    }

    /// The fake-quantized weight tensor for `weight`, building it with
    /// `build` on first use. The fake-quant artifact depends only on the
    /// weight format, which is fixed per layer, so the key is the weight
    /// identity alone.
    ///
    /// # Errors
    ///
    /// Propagates errors from the first (building) call of `build`.
    pub fn fake_weight(
        &self,
        weight: &Tensor,
        build: impl FnOnce() -> Result<Tensor>,
    ) -> Result<Arc<Tensor>> {
        let key = weight_id(weight);
        let mut map = self.fake.lock().expect("PackCache lock");
        if let Some(t) = map.get(&key) {
            return Ok(Arc::clone(t));
        }
        let t = Arc::new(build()?);
        self.builds.fetch_add(1, Ordering::Relaxed);
        map.insert(key, Arc::clone(&t));
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_quant::QuantFormat;
    use sqdm_tensor::Rng;

    #[test]
    fn native_pack_builds_once_per_weight_and_grid() {
        let mut rng = Rng::seed_from(5);
        let w = Tensor::randn([6, 8], &mut rng);
        // An unsigned activation grid, so the signed variant below is a
        // genuinely different quantization artifact.
        let p = BlockPrecision::uniform(QuantFormat::ours_uint4());
        let cache = PackCache::new();
        let a = cache.native_pack(&w, &p).unwrap();
        let b = cache.native_pack(&w, &p).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.builds(), 1);
        // A different activation signedness is a distinct artifact.
        let signed = BlockPrecision {
            weights: p.weights,
            activations: p.activations.map(|f| f.as_signed()),
        };
        let c = cache.native_pack(&w, &signed).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.builds(), 2);
    }

    #[test]
    fn fake_weight_builds_once() {
        let mut rng = Rng::seed_from(6);
        let w = Tensor::randn([4, 4], &mut rng);
        let cache = PackCache::new();
        let mut calls = 0usize;
        for _ in 0..3 {
            let got = cache
                .fake_weight(&w, || {
                    calls += 1;
                    Ok(w.clone())
                })
                .unwrap();
            assert_eq!(got.as_slice(), w.as_slice());
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.builds(), 1);
    }

    #[test]
    fn distinct_weights_get_distinct_entries() {
        let mut rng = Rng::seed_from(7);
        let w1 = Tensor::randn([3, 5], &mut rng);
        let w2 = Tensor::randn([3, 5], &mut rng);
        let p = BlockPrecision::uniform(QuantFormat::int8());
        let cache = PackCache::new();
        cache.native_pack(&w1, &p).unwrap();
        cache.native_pack(&w2, &p).unwrap();
        assert_eq!(cache.builds(), 2);
    }
}
