//! Trainable parameters.

use serde::{Deserialize, Serialize};
use sqdm_tensor::Tensor;

/// A trainable parameter: a value tensor plus its accumulated gradient.
///
/// Layers accumulate into `grad` during their `backward` passes;
/// optimizers consume and reset it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with zero gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.dims());
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_starts_zero_and_resets() {
        let mut p = Param::new(Tensor::ones([2, 3]));
        assert_eq!(p.grad, Tensor::zeros([2, 3]));
        p.grad = Tensor::ones([2, 3]);
        p.zero_grad();
        assert_eq!(p.grad, Tensor::zeros([2, 3]));
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
    }
}
