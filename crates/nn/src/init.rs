//! Weight initialization schemes.

use sqdm_tensor::{Rng, Shape, Tensor};

/// Kaiming (He) normal initialization for layers followed by a ReLU-family
/// non-linearity: `std = sqrt(2 / fan_in)`.
pub fn kaiming_normal(shape: impl Into<Shape>, fan_in: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::randn(shape, rng).scale(std)
}

/// Xavier (Glorot) uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(
    shape: impl Into<Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut Rng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_tensor::stats::Moments;

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = Rng::seed_from(1);
        let w = kaiming_normal([64, 128], 128, &mut rng);
        let m = Moments::of(&w);
        let want = (2.0f64 / 128.0).sqrt();
        assert!((m.std() - want).abs() < 0.02, "std {} want {want}", m.std());
        assert!(m.mean.abs() < 0.01);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = Rng::seed_from(2);
        let w = xavier_uniform([32, 32], 32, 32, &mut rng);
        let a = (6.0f32 / 64.0).sqrt();
        assert!(w.max() <= a && w.min() >= -a);
        assert!(w.max() > 0.8 * a); // actually spans the range
    }
}
