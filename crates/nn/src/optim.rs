//! Optimizers: SGD and Adam.
//!
//! Because the layer structs own their parameters, optimizers are stateless
//! over *which* parameters exist: state is keyed by the order parameters are
//! presented in, which the model keeps stable across steps.

use crate::param::Param;
use serde::{Deserialize, Serialize};
use sqdm_tensor::Tensor;

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step to `params` (ordered) and clears gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.dims()))
                .collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                *v = v.scale(self.momentum);
                v.add_scaled(&p.grad, 1.0).expect("shape stable");
                let upd = v.clone();
                p.value.add_scaled(&upd, -self.lr).expect("shape stable");
            } else {
                let g = p.grad.clone();
                p.value.add_scaled(&g, -self.lr).expect("shape stable");
            }
            p.zero_grad();
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard (0.9, 0.999) betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update step to `params` (ordered) and clears gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.dims()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.value.dims()))
                .collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let g = p.grad.as_slice();
            let m = self.m[i].as_mut_slice();
            let v = self.v[i].as_mut_slice();
            let val = p.value.as_mut_slice();
            for j in 0..g.len() {
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g[j];
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g[j] * g[j];
                let mhat = m[j] / bc1;
                let vhat = v[j] / bc2;
                val[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)² from x = 0 with each optimizer.
    fn run_quadratic(opt: &mut dyn FnMut(&mut [&mut Param])) -> f32 {
        let mut p = Param::new(Tensor::from_slice(&[0.0]));
        for _ in 0..200 {
            let x = p.value.get(&[0]).unwrap();
            p.grad = Tensor::from_slice(&[2.0 * (x - 3.0)]);
            opt(&mut [&mut p]);
        }
        p.value.get(&[0]).unwrap()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1, 0.0);
        let x = run_quadratic(&mut |ps| sgd.step(ps));
        assert!((x - 3.0).abs() < 1e-3, "{x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut sgd = Sgd::new(0.05, 0.9);
        let x = run_quadratic(&mut |ps| sgd.step(ps));
        assert!((x - 3.0).abs() < 1e-2, "{x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.1);
        let x = run_quadratic(&mut |ps| adam.step(ps));
        assert!((x - 3.0).abs() < 0.05, "{x}");
        assert_eq!(adam.steps(), 200);
    }

    #[test]
    fn step_clears_gradients() {
        let mut adam = Adam::new(0.01);
        let mut p = Param::new(Tensor::from_slice(&[1.0]));
        p.grad = Tensor::from_slice(&[5.0]);
        adam.step(&mut [&mut p]);
        assert_eq!(p.grad.as_slice(), &[0.0]);
    }

    #[test]
    fn adam_scale_invariance_of_direction() {
        // Adam normalizes by gradient magnitude: two params with gradients
        // of very different scales move by comparable amounts.
        let mut adam = Adam::new(0.1);
        let mut a = Param::new(Tensor::from_slice(&[0.0]));
        let mut b = Param::new(Tensor::from_slice(&[0.0]));
        a.grad = Tensor::from_slice(&[1000.0]);
        b.grad = Tensor::from_slice(&[0.001]);
        adam.step(&mut [&mut a, &mut b]);
        let da = a.value.get(&[0]).unwrap().abs();
        let db = b.value.get(&[0]).unwrap().abs();
        assert!((da - db).abs() / da.max(db) < 0.01, "{da} vs {db}");
    }
}
