//! # sqdm-nn
//!
//! Neural-network building blocks for the SQ-DM reproduction: convolution,
//! linear, group-norm, activation, pooling and spatial self-attention layers
//! — each with an explicit backward pass — plus SGD/Adam optimizers and a
//! fake-quantized inference executor.
//!
//! There is no autograd tape: every layer caches what its own backward pass
//! needs during a training-mode forward. The `sqdm-edm` crate composes these
//! layers into the EDM U-Net and drives training and sampling.
//!
//! # Examples
//!
//! ```
//! use sqdm_nn::layers::Conv2d;
//! use sqdm_tensor::{ops::Conv2dGeometry, Rng, Tensor};
//! # fn main() -> Result<(), sqdm_nn::NnError> {
//! let mut rng = Rng::seed_from(0);
//! let mut conv = Conv2d::new(3, 8, 3, Conv2dGeometry::same(3), &mut rng);
//! let x = Tensor::randn([1, 3, 8, 8], &mut rng);
//! let y = conv.forward(&x, true)?;
//! let grad_in = conv.backward(&Tensor::ones(y.dims()))?;
//! assert_eq!(grad_in.dims(), x.dims());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
pub mod init;
pub mod layers;
pub mod native;
pub mod optim;
mod packs;
mod param;
mod quantized;

pub use error::{NnError, Result};
pub use packs::PackCache;
pub use param::Param;
pub use quantized::QuantExecutor;
