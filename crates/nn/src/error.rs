//! Error type for layer operations.

use std::fmt;

/// Error produced by layer construction, forward or backward passes.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor kernel failed.
    Tensor(sqdm_tensor::TensorError),
    /// An underlying quantization operation failed.
    Quant(sqdm_quant::QuantError),
    /// `backward` was called without a preceding `forward` (no cache).
    MissingCache {
        /// Layer type name for diagnostics.
        layer: &'static str,
    },
    /// A layer was configured inconsistently.
    Config {
        /// Layer type name for diagnostics.
        layer: &'static str,
        /// Explanation of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::Quant(e) => write!(f, "quantization error: {e}"),
            NnError::MissingCache { layer } => {
                write!(f, "{layer}: backward called before forward")
            }
            NnError::Config { layer, reason } => write!(f, "{layer}: {reason}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::Quant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sqdm_tensor::TensorError> for NnError {
    fn from(e: sqdm_tensor::TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<sqdm_quant::QuantError> for NnError {
    fn from(e: sqdm_quant::QuantError) -> Self {
        NnError::Quant(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NnError::MissingCache { layer: "Conv2d" }
            .to_string()
            .contains("Conv2d"));
        let e: NnError = sqdm_tensor::TensorError::ReshapeMismatch { from: 1, to: 2 }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
