//! NativeInt ↔ FakeQuant equivalence for the layer executors.
//!
//! For formats whose fake-quant path quantizes at the same granularity the
//! integer engine executes (per-channel weights, per-tensor activations —
//! INT8, INT4), the two paths compute the *same* requantized sum and may
//! differ only in floating-point rounding: fake-quant rounds each
//! dequantized product and partial sum, the native path accumulates
//! exactly in i32 and rounds at the one requantization multiply. The
//! elementwise gap is therefore bounded by one ULP of the requantization
//! rounding per accumulation step — `(k + 8) · ε · Σ|a·b|` — and for
//! power-of-two scales every intermediate is exact, so the paths must
//! match **bitwise**.
//!
//! Each property also pins the worker-pool contract: the native engine is
//! bitwise identical across `SQDM_THREADS ∈ {1, 2, 7}`.

use proptest::prelude::*;
use sqdm_nn::layers::{Conv2d, Linear};
use sqdm_nn::QuantExecutor;
use sqdm_quant::{BlockPrecision, ExecMode, Granularity, IntGrid, QuantFormat, ScaleEncoding};
use sqdm_tensor::ops::{conv2d, matmul_a_bt, Conv2dGeometry};
use sqdm_tensor::parallel::with_threads;
use sqdm_tensor::{Rng, Tensor};

/// Thread counts the determinism contract is checked against.
const THREADS: [usize; 3] = [1, 2, 7];

/// Per-channel INT8 with power-of-two scales: the exact-arithmetic case.
fn int8_pow2() -> QuantFormat {
    QuantFormat {
        grid: IntGrid::signed(8),
        granularity: Granularity::PerChannel,
        scale_encoding: ScaleEncoding::PowerOfTwo,
        name: "INT8-POW2",
    }
}

/// The f32-scale formats whose granularity the engine matches exactly.
fn aligned_formats() -> [QuantFormat; 2] {
    [QuantFormat::int8(), QuantFormat::int4()]
}

fn assert_close(native: &Tensor, fake: &Tensor, amax: &Tensor, k: usize, what: &str) {
    assert_eq!(native.dims(), fake.dims(), "{what}: shape");
    let tol_step = (k as f32 + 8.0) * f32::EPSILON;
    for ((&a, &b), &m) in native
        .as_slice()
        .iter()
        .zip(fake.as_slice())
        .zip(amax.as_slice())
    {
        let tol = tol_step * (m + 1e-6);
        assert!(
            (a - b).abs() <= tol,
            "{what}: native {a} vs fake {b} (tol {tol})"
        );
    }
}

fn assert_bitwise(a: &Tensor, b: &Tensor, what: &str) {
    let ab: Vec<u32> = a.as_slice().iter().map(|v| v.to_bits()).collect();
    let bb: Vec<u32> = b.as_slice().iter().map(|v| v.to_bits()).collect();
    assert_eq!(ab, bb, "{what}: not bitwise equal");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn linear_native_matches_fake_quant(
        (batch, inf, outf, seed) in (1usize..6, 1usize..48, 1usize..9, 0u64..1 << 32)
    ) {
        let mut rng = Rng::seed_from(seed);
        let mut lin = Linear::new(inf, outf, &mut rng);
        lin.bias.value = Tensor::randn([outf], &mut rng);
        let x = Tensor::randn([batch, inf], &mut rng);

        for fmt in aligned_formats() {
            let exec = QuantExecutor::new(BlockPrecision::uniform(fmt));
            let fake = exec.linear_forward(&lin, &x).unwrap();
            let nexec = exec.with_mode(ExecMode::NativeInt);
            let native = with_threads(1, || nexec.linear_forward(&lin, &x).unwrap());

            // |fake_x| · |fake_w|ᵀ + |bias|: the accumulation magnitude
            // that scales the rounding bound.
            let xa = exec.quant_activation_2d(&x).unwrap().map(f32::abs);
            let wa = exec.quant_weight(&lin.weight.value).unwrap().map(f32::abs);
            let mut amax = matmul_a_bt(&xa, &wa).unwrap();
            let bv: Vec<f32> = lin.bias.value.as_slice().iter().map(|b| b.abs()).collect();
            let av = amax.as_mut_slice();
            for i in 0..batch {
                for (j, &b) in bv.iter().enumerate() {
                    av[i * outf + j] += b;
                }
            }
            assert_close(&native, &fake, &amax, inf, fmt.name);

            // Bitwise determinism at every thread count.
            for t in THREADS {
                let par = with_threads(t, || nexec.linear_forward(&lin, &x).unwrap());
                assert_bitwise(&native, &par, fmt.name);
            }
        }

        // Power-of-two scales: exact arithmetic, bitwise equality.
        let exec = QuantExecutor::new(BlockPrecision::uniform(int8_pow2()));
        let fake = exec.linear_forward(&lin, &x).unwrap();
        let native = exec
            .with_mode(ExecMode::NativeInt)
            .linear_forward(&lin, &x)
            .unwrap();
        assert_bitwise(&native, &fake, "INT8-POW2 linear");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn conv_native_matches_fake_quant(
        (n, c, kout, hw, stride, seed) in
            (1usize..3, 1usize..4, 1usize..4, 4usize..9, 1usize..3, 0u64..1 << 32)
    ) {
        let geom = Conv2dGeometry::new(stride, 1);
        let mut rng = Rng::seed_from(seed);
        let mut conv = Conv2d::new(c, kout, 3, geom, &mut rng);
        conv.bias.value = Tensor::randn([kout], &mut rng);
        let x = Tensor::randn([n, c, hw, hw], &mut rng);
        let k_red = c * 9;

        for fmt in aligned_formats() {
            let exec = QuantExecutor::new(BlockPrecision::uniform(fmt));
            let fake = exec.conv_forward(&conv, &x).unwrap();
            let nexec = exec.with_mode(ExecMode::NativeInt);
            let native = with_threads(1, || nexec.conv_forward(&conv, &x).unwrap());

            let xa = exec.quant_activation(&x).unwrap().map(f32::abs);
            let wa = exec.quant_weight(&conv.weight.value).unwrap().map(f32::abs);
            let ba = conv.bias.value.map(f32::abs);
            let amax = conv2d(&xa, &wa, Some(&ba), geom).unwrap();
            assert_close(&native, &fake, &amax, k_red, fmt.name);

            for t in THREADS {
                let par = with_threads(t, || nexec.conv_forward(&conv, &x).unwrap());
                assert_bitwise(&native, &par, fmt.name);
            }
        }

        let exec = QuantExecutor::new(BlockPrecision::uniform(int8_pow2()));
        let fake = exec.conv_forward(&conv, &x).unwrap();
        let native = exec
            .with_mode(ExecMode::NativeInt)
            .conv_forward(&conv, &x)
            .unwrap();
        assert_bitwise(&native, &fake, "INT8-POW2 conv");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn attention_native_projections_match_fake_quant(
        (n, c, hw, seed) in (1usize..3, 2usize..6, 2usize..5, 0u64..1 << 32)
    ) {
        use sqdm_nn::layers::SelfAttention2d;
        let mut rng = Rng::seed_from(seed);
        let attn = SelfAttention2d::new(c, &mut rng);
        let x = Tensor::randn([n, c, hw, hw], &mut rng);

        // Power-of-two INT8: projections are exact on both paths, but the
        // f32 attention math (softmax) between them is only approximately
        // shared — the projections feeding it are identical, so the whole
        // block output is identical.
        let exec = QuantExecutor::new(BlockPrecision::uniform(int8_pow2()));
        let fake = exec.attention_forward(&attn, &x).unwrap();
        let nexec = exec.with_mode(ExecMode::NativeInt);
        let native = nexec.attention_forward(&attn, &x).unwrap();
        assert_bitwise(&native, &fake, "INT8-POW2 attention");

        for t in THREADS {
            let par = with_threads(t, || nexec.attention_forward(&attn, &x).unwrap());
            assert_bitwise(&native, &par, "attention thread determinism");
        }
    }
}
