//! Packed-kernel bitwise equivalence against the pre-overhaul reference.
//!
//! The cache-blocked integer microkernels (`PackedQuantizedMatrix` +
//! pair-accumulating panel sweeps) promise results bitwise identical to
//! the straight-line kernels they replaced. These property tests keep the
//! pre-overhaul semantics alive as in-file oracles — a per-element
//! ascending-`k`, ascending-block fold that mirrors the old loop nest
//! exactly — and pin `qgemm`/`qgemm_multi`, the packed entry points, the
//! delta kernels under both density-threshold branches, and `conv2d_i8`
//! against them over random shapes, zero points (including the ±32640
//! packing boundary), sparsity masks, thread counts `{1, 2, 7}`, and both
//! ISA bodies (dispatched and forced-generic).

use proptest::prelude::*;
use sqdm_tensor::ops::int::{
    conv2d_i8, force_generic_kernels, im2col_i8, qgemm_delta_multi,
    qgemm_delta_multi_with_threshold, qgemm_delta_packed_multi, qgemm_multi, qgemm_packed,
    qgemm_packed_multi, PackedQuantizedMatrix, QuantizedMatrix, XQuant, MAX_ZERO_POINT,
};
use sqdm_tensor::ops::Conv2dGeometry;
use sqdm_tensor::parallel::with_threads;
use sqdm_tensor::Rng;

const THREADS: [usize; 3] = [1, 2, 7];

/// Deterministic pseudo-random i8 codes.
fn codes(len: usize, seed: u64) -> Vec<i8> {
    let mut rng = Rng::seed_from(seed);
    (0..len)
        .map(|_| (rng.uniform() * 254.0 - 127.0) as i8)
        .collect()
}

fn weight(m: usize, k: usize, block_len: usize, seed: u64) -> QuantizedMatrix {
    let mut rng = Rng::seed_from(seed);
    let nb = if k == 0 { 0 } else { k.div_ceil(block_len) };
    let scales: Vec<f32> = (0..m * nb).map(|_| 0.001 + rng.uniform() * 0.02).collect();
    QuantizedMatrix::new(codes(m * k, seed ^ 0x9e37), m, k, scales, block_len).unwrap()
}

/// Pre-overhaul dense reference: per output element, blocks fold in
/// ascending order from 0.0; each block's exact i32 accumulator sweeps
/// `k` ascending over `code · (x − zero_point)` products.
fn reference_qgemm_multi(w: &QuantizedMatrix, x: &[i8], stripe: usize, xqs: &[XQuant]) -> Vec<f32> {
    let (m, k, nb) = (w.rows(), w.cols(), w.n_blocks());
    let n = stripe * xqs.len();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let xq = xqs[j / stripe.max(1)];
            let mut y = 0.0f32;
            for b in 0..nb {
                let k0 = b * w.block_len();
                let k1 = (k0 + w.block_len()).min(k);
                let mut acc = 0i32;
                for kk in k0..k1 {
                    acc += w.codes()[i * k + kk] as i32 * (x[kk * n + j] as i32 - xq.zero_point);
                }
                y += acc as f32 * (w.scales()[i * nb + b] * xq.scale);
            }
            out[i * n + j] = y;
        }
    }
    out
}

/// Pre-overhaul delta reference: starts from `prev_out`; a scale block
/// contributes (even a `+0.0` epilogue add) iff the stream's mask marks
/// any row inside it, and its accumulator sums `code · (curr − prev)`
/// over the masked rows only.
#[allow(clippy::too_many_arguments)]
fn reference_qgemm_delta_multi(
    w: &QuantizedMatrix,
    x_curr: &[i8],
    x_prev: &[i8],
    changed: &[bool],
    stripe: usize,
    xqs: &[XQuant],
    prev_out: &[f32],
) -> Vec<f32> {
    let (m, k, nb) = (w.rows(), w.cols(), w.n_blocks());
    let n = stripe * xqs.len();
    let mut out = prev_out.to_vec();
    for i in 0..m {
        for j in 0..n {
            let s = j / stripe.max(1);
            let mask = &changed[s * k..(s + 1) * k];
            let mut y = prev_out[i * n + j];
            for b in 0..nb {
                let k0 = b * w.block_len();
                let k1 = (k0 + w.block_len()).min(k);
                if !mask[k0..k1].iter().any(|&c| c) {
                    continue;
                }
                let mut acc = 0i32;
                for kk in k0..k1 {
                    if mask[kk] {
                        acc += w.codes()[i * k + kk] as i32
                            * (x_curr[kk * n + j] as i32 - x_prev[kk * n + j] as i32);
                    }
                }
                y += acc as f32 * (w.scales()[i * nb + b] * xqs[s].scale);
            }
            out[i * n + j] = y;
        }
    }
    out
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (idx, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what} at {idx}: {g} vs {w}");
    }
}

/// Draws a zero point, mixing interior values with the ±`MAX_ZERO_POINT`
/// packing boundary.
fn draw_zero_point(rng: &mut Rng) -> i32 {
    match (rng.uniform() * 5.0) as u32 {
        0 => MAX_ZERO_POINT,
        1 => -MAX_ZERO_POINT,
        2 => (rng.uniform() * 200.0 - 100.0) as i32,
        _ => (rng.uniform() * 10.0 - 5.0) as i32,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn packed_qgemm_matches_pre_overhaul_reference(
        (m, k, stripe, reqs, block_len, seed) in
            (1usize..12, 1usize..24, 1usize..6, 1usize..4, 1usize..9, 0u64..1 << 32)
    ) {
        let w = weight(m, k, block_len, seed);
        let pw = PackedQuantizedMatrix::pack(w.clone());
        let mut rng = Rng::seed_from(seed ^ 0xabcd);
        let xqs: Vec<XQuant> = (0..reqs)
            .map(|_| XQuant {
                scale: 0.005 + rng.uniform() * 0.1,
                zero_point: draw_zero_point(&mut rng),
            })
            .collect();
        let n = stripe * reqs;
        let x = codes(k * n, seed ^ 0x51ca);
        let want = reference_qgemm_multi(&w, &x, stripe, &xqs);
        for t in THREADS {
            with_threads(t, || {
                for generic in [false, true] {
                    force_generic_kernels(generic);
                    let mut got = vec![0.0f32; m * n];
                    qgemm_multi(&w, &x, stripe, &xqs, &mut got).unwrap();
                    assert_bits_eq(&got, &want, "qgemm_multi");
                    let mut packed = vec![0.0f32; m * n];
                    qgemm_packed_multi(&pw, &x, stripe, &xqs, &mut packed).unwrap();
                    assert_bits_eq(&packed, &want, "qgemm_packed_multi");
                }
                force_generic_kernels(false);
                if reqs == 1 {
                    let mut single = vec![0.0f32; m * n];
                    qgemm_packed(&pw, &x, stripe, xqs[0], &mut single).unwrap();
                    assert_bits_eq(&single, &want, "qgemm_packed");
                }
            });
        }
    }

    #[test]
    fn packed_delta_matches_reference_on_both_threshold_branches(
        ((m, k, stripe, reqs, block_len), (density, seed)) in
            ((1usize..12, 1usize..24, 1usize..6, 1usize..4, 1usize..9),
             (0.0f64..1.0, 0u64..1 << 32))
    ) {
        let w = weight(m, k, block_len, seed);
        let pw = PackedQuantizedMatrix::pack(w.clone());
        let mut rng = Rng::seed_from(seed ^ 0x7f3a);
        let xqs: Vec<XQuant> = (0..reqs)
            .map(|_| XQuant {
                scale: 0.005 + rng.uniform() * 0.1,
                zero_point: draw_zero_point(&mut rng),
            })
            .collect();
        let n = stripe * reqs;
        let prev = codes(k * n, seed ^ 0x2222);
        let changed: Vec<bool> = (0..reqs * k)
            .map(|_| (rng.uniform() as f64) < density)
            .collect();
        let mut curr = prev.clone();
        for (s, mask) in changed.chunks(k).enumerate() {
            for (row, &ch) in mask.iter().enumerate() {
                if ch {
                    for v in &mut curr[row * n + s * stripe..row * n + (s + 1) * stripe] {
                        *v = v.wrapping_add(1 + (row % 5) as i8);
                    }
                }
            }
        }
        let mut prev_out = vec![0.0f32; m * n];
        qgemm_multi(&w, &prev, stripe, &xqs, &mut prev_out).unwrap();
        let want =
            reference_qgemm_delta_multi(&w, &curr, &prev, &changed, stripe, &xqs, &prev_out);
        for t in THREADS {
            with_threads(t, || {
                for generic in [false, true] {
                    force_generic_kernels(generic);
                    // Forced-dense, forced-sparse, and the default
                    // threshold must all reproduce the reference bits.
                    for threshold in [0.0f32, 2.0] {
                        let mut got = vec![0.0f32; m * n];
                        qgemm_delta_multi_with_threshold(
                            &w, &curr, &prev, &changed, stripe, &xqs, &prev_out, &mut got,
                            threshold,
                        )
                        .unwrap();
                        assert_bits_eq(&got, &want, "qgemm_delta_multi_with_threshold");
                    }
                    let mut dflt = vec![0.0f32; m * n];
                    qgemm_delta_multi(
                        &w, &curr, &prev, &changed, stripe, &xqs, &prev_out, &mut dflt,
                    )
                    .unwrap();
                    assert_bits_eq(&dflt, &want, "qgemm_delta_multi");
                    let mut packed = vec![0.0f32; m * n];
                    qgemm_delta_packed_multi(
                        &pw, &curr, &prev, &changed, stripe, &xqs, &prev_out, &mut packed,
                    )
                    .unwrap();
                    assert_bits_eq(&packed, &want, "qgemm_delta_packed_multi");
                }
                force_generic_kernels(false);
            });
        }
    }

    #[test]
    fn conv2d_i8_matches_pre_overhaul_reference(
        ((c, h, w_ext, co), (kh, kw, seed)) in
            ((1usize..4, 1usize..7, 1usize..7, 1usize..4),
             (1usize..4, 1usize..4, 0u64..1 << 32))
    ) {
        let kh = kh.min(h);
        let kw = kw.min(w_ext);
        let geom = Conv2dGeometry::new(1, 1);
        let kdim = c * kh * kw;
        let wq = weight(co, kdim, kdim.min(4), seed ^ 0x1357);
        let mut rng = Rng::seed_from(seed ^ 0x8642);
        let xq = XQuant {
            scale: 0.005 + rng.uniform() * 0.1,
            zero_point: draw_zero_point(&mut rng),
        };
        let bias: Vec<f32> = (0..co).map(|_| rng.uniform() * 2.0 - 1.0).collect();
        let x = codes(c * h * w_ext, seed ^ 0x4444);
        let got = conv2d_i8(&x, 1, c, h, w_ext, &wq, kh, kw, Some(&bias), geom, xq).unwrap();
        // Pre-overhaul conv: im2col with the clamped zero-point pad code,
        // the reference GEMM, then the bias added per output channel.
        let pad = xq.zero_point.clamp(i8::MIN as i32, i8::MAX as i32) as i8;
        let ic = im2col_i8(&x, 1, c, h, w_ext, kh, kw, geom, pad).unwrap();
        let oh = geom.out_extent(h, kh).unwrap();
        let ow = geom.out_extent(w_ext, kw).unwrap();
        let gemm = reference_qgemm_multi(&wq, &ic, oh * ow, &[xq]);
        let want: Vec<f32> = gemm
            .iter()
            .enumerate()
            .map(|(idx, &v)| v + bias[idx / (oh * ow)])
            .collect();
        assert_bits_eq(got.as_slice(), &want, "conv2d_i8");
    }
}
