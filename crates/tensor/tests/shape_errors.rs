//! Pins the `error.rs` contract for the math kernels: dimension mismatches
//! must surface as `Err(TensorError::...)`, never as panics, so callers can
//! route bad configurations into experiment-level error reporting.

use sqdm_tensor::ops::{conv2d, matmul, Conv2dGeometry};
use sqdm_tensor::{Rng, Tensor, TensorError};

#[test]
fn matmul_inner_dim_mismatch_is_err() {
    let mut rng = Rng::seed_from(1);
    let a = Tensor::randn([4, 3], &mut rng);
    let b = Tensor::randn([5, 2], &mut rng); // inner dims 3 vs 5
    match matmul(&a, &b) {
        Err(TensorError::ShapeMismatch { op, lhs, rhs }) => {
            assert_eq!(op, "matmul");
            assert_eq!(lhs, vec![4, 3]);
            assert_eq!(rhs, vec![5, 2]);
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
}

#[test]
fn matmul_rank_mismatch_is_err() {
    let mut rng = Rng::seed_from(2);
    let a = Tensor::randn([2, 3, 4], &mut rng); // rank 3, not a matrix
    let b = Tensor::randn([4, 2], &mut rng);
    assert!(matches!(
        matmul(&a, &b),
        Err(TensorError::RankMismatch { .. })
    ));
}

#[test]
fn conv2d_rank_mismatch_is_err() {
    let mut rng = Rng::seed_from(3);
    let x = Tensor::randn([3, 8, 8], &mut rng); // rank 3, needs [N, C, H, W]
    let w = Tensor::randn([4, 3, 3, 3], &mut rng);
    assert!(matches!(
        conv2d(&x, &w, None, Conv2dGeometry::same(3)),
        Err(TensorError::RankMismatch { .. })
    ));
}

#[test]
fn conv2d_channel_mismatch_is_err() {
    let mut rng = Rng::seed_from(4);
    let x = Tensor::randn([1, 3, 8, 8], &mut rng);
    let w = Tensor::randn([4, 5, 3, 3], &mut rng); // expects 5 input channels
    let result = conv2d(&x, &w, None, Conv2dGeometry::same(3));
    assert!(
        matches!(result, Err(TensorError::ShapeMismatch { .. })),
        "expected ShapeMismatch, got {result:?}"
    );
}

#[test]
fn conv2d_oversized_kernel_is_err() {
    let mut rng = Rng::seed_from(5);
    let x = Tensor::randn([1, 2, 4, 4], &mut rng);
    let w = Tensor::randn([2, 2, 9, 9], &mut rng); // kernel exceeds padded input
    let g = Conv2dGeometry {
        stride: 1,
        padding: 0,
    };
    assert!(conv2d(&x, &w, None, g).is_err());
}
