//! Serial-vs-parallel bitwise equivalence for the whole kernel layer.
//!
//! The `sqdm_tensor::parallel` pool partitions work so that every output
//! element is produced by exactly one task running the exact serial inner
//! loop, in the exact serial order. The contract is therefore *bitwise*
//! equality — not approximate agreement — between `SQDM_THREADS=1` and any
//! other thread count. These tests pin that contract for the matmul
//! family, im2col/conv2d (forward and backward), softmax and the
//! elementwise activations, over random shapes (including the degenerate
//! `m = 0`, `n = 0`, `k = 0` and single-row cases) and thread counts
//! `{1, 2, 7}`.

use proptest::prelude::*;
use sqdm_tensor::ops::{
    conv2d, conv2d_backward, im2col, matmul, matmul_a_bt, matmul_at_b, softmax_rows,
    softmax_rows_backward, Activation, Conv2dGeometry,
};
use sqdm_tensor::parallel::with_threads;
use sqdm_tensor::{Rng, Tensor};

/// Thread counts the determinism contract is checked against; 1 is the
/// serial reference, 2 and 7 exercise even and lopsided partitions.
const THREADS: [usize; 2] = [2, 7];

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn assert_bitwise_eq(reference: &Tensor, candidate: &Tensor, what: &str) {
    assert_eq!(reference.dims(), candidate.dims(), "{what}: shape changed");
    assert_eq!(
        bits(reference),
        bits(candidate),
        "{what}: parallel result is not bitwise equal to serial"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn matmul_family_is_bitwise_deterministic(
        (m, k, n, seed) in (0usize..20, 0usize..20, 0usize..20, 0u64..1 << 32)
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn([m, k], &mut rng);
        let b = Tensor::randn([k, n], &mut rng);
        let a_t = Tensor::randn([k, m], &mut rng);
        let b_t = Tensor::randn([n, k], &mut rng);
        let serial = with_threads(1, || {
            (
                matmul(&a, &b).unwrap(),
                matmul_at_b(&a_t, &b).unwrap(),
                matmul_a_bt(&a, &b_t).unwrap(),
            )
        });
        for t in THREADS {
            let par = with_threads(t, || {
                (
                    matmul(&a, &b).unwrap(),
                    matmul_at_b(&a_t, &b).unwrap(),
                    matmul_a_bt(&a, &b_t).unwrap(),
                )
            });
            assert_bitwise_eq(&serial.0, &par.0, "matmul");
            assert_bitwise_eq(&serial.1, &par.1, "matmul_at_b");
            assert_bitwise_eq(&serial.2, &par.2, "matmul_a_bt");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn conv_kernels_are_bitwise_deterministic(
        (n, c, kout, hw, stride, seed) in
            (1usize..3, 1usize..4, 1usize..4, 4usize..9, 1usize..3, 0u64..1 << 32)
    ) {
        let geom = Conv2dGeometry::new(stride, 1);
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn([n, c, hw, hw], &mut rng);
        let w = Tensor::randn([kout, c, 3, 3], &mut rng);
        let bias = Tensor::randn([kout], &mut rng);

        let (s_cols, s_y, s_grads) = with_threads(1, || {
            let cols = im2col(&x, 3, 3, geom).unwrap();
            let y = conv2d(&x, &w, Some(&bias), geom).unwrap();
            let gout = Tensor::ones(y.dims());
            let g = conv2d_backward(&x, &w, &gout, geom).unwrap();
            (cols, y, g)
        });
        for t in THREADS {
            let (p_cols, p_y, p_grads) = with_threads(t, || {
                let cols = im2col(&x, 3, 3, geom).unwrap();
                let y = conv2d(&x, &w, Some(&bias), geom).unwrap();
                let gout = Tensor::ones(y.dims());
                let g = conv2d_backward(&x, &w, &gout, geom).unwrap();
                (cols, y, g)
            });
            assert_bitwise_eq(&s_cols, &p_cols, "im2col");
            assert_bitwise_eq(&s_y, &p_y, "conv2d");
            assert_bitwise_eq(&s_grads.grad_input, &p_grads.grad_input, "conv2d grad_input");
            assert_bitwise_eq(&s_grads.grad_weight, &p_grads.grad_weight, "conv2d grad_weight");
            assert_bitwise_eq(&s_grads.grad_bias, &p_grads.grad_bias, "conv2d grad_bias");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn softmax_and_activations_are_bitwise_deterministic(
        (m, n, seed) in (1usize..40, 1usize..40, 0u64..1 << 32)
    ) {
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn([m, n], &mut rng).scale(3.0);
        let gout = Tensor::randn([m, n], &mut rng);
        let serial = with_threads(1, || {
            let y = softmax_rows(&x).unwrap();
            let g = softmax_rows_backward(&y, &gout).unwrap();
            let silu = Activation::Silu.forward(&x);
            let silu_g = Activation::Silu.backward(&x, &gout).unwrap();
            (y, g, silu, silu_g)
        });
        for t in THREADS {
            let par = with_threads(t, || {
                let y = softmax_rows(&x).unwrap();
                let g = softmax_rows_backward(&y, &gout).unwrap();
                let silu = Activation::Silu.forward(&x);
                let silu_g = Activation::Silu.backward(&x, &gout).unwrap();
                (y, g, silu, silu_g)
            });
            assert_bitwise_eq(&serial.0, &par.0, "softmax_rows");
            assert_bitwise_eq(&serial.1, &par.1, "softmax_rows_backward");
            assert_bitwise_eq(&serial.2, &par.2, "silu forward");
            assert_bitwise_eq(&serial.3, &par.3, "silu backward");
        }
    }
}

/// Shapes big enough that the pool actually splits the work (the grain
/// heuristic keeps tiny proptest shapes serial), pinned explicitly so the
/// parallel code path itself is exercised.
#[test]
fn large_kernels_engage_the_pool_and_stay_bitwise_equal() {
    let mut rng = Rng::seed_from(0xD15C0);
    let a = Tensor::randn([96, 128], &mut rng);
    let b = Tensor::randn([128, 112], &mut rng);
    let a_t = Tensor::randn([128, 96], &mut rng);
    let b_t = Tensor::randn([112, 128], &mut rng);
    let x = Tensor::randn([2, 8, 24, 24], &mut rng);
    let w = Tensor::randn([8, 8, 3, 3], &mut rng);
    let sm = Tensor::randn([128, 192], &mut rng);

    let serial = with_threads(1, || {
        (
            matmul(&a, &b).unwrap(),
            matmul_at_b(&a_t, &b).unwrap(),
            matmul_a_bt(&a, &b_t).unwrap(),
            conv2d(&x, &w, None, Conv2dGeometry::same(3)).unwrap(),
            softmax_rows(&sm).unwrap(),
            Activation::Silu.forward(&sm),
        )
    });
    for t in [2usize, 3, 7] {
        let par = with_threads(t, || {
            (
                matmul(&a, &b).unwrap(),
                matmul_at_b(&a_t, &b).unwrap(),
                matmul_a_bt(&a, &b_t).unwrap(),
                conv2d(&x, &w, None, Conv2dGeometry::same(3)).unwrap(),
                softmax_rows(&sm).unwrap(),
                Activation::Silu.forward(&sm),
            )
        });
        assert_bitwise_eq(&serial.0, &par.0, "large matmul");
        assert_bitwise_eq(&serial.1, &par.1, "large matmul_at_b");
        assert_bitwise_eq(&serial.2, &par.2, "large matmul_a_bt");
        assert_bitwise_eq(&serial.3, &par.3, "large conv2d");
        assert_bitwise_eq(&serial.4, &par.4, "large softmax");
        assert_bitwise_eq(&serial.5, &par.5, "large silu");
    }
}

/// The degenerate shapes called out in the issue, pinned explicitly (the
/// proptest ranges cover them too, but only probabilistically).
#[test]
fn degenerate_shapes_are_handled_at_every_thread_count() {
    for t in [1usize, 2, 7] {
        with_threads(t, || {
            // m = 0, n = 0, k = 0, and the single-row case.
            let empty_m = matmul(&Tensor::zeros([0, 4]), &Tensor::zeros([4, 3])).unwrap();
            assert_eq!(empty_m.dims(), &[0, 3]);
            let empty_n = matmul(&Tensor::zeros([2, 4]), &Tensor::zeros([4, 0])).unwrap();
            assert_eq!(empty_n.dims(), &[2, 0]);
            let empty_k = matmul(&Tensor::zeros([2, 0]), &Tensor::zeros([0, 3])).unwrap();
            assert!(empty_k.as_slice().iter().all(|&v| v == 0.0));
            let single_row = matmul(&Tensor::ones([1, 5]), &Tensor::ones([5, 4])).unwrap();
            assert!(single_row.as_slice().iter().all(|&v| v == 5.0));
        });
    }
}
