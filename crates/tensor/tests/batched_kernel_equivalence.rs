//! Batched-vs-single bitwise equivalence for the multi-request kernels.
//!
//! The batched entry points added for serving — `qgemm_multi`,
//! `qgemm_delta_multi`, `conv2d_i8_multi`, `matmul_a_bt_multi`,
//! `conv2d_multi` — promise that packing N independently quantized
//! requests into one kernel call is bitwise identical to N single-request
//! calls, at any `SQDM_THREADS`. These property tests pin that promise
//! over random shapes, scales, change masks and thread counts `{1, 2, 7}`.

use proptest::prelude::*;
use sqdm_tensor::ops::int::{
    conv2d_i8, conv2d_i8_multi, qgemm, qgemm_delta, qgemm_delta_multi, qgemm_multi,
    QuantizedMatrix, XQuant,
};
use sqdm_tensor::ops::{conv2d, conv2d_multi, matmul_a_bt, matmul_a_bt_multi, Conv2dGeometry};
use sqdm_tensor::parallel::with_threads;
use sqdm_tensor::{Rng, Tensor};

const THREADS: [usize; 3] = [1, 2, 7];

/// Deterministic pseudo-random i8 codes.
fn codes(len: usize, seed: u64) -> Vec<i8> {
    let mut rng = Rng::seed_from(seed);
    (0..len)
        .map(|_| (rng.uniform() * 254.0 - 127.0) as i8)
        .collect()
}

fn weight(m: usize, k: usize, block_len: usize, seed: u64) -> QuantizedMatrix {
    let mut rng = Rng::seed_from(seed);
    let nb = if k == 0 { 0 } else { k.div_ceil(block_len) };
    let scales: Vec<f32> = (0..m * nb).map(|_| 0.001 + rng.uniform() * 0.02).collect();
    QuantizedMatrix::new(codes(m * k, seed ^ 0x9e37), m, k, scales, block_len).unwrap()
}

/// Packs per-request `[k, stripe]` code matrices side by side into the
/// striped `[k, requests · stripe]` layout.
fn pack_stripes(per: &[Vec<i8>], k: usize, stripe: usize) -> Vec<i8> {
    let n = stripe * per.len();
    let mut out = vec![0i8; k * n];
    for row in 0..k {
        for (r, p) in per.iter().enumerate() {
            out[row * n + r * stripe..row * n + (r + 1) * stripe]
                .copy_from_slice(&p[row * stripe..(row + 1) * stripe]);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn qgemm_multi_matches_single_request_calls(
        (m, k, stripe, reqs, block_len, seed) in
            (1usize..10, 1usize..12, 1usize..6, 1usize..4, 1usize..6, 0u64..1 << 32)
    ) {
        let w = weight(m, k, block_len, seed);
        let mut rng = Rng::seed_from(seed ^ 0xabcd);
        let xqs: Vec<XQuant> = (0..reqs)
            .map(|_| XQuant {
                scale: 0.005 + rng.uniform() * 0.1,
                zero_point: (rng.uniform() * 10.0 - 5.0) as i32,
            })
            .collect();
        let per: Vec<Vec<i8>> = (0..reqs)
            .map(|r| codes(k * stripe, seed ^ (r as u64 + 1)))
            .collect();
        let packed = pack_stripes(&per, k, stripe);
        let n = stripe * reqs;
        for t in THREADS {
            with_threads(t, || {
                let mut batched = vec![0.0f32; m * n];
                qgemm_multi(&w, &packed, stripe, &xqs, &mut batched).unwrap();
                for (r, p) in per.iter().enumerate() {
                    let mut single = vec![0.0f32; m * stripe];
                    qgemm(&w, p, stripe, xqs[r], &mut single).unwrap();
                    for i in 0..m {
                        for j in 0..stripe {
                            assert_eq!(
                                batched[i * n + r * stripe + j].to_bits(),
                                single[i * stripe + j].to_bits(),
                                "request {r} ({i},{j}) at {t} threads"
                            );
                        }
                    }
                }
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn qgemm_delta_multi_matches_single_stream_calls(
        (m, k, stripe, reqs, seed) in
            (1usize..8, 1usize..10, 1usize..5, 1usize..4, 0u64..1 << 32)
    ) {
        let w = weight(m, k, 4, seed);
        let mut rng = Rng::seed_from(seed ^ 0x1234);
        let xqs: Vec<XQuant> = (0..reqs)
            .map(|_| XQuant::symmetric(0.01 + rng.uniform() * 0.05))
            .collect();
        // Per-stream masks and code pairs: changed rows get fresh codes.
        let masks: Vec<Vec<bool>> = (0..reqs)
            .map(|_| (0..k).map(|_| rng.uniform() < 0.4).collect())
            .collect();
        let prev: Vec<Vec<i8>> = (0..reqs)
            .map(|r| codes(k * stripe, seed ^ (0x77 + r as u64)))
            .collect();
        let curr: Vec<Vec<i8>> = prev
            .iter()
            .zip(&masks)
            .map(|(p, mask)| {
                let mut c = p.clone();
                for (row, &ch) in mask.iter().enumerate() {
                    if ch {
                        for v in &mut c[row * stripe..(row + 1) * stripe] {
                            *v = v.wrapping_add(3);
                        }
                    }
                }
                c
            })
            .collect();
        let n = stripe * reqs;
        let packed_prev = pack_stripes(&prev, k, stripe);
        let packed_curr = pack_stripes(&curr, k, stripe);
        let flat_mask: Vec<bool> = masks.iter().flatten().copied().collect();
        let mut prev_out = vec![0.0f32; m * n];
        qgemm_multi(&w, &packed_prev, stripe, &xqs, &mut prev_out).unwrap();
        for t in THREADS {
            with_threads(t, || {
                let mut batched = vec![0.0f32; m * n];
                qgemm_delta_multi(
                    &w, &packed_curr, &packed_prev, &flat_mask, stripe, &xqs, &prev_out,
                    &mut batched,
                )
                .unwrap();
                for r in 0..reqs {
                    let mut sprev = vec![0.0f32; m * stripe];
                    qgemm(&w, &prev[r], stripe, xqs[r], &mut sprev).unwrap();
                    let mut single = vec![0.0f32; m * stripe];
                    qgemm_delta(
                        &w, &curr[r], &prev[r], &masks[r], stripe, xqs[r], &sprev, &mut single,
                    )
                    .unwrap();
                    for i in 0..m {
                        for j in 0..stripe {
                            assert_eq!(
                                batched[i * n + r * stripe + j].to_bits(),
                                single[i * stripe + j].to_bits(),
                                "stream {r} ({i},{j}) at {t} threads"
                            );
                        }
                    }
                }
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn conv2d_i8_multi_matches_per_sample_convs(
        (n, c, kout, hw, seed) in (1usize..4, 1usize..3, 1usize..4, 4usize..7, 0u64..1 << 32)
    ) {
        let geom = Conv2dGeometry::same(3);
        let red = c * 9;
        let mut rng = Rng::seed_from(seed ^ 0x55);
        let wq = QuantizedMatrix::per_channel(
            codes(kout * red, seed),
            kout,
            red,
            (0..kout).map(|_| 0.002 + rng.uniform() * 0.01).collect(),
        )
        .unwrap();
        let bias: Vec<f32> = (0..kout).map(|_| rng.uniform() * 2.0 - 1.0).collect();
        let xqs: Vec<XQuant> = (0..n)
            .map(|_| XQuant {
                scale: 0.01 + rng.uniform() * 0.05,
                zero_point: (rng.uniform() * 8.0 - 4.0) as i32,
            })
            .collect();
        let stride = c * hw * hw;
        let x = codes(n * stride, seed ^ 0x99);
        for t in THREADS {
            with_threads(t, || {
                let batched =
                    conv2d_i8_multi(&x, n, c, hw, hw, &wq, 3, 3, Some(&bias), geom, &xqs).unwrap();
                for nn in 0..n {
                    let single = conv2d_i8(
                        &x[nn * stride..(nn + 1) * stride],
                        1,
                        c,
                        hw,
                        hw,
                        &wq,
                        3,
                        3,
                        Some(&bias),
                        geom,
                        xqs[nn],
                    )
                    .unwrap();
                    let per = single.len();
                    for (j, (a, b)) in batched.as_slice()[nn * per..(nn + 1) * per]
                        .iter()
                        .zip(single.as_slice())
                        .enumerate()
                    {
                        assert_eq!(a.to_bits(), b.to_bits(), "sample {nn} elem {j} at {t} threads");
                    }
                }
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn f32_multi_entry_points_match_per_request_calls(
        (reqs, k, nout, hw, seed) in
            (1usize..4, 1usize..8, 1usize..6, 4usize..7, 0u64..1 << 32)
    ) {
        let mut rng = Rng::seed_from(seed);
        let b = Tensor::randn([nout, k], &mut rng);
        let xs: Vec<Tensor> = (0..reqs)
            .map(|_| {
                let rows = 1 + (rng.uniform() * 3.0) as usize;
                Tensor::randn([rows, k], &mut rng)
            })
            .collect();
        let wt = Tensor::randn([2, 2, 3, 3], &mut rng);
        let bias = Tensor::randn([2], &mut rng);
        let convs: Vec<Tensor> = (0..reqs)
            .map(|_| Tensor::randn([1, 2, hw, hw], &mut rng))
            .collect();
        for t in THREADS {
            with_threads(t, || {
                let gemms = matmul_a_bt_multi(&xs, &b).unwrap();
                for (x, y) in xs.iter().zip(&gemms) {
                    let single = matmul_a_bt(x, &b).unwrap();
                    assert_eq!(single.dims(), y.dims());
                    for (a, c) in single.as_slice().iter().zip(y.as_slice()) {
                        assert_eq!(a.to_bits(), c.to_bits(), "gemm at {t} threads");
                    }
                }
                let geom = Conv2dGeometry::same(3);
                let outs = conv2d_multi(&convs, &wt, Some(&bias), geom).unwrap();
                for (x, y) in convs.iter().zip(&outs) {
                    let single = conv2d(x, &wt, Some(&bias), geom).unwrap();
                    for (a, c) in single.as_slice().iter().zip(y.as_slice()) {
                        assert_eq!(a.to_bits(), c.to_bits(), "conv at {t} threads");
                    }
                }
            });
        }
    }
}
