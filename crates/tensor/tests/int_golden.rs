//! Golden-value tests for the native integer kernels.
//!
//! Every case here is small enough to compute by hand: the i32
//! accumulators are written out in comments, and the expected requantized
//! outputs are asserted **exactly** (the chosen scales are powers of two,
//! so no f32 rounding is involved anywhere). These pins are what keep the
//! integer engine honest under refactors — a wrong zero point, a swapped
//! scale index or an i8 overflow shows up as a concrete wrong number, not
//! a tolerance drift.

use sqdm_tensor::ops::int::{conv2d_i8, qgemm, qgemm_delta, QuantizedMatrix, XQuant};
use sqdm_tensor::ops::Conv2dGeometry;

/// Unit scales make the kernel output the raw i32 accumulators.
#[test]
fn gemm_accumulators_match_hand_computation() {
    // w = | 1 -2  3 |   x = | 10 -1 |
    //     | 0  4 -5 |       |  2  0 |
    //                       | -3  7 |
    let w = QuantizedMatrix::per_channel(vec![1, -2, 3, 0, 4, -5], 2, 3, vec![1.0, 1.0]).unwrap();
    let x: Vec<i8> = vec![10, -1, 2, 0, -3, 7];
    let mut out = vec![0.0f32; 4];
    qgemm(&w, &x, 2, XQuant::symmetric(1.0), &mut out).unwrap();
    // acc[0,0] = 1·10 − 2·2 + 3·(−3)  = −3
    // acc[0,1] = 1·(−1) − 2·0 + 3·7   = 20
    // acc[1,0] = 0·10 + 4·2 − 5·(−3)  = 23
    // acc[1,1] = 0·(−1) + 4·0 − 5·7   = −35
    assert_eq!(out, vec![-3.0, 20.0, 23.0, -35.0]);
}

/// Per-channel scales requantize each output row independently.
#[test]
fn gemm_per_channel_requantization() {
    let w = QuantizedMatrix::per_channel(vec![1, -2, 3, 0, 4, -5], 2, 3, vec![0.5, 0.25]).unwrap();
    let x: Vec<i8> = vec![10, -1, 2, 0, -3, 7];
    let mut out = vec![0.0f32; 4];
    qgemm(&w, &x, 2, XQuant::symmetric(0.5), &mut out).unwrap();
    // Same accumulators as above, scaled by w_scale[row] · x_scale:
    // row 0: (−3, 20) · 0.5 · 0.5  = (−0.75, 5.0)
    // row 1: (23, −35) · 0.25 · 0.5 = (2.875, −4.375)
    assert_eq!(out, vec![-0.75, 5.0, 2.875, -4.375]);
}

/// A nonzero activation zero point shifts every code before the MAC.
#[test]
fn gemm_zero_point_is_subtracted() {
    let w = QuantizedMatrix::per_channel(vec![2, -1], 1, 2, vec![0.5]).unwrap();
    // Codes 5..7 with zero point 5 represent reals 0, 0.25, 0.5, −0.5.
    let x: Vec<i8> = vec![5, 6, 7, 3];
    let mut out = vec![0.0f32; 2];
    let xq = XQuant {
        scale: 0.25,
        zero_point: 5,
    };
    qgemm(&w, &x, 2, xq, &mut out).unwrap();
    // acc[0,0] = 2·(5−5) − 1·(7−5) = −2  → −2 · 0.5 · 0.25 = −0.25
    // acc[0,1] = 2·(6−5) − 1·(3−5) =  4  →  4 · 0.5 · 0.25 =  0.5
    assert_eq!(out, vec![-0.25, 0.5]);
}

/// i8::MIN is a legal code: products reach 128², and the accumulator must
/// hold them without overflow or sign surprises.
#[test]
fn gemm_saturation_edge_codes() {
    let w = QuantizedMatrix::per_channel(vec![-128, 127], 1, 2, vec![1.0]).unwrap();
    let x: Vec<i8> = vec![-128, 127];
    let mut out = vec![0.0f32; 1];
    qgemm(&w, &x, 1, XQuant::symmetric(1.0), &mut out).unwrap();
    // acc = (−128)·(−128) + 127·127 = 16384 + 16129 = 32513
    assert_eq!(out, vec![32513.0]);

    // Worst-case negative accumulation over k = 4: 4 · (−128·127).
    let w2 = QuantizedMatrix::per_channel(vec![-128; 4], 1, 4, vec![1.0]).unwrap();
    let x2: Vec<i8> = vec![127; 4];
    let mut out2 = vec![0.0f32; 1];
    qgemm(&w2, &x2, 1, XQuant::symmetric(1.0), &mut out2).unwrap();
    assert_eq!(out2, vec![-65024.0]);

    // Zero point −128 pushes |x − zp| to 255, the asymmetric extreme.
    let w3 = QuantizedMatrix::per_channel(vec![127], 1, 1, vec![1.0]).unwrap();
    let mut out3 = vec![0.0f32; 1];
    let xq = XQuant {
        scale: 1.0,
        zero_point: -128,
    };
    qgemm(&w3, &[127i8], 1, xq, &mut out3).unwrap();
    // acc = 127 · (127 − (−128)) = 127 · 255 = 32385
    assert_eq!(out3, vec![32385.0]);
}

/// Blocked weight scales requantize each reduction block separately.
#[test]
fn gemm_blocked_scales() {
    // One row [1, 1, 2, 2], two blocks of 2 with scales 0.5 and 0.25.
    let w = QuantizedMatrix::new(vec![1, 1, 2, 2], 1, 4, vec![0.5, 0.25], 2).unwrap();
    let x: Vec<i8> = vec![4, 4, 4, 4];
    let mut out = vec![0.0f32; 1];
    qgemm(&w, &x, 1, XQuant::symmetric(1.0), &mut out).unwrap();
    // block 0: (1·4 + 1·4) = 8  → 8 · 0.5  = 4
    // block 1: (2·4 + 2·4) = 16 → 16 · 0.25 = 4
    assert_eq!(out, vec![8.0]);
}

/// 2×2 valid convolution on a 3×3 code map, hand-traced.
#[test]
fn conv_accumulators_match_hand_computation() {
    // x = | 1 2 3 |   w = |  2  0 |
    //     | 4 5 6 |       |  0 −1 |
    //     | 7 8 9 |
    let xc: Vec<i8> = vec![1, 2, 3, 4, 5, 6, 7, 8, 9];
    let wq = QuantizedMatrix::per_channel(vec![2, 0, 0, -1], 1, 4, vec![0.5]).unwrap();
    let y = conv2d_i8(
        &xc,
        1,
        1,
        3,
        3,
        &wq,
        2,
        2,
        Some(&[0.25]),
        Conv2dGeometry::new(1, 0),
        XQuant::symmetric(1.0),
    )
    .unwrap();
    assert_eq!(y.dims(), &[1, 1, 2, 2]);
    // acc = 2·topleft − bottomright per window: (−3, −2, 0, 1)
    // requant ·0.5 + bias 0.25: (−1.25, −0.75, 0.25, 0.75)
    assert_eq!(y.as_slice(), &[-1.25, -0.75, 0.25, 0.75]);
}

/// Padding must contribute the zero-point code, i.e. real zero: a
/// constant-zero input (codes == zero point) convolves to pure bias.
#[test]
fn conv_padding_respects_zero_point() {
    let xc: Vec<i8> = vec![7; 4]; // 1×1×2×2, all codes at the zero point
    let wq =
        QuantizedMatrix::per_channel(vec![1, 2, 3, 4, 5, 6, 7, 8, 9], 1, 9, vec![1.0]).unwrap();
    let y = conv2d_i8(
        &xc,
        1,
        1,
        2,
        2,
        &wq,
        3,
        3,
        Some(&[1.5]),
        Conv2dGeometry::same(3),
        XQuant {
            scale: 0.125,
            zero_point: 7,
        },
    )
    .unwrap();
    assert_eq!(y.dims(), &[1, 1, 2, 2]);
    for &v in y.as_slice() {
        assert_eq!(v, 1.5);
    }
}

/// The delta GEMM applies exactly the masked rows' contribution change.
#[test]
fn delta_gemm_hand_computation() {
    let w = QuantizedMatrix::per_channel(vec![1, 2], 1, 2, vec![1.0]).unwrap();
    let xq = XQuant::symmetric(1.0);
    let prev: Vec<i8> = vec![1, 2]; // column vector [k=2, n=1]
    let curr: Vec<i8> = vec![3, 2]; // only row 0 changed
    let mut prev_out = vec![0.0f32; 1];
    qgemm(&w, &prev, 1, xq, &mut prev_out).unwrap();
    assert_eq!(prev_out, vec![5.0]); // 1·1 + 2·2

    let mut out = vec![0.0f32; 1];
    qgemm_delta(&w, &curr, &prev, &[true, false], 1, xq, &prev_out, &mut out).unwrap();
    // delta = 1·(3−1) = 2 → 5 + 2 = 7 = dense recomputation 1·3 + 2·2.
    assert_eq!(out, vec![7.0]);

    // A mask that misses the changed row reuses the stale contribution:
    // the kernel trusts the mask — correctness is the mask producer's job.
    let mut stale = vec![0.0f32; 1];
    qgemm_delta(
        &w,
        &curr,
        &prev,
        &[false, false],
        1,
        xq,
        &prev_out,
        &mut stale,
    )
    .unwrap();
    assert_eq!(stale, vec![5.0]);
}

/// The delta path must also honor zero points (they cancel in the code
/// delta) and per-channel scales.
#[test]
fn delta_gemm_zero_point_cancels() {
    let w = QuantizedMatrix::per_channel(vec![3, -2, 1, 4], 2, 2, vec![0.5, 0.25]).unwrap();
    let xq = XQuant {
        scale: 0.5,
        zero_point: 3,
    };
    let prev: Vec<i8> = vec![5, 1]; // [k=2, n=1]
    let curr: Vec<i8> = vec![9, 1];
    let mut prev_out = vec![0.0f32; 2];
    qgemm(&w, &prev, 1, xq, &mut prev_out).unwrap();
    let mut dense = vec![0.0f32; 2];
    qgemm(&w, &curr, 1, xq, &mut dense).unwrap();
    let mut delta = vec![0.0f32; 2];
    qgemm_delta(
        &w,
        &curr,
        &prev,
        &[true, false],
        1,
        xq,
        &prev_out,
        &mut delta,
    )
    .unwrap();
    // row 0: prev acc = 3·(5−3) − 2·(1−3) = 10 → 10·0.5·0.5 = 2.5
    //        delta    = 3·(9−5)           = 12 → +12·0.25   = 5.5
    // row 1: prev acc = 1·2 + 4·(−2) = −6 → −6·0.25·0.5 = −0.75
    //        delta    = 1·4 = 4          → +4·0.125    = −0.25
    assert_eq!(prev_out, vec![2.5, -0.75]);
    assert_eq!(delta, dense);
    assert_eq!(delta, vec![5.5, -0.25]);
}

// ---------------------------------------------------------------------
// Pack-layout goldens for the cache-blocked kernel overhaul.
// ---------------------------------------------------------------------

use sqdm_tensor::ops::blocking::LANE;
use sqdm_tensor::ops::int::PackedQuantizedMatrix;

/// The packed layout pads every scale block to a whole number of vector
/// lanes: k = 21 in blocks of 8 gives blocks of 8, 8, 5, each widened to
/// one 16-lane span, so `packed_cols` is 48 with starts `[0, 16, 32, 48]`
/// and zeroed pad slots.
#[test]
fn pack_layout_pads_tail_blocks_to_lanes() {
    assert_eq!(LANE, 16, "goldens below assume 16 i16 lanes per span");
    let k = 21usize;
    let codes: Vec<i8> = (0..2 * k).map(|v| (v % 100) as i8 + 1).collect();
    let scales = vec![1.0f32; 2 * 3];
    let w = QuantizedMatrix::new(codes.clone(), 2, k, scales, 8).unwrap();
    let pw = PackedQuantizedMatrix::pack(w);
    assert_eq!(pw.block_starts(), &[0, 16, 32, 48]);
    assert_eq!(pw.packed_cols(), 48);
    assert_eq!(pw.packed_codes().len(), 2 * 48);
    for i in 0..2usize {
        let row = &pw.packed_codes()[i * 48..(i + 1) * 48];
        let src = &codes[i * k..(i + 1) * k];
        // Block payloads sit at the span starts…
        for (kk, &c) in src[0..8].iter().enumerate() {
            assert_eq!(row[kk], c as i16);
        }
        for (kk, &c) in src[8..16].iter().enumerate() {
            assert_eq!(row[16 + kk], c as i16);
        }
        for (kk, &c) in src[16..21].iter().enumerate() {
            assert_eq!(row[32 + kk], c as i16);
        }
        // …and every pad slot is exactly zero (an i32 no-op in the MAC).
        for &pad in row[8..16].iter().chain(&row[24..32]).chain(&row[37..48]) {
            assert_eq!(pad, 0);
        }
    }
}

/// A reduction dim not divisible by the block or lane size still
/// requantizes each block separately — tail block included.
#[test]
fn gemm_tail_block_requantization() {
    // One row [1, 2, 3, 4, 5], blocks of 2 → blocks (1,2), (3,4), (5).
    let w = QuantizedMatrix::new(vec![1, 2, 3, 4, 5], 1, 5, vec![0.5, 0.25, 2.0], 2).unwrap();
    let x: Vec<i8> = vec![1, 1, 1, 1, 1];
    let mut out = vec![0.0f32; 1];
    qgemm(&w, &x, 1, XQuant::symmetric(0.5), &mut out).unwrap();
    // block 0: (1 + 2) · 0.5  = 1.5
    // block 1: (3 + 4) · 0.25 = 1.75
    // tail:     5      · 2.0  = 10.0
    // total 13.25, times x scale 0.5 = 6.625
    assert_eq!(out, vec![6.625]);
}

/// Extreme operands inside the i16 pair accumulation: with the zero point
/// at the ±`MAX_ZERO_POINT` packing boundary the shifted activation hits
/// ±32768 exactly, and the i8::MIN weight code makes the pair products as
/// large as they can get. The accumulator must stay exact.
#[test]
fn gemm_pair_accumulation_extremes_are_exact() {
    use sqdm_tensor::ops::int::MAX_ZERO_POINT;
    assert_eq!(MAX_ZERO_POINT, 32640);
    let w = QuantizedMatrix::per_channel(vec![-128, -128], 1, 2, vec![1.0]).unwrap();

    // zp = +32640, codes −128: shifted lanes are −32768 (the i16 floor).
    // acc = 2 · (−128 · −32768) = 8 388 608.
    let mut out = vec![0.0f32; 1];
    let xq = XQuant {
        scale: 1.0,
        zero_point: MAX_ZERO_POINT,
    };
    qgemm(&w, &[-128i8, -128], 1, xq, &mut out).unwrap();
    assert_eq!(out, vec![8_388_608.0]);

    // zp = −32640, codes 127: shifted lanes are +32767 (the i16 ceiling).
    // acc = 2 · (−128 · 32767) = −8 388 352.
    let xq = XQuant {
        scale: 1.0,
        zero_point: -MAX_ZERO_POINT,
    };
    qgemm(&w, &[127i8, 127], 1, xq, &mut out).unwrap();
    assert_eq!(out, vec![-8_388_352.0]);
}

/// Per-channel requantization with k far from a lane multiple: the padded
/// columns must not leak into the per-row scale application.
#[test]
fn gemm_per_channel_requant_ignores_padded_columns() {
    // k = 3 pads 13 zero lanes onto every row; outputs must match the
    // 3-element hand computation exactly.
    let w = QuantizedMatrix::per_channel(vec![1, -2, 3, 0, 4, -5], 2, 3, vec![0.5, 0.25]).unwrap();
    let x: Vec<i8> = vec![10, 2, -3];
    let mut out = vec![0.0f32; 2];
    qgemm(&w, &x, 1, XQuant::symmetric(0.5), &mut out).unwrap();
    // row 0: (1·10 − 2·2 + 3·(−3)) = −3 → −3 · 0.5 · 0.5  = −0.75
    // row 1: (0·10 + 4·2 − 5·(−3)) = 23 → 23 · 0.25 · 0.5 = 2.875
    assert_eq!(out, vec![-0.75, 2.875]);

    // The packed entry point sees the identical pad handling.
    let pw = PackedQuantizedMatrix::pack(w);
    let mut packed = vec![0.0f32; 2];
    sqdm_tensor::ops::int::qgemm_packed(&pw, &x, 1, XQuant::symmetric(0.5), &mut packed).unwrap();
    assert_eq!(packed, vec![-0.75, 2.875]);
}
