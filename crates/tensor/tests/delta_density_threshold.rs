//! Regression pins for the `qgemm_delta` density-threshold fallback.
//!
//! Above the measured sparse/dense crossover, recomputing through the
//! packed dense kernel is faster than walking the sparse delta path — but
//! the fallback is only sound because both branches are bitwise
//! identical. These tests force each branch explicitly through
//! `qgemm_delta_multi_with_threshold` (threshold `0.0` ⇒ every mask takes
//! the dense path, `2.0` ⇒ every mask stays sparse), check both against
//! the default-threshold entry point, and pin the exported threshold to a
//! sane range so a bad edit can't quietly disable the fallback.

use sqdm_tensor::ops::int::{
    qgemm_delta_multi, qgemm_delta_multi_with_threshold, qgemm_multi, QuantizedMatrix, XQuant,
    DELTA_DENSE_THRESHOLD,
};
use sqdm_tensor::parallel::with_threads;
use sqdm_tensor::Rng;

fn weight(m: usize, k: usize, block_len: usize, seed: u64) -> QuantizedMatrix {
    let mut rng = Rng::seed_from(seed);
    let nb = k.div_ceil(block_len);
    let scales: Vec<f32> = (0..m * nb).map(|_| 0.001 + rng.uniform() * 0.02).collect();
    let codes: Vec<i8> = (0..m * k)
        .map(|_| (rng.uniform() * 254.0 - 127.0) as i8)
        .collect();
    QuantizedMatrix::new(codes, m, k, scales, block_len).unwrap()
}

/// Builds a delta scenario with exactly `changed_rows` masked rows per
/// stream, scattered deterministically.
struct Scenario {
    w: QuantizedMatrix,
    curr: Vec<i8>,
    prev: Vec<i8>,
    changed: Vec<bool>,
    stripe: usize,
    xqs: Vec<XQuant>,
    prev_out: Vec<f32>,
}

fn scenario(changed_rows: usize, seed: u64) -> Scenario {
    let (m, k, stripe) = (17usize, 40usize, 3usize);
    let w = weight(m, k, 8, seed);
    let xqs = vec![
        XQuant::symmetric(0.02),
        XQuant {
            scale: 0.07,
            zero_point: -4,
        },
    ];
    let n = stripe * xqs.len();
    let mut rng = Rng::seed_from(seed ^ 0x5a5a);
    let prev: Vec<i8> = (0..k * n)
        .map(|_| (rng.uniform() * 254.0 - 127.0) as i8)
        .collect();
    let mut changed = vec![false; xqs.len() * k];
    for (s, mask) in changed.chunks_mut(k).enumerate() {
        let mut marked = 0usize;
        let mut row = (s * 7 + 3) % k;
        while marked < changed_rows.min(k) {
            if !mask[row] {
                mask[row] = true;
                marked += 1;
            }
            row = (row + 11) % k;
        }
    }
    let mut curr = prev.clone();
    for (s, mask) in changed.chunks(k).enumerate() {
        for (row, &ch) in mask.iter().enumerate() {
            if ch {
                for v in &mut curr[row * n + s * stripe..row * n + (s + 1) * stripe] {
                    *v = v.wrapping_add(3 + (row % 7) as i8);
                }
            }
        }
    }
    let mut prev_out = vec![0.0f32; m * n];
    qgemm_multi(&w, &prev, stripe, &xqs, &mut prev_out).unwrap();
    Scenario {
        w,
        curr,
        prev,
        changed,
        stripe,
        xqs,
        prev_out,
    }
}

fn run_with_threshold(sc: &Scenario, threshold: f32) -> Vec<u32> {
    let n = sc.stripe * sc.xqs.len();
    let mut out = vec![0.0f32; sc.w.rows() * n];
    qgemm_delta_multi_with_threshold(
        &sc.w,
        &sc.curr,
        &sc.prev,
        &sc.changed,
        sc.stripe,
        &sc.xqs,
        &sc.prev_out,
        &mut out,
        threshold,
    )
    .unwrap();
    out.iter().map(|v| v.to_bits()).collect()
}

/// The exported crossover must stay a real fraction: 0 would force every
/// delta call dense (destroying the sparse win the paper is about), and
/// anything above 1 would never trigger the fallback.
#[test]
#[allow(clippy::assertions_on_constants)] // pinning the constant is the point
fn default_threshold_is_a_meaningful_fraction() {
    assert!(DELTA_DENSE_THRESHOLD > 0.0);
    assert!(DELTA_DENSE_THRESHOLD <= 1.0);
}

/// Below-crossover (nearly dense) masks take the dense path by default;
/// the result must be bitwise identical to the forced-sparse branch and
/// to a full dense recomputation.
#[test]
fn dense_fallback_is_bitwise_identical_to_sparse_path() {
    for (changed_rows, seed) in [(40usize, 11u64), (30, 12), (9, 13), (1, 14), (0, 15)] {
        let sc = scenario(changed_rows, seed);
        let dense_forced = run_with_threshold(&sc, 0.0);
        let sparse_forced = run_with_threshold(&sc, 2.0);
        assert_eq!(
            dense_forced, sparse_forced,
            "branch divergence at {changed_rows} changed rows"
        );

        // The default entry point picks one of the two branches based on
        // the changed fraction — whichever it is, same bits.
        let n = sc.stripe * sc.xqs.len();
        let mut dflt = vec![0.0f32; sc.w.rows() * n];
        qgemm_delta_multi(
            &sc.w,
            &sc.curr,
            &sc.prev,
            &sc.changed,
            sc.stripe,
            &sc.xqs,
            &sc.prev_out,
            &mut dflt,
        )
        .unwrap();
        let dflt_bits: Vec<u32> = dflt.iter().map(|v| v.to_bits()).collect();
        assert_eq!(dflt_bits, dense_forced, "default threshold diverges");
    }
}

/// The branch equivalence holds at every thread count the CI legs pin.
#[test]
fn threshold_branches_agree_across_thread_counts() {
    let sc = scenario(13, 99);
    let mut reference: Option<Vec<u32>> = None;
    for t in [1usize, 2, 7] {
        with_threads(t, || {
            let dense_forced = run_with_threshold(&sc, 0.0);
            let sparse_forced = run_with_threshold(&sc, 2.0);
            assert_eq!(dense_forced, sparse_forced, "divergence at {t} threads");
            match &reference {
                None => reference = Some(dense_forced),
                Some(r) => assert_eq!(r, &dense_forced, "thread count changed bits"),
            }
        });
    }
}
