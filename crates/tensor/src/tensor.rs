//! The dense `f32` tensor type.

use crate::arena;
use crate::error::{Result, TensorError};
use crate::rng::Rng;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// A dense, row-major tensor of `f32` values.
///
/// This is the single numeric container used throughout the SQ-DM
/// reproduction: model weights, activations, quantization scratch buffers and
/// simulator traces are all `Tensor`s. The layout is always contiguous
/// row-major (C order); the 4-D convention for feature maps is `[N, C, H, W]`.
///
/// Inside an [`arena::scope`](crate::arena::scope) the backing buffer is
/// drawn from (and on drop returned to) the calling thread's activation
/// arena, so steady-state serving constructs and destroys tensors without
/// touching the global allocator. Outside a scope nothing changes: plain
/// allocation, plain drop.
///
/// # Examples
///
/// ```
/// use sqdm_tensor::Tensor;
/// # fn main() -> Result<(), sqdm_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// assert_eq!(t.get(&[1, 0])?, 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = arena::take::<f32>(self.data.len());
        data.extend_from_slice(&self.data);
        Tensor {
            shape: self.shape,
            data,
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        // Inside an arena scope the buffer's capacity is parked for reuse;
        // otherwise this is an ordinary drop of an empty-capacity vec plus
        // the taken buffer.
        arena::recycle(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = arena::take_zeroed::<f32>(shape.len());
        Tensor { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let mut data = arena::take::<f32>(shape.len());
        data.resize(shape.len(), value);
        Tensor { shape, data }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLenMismatch`] if `data.len()` does not equal
    /// the element count of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::DataLenMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        let mut buf = arena::take::<f32>(data.len());
        buf.extend_from_slice(data);
        Tensor {
            shape: Shape::from([data.len()]),
            data: buf,
        }
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        let mut data = arena::take::<f32>(1);
        data.push(value);
        Tensor {
            shape: Shape::new(vec![]),
            data,
        }
    }

    /// Samples a tensor with i.i.d. standard-normal entries from `rng`.
    pub fn randn(shape: impl Into<Shape>, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let mut data = arena::take::<f32>(shape.len());
        data.extend((0..shape.len()).map(|_| rng.normal()));
        Tensor { shape, data }
    }

    /// Samples a tensor with i.i.d. uniform entries in `[lo, hi)` from `rng`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let mut data = arena::take::<f32>(shape.len());
        data.extend((0..shape.len()).map(|_| lo + (hi - lo) * rng.uniform()));
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The extents as a plain slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is out of range or has the wrong rank.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is out of range or has the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.data.len(),
                to: shape.len(),
            });
        }
        let mut data = arena::take::<f32>(self.data.len());
        data.extend_from_slice(&self.data);
        Ok(Tensor { shape, data })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Tensor {
        let mut data = arena::take::<f32>(self.data.len());
        data.extend(self.data.iter().map(|&x| f(x)));
        Tensor {
            shape: self.shape,
            data,
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equal-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_with(&self, other: &Tensor, mut f: impl FnMut(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_with",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let mut data = arena::take::<f32>(self.data.len());
        data.extend(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b)),
        );
        Ok(Tensor {
            shape: self.shape,
            data,
        })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        // Kahan summation keeps results stable for the large reductions used
        // by the loss and statistics code.
        let mut sum = 0.0f32;
        let mut c = 0.0f32;
        for &x in &self.data {
            let y = x - c;
            let t = sum + y;
            c = (t - sum) - y;
            sum = t;
        }
        sum
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute value (0 for an empty tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Minimum element (+inf for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().fold(f32::INFINITY, |m, &x| m.min(x))
    }

    /// Maximum element (-inf for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x))
    }

    /// Fraction of elements exactly equal to zero (0 for an empty tensor).
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&x| x == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Accumulates `other * alpha` into `self` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "add_scaled",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Mean squared difference between two equal-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mse(&self, other: &Tensor) -> Result<f32> {
        let diff = self.sub(other)?;
        Ok(diff.map(|x| x * x).mean())
    }

    /// Extracts one channel `[H, W]` from a `[N, C, H, W]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 4 or indices are out of
    /// range.
    pub fn channel(&self, n: usize, c: usize) -> Result<Tensor> {
        let (nn, cc, h, w) = self.shape.as_nchw()?;
        if n >= nn || c >= cc {
            return Err(TensorError::InvalidArgument {
                op: "channel",
                reason: format!("index (n={n}, c={c}) out of range ({nn}, {cc})"),
            });
        }
        let start = ((n * cc) + c) * h * w;
        let mut data = arena::take::<f32>(h * w);
        data.extend_from_slice(&self.data[start..start + h * w]);
        Ok(Tensor {
            shape: Shape::from([h, w]),
            data,
        })
    }

    /// Extracts batch element `n` of a rank-4 `[N, C, H, W]` tensor as a
    /// `[1, C, H, W]` tensor — the per-request slice every batched-serving
    /// path (per-sample quantization, per-stream traces, output splitting)
    /// is built on.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 4 or `n` is out of
    /// range.
    pub fn batch_sample(&self, n: usize) -> Result<Tensor> {
        let (nn, c, h, w) = self.shape.as_nchw()?;
        if n >= nn {
            return Err(TensorError::InvalidArgument {
                op: "batch_sample",
                reason: format!("index n={n} out of range ({nn})"),
            });
        }
        let stride = c * h * w;
        let mut data = arena::take::<f32>(stride);
        data.extend_from_slice(&self.data[n * stride..(n + 1) * stride]);
        Ok(Tensor {
            shape: Shape::from([1, c, h, w]),
            data,
        })
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros([0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        assert_eq!(t.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(t.get(&[1, 2]).unwrap(), 6.0);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], [2, 3]),
            Err(TensorError::DataLenMismatch { .. })
        ));
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([4]);
        assert!(a.add(&b).is_err());
        assert!(a.mse(&b).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[-3.0, 1.0, 2.0]);
        assert_eq!(t.sum(), 0.0);
        assert!((t.mean() - 0.0).abs() < 1e-6);
        assert_eq!(t.abs_max(), 3.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.max(), 2.0);
    }

    #[test]
    fn sparsity_counts_exact_zeros() {
        let t = Tensor::from_slice(&[0.0, 1.0, 0.0, 2.0]);
        assert_eq!(t.sparsity(), 0.5);
        assert_eq!(Tensor::zeros([0]).sparsity(), 0.0);
    }

    #[test]
    fn reshape_round_trip() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), [2, 3, 4]).unwrap();
        let r = t.reshape([4, 6]).unwrap();
        assert_eq!(r.dims(), &[4, 6]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape([5, 5]).is_err());
    }

    #[test]
    fn channel_extraction() {
        let mut t = Tensor::zeros([1, 2, 2, 2]);
        for (i, x) in t.as_mut_slice().iter_mut().enumerate() {
            *x = i as f32;
        }
        let c1 = t.channel(0, 1).unwrap();
        assert_eq!(c1.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
        assert!(t.channel(0, 2).is_err());
        assert!(t.channel(1, 0).is_err());
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = Rng::seed_from(42);
        let mut r2 = Rng::seed_from(42);
        let a = Tensor::randn([8], &mut r1);
        let b = Tensor::randn([8], &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn arena_scope_recycles_tensor_storage() {
        crate::arena::scope(|| {
            let t = Tensor::full([4, 4], 3.0);
            let ptr = t.as_slice().as_ptr();
            drop(t);
            // Same capacity class comes back zeroed from the pool.
            let u = Tensor::zeros([4, 4]);
            assert_eq!(u.as_slice().as_ptr(), ptr);
            assert!(u.as_slice().iter().all(|&v| v.to_bits() == 0));
        });
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 4.0]);
        a.add_scaled(&b, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }
}
