//! Deterministic random number generation.
//!
//! Every stochastic component in the reproduction (weight init, diffusion
//! noise, synthetic datasets) draws from this one generator type so that runs
//! are reproducible from a single seed, which the paper's methodology
//! (fixed-seed FID evaluation) requires.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A seeded random number generator with the sampling primitives the
/// reproduction needs (uniform, normal, integer ranges).
///
/// # Examples
///
/// ```
/// use sqdm_tensor::Rng;
/// let mut rng = Rng::seed_from(7);
/// let x = rng.uniform();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: StdRng,
    /// Cached second output of the Box-Muller transform.
    spare_normal: Option<f32>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Rng {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent child generator; useful for giving each model
    /// or dataset its own stream while keeping a single master seed.
    pub fn fork(&mut self, salt: u64) -> Rng {
        let s: u64 = self.inner.random::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::seed_from(s)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.random::<f32>()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard-normal sample via the Box-Muller transform.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box-Muller on (0,1] uniforms; u1 must be nonzero for the log.
        let u1 = (1.0 - self.uniform()).max(f32::MIN_POSITIVE);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be nonempty");
        self.inner.random_range(0..n)
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        (self.uniform() as f64) < p
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::seed_from(123);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = Rng::seed_from(9);
        for _ in 0..1000 {
            let x = rng.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn index_in_range_and_shuffle_permutes() {
        let mut rng = Rng::seed_from(5);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::seed_from(11);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng::seed_from(3);
        assert!(!(0..100).any(|_| rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }
}
