//! Descriptive statistics: histograms, moments, feature covariances.
//!
//! Backs the activation-distribution analysis of the paper's Figure 5 and the
//! Gaussian fits of the sFID metric.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A fixed-range histogram over scalar samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `bins == 0` or
    /// `lo >= hi`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Result<Self> {
        // `partial_cmp` keeps the NaN-rejecting behavior of `!(lo < hi)`.
        if bins == 0 || lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
            return Err(TensorError::InvalidArgument {
                op: "Histogram::new",
                reason: format!("need bins > 0 and lo < hi, got bins={bins} lo={lo} hi={hi}"),
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f32) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let t = (x - self.lo) / (self.hi - self.lo);
            let b = ((t * self.counts.len() as f32) as usize).min(self.counts.len() - 1);
            self.counts[b] += 1;
        }
    }

    /// Adds every element of a tensor.
    pub fn add_tensor(&mut self, t: &Tensor) {
        for &x in t.as_slice() {
            self.add(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples observed (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f32 {
        let w = (self.hi - self.lo) / self.counts.len() as f32;
        self.lo + (i as f32 + 0.5) * w
    }

    /// Fraction of in-range samples falling in bin `i` (0 if empty).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Renders the histogram as ASCII bars, for the report binaries.
    pub fn ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut s = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * width) / max as usize);
            s.push_str(&format!("{:>9.3} | {}\n", self.bin_center(i), bar));
        }
        s
    }
}

/// Summary moments of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    /// Sample count.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population variance (division by N).
    pub variance: f64,
    /// Minimum sample.
    pub min: f32,
    /// Maximum sample.
    pub max: f32,
}

impl Moments {
    /// Computes moments over all elements of a tensor.
    pub fn of(t: &Tensor) -> Moments {
        let n = t.len();
        if n == 0 {
            return Moments {
                count: 0,
                mean: 0.0,
                variance: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mut sum = 0.0f64;
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &x in t.as_slice() {
            sum += x as f64;
            min = min.min(x);
            max = max.max(x);
        }
        let mean = sum / n as f64;
        let mut var = 0.0f64;
        for &x in t.as_slice() {
            let d = x as f64 - mean;
            var += d * d;
        }
        Moments {
            count: n,
            mean,
            variance: var / n as f64,
            min,
            max,
        }
    }

    /// Standard deviation.
    pub fn std(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Mean vector and covariance matrix of a feature matrix `[n_samples, dim]`.
///
/// Returns `(mean [dim], covariance [dim, dim])` using the population
/// convention (division by N).
///
/// # Errors
///
/// Returns an error if `features` is not rank 2 or has zero samples.
pub fn mean_and_covariance(features: &Tensor) -> Result<(Tensor, Tensor)> {
    if features.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "mean_and_covariance",
            expected: 2,
            actual: features.rank(),
        });
    }
    let (n, d) = (features.dims()[0], features.dims()[1]);
    if n == 0 {
        return Err(TensorError::InvalidArgument {
            op: "mean_and_covariance",
            reason: "need at least one sample".into(),
        });
    }
    let fv = features.as_slice();
    let mut mean = vec![0.0f64; d];
    for i in 0..n {
        for j in 0..d {
            mean[j] += fv[i * d + j] as f64;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let mut cov = vec![0.0f64; d * d];
    for i in 0..n {
        for a in 0..d {
            let da = fv[i * d + a] as f64 - mean[a];
            for b in a..d {
                let db = fv[i * d + b] as f64 - mean[b];
                cov[a * d + b] += da * db;
            }
        }
    }
    for a in 0..d {
        for b in a..d {
            let v = cov[a * d + b] / n as f64;
            cov[a * d + b] = v;
            cov[b * d + a] = v;
        }
    }
    Ok((
        Tensor::from_vec(mean.iter().map(|&x| x as f32).collect(), [d])?,
        Tensor::from_vec(cov.iter().map(|&x| x as f32).collect(), [d, d])?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        for x in [-0.5, 0.0, 0.1, 0.3, 0.6, 0.99, 1.0, 2.0] {
            h.add(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.total(), 8);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-6);
    }

    #[test]
    fn histogram_rejects_degenerate() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
    }

    #[test]
    fn moments_of_known_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let m = Moments::of(&t);
        assert_eq!(m.count, 4);
        assert!((m.mean - 2.5).abs() < 1e-9);
        assert!((m.variance - 1.25).abs() < 1e-6);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 4.0);
    }

    #[test]
    fn moments_of_empty() {
        let m = Moments::of(&Tensor::zeros([0]));
        assert_eq!(m.count, 0);
        assert_eq!(m.mean, 0.0);
    }

    #[test]
    fn covariance_of_standard_normal_is_near_identity() {
        let mut rng = Rng::seed_from(40);
        let f = Tensor::randn([4000, 3], &mut rng);
        let (mean, cov) = mean_and_covariance(&f).unwrap();
        for &m in mean.as_slice() {
            assert!(m.abs() < 0.1, "mean {m}");
        }
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                let got = cov.get(&[i, j]).unwrap();
                assert!((got - want).abs() < 0.12, "cov[{i},{j}] = {got}");
            }
        }
    }

    #[test]
    fn covariance_is_symmetric_psd_diag() {
        let f = Tensor::from_vec(vec![1.0, 2.0, 3.0, 6.0, 5.0, 10.0], [3, 2]).unwrap();
        let (_, cov) = mean_and_covariance(&f).unwrap();
        assert!((cov.get(&[0, 1]).unwrap() - cov.get(&[1, 0]).unwrap()).abs() < 1e-6);
        assert!(cov.get(&[0, 0]).unwrap() >= 0.0);
        assert!(cov.get(&[1, 1]).unwrap() >= 0.0);
    }

    #[test]
    fn ascii_render_nonempty() {
        let mut h = Histogram::new(-1.0, 1.0, 3).unwrap();
        h.add(0.0);
        let s = h.ascii(20);
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 3);
    }
}
