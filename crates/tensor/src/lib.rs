//! # sqdm-tensor
//!
//! Dense `f32` tensors and the neural-network math kernels used across the
//! SQ-DM reproduction: convolution (forward and backward), matrix
//! multiplication, softmax, activation functions, small linear algebra
//! (symmetric eigendecomposition, PSD matrix square root) and descriptive
//! statistics.
//!
//! The crate is deliberately minimal: a single contiguous row-major `f32`
//! container ([`Tensor`]), a seeded RNG ([`Rng`]) so every experiment is
//! reproducible, and free functions in [`ops`] implementing the kernels the
//! EDM U-Net needs. There is no autograd graph; the `sqdm-nn` crate composes
//! explicit forward/backward passes from these kernels.
//!
//! The hot kernels run on the deterministic worker pool in [`parallel`]
//! (sized by `SQDM_THREADS`, defaulting to the machine's available
//! parallelism). Work is partitioned so every output element is computed in
//! the exact serial order, so results are bitwise identical at any thread
//! count.
//!
//! # Examples
//!
//! ```
//! use sqdm_tensor::{ops, Rng, Tensor};
//! # fn main() -> Result<(), sqdm_tensor::TensorError> {
//! let mut rng = Rng::seed_from(0);
//! let x = Tensor::randn([1, 3, 8, 8], &mut rng);
//! let w = Tensor::randn([4, 3, 3, 3], &mut rng);
//! let y = ops::conv2d(&x, &w, None, ops::Conv2dGeometry::same(3))?;
//! assert_eq!(y.dims(), &[1, 4, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod arena;
mod error;
pub mod ops;
pub mod parallel;
mod rng;
mod shape;
pub mod stats;
mod tensor;

pub use error::{Result, TensorError};
pub use rng::Rng;
pub use shape::Shape;
pub use tensor::Tensor;
