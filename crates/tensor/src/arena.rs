//! Thread-local buffer pools for the zero-allocation steady state.
//!
//! Serving the same model over many denoise rounds allocates and frees the
//! same activation and scratch buffers over and over. This module provides a
//! per-thread *activation arena*: capacity-bucketed pools of `Vec<T>` that
//! hot paths draw from instead of the global allocator. Pooling is opt-in —
//! outside an [`scope`] every call degrades to a plain `Vec` allocation (or
//! drop), so nothing changes for one-shot callers.
//!
//! Design constraints, in order:
//!
//! 1. **Bitwise transparency.** A pooled buffer is always returned either
//!    empty ([`take`]) or fully overwritten with `T::default()`
//!    ([`take_zeroed`], a `memset` — bit-identical to a fresh zeroed
//!    allocation for every pooled element type). No stale data can leak into
//!    results, so pooling can never change numerics.
//! 2. **Steady-state allocation freedom.** Buckets are keyed by capacity in
//!    a `BTreeMap` and *never removed*: once the working set of shape
//!    classes has been seen, `take`/`recycle` are map lookups plus a
//!    `Vec::pop`/`push` into retained storage — no allocator traffic.
//! 3. **Thread locality.** Pools are `thread_local!`, so no locks and no
//!    cross-thread reuse. Worker-pool threads see their own (initially
//!    empty, scope-disabled) pools; the zero-allocation guarantee is
//!    measured on the scheduler thread with `SQDM_THREADS=1`, where the
//!    parallel runtime stays on the inline no-alloc path.
//!
//! The pool is deliberately *not* implemented as a global allocator wrapper:
//! the allocation-counting harness in `sqdm-bench` counts real allocator
//! calls, and an allocator-level cache would game that metric instead of
//! eliminating the work.

use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};

/// Marker bound for element types the arena can pool.
///
/// `Copy` guarantees clearing a buffer never runs user drop code, so
/// recycling is a length reset.
pub trait Poolable: Copy + 'static {}

impl<T: Copy + 'static> Poolable for T {}

/// One element type's pool: buffers bucketed by capacity. Buckets are kept
/// (empty) after their last buffer is taken so steady-state traffic never
/// touches `BTreeMap` node allocation.
struct TypedPool<T> {
    buckets: BTreeMap<usize, Vec<Vec<T>>>,
}

thread_local! {
    /// Re-entrant enable counter: pooling is active while > 0.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Per-element-type pools, retained for the life of the thread.
    static POOLS: RefCell<HashMap<TypeId, Box<dyn Any>>> =
        RefCell::new(HashMap::new());
}

/// Returns `true` if the calling thread is inside an arena [`scope`].
pub fn enabled() -> bool {
    DEPTH.with(|d| d.get() > 0)
}

/// Runs `f` with the calling thread's arena enabled.
///
/// Scopes nest; pooled buffers survive across scopes (the pool is emptied
/// only when the thread exits), so a warmup scope populates the buckets
/// later scopes hit. On panic the enable counter is restored, so a caught
/// panic cannot leave pooling stuck on.
pub fn scope<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = Guard;
    f()
}

fn with_pool<T: Poolable, R>(f: impl FnOnce(&mut TypedPool<T>) -> R) -> R {
    POOLS.with(|pools| {
        let mut pools = pools.borrow_mut();
        let pool = pools
            .entry(TypeId::of::<T>())
            .or_insert_with(|| {
                Box::new(TypedPool::<T> {
                    buckets: BTreeMap::new(),
                })
            })
            .downcast_mut::<TypedPool<T>>()
            .expect("arena pool registered under a foreign TypeId");
        f(pool)
    })
}

/// Takes an empty buffer with `capacity() >= cap` from the pool (smallest
/// sufficient bucket wins), or allocates one when the pool is disabled or
/// has no fit.
pub fn take<T: Poolable>(cap: usize) -> Vec<T> {
    if !enabled() {
        return Vec::with_capacity(cap);
    }
    with_pool::<T, _>(|pool| {
        for vecs in pool.buckets.range_mut(cap..).map(|(_, v)| v) {
            if let Some(buf) = vecs.pop() {
                debug_assert!(buf.is_empty() && buf.capacity() >= cap);
                return buf;
            }
        }
        Vec::with_capacity(cap)
    })
}

/// Takes a buffer of exactly `len` elements, all set to `T::default()`.
///
/// Bitwise identical to `vec![T::default(); len]` for `Copy` element types:
/// the buffer is cleared and then extended with the default value, so no
/// previous contents survive.
pub fn take_zeroed<T: Poolable + Default>(len: usize) -> Vec<T> {
    let mut buf = take::<T>(len);
    buf.resize(len, T::default());
    buf
}

/// Returns a buffer to the calling thread's pool.
///
/// Outside a [`scope`] (or for zero-capacity buffers) this is an ordinary
/// drop. Contents are discarded; only the capacity is retained.
pub fn recycle<T: Poolable>(mut buf: Vec<T>) {
    if buf.capacity() == 0 || !enabled() {
        return;
    }
    buf.clear();
    with_pool::<T, _>(|pool| {
        pool.buckets.entry(buf.capacity()).or_default().push(buf);
    });
}

/// Number of buffers currently parked in the calling thread's pool for
/// element type `T`. Test/diagnostic hook.
pub fn pooled_buffers<T: Poolable>() -> usize {
    with_pool::<T, _>(|pool| pool.buckets.values().map(Vec::len).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_arena_is_plain_allocation() {
        assert!(!enabled());
        let v = take::<f32>(16);
        assert!(v.capacity() >= 16 && v.is_empty());
        recycle(v);
        // Nothing was parked: recycling outside a scope drops the buffer.
        assert_eq!(pooled_buffers::<f32>(), 0);
    }

    #[test]
    fn scoped_take_recycle_reuses_storage() {
        scope(|| {
            let mut v = take::<f32>(32);
            v.extend_from_slice(&[1.0; 32]);
            let cap = v.capacity();
            let ptr = v.as_ptr();
            recycle(v);
            assert_eq!(pooled_buffers::<f32>(), 1);

            // Same capacity class comes back with identical storage, empty.
            let w = take::<f32>(32);
            assert_eq!(w.capacity(), cap);
            assert_eq!(w.as_ptr(), ptr);
            assert!(w.is_empty());
            recycle(w);
        });
    }

    #[test]
    fn take_zeroed_never_leaks_stale_contents() {
        scope(|| {
            let mut v = take::<f32>(8);
            v.extend_from_slice(&[7.0; 8]);
            recycle(v);
            let z = take_zeroed::<f32>(8);
            assert_eq!(z, vec![0.0f32; 8]);
            assert_eq!(z.iter().map(|x| x.to_bits()).sum::<u32>(), 0);
            recycle(z);
        });
    }

    #[test]
    fn smallest_sufficient_bucket_wins() {
        scope(|| {
            recycle::<i8>(Vec::with_capacity(64));
            recycle::<i8>(Vec::with_capacity(16));
            let v = take::<i8>(10);
            assert_eq!(v.capacity(), 16, "should prefer the tighter bucket");
            let w = take::<i8>(10);
            assert_eq!(w.capacity(), 64, "falls through to the next bucket");
            recycle(v);
            recycle(w);
        });
    }

    #[test]
    fn scopes_nest_and_unwind() {
        scope(|| {
            assert!(enabled());
            scope(|| assert!(enabled()));
            assert!(enabled());
        });
        assert!(!enabled());
    }
}
