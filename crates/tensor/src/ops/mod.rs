//! Math kernels operating on [`Tensor`](crate::Tensor)s.

mod activation;
pub mod blocking;
mod conv;
pub mod int;
mod linalg;
mod matmul;
mod softmax;

pub use activation::{sigmoid, Activation, SILU_MIN};
pub use conv::{
    col2im, conv2d, conv2d_backward, conv2d_multi, im2col, Conv2dGeometry, Conv2dGrads,
};
pub use linalg::{sqrtm_psd, sym_eigen, trace, SymEigen};
pub use matmul::{
    matmul, matmul_a_bt, matmul_a_bt_multi, matmul_a_bt_multi_into, matmul_at_b, transpose,
};
pub use softmax::{softmax_rows, softmax_rows_backward};
