//! Scalar non-linear activation functions and their derivatives.
//!
//! The SiLU-vs-ReLU comparison is central to the paper (§III-B): SiLU's small
//! negative tail forces signed quantization and near-zero sparsity, while
//! ReLU permits unsigned formats and clamps ~65% of activations to exact
//! zero.

use crate::parallel;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Approximate work units per element for the activation sweeps: SiLU
/// costs an `exp` plus a division, so give the pool's grain heuristic a
/// realistic per-element cost rather than a single flop.
const ACT_WORK_PER_ELEM: usize = 16;

/// The activation functions used by the EDM U-Net blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (no non-linearity).
    Identity,
    /// SiLU / swish: `x * sigmoid(x)`. Output range `[-0.278…, +inf)`.
    Silu,
    /// Rectified linear unit: `max(x, 0)`. Output range `[0, +inf)`.
    Relu,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Silu => x * sigmoid(x),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative of the activation at `x` (pre-activation value).
    ///
    /// For ReLU the derivative at exactly 0 is taken as 0, the usual
    /// subgradient convention.
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Silu => {
                let s = sigmoid(x);
                s + x * s * (1.0 - s)
            }
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Applies the activation element-wise to a tensor, in parallel over
    /// the worker pool for large tensors (elementwise work is trivially
    /// order-preserving, so results are identical at any thread count).
    pub fn forward(self, x: &Tensor) -> Tensor {
        let mut out = x.clone();
        parallel::par_map_inplace(out.as_mut_slice(), ACT_WORK_PER_ELEM, move |v| {
            self.apply(v)
        });
        out
    }

    /// Element-wise `grad_out * f'(x)` for backprop, parallel like
    /// [`Activation::forward`].
    ///
    /// # Errors
    ///
    /// Returns a shape-mismatch error if the tensors differ in shape.
    pub fn backward(self, x: &Tensor, grad_out: &Tensor) -> crate::error::Result<Tensor> {
        if x.shape() != grad_out.shape() {
            // Delegate to zip_with for the canonical shape-mismatch error.
            return grad_out.zip_with(x, |g, v| g * self.derivative(v));
        }
        let mut out = grad_out.clone();
        parallel::par_zip_inplace(
            out.as_mut_slice(),
            x.as_slice(),
            ACT_WORK_PER_ELEM,
            |g, v| g * self.derivative(v),
        );
        Ok(out)
    }

    /// Global minimum of the activation's output range.
    ///
    /// SiLU attains `min ≈ -0.2785` (at `x ≈ -1.2785`); ReLU and identity
    /// outputs are bounded below by 0 and -inf respectively.
    pub fn output_min(self) -> f32 {
        match self {
            Activation::Identity => f32::NEG_INFINITY,
            Activation::Silu => SILU_MIN,
            Activation::Relu => 0.0,
        }
    }

    /// Whether outputs are guaranteed non-negative (enabling unsigned
    /// quantization formats).
    pub fn is_non_negative(self) -> bool {
        matches!(self, Activation::Relu)
    }
}

/// The global minimum of SiLU, `min_x x·σ(x) ≈ -0.27846`.
pub const SILU_MIN: f32 = -0.278_464_54;

/// Numerically-stable logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silu_values() {
        assert_eq!(Activation::Silu.apply(0.0), 0.0);
        assert!((Activation::Silu.apply(1.0) - 0.731_058_6).abs() < 1e-5);
        // The documented global minimum is attained near x = -1.2785.
        let min = (-300..300)
            .map(|i| Activation::Silu.apply(i as f32 / 100.0))
            .fold(f32::INFINITY, f32::min);
        assert!((min - SILU_MIN).abs() < 1e-3, "min {min}");
    }

    #[test]
    fn relu_clamps_negatives_to_exact_zero() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
        assert!(Activation::Relu.is_non_negative());
        assert!(!Activation::Silu.is_non_negative());
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in [Activation::Identity, Activation::Silu, Activation::Relu] {
            for x in [-2.0f32, -0.5, 0.3, 1.7] {
                let fd = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let an = act.derivative(x);
                assert!((fd - an).abs() < 1e-2, "{act:?} at {x}: fd={fd} an={an}");
            }
        }
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-3);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn tensor_forward_backward() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = Activation::Relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
        let g = Activation::Relu
            .backward(&x, &Tensor::from_slice(&[1.0, 1.0, 1.0]))
            .unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_induces_sparsity_silu_does_not() {
        // Standard-normal pre-activations: ReLU zeroes ~half, SiLU none.
        let mut rng = crate::rng::Rng::seed_from(77);
        let x = Tensor::randn([1000], &mut rng);
        let relu_sparsity = Activation::Relu.forward(&x).sparsity();
        let silu_sparsity = Activation::Silu.forward(&x).sparsity();
        assert!(relu_sparsity > 0.4, "relu {relu_sparsity}");
        assert!(silu_sparsity < 0.01, "silu {silu_sparsity}");
    }
}
