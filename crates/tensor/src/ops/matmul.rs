//! Dense matrix multiplication kernels.
//!
//! All three variants (`a×b`, `aᵀ×b`, `a×bᵀ`) reduce to one shared
//! row-blocked i-k-j core ([`gemm_rows`]): the transposed operands are
//! packed into row-major layout once, then every output row is produced by
//! the same inner loop. That gives the variants identical cache behavior
//! *and* identical floating-point semantics — per output element the
//! reduction always runs over `k` in ascending order, which is what makes
//! the worker-pool parallelism bitwise-deterministic at any thread count.
//!
//! These kernels are strictly dense: every operand element participates,
//! so non-finite values propagate exactly as IEEE 754 dictates (`0 × NaN =
//! NaN`, `0 × ∞ = NaN`). Sparsity-aware zero skipping is the business of
//! the quantization/accelerator layers (`sqdm-quant`, `sqdm-accel`), not
//! of the dense reference kernels.

use crate::arena;
use crate::error::{Result, TensorError};
use crate::ops::blocking;
use crate::parallel;
use crate::tensor::Tensor;

/// The shared GEMM core: `out[i, :] += Σ_k lhs[i, k] · rhs[k, :]` with
/// `lhs` `[m, k]` and `rhs` `[k, n]`, both row-major, `out` zeroed on
/// entry.
///
/// Rows of `out` are distributed over the worker pool in contiguous
/// blocks; each row's reduction runs over `k` in ascending order on
/// exactly one thread, so the result is bitwise identical to the serial
/// i-k-j loop for every thread count.
///
/// Task sizing comes from the shared [`blocking`] heuristic; the loop
/// itself stays untiled on purpose — see the module docs of
/// [`blocking`](crate::ops::blocking) for why the broadcast-form f32 core
/// does not take the panel/tile advice the integer kernels use.
fn gemm_rows(lhs: &[f32], rhs: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(lhs.len(), m * k);
    debug_assert_eq!(rhs.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    parallel::par_chunks_mut(out, n, blocking::gemm_task_work(k, n), |i, o_row| {
        let a_row = &lhs[i * k..(i + 1) * k];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            let b_row = &rhs[kk * n..(kk + 1) * n];
            for (o, &b_kj) in o_row.iter_mut().zip(b_row.iter()) {
                *o += a_ik * b_kj;
            }
        }
    });
}

/// Packs the transpose of a row-major `[rows, cols]` slice into a new
/// row-major `[cols, rows]` buffer, in parallel for large matrices.
fn pack_transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    debug_assert_eq!(src.len(), rows * cols);
    let mut out = arena::take_zeroed::<f32>(src.len());
    if rows == 0 || cols == 0 {
        return out;
    }
    parallel::par_chunks_mut(&mut out, rows, 2 * rows, |j, o_row| {
        for (i, o) in o_row.iter_mut().enumerate() {
            *o = src[i * cols + j];
        }
    });
    out
}

fn check_rank2(op: &'static str, a: &Tensor, b: &Tensor) -> Result<()> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: if a.rank() != 2 { a.rank() } else { b.rank() },
        });
    }
    Ok(())
}

/// Multiplies two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
///
/// The kernel is a cache-friendly i-k-j loop over contiguous rows,
/// row-parallelized over the [`crate::parallel`] worker pool; it is the
/// workhorse behind `conv2d` (via im2col), the linear layers and attention.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2 and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use sqdm_tensor::{Tensor, ops::matmul};
/// # fn main() -> Result<(), sqdm_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2])?;
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul", a, b)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = arena::take_zeroed::<f32>(m * n);
    gemm_rows(a.as_slice(), b.as_slice(), &mut out, m, k, n);
    Tensor::from_vec(out, [m, n])
}

/// Multiplies `aᵀ × b`: `[k, m]ᵀ × [k, n] → [m, n]`.
///
/// `a` is packed into row-major `[m, k]` once and fed to the same blocked
/// core as [`matmul`], so the two share one inner loop and one set of
/// floating-point semantics.
///
/// # Errors
///
/// Same conditions as [`matmul`], with the inner dimension taken from the
/// *first* axis of both operands.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul_at_b", a, b)?;
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let at = pack_transpose(a.as_slice(), k, m);
    let mut out = arena::take_zeroed::<f32>(m * n);
    gemm_rows(&at, b.as_slice(), &mut out, m, k, n);
    arena::recycle(at);
    Tensor::from_vec(out, [m, n])
}

/// Multiplies `a × bᵀ`: `[m, k] × [n, k]ᵀ → [m, n]`.
///
/// `b` is packed into row-major `[k, n]` once and fed to the same blocked
/// core as [`matmul`] — previously this variant used its own j-inner
/// dot-product loop with different cache behavior (and different
/// zero-skip semantics) from its siblings.
///
/// # Errors
///
/// Same conditions as [`matmul`], with the inner dimension taken from the
/// *second* axis of both operands.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul_a_bt", a, b)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let bt = pack_transpose(b.as_slice(), n, k);
    let mut out = arena::take_zeroed::<f32>(m * n);
    gemm_rows(a.as_slice(), &bt, &mut out, m, k, n);
    arena::recycle(bt);
    Tensor::from_vec(out, [m, n])
}

/// Multi-request `a × bᵀ`: applies one shared right-hand operand to a
/// batch of row blocks in a single GEMM call.
///
/// Each request `xs[i]` is `[mᵢ, k]`; the row blocks are stacked into one
/// `[Σmᵢ, k]` operand, `b` (`[n, k]`) is packed into row-major `[k, n]`
/// **once** for the whole batch, and one [`matmul_a_bt`]-shaped GEMM
/// produces all outputs. This is the f32 batched-serving entry point: the
/// transpose pack of the (weight) operand is amortized across requests
/// and the worker pool sees `Σmᵢ` rows instead of `mᵢ` at a time.
///
/// Because every output element's reduction runs over `k` in ascending
/// order on exactly one thread, each returned `[mᵢ, n]` tensor is bitwise
/// identical to `matmul_a_bt(&xs[i], b)` at any `SQDM_THREADS`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`]/[`TensorError::ShapeMismatch`]
/// if any request is not rank 2 or disagrees with `b` on the reduction
/// length.
pub fn matmul_a_bt_multi(xs: &[Tensor], b: &Tensor) -> Result<Vec<Tensor>> {
    let (n, _, total_rows) = check_a_bt_multi(xs, b)?;
    let mut out = arena::take_zeroed::<f32>(total_rows * n);
    matmul_a_bt_multi_into(xs, b, &mut out)?;
    let mut results = Vec::with_capacity(xs.len());
    let mut row = 0usize;
    for x in xs {
        let m = x.dims()[0];
        let mut chunk = arena::take::<f32>(m * n);
        chunk.extend_from_slice(&out[row * n..(row + m) * n]);
        results.push(Tensor::from_vec(chunk, [m, n])?);
        row += m;
    }
    arena::recycle(out);
    Ok(results)
}

/// [`matmul_a_bt_multi`] writing into caller-owned storage: `out` must
/// hold exactly `Σmᵢ · n` elements and receives the stacked `[Σmᵢ, n]`
/// result (request `i`'s rows at offset `Σ_{j<i} mⱼ · n`), fully
/// overwritten. The zero-allocation serving path's f32 GEMM entry.
///
/// # Errors
///
/// Same conditions as [`matmul_a_bt_multi`], plus
/// [`TensorError::ShapeMismatch`] if `out` has the wrong length.
pub fn matmul_a_bt_multi_into(xs: &[Tensor], b: &Tensor, out: &mut [f32]) -> Result<()> {
    let (n, k, total_rows) = check_a_bt_multi(xs, b)?;
    if out.len() != total_rows * n {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt_multi(out)",
            lhs: vec![out.len()],
            rhs: vec![total_rows, n],
        });
    }
    let mut lhs = arena::take::<f32>(total_rows * k);
    for x in xs {
        lhs.extend_from_slice(x.as_slice());
    }
    let bt = pack_transpose(b.as_slice(), n, k);
    out.fill(0.0);
    gemm_rows(&lhs, &bt, out, total_rows, k, n);
    arena::recycle(lhs);
    arena::recycle(bt);
    Ok(())
}

/// Shared shape validation for the `matmul_a_bt_multi*` entries: returns
/// `(n, k, Σmᵢ)`.
fn check_a_bt_multi(xs: &[Tensor], b: &Tensor) -> Result<(usize, usize, usize)> {
    let (n, k) = match b.dims() {
        [n, k] => (*n, *k),
        _ => {
            return Err(TensorError::RankMismatch {
                op: "matmul_a_bt_multi",
                expected: 2,
                actual: b.rank(),
            })
        }
    };
    let mut total_rows = 0usize;
    for x in xs {
        check_rank2("matmul_a_bt_multi", x, b)?;
        if x.dims()[1] != k {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_a_bt_multi",
                lhs: x.dims().to_vec(),
                rhs: b.dims().to_vec(),
            });
        }
        total_rows += x.dims()[0];
    }
    Ok((n, k, total_rows))
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if the input is not rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "transpose",
            expected: 2,
            actual: a.rank(),
        });
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let out = pack_transpose(a.as_slice(), m, n);
    Tensor::from_vec(out, [n, m])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.get(&[i, kk]).unwrap() * b.get(&[kk, j]).unwrap();
                }
                out.set(&[i, j], acc).unwrap();
            }
        }
        out
    }

    #[test]
    fn matches_naive_reference() {
        let mut rng = Rng::seed_from(1);
        for (m, k, n) in [(1, 1, 1), (3, 4, 5), (7, 2, 9), (8, 8, 8)] {
            let a = Tensor::randn([m, k], &mut rng);
            let b = Tensor::randn([k, n], &mut rng);
            let fast = matmul(&a, &b).unwrap();
            let slow = naive(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::randn([4, 6], &mut rng);
        let b = Tensor::randn([4, 5], &mut rng);
        let via_t = matmul(&transpose(&a).unwrap(), &b).unwrap();
        let direct = matmul_at_b(&a, &b).unwrap();
        for (x, y) in via_t.as_slice().iter().zip(direct.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }

        let c = Tensor::randn([3, 6], &mut rng);
        let via_t2 = matmul(&a, &transpose(&c).unwrap()).unwrap();
        let direct2 = matmul_a_bt(&a, &c).unwrap();
        for (x, y) in via_t2.as_slice().iter().zip(direct2.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros([3])).is_err());
        assert!(transpose(&Tensor::zeros([3])).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let mut eye = Tensor::zeros([3, 3]);
        for i in 0..3 {
            eye.set(&[i, i], 1.0).unwrap();
        }
        assert_eq!(matmul(&a, &eye).unwrap(), a);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::randn([5, 7], &mut rng);
        assert_eq!(transpose(&transpose(&a).unwrap()).unwrap(), a);
    }

    /// Regression for the zero-skip bug: `if a_ik == 0.0 { continue; }`
    /// silently masked NaN/Inf in the other operand, violating `0 × NaN =
    /// NaN` and making the variants disagree on non-finite inputs.
    #[test]
    fn zero_times_nan_propagates_in_all_variants() {
        // a's first row is exactly zero where b's first row holds the
        // non-finite values, so the old skip would have hidden them.
        let a = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], [2, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, 1.0, 1.0], [2, 2]).unwrap();

        let y = matmul(&a, &b).unwrap();
        // out[0, 0] = 0·NaN + 1·1 and out[0, 1] = 0·∞ + 1·1: both NaN.
        assert!(y.get(&[0, 0]).unwrap().is_nan());
        assert!(y.get(&[0, 1]).unwrap().is_nan());
        // Rows without a zero-masked non-finite stay finite or propagate ∞.
        assert!(y.get(&[1, 0]).unwrap().is_nan()); // 2·NaN + 3·1

        let y_atb = matmul_at_b(&transpose(&a).unwrap(), &b).unwrap();
        let y_abt = matmul_a_bt(&a, &transpose(&b).unwrap()).unwrap();
        for (via, name) in [(y_atb, "matmul_at_b"), (y_abt, "matmul_a_bt")] {
            for (lhs, rhs) in y.as_slice().iter().zip(via.as_slice()) {
                assert!(
                    lhs.to_bits() == rhs.to_bits() || (lhs.is_nan() && rhs.is_nan()),
                    "{name} disagrees with matmul on non-finite input: {lhs} vs {rhs}"
                );
            }
        }
    }

    #[test]
    fn infinity_times_zero_is_nan_not_zero() {
        // The mirrored case: zero in *b*, non-finite in *a*.
        let a = Tensor::from_vec(vec![f32::INFINITY, 2.0], [1, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 1.0], [2, 2]).unwrap();
        let y = matmul(&a, &b).unwrap();
        assert!(y.get(&[0, 0]).unwrap().is_nan()); // ∞·0 + 2·1
        assert!(y.get(&[0, 1]).unwrap().is_infinite()); // ∞·1 + 2·1
    }

    #[test]
    fn nan_row_poisons_only_its_own_output_row() {
        let a = Tensor::from_vec(vec![f32::NAN, 0.0, 0.0, 1.0], [2, 2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let y = matmul(&a, &b).unwrap();
        assert!(y.get(&[0, 0]).unwrap().is_nan());
        assert!(y.get(&[0, 1]).unwrap().is_nan());
        assert_eq!(y.get(&[1, 0]).unwrap(), 3.0);
        assert_eq!(y.get(&[1, 1]).unwrap(), 4.0);
    }

    #[test]
    fn multi_request_gemm_matches_per_request_calls_bitwise() {
        let mut rng = Rng::seed_from(9);
        let b = Tensor::randn([6, 5], &mut rng);
        let xs = [
            Tensor::randn([3, 5], &mut rng),
            Tensor::randn([1, 5], &mut rng),
            Tensor::randn([4, 5], &mut rng),
        ];
        let batched = matmul_a_bt_multi(&xs, &b).unwrap();
        assert_eq!(batched.len(), xs.len());
        for (x, y) in xs.iter().zip(&batched) {
            let single = matmul_a_bt(x, &b).unwrap();
            assert_eq!(single.dims(), y.dims());
            for (a, c) in single.as_slice().iter().zip(y.as_slice()) {
                assert_eq!(a.to_bits(), c.to_bits());
            }
        }
        // Reduction-length mismatch is rejected.
        assert!(matmul_a_bt_multi(&[Tensor::zeros([2, 4])], &b).is_err());
        assert!(matmul_a_bt_multi(&[], &b).unwrap().is_empty());
    }

    #[test]
    fn empty_inner_dimension_yields_zeros() {
        let a = Tensor::zeros([3, 0]);
        let b = Tensor::zeros([0, 4]);
        let y = matmul(&a, &b).unwrap();
        assert_eq!(y.dims(), &[3, 4]);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(
            matmul_a_bt(&a, &Tensor::zeros([4, 0])).unwrap().dims(),
            &[3, 4]
        );
        assert_eq!(
            matmul_at_b(&Tensor::zeros([0, 3]), &b).unwrap().dims(),
            &[3, 4]
        );
    }
}
