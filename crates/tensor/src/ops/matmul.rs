//! Dense matrix multiplication kernels.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Multiplies two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
///
/// The kernel is a cache-friendly i-k-j loop over contiguous rows; it is the
/// workhorse behind `conv2d` (via im2col), the linear layers and attention.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2 and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use sqdm_tensor::{Tensor, ops::matmul};
/// # fn main() -> Result<(), sqdm_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2])?;
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: a.rank(),
        });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: b.rank(),
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &av[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &bv[kk * n..(kk + 1) * n];
            for (o, &b_kj) in o_row.iter_mut().zip(b_row.iter()) {
                *o += a_ik * b_kj;
            }
        }
    }
    Tensor::from_vec(out, [m, n])
}

/// Multiplies `aᵀ × b`: `[k, m]ᵀ × [k, n] → [m, n]` without materializing the
/// transpose.
///
/// # Errors
///
/// Same conditions as [`matmul`], with the inner dimension taken from the
/// *first* axis of both operands.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul_at_b",
            expected: 2,
            actual: if a.rank() != 2 { a.rank() } else { b.rank() },
        });
    }
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for kk in 0..k {
        let a_row = &av[kk * m..(kk + 1) * m];
        let b_row = &bv[kk * n..(kk + 1) * n];
        for (i, &a_ki) in a_row.iter().enumerate() {
            if a_ki == 0.0 {
                continue;
            }
            let o_row = &mut out[i * n..(i + 1) * n];
            for (o, &b_kj) in o_row.iter_mut().zip(b_row.iter()) {
                *o += a_ki * b_kj;
            }
        }
    }
    Tensor::from_vec(out, [m, n])
}

/// Multiplies `a × bᵀ`: `[m, k] × [n, k]ᵀ → [m, n]` without materializing the
/// transpose.
///
/// # Errors
///
/// Same conditions as [`matmul`], with the inner dimension taken from the
/// *second* axis of both operands.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul_a_bt",
            expected: 2,
            actual: if a.rank() != 2 { a.rank() } else { b.rank() },
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &av[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, [m, n])
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if the input is not rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "transpose",
            expected: 2,
            actual: a.rank(),
        });
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let av = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = av[i * n + j];
        }
    }
    Tensor::from_vec(out, [n, m])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.get(&[i, kk]).unwrap() * b.get(&[kk, j]).unwrap();
                }
                out.set(&[i, j], acc).unwrap();
            }
        }
        out
    }

    #[test]
    fn matches_naive_reference() {
        let mut rng = Rng::seed_from(1);
        for (m, k, n) in [(1, 1, 1), (3, 4, 5), (7, 2, 9), (8, 8, 8)] {
            let a = Tensor::randn([m, k], &mut rng);
            let b = Tensor::randn([k, n], &mut rng);
            let fast = matmul(&a, &b).unwrap();
            let slow = naive(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::randn([4, 6], &mut rng);
        let b = Tensor::randn([4, 5], &mut rng);
        let via_t = matmul(&transpose(&a).unwrap(), &b).unwrap();
        let direct = matmul_at_b(&a, &b).unwrap();
        for (x, y) in via_t.as_slice().iter().zip(direct.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }

        let c = Tensor::randn([3, 6], &mut rng);
        let via_t2 = matmul(&a, &transpose(&c).unwrap()).unwrap();
        let direct2 = matmul_a_bt(&a, &c).unwrap();
        for (x, y) in via_t2.as_slice().iter().zip(direct2.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros([3])).is_err());
        assert!(transpose(&Tensor::zeros([3])).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let mut eye = Tensor::zeros([3, 3]);
        for i in 0..3 {
            eye.set(&[i, i], 1.0).unwrap();
        }
        assert_eq!(matmul(&a, &eye).unwrap(), a);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::randn([5, 7], &mut rng);
        assert_eq!(transpose(&transpose(&a).unwrap()).unwrap(), a);
    }
}
