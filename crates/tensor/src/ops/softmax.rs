//! Softmax and related reductions over the last axis.
//!
//! Used by the EDM attention block (`enc.16x16_block_1`-style image
//! self-attention in the paper's Figure 2).

use crate::arena;
use crate::error::{Result, TensorError};
use crate::parallel;
use crate::tensor::Tensor;

/// Row-wise softmax over the last axis of a rank-2 tensor.
///
/// Numerically stabilized by subtracting the row maximum before
/// exponentiation. Rows are independent, so they are distributed over the
/// worker pool in contiguous blocks; each row is reduced serially, making
/// the result bitwise identical at any thread count.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if the input is not rank 2 or
/// [`TensorError::InvalidArgument`] if the last axis is empty.
///
/// # Examples
///
/// ```
/// use sqdm_tensor::{Tensor, ops::softmax_rows};
/// # fn main() -> Result<(), sqdm_tensor::TensorError> {
/// let x = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], [2, 2])?;
/// let y = softmax_rows(&x)?;
/// assert!((y.get(&[0, 0])? - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn softmax_rows(x: &Tensor) -> Result<Tensor> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "softmax_rows",
            expected: 2,
            actual: x.rank(),
        });
    }
    let (m, n) = (x.dims()[0], x.dims()[1]);
    if n == 0 {
        return Err(TensorError::InvalidArgument {
            op: "softmax_rows",
            reason: "last axis is empty".into(),
        });
    }
    let xv = x.as_slice();
    let mut out = arena::take_zeroed::<f32>(m * n);
    parallel::par_chunks_mut(&mut out, n, 8 * n, |i, orow| {
        let row = &xv[i * n..(i + 1) * n];
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f32;
        for (o, &v) in orow.iter_mut().zip(row.iter()) {
            *o = (v - max).exp();
            sum += *o;
        }
        for o in orow.iter_mut() {
            *o /= sum;
        }
    });
    Tensor::from_vec(out, [m, n])
}

/// Backward pass of [`softmax_rows`].
///
/// Given `y = softmax(x)` and the upstream gradient `grad_out`, returns
/// `grad_x[i, j] = y[i, j] * (grad_out[i, j] - Σ_k grad_out[i, k] y[i, k])`.
///
/// # Errors
///
/// Returns a shape-mismatch error if `y` and `grad_out` differ in shape.
pub fn softmax_rows_backward(y: &Tensor, grad_out: &Tensor) -> Result<Tensor> {
    if y.shape() != grad_out.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "softmax_rows_backward",
            lhs: y.dims().to_vec(),
            rhs: grad_out.dims().to_vec(),
        });
    }
    if y.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "softmax_rows_backward",
            expected: 2,
            actual: y.rank(),
        });
    }
    let (m, n) = (y.dims()[0], y.dims()[1]);
    let yv = y.as_slice();
    let gv = grad_out.as_slice();
    let mut out = arena::take_zeroed::<f32>(m * n);
    if n > 0 {
        parallel::par_chunks_mut(&mut out, n, 4 * n, |i, orow| {
            let yrow = &yv[i * n..(i + 1) * n];
            let grow = &gv[i * n..(i + 1) * n];
            let dot: f32 = yrow.iter().zip(grow.iter()).map(|(a, b)| a * b).sum();
            for ((o, &yy), &gg) in orow.iter_mut().zip(yrow.iter()).zip(grow.iter()) {
                *o = yy * (gg - dot);
            }
        });
    }
    Tensor::from_vec(out, [m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn rows_sum_to_one() {
        let mut rng = Rng::seed_from(20);
        let x = Tensor::randn([5, 9], &mut rng).scale(3.0);
        let y = softmax_rows(&x).unwrap();
        for i in 0..5 {
            let s: f32 = (0..9).map(|j| y.get(&[i, j]).unwrap()).sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
        }
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn stable_for_large_inputs() {
        let x = Tensor::from_vec(vec![1000.0, 1000.0, -1000.0], [1, 3]).unwrap();
        let y = softmax_rows(&x).unwrap();
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        assert!((y.get(&[0, 0]).unwrap() - 0.5).abs() < 1e-5);
        assert!(y.get(&[0, 2]).unwrap() < 1e-6);
    }

    #[test]
    fn shift_invariance() {
        let x = Tensor::from_vec(vec![0.1, 0.7, -0.3], [1, 3]).unwrap();
        let shifted = x.map(|v| v + 5.0);
        let a = softmax_rows(&x).unwrap();
        let b = softmax_rows(&shifted).unwrap();
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = Rng::seed_from(21);
        let x = Tensor::randn([2, 4], &mut rng);
        let y = softmax_rows(&x).unwrap();
        let gout = Tensor::randn([2, 4], &mut rng);
        let grad = softmax_rows_backward(&y, &gout).unwrap();

        let eps = 1e-3f32;
        let loss = |x: &Tensor| -> f32 {
            softmax_rows(x)
                .unwrap()
                .as_slice()
                .iter()
                .zip(gout.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        for idx in 0..8 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            let an = grad.as_slice()[idx];
            assert!((fd - an).abs() < 1e-2, "idx {idx}: fd={fd} an={an}");
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(softmax_rows(&Tensor::zeros([3])).is_err());
        assert!(softmax_rows(&Tensor::zeros([2, 0])).is_err());
        let y = Tensor::zeros([2, 3]);
        assert!(softmax_rows_backward(&y, &Tensor::zeros([3, 2])).is_err());
    }
}
