//! Small dense linear-algebra routines: symmetric eigendecomposition and the
//! positive-semidefinite matrix square root.
//!
//! These power the Fréchet distance ("sFID") metric used to reproduce the
//! paper's image-quality tables: `FD² = |μ₁-μ₂|² + Tr(C₁ + C₂ - 2(C₁C₂)^½)`,
//! where the trace term is evaluated via the symmetric form
//! `Tr((C₁^½ C₂ C₁^½)^½)`.

use crate::error::{Result, TensorError};
use crate::ops::matmul::matmul;
use crate::tensor::Tensor;

/// Result of a symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in unspecified order.
    pub values: Vec<f32>,
    /// Eigenvectors as the columns of a `[n, n]` tensor.
    pub vectors: Tensor,
}

fn check_square_symmetric(a: &Tensor, op: &'static str) -> Result<usize> {
    if a.rank() != 2 || a.dims()[0] != a.dims()[1] {
        return Err(TensorError::InvalidArgument {
            op,
            reason: format!("expected square matrix, got shape {:?}", a.dims()),
        });
    }
    let n = a.dims()[0];
    let av = a.as_slice();
    let scale = a.abs_max().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if (av[i * n + j] - av[j * n + i]).abs() > 1e-3 * scale {
                return Err(TensorError::InvalidArgument {
                    op,
                    reason: format!(
                        "matrix not symmetric at ({i},{j}): {} vs {}",
                        av[i * n + j],
                        av[j * n + i]
                    ),
                });
            }
        }
    }
    Ok(n)
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Converges quadratically for the modest sizes (≤ 256) used by the sFID
/// feature covariances.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the input is not square and
/// symmetric (to a small tolerance).
pub fn sym_eigen(a: &Tensor) -> Result<SymEigen> {
    let n = check_square_symmetric(a, "sym_eigen")?;
    let mut m: Vec<f64> = a.as_slice().iter().map(|&x| x as f64).collect();
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let off = |m: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m[i * n + j] * m[i * n + j];
                }
            }
        }
        s
    };

    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        if off(&m) < 1e-18 * (n * n) as f64 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, θ) on both sides: M ← GᵀMG.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let values: Vec<f32> = (0..n).map(|i| m[i * n + i] as f32).collect();
    let vectors = Tensor::from_vec(v.iter().map(|&x| x as f32).collect(), [n, n])?;
    Ok(SymEigen { values, vectors })
}

/// Principal square root of a symmetric positive-semidefinite matrix.
///
/// Small negative eigenvalues arising from round-off are clamped to zero.
///
/// # Errors
///
/// Returns an error if the input is not square/symmetric, or has an
/// eigenvalue significantly below zero (not PSD).
pub fn sqrtm_psd(a: &Tensor) -> Result<Tensor> {
    let n = check_square_symmetric(a, "sqrtm_psd")?;
    let eig = sym_eigen(a)?;
    let tol = -1e-3 * a.abs_max().max(1.0);
    for &l in &eig.values {
        if l < tol {
            return Err(TensorError::InvalidArgument {
                op: "sqrtm_psd",
                reason: format!("matrix has negative eigenvalue {l}"),
            });
        }
    }
    // A^{1/2} = V diag(sqrt(λ)) Vᵀ
    let vv = eig.vectors.as_slice();
    let mut vs = vec![0.0f32; n * n]; // V · diag(sqrt λ)
    for i in 0..n {
        for j in 0..n {
            vs[i * n + j] = vv[i * n + j] * eig.values[j].max(0.0).sqrt();
        }
    }
    let vs = Tensor::from_vec(vs, [n, n])?;
    let vt = crate::ops::matmul::transpose(&eig.vectors)?;
    matmul(&vs, &vt)
}

/// Trace of a square matrix.
///
/// # Errors
///
/// Returns an error if the matrix is not square.
pub fn trace(a: &Tensor) -> Result<f32> {
    if a.rank() != 2 || a.dims()[0] != a.dims()[1] {
        return Err(TensorError::InvalidArgument {
            op: "trace",
            reason: format!("expected square matrix, got shape {:?}", a.dims()),
        });
    }
    let n = a.dims()[0];
    Ok((0..n).map(|i| a.as_slice()[i * n + i]).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul::{matmul_a_bt, transpose};
    use crate::rng::Rng;

    fn random_psd(n: usize, rng: &mut Rng) -> Tensor {
        let b = Tensor::randn([n, n], rng);
        matmul_a_bt(&b, &b).unwrap().scale(1.0 / n as f32)
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let mut rng = Rng::seed_from(30);
        let a = random_psd(6, &mut rng);
        let eig = sym_eigen(&a).unwrap();
        // Reconstruct V diag(λ) Vᵀ and compare with A.
        let n = 6;
        let vv = eig.vectors.as_slice();
        let mut vl = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                vl[i * n + j] = vv[i * n + j] * eig.values[j];
            }
        }
        let vl = Tensor::from_vec(vl, [n, n]).unwrap();
        let recon = matmul(&vl, &transpose(&eig.vectors).unwrap()).unwrap();
        for (x, y) in recon.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let mut rng = Rng::seed_from(31);
        let a = random_psd(5, &mut rng);
        let eig = sym_eigen(&a).unwrap();
        let vtv = matmul(&transpose(&eig.vectors).unwrap(), &eig.vectors).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let want = if i == j { 1.0 } else { 0.0 };
                let got = vtv.get(&[i, j]).unwrap();
                assert!((got - want).abs() < 1e-4, "({i},{j}) = {got}");
            }
        }
    }

    #[test]
    fn sqrtm_squares_back() {
        let mut rng = Rng::seed_from(32);
        let a = random_psd(7, &mut rng);
        let s = sqrtm_psd(&a).unwrap();
        let s2 = matmul(&s, &s).unwrap();
        for (x, y) in s2.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn sqrtm_of_diagonal() {
        let a = Tensor::from_vec(vec![4.0, 0.0, 0.0, 9.0], [2, 2]).unwrap();
        let s = sqrtm_psd(&a).unwrap();
        let got: Vec<f32> = s.as_slice().to_vec();
        assert!((got[0] - 2.0).abs() < 1e-4);
        assert!((got[3] - 3.0).abs() < 1e-4);
        assert!(got[1].abs() < 1e-4 && got[2].abs() < 1e-4);
    }

    #[test]
    fn sqrtm_rejects_indefinite() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, -5.0], [2, 2]).unwrap();
        assert!(sqrtm_psd(&a).is_err());
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        assert!(sym_eigen(&a).is_err());
        assert!(trace(&Tensor::zeros([2, 3])).is_err());
        assert!((trace(&Tensor::ones([3, 3])).unwrap() - 3.0).abs() < 1e-6);
    }
}
