//! Native integer execution kernels: i8×i8→i32 GEMM with scale/zero-point
//! requantization, integer im2col/conv2d, and a temporal sparse-delta GEMM.
//!
//! The dense f32 kernels in this crate *simulate* quantization
//! (quantize→dequantize, then float math). The kernels here execute the
//! compute model the paper actually accelerates: operands stay in low-bit
//! integer codes, multiply-accumulate runs in exact i32 arithmetic, and a
//! single requantization step maps each block's accumulator back to real
//! values. The sparse-delta GEMM additionally consumes a temporal change
//! mask (`sqdm-sparsity`'s per-channel change masks, expanded to reduction
//! rows) and only accumulates contributions from rows that changed since
//! the previous denoising step — unchanged rows ride along from the
//! previous output for free.
//!
//! Layout and determinism follow the f32 kernel layer: the left operand is
//! a [`QuantizedMatrix`] whose per-row scale blocks tile the reduction
//! dimension, the right operand is a row-major code matrix with one
//! per-tensor scale/zero-point ([`XQuant`]), and output rows are fanned out
//! over the [`crate::parallel`] worker pool in contiguous blocks. Every
//! output element is produced by exactly one task running the serial inner
//! loop in serial order, so results are bitwise identical at any
//! `SQDM_THREADS`.
//!
//! **Accumulator range.** Block accumulators are i32, matching the
//! accumulator width of real INT8 datapaths. One product is bounded by
//! `128 · 255 = 32 640`, so a scale block may span up to ~65 000 reduction
//! elements before overflow becomes possible — far beyond any layer in
//! this workspace (the largest reduction is `C·kh·kw` of a convolution).

use crate::error::{Result, TensorError};
use crate::ops::Conv2dGeometry;
use crate::parallel;
use crate::tensor::Tensor;

/// Per-tensor quantization parameters of the right-hand (activation)
/// operand: `real = scale · (code − zero_point)`.
///
/// The workspace's symmetric formats always use `zero_point = 0`; the
/// kernels still honor a nonzero zero point so asymmetric activation
/// grids can be executed (and tested) without a separate code path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XQuant {
    /// Real value of one code step.
    pub scale: f32,
    /// Code representing real zero.
    pub zero_point: i32,
}

impl XQuant {
    /// Symmetric per-tensor quantization (zero point 0).
    pub fn symmetric(scale: f32) -> Self {
        XQuant {
            scale,
            zero_point: 0,
        }
    }
}

/// An integer-code matrix with per-row scale blocks along its columns —
/// the weight operand of the integer GEMM family.
///
/// `codes` is row-major `[rows, cols]`. Row `i` is requantized in blocks
/// of `block_len` consecutive columns; `scales[i · n_blocks + b]` is the
/// real value of one code step in block `b` of row `i`. Per-channel
/// quantization is the single-block case (`block_len == cols`).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    codes: Vec<i8>,
    rows: usize,
    cols: usize,
    scales: Vec<f32>,
    block_len: usize,
}

impl QuantizedMatrix {
    /// Builds a matrix from codes and per-row blocked scales.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the code or scale
    /// buffer length is inconsistent with `rows × cols` and the block
    /// structure, or if `block_len` is zero while `cols` is not.
    pub fn new(
        codes: Vec<i8>,
        rows: usize,
        cols: usize,
        scales: Vec<f32>,
        block_len: usize,
    ) -> Result<Self> {
        if codes.len() != rows * cols {
            return Err(TensorError::InvalidArgument {
                op: "QuantizedMatrix::new",
                reason: format!("{} codes for a {rows}x{cols} matrix", codes.len()),
            });
        }
        if cols > 0 && block_len == 0 {
            return Err(TensorError::InvalidArgument {
                op: "QuantizedMatrix::new",
                reason: "block_len must be nonzero for a nonempty matrix".into(),
            });
        }
        let n_blocks = if cols == 0 {
            0
        } else {
            cols.div_ceil(block_len)
        };
        if scales.len() != rows * n_blocks {
            return Err(TensorError::InvalidArgument {
                op: "QuantizedMatrix::new",
                reason: format!(
                    "{} scales for {rows} rows x {n_blocks} blocks",
                    scales.len()
                ),
            });
        }
        Ok(QuantizedMatrix {
            codes,
            rows,
            cols,
            scales,
            block_len,
        })
    }

    /// Builds a per-channel matrix: one scale per row, a single block
    /// spanning all columns.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantizedMatrix::new`].
    pub fn per_channel(codes: Vec<i8>, rows: usize, cols: usize, scales: Vec<f32>) -> Result<Self> {
        Self::new(codes, rows, cols, scales, cols.max(1))
    }

    /// Number of rows (output channels of the GEMM).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the reduction length).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Scale-block length along the columns.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Number of scale blocks per row.
    pub fn n_blocks(&self) -> usize {
        if self.cols == 0 {
            0
        } else {
            self.cols.div_ceil(self.block_len)
        }
    }

    /// The integer codes, row-major.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// The per-row blocked scales, `[rows, n_blocks]` row-major.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }
}

fn check_qgemm(op: &'static str, w: &QuantizedMatrix, x_len: usize, n: usize) -> Result<()> {
    if x_len != w.cols * n {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: vec![w.rows, w.cols],
            rhs: vec![x_len / n.max(1), n],
        });
    }
    Ok(())
}

/// Widens i8 codes to zero-point-adjusted i32 where the columns of the
/// `[k, stripe · xqs.len()]` matrix are striped per request: columns
/// `[s · stripe, (s + 1) · stripe)` of every row use `xqs[s].zero_point`.
///
/// When every request shares one zero point (the workspace's symmetric
/// formats always do) this collapses to the flat [`widen_codes`] sweep.
fn widen_codes_striped(codes: &[i8], stripe: usize, xqs: &[XQuant]) -> Vec<i32> {
    if xqs.iter().all(|q| q.zero_point == xqs[0].zero_point) {
        return widen_codes(codes, xqs.first().map_or(0, |q| q.zero_point));
    }
    let n = stripe * xqs.len();
    let mut out = vec![0i32; codes.len()];
    parallel::par_chunks_mut(&mut out, n, 2 * n, |row, block| {
        for (s, xq) in xqs.iter().enumerate() {
            let src = &codes[row * n + s * stripe..][..stripe];
            let dst = &mut block[s * stripe..(s + 1) * stripe];
            for (o, &c) in dst.iter_mut().zip(src.iter()) {
                *o = c as i32 - xq.zero_point;
            }
        }
    });
    out
}

/// Integer GEMM with requantization: `out[i, j] = x.scale · Σ_b w.scale[i, b]
/// · Σ_{k ∈ block b} w[i, k] · (x[k, j] − x.zero_point)`.
///
/// `w` is `[m, k]`, `x_codes` is row-major `[k, n]`, `out` is `[m, n]` and
/// is fully overwritten. The per-block i32 accumulation is exact; the only
/// roundings are the two f32 scale multiplies per block, so for
/// power-of-two scales the result is bitwise identical to the fake-quant
/// f32 reference (which accumulates the same products in the same
/// ascending-`k` order).
///
/// Zero weight codes are skipped — exact in integer arithmetic, unlike the
/// IEEE-invalid f32 zero-skip removed in PR 2.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if buffer lengths disagree with
/// the shapes.
pub fn qgemm(
    w: &QuantizedMatrix,
    x_codes: &[i8],
    n: usize,
    xq: XQuant,
    out: &mut [f32],
) -> Result<()> {
    qgemm_multi(w, x_codes, n, &[xq], out)
}

/// Batched integer GEMM: one weight pack applied to a batch of
/// independently quantized activation matrices, in a single kernel call.
///
/// The activation operand packs `xqs.len()` request stripes side by side:
/// columns `[s · stripe, (s + 1) · stripe)` of the `[k, stripe ·
/// xqs.len()]` code matrix belong to request `s` and are requantized with
/// `xqs[s]`. This is the batched-serving entry point — the weight codes,
/// scales and the per-channel requant parameters are shared by every
/// request, so the (re)quantization cost of `w` is paid once per batch
/// instead of once per request.
///
/// Every output element is produced by the exact per-request [`qgemm`]
/// operation sequence (exact i32 block accumulation in ascending-`k`
/// order, then one f32 requantization per scale block), so the result is
/// **bitwise identical** to `xqs.len()` independent single-request calls —
/// at any `SQDM_THREADS`, since rows still fan out over the
/// [`crate::parallel`] pool in contiguous blocks.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if buffer lengths disagree with
/// the shapes.
pub fn qgemm_multi(
    w: &QuantizedMatrix,
    x_codes: &[i8],
    stripe: usize,
    xqs: &[XQuant],
    out: &mut [f32],
) -> Result<()> {
    let n = stripe * xqs.len();
    check_qgemm("qgemm", w, x_codes.len(), n)?;
    if out.len() != w.rows * n {
        return Err(TensorError::ShapeMismatch {
            op: "qgemm(out)",
            lhs: vec![out.len()],
            rhs: vec![w.rows, n],
        });
    }
    if w.rows == 0 || n == 0 {
        return Ok(());
    }
    let k = w.cols;
    let nb = w.n_blocks();
    // Widen the activation codes (zero points folded in) once, outside the
    // m-fold inner loops: the hot loop then reduces to a broadcast
    // multiply-accumulate over i32 lanes, which vectorizes like the f32
    // GEMM core. The widened copy costs k·n — amortized over m rows.
    let xi = widen_codes_striped(x_codes, stripe, xqs);
    parallel::par_chunks_mut(out, n, 2 * k * n, |i, o_row| {
        o_row.fill(0.0);
        let mut acc = vec![0i32; n];
        let w_row = &w.codes[i * k..(i + 1) * k];
        for b in 0..nb {
            let k0 = b * w.block_len;
            let k1 = (k0 + w.block_len).min(k);
            acc.fill(0);
            for (kk, &w_ik) in w_row[k0..k1].iter().enumerate() {
                if w_ik == 0 {
                    continue;
                }
                let w_ik = w_ik as i32;
                let x_row = &xi[(k0 + kk) * n..(k0 + kk + 1) * n];
                for (a, &x_kj) in acc.iter_mut().zip(x_row.iter()) {
                    *a += w_ik * x_kj;
                }
            }
            let ws = w.scales[i * nb + b];
            for (s, xq) in xqs.iter().enumerate() {
                let sc = ws * xq.scale;
                let o_stripe = &mut o_row[s * stripe..(s + 1) * stripe];
                let a_stripe = &acc[s * stripe..(s + 1) * stripe];
                for (o, &a) in o_stripe.iter_mut().zip(a_stripe.iter()) {
                    *o += a as f32 * sc;
                }
            }
        }
    });
    Ok(())
}

/// Widens i8 codes to zero-point-adjusted i32, in parallel for large
/// buffers.
fn widen_codes(codes: &[i8], zero_point: i32) -> Vec<i32> {
    let mut out = vec![0i32; codes.len()];
    if codes.is_empty() {
        return out;
    }
    let chunk = parallel::elementwise_chunk_len(codes.len());
    parallel::par_chunks_mut(&mut out, chunk, chunk, |ci, block| {
        let src = &codes[ci * chunk..ci * chunk + block.len()];
        for (o, &c) in block.iter_mut().zip(src.iter()) {
            *o = c as i32 - zero_point;
        }
    });
    out
}

/// Temporal sparse-delta GEMM: recomputes only the contributions of
/// reduction rows whose activation changed since the previous step.
///
/// Given the previous step's output `prev_out = qgemm(w, x_prev)` and a
/// change mask over the `k` reduction rows, computes
///
/// ```text
/// out[i, j] = prev_out[i, j]
///           + x.scale · Σ_b w.scale[i, b] · Σ_{k ∈ b, changed[k]}
///                 w[i, k] · (x_curr[k, j] − x_prev[k, j])
/// ```
///
/// which equals the dense `qgemm(w, x_curr)` whenever the mask covers
/// every row that actually differs (zero points cancel in the code
/// delta). Rows marked unchanged are not read at all, so the arithmetic
/// cost scales with the changed fraction — the paper's temporal-sparsity
/// win. Both steps must share one activation scale (static calibration),
/// otherwise the code-space delta is meaningless.
///
/// The mask typically comes from
/// `sqdm_sparsity::TemporalTrace::change_mask`, expanded to reduction
/// rows for convolutions (each channel owns `kh·kw` consecutive rows).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on any buffer-length
/// disagreement (codes, mask, previous output, output).
#[allow(clippy::too_many_arguments)] // GEMM geometry + two steps of state
pub fn qgemm_delta(
    w: &QuantizedMatrix,
    x_curr: &[i8],
    x_prev: &[i8],
    changed: &[bool],
    n: usize,
    xq: XQuant,
    prev_out: &[f32],
    out: &mut [f32],
) -> Result<()> {
    qgemm_delta_multi(w, x_curr, x_prev, changed, n, &[xq], prev_out, out)
}

/// Batched temporal sparse-delta GEMM: [`qgemm_delta`] over a batch of
/// independent request streams, each with its **own** change mask.
///
/// Columns are striped per request exactly as in [`qgemm_multi`]; the
/// mask is the per-stream concatenation `changed[s · k + r]` = "reduction
/// row `r` of stream `s` changed since that stream's previous denoising
/// step" (`k = w.cols()`). Streams are fully independent: one stream at a
/// fully-dense step (mask all true) recomputes everything while a
/// converged neighbor stream skips nearly all of its rows — the
/// sparse-delta win applies per stream, not per batch.
///
/// Bitwise identical to `xqs.len()` independent [`qgemm_delta`] calls at
/// any thread count, by the same argument as [`qgemm_multi`] (exact i32
/// accumulation; per-element f32 requantization in identical order).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on any buffer-length
/// disagreement (codes, mask, previous output, output).
#[allow(clippy::too_many_arguments)] // GEMM geometry + two steps of state
pub fn qgemm_delta_multi(
    w: &QuantizedMatrix,
    x_curr: &[i8],
    x_prev: &[i8],
    changed: &[bool],
    stripe: usize,
    xqs: &[XQuant],
    prev_out: &[f32],
    out: &mut [f32],
) -> Result<()> {
    let n = stripe * xqs.len();
    check_qgemm("qgemm_delta", w, x_curr.len(), n)?;
    if x_prev.len() != x_curr.len() {
        return Err(TensorError::ShapeMismatch {
            op: "qgemm_delta(prev)",
            lhs: vec![x_prev.len()],
            rhs: vec![x_curr.len()],
        });
    }
    if changed.len() != w.cols * xqs.len() {
        return Err(TensorError::ShapeMismatch {
            op: "qgemm_delta(mask)",
            lhs: vec![changed.len()],
            rhs: vec![xqs.len(), w.cols],
        });
    }
    if out.len() != w.rows * n || prev_out.len() != out.len() {
        return Err(TensorError::ShapeMismatch {
            op: "qgemm_delta(out)",
            lhs: vec![prev_out.len(), out.len()],
            rhs: vec![w.rows, n],
        });
    }
    if w.rows == 0 || n == 0 {
        return Ok(());
    }
    let k = w.cols;
    let nb = w.n_blocks();
    // Widen the code deltas of the *changed* rows once (zero points
    // cancel); unchanged rows stay zero and are never read. As in
    // [`qgemm`], this keeps the hot loop a vectorizable i32
    // multiply-accumulate. Each stream widens only its own changed rows.
    let mut di = vec![0i32; x_curr.len()];
    parallel::par_chunks_mut(&mut di, n, 2 * n, |row, block| {
        for s in 0..xqs.len() {
            if !changed[s * k + row] {
                continue;
            }
            let cols = row * n + s * stripe;
            let cur = &x_curr[cols..cols + stripe];
            let prv = &x_prev[cols..cols + stripe];
            let dst = &mut block[s * stripe..(s + 1) * stripe];
            for ((o, &c), &p) in dst.iter_mut().zip(cur.iter()).zip(prv.iter()) {
                *o = c as i32 - p as i32;
            }
        }
    });
    parallel::par_chunks_mut(out, n, 2 * k * n, |i, o_row| {
        o_row.copy_from_slice(&prev_out[i * n..(i + 1) * n]);
        let mut acc = vec![0i32; stripe];
        let w_row = &w.codes[i * k..(i + 1) * k];
        for (s, xq) in xqs.iter().enumerate() {
            let mask = &changed[s * k..(s + 1) * k];
            let o_stripe = &mut o_row[s * stripe..(s + 1) * stripe];
            for b in 0..nb {
                let k0 = b * w.block_len;
                let k1 = (k0 + w.block_len).min(k);
                if !mask[k0..k1].iter().any(|&c| c) {
                    continue;
                }
                acc.fill(0);
                for (kk, &w_ik) in w_row[k0..k1].iter().enumerate() {
                    if w_ik == 0 || !mask[k0 + kk] {
                        continue;
                    }
                    let w_ik = w_ik as i32;
                    let d_row = &di[(k0 + kk) * n + s * stripe..][..stripe];
                    for (a, &d_kj) in acc.iter_mut().zip(d_row.iter()) {
                        *a += w_ik * d_kj;
                    }
                }
                let sc = w.scales[i * nb + b] * xq.scale;
                for (o, &a) in o_stripe.iter_mut().zip(acc.iter()) {
                    *o += a as f32 * sc;
                }
            }
        }
    });
    Ok(())
}

/// Packs the transpose of a row-major `[rows, cols]` code matrix into a
/// new row-major `[cols, rows]` buffer (the integer analogue of the f32
/// `pack_transpose`, used to feed `[batch, features]` activations to
/// [`qgemm`]).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `src.len() != rows · cols`.
pub fn transpose_i8(src: &[i8], rows: usize, cols: usize) -> Result<Vec<i8>> {
    if src.len() != rows * cols {
        return Err(TensorError::InvalidArgument {
            op: "transpose_i8",
            reason: format!("{} codes for a {rows}x{cols} matrix", src.len()),
        });
    }
    let mut out = vec![0i8; src.len()];
    if rows == 0 || cols == 0 {
        return Ok(out);
    }
    parallel::par_chunks_mut(&mut out, rows, 2 * rows, |j, o_row| {
        for (i, o) in o_row.iter_mut().enumerate() {
            *o = src[i * cols + j];
        }
    });
    Ok(out)
}

/// Integer im2col: lowers an `[N, C, H, W]` code map into the
/// `[C·kh·kw, N·oh·ow]` GEMM operand, exactly mirroring the f32
/// [`crate::ops::im2col`] layout.
///
/// Padding positions are filled with `pad_code` — the code representing
/// real zero, i.e. the activation zero point (0 for the workspace's
/// symmetric formats).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the code buffer does not
/// match the dimensions, or geometry errors from
/// [`Conv2dGeometry::out_extent`].
#[allow(clippy::too_many_arguments)] // mirrors the f32 im2col geometry tuple
pub fn im2col_i8(
    codes: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    geom: Conv2dGeometry,
    pad_code: i8,
) -> Result<Vec<i8>> {
    im2col_i8_multi(codes, n, c, h, w, kh, kw, geom, &vec![pad_code; n])
}

/// [`im2col_i8`] with a per-request padding code: sample `nn` of the
/// `[N, C, H, W]` code map pads with `pad_codes[nn]` — its own activation
/// zero point. The batched-serving lowering, where each batch element was
/// quantized independently.
///
/// # Errors
///
/// Same conditions as [`im2col_i8`], plus
/// [`TensorError::InvalidArgument`] if `pad_codes.len() != n`.
#[allow(clippy::too_many_arguments)] // mirrors the f32 im2col geometry tuple
pub fn im2col_i8_multi(
    codes: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    geom: Conv2dGeometry,
    pad_codes: &[i8],
) -> Result<Vec<i8>> {
    if codes.len() != n * c * h * w {
        return Err(TensorError::InvalidArgument {
            op: "im2col_i8",
            reason: format!("{} codes for [{n}, {c}, {h}, {w}]", codes.len()),
        });
    }
    if pad_codes.len() != n {
        return Err(TensorError::InvalidArgument {
            op: "im2col_i8",
            reason: format!("{} pad codes for batch {n}", pad_codes.len()),
        });
    }
    let oh = geom.out_extent(h, kh)?;
    let ow = geom.out_extent(w, kw)?;
    let rows = c * kh * kw;
    let cols = n * oh * ow;
    let mut out = vec![0i8; rows * cols];
    if rows > 0 && cols > 0 {
        parallel::par_chunks_mut(&mut out, cols, 2 * cols, |row, o_row| {
            let cc = row / (kh * kw);
            let ky = (row / kw) % kh;
            let kx = row % kw;
            for nn in 0..n {
                o_row[nn * oh * ow..(nn + 1) * oh * ow].fill(pad_codes[nn]);
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let in_row = &codes[((nn * c + cc) * h + iy as usize) * w..][..w];
                    let o_base = (nn * oh + oy) * ow;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        o_row[o_base + ox] = in_row[ix as usize];
                    }
                }
            }
        });
    }
    Ok(out)
}

/// Native integer 2-D convolution: integer im2col, [`qgemm`], then the
/// same `[K, N·oh·ow] → [N, K, oh, ow]` epilogue (with bias) as the f32
/// [`crate::ops::conv2d`].
///
/// * `x_codes`: activation codes, `[N, C, H, W]` row-major
/// * `wq`: weight codes `[K, C·kh·kw]` with per-row scale blocks
/// * `bias`: optional `[K]` real-valued bias
///
/// # Errors
///
/// Returns shape/geometry errors from the lowering or the GEMM, and
/// [`TensorError::ShapeMismatch`] if `wq` or `bias` disagree with the
/// activation geometry.
#[allow(clippy::too_many_arguments)] // conv geometry + quantization params
pub fn conv2d_i8(
    x_codes: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    wq: &QuantizedMatrix,
    kh: usize,
    kw: usize,
    bias: Option<&[f32]>,
    geom: Conv2dGeometry,
    xq: XQuant,
) -> Result<Tensor> {
    conv2d_i8_multi(x_codes, n, c, h, w, wq, kh, kw, bias, geom, &vec![xq; n])
}

/// Batched native integer convolution: one weight pack, `n` independently
/// quantized batch elements.
///
/// Sample `nn` of the `[N, C, H, W]` code map carries its own activation
/// quantization `xqs[nn]` (scale, zero point, and therefore padding
/// code). The weight matrix — codes, scale blocks, and the per-channel
/// requantization parameters — is shared across the whole batch, so
/// batched serving pays the weight quantization once per step instead of
/// once per request. Bitwise identical to `n` single-sample
/// [`conv2d_i8`] calls at any thread count.
///
/// # Errors
///
/// Returns shape/geometry errors from the lowering or the GEMM, and
/// [`TensorError::ShapeMismatch`] if `wq`, `bias` or `xqs` disagree with
/// the activation geometry.
#[allow(clippy::too_many_arguments)] // conv geometry + quantization params
pub fn conv2d_i8_multi(
    x_codes: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    wq: &QuantizedMatrix,
    kh: usize,
    kw: usize,
    bias: Option<&[f32]>,
    geom: Conv2dGeometry,
    xqs: &[XQuant],
) -> Result<Tensor> {
    if xqs.len() != n {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_i8(xqs)",
            lhs: vec![xqs.len()],
            rhs: vec![n],
        });
    }
    if wq.cols() != c * kh * kw {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_i8",
            lhs: vec![wq.rows(), wq.cols()],
            rhs: vec![c * kh * kw],
        });
    }
    let k = wq.rows();
    if let Some(b) = bias {
        if b.len() != k {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_i8(bias)",
                lhs: vec![b.len()],
                rhs: vec![k],
            });
        }
    }
    let oh = geom.out_extent(h, kh)?;
    let ow = geom.out_extent(w, kw)?;
    let pad_codes: Vec<i8> = xqs
        .iter()
        .map(|q| q.zero_point.clamp(i8::MIN as i32, i8::MAX as i32) as i8)
        .collect();
    let cols = im2col_i8_multi(x_codes, n, c, h, w, kh, kw, geom, &pad_codes)?;
    let mut prod = vec![0.0f32; k * n * oh * ow];
    qgemm_multi(wq, &cols, oh * ow, xqs, &mut prod)?;

    let spatial = oh * ow;
    let mut out = vec![0.0f32; n * k * spatial];
    if n * k > 0 && spatial > 0 {
        parallel::par_chunks_mut(&mut out, spatial, 2 * spatial, |plane, dst| {
            let nn = plane / k;
            let kk = plane % k;
            let b = bias.map(|b| b[kk]).unwrap_or(0.0);
            let src = &prod[kk * n * spatial + nn * spatial..kk * n * spatial + (nn + 1) * spatial];
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = s + b;
            }
        });
    }
    Tensor::from_vec(out, [n, k, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::with_threads;

    /// Reference f64 requantized GEMM, straight from the definition.
    fn naive(w: &QuantizedMatrix, x: &[i8], n: usize, xq: XQuant) -> Vec<f32> {
        let (m, k, nb) = (w.rows(), w.cols(), w.n_blocks());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut y = 0.0f32;
                for b in 0..nb {
                    let k0 = b * w.block_len();
                    let k1 = (k0 + w.block_len()).min(k);
                    let mut acc = 0i32;
                    for kk in k0..k1 {
                        acc +=
                            w.codes()[i * k + kk] as i32 * (x[kk * n + j] as i32 - xq.zero_point);
                    }
                    y += acc as f32 * (w.scales()[i * nb + b] * xq.scale);
                }
                out[i * n + j] = y;
            }
        }
        out
    }

    #[test]
    fn qgemm_matches_naive_reference() {
        // 3x4 weights (two scale blocks of 2) times 4x5 activations.
        let codes: Vec<i8> = (0..12).map(|v| (v as i8) - 6).collect();
        let scales = vec![0.5, 0.25, 1.0, 0.125, 2.0, 0.5];
        let w = QuantizedMatrix::new(codes, 3, 4, scales, 2).unwrap();
        let x: Vec<i8> = (0..20).map(|v| ((v * 7) % 23) as i8 - 11).collect();
        let xq = XQuant {
            scale: 0.0625,
            zero_point: 3,
        };
        let mut out = vec![0.0f32; 15];
        qgemm(&w, &x, 5, xq, &mut out).unwrap();
        assert_eq!(out, naive(&w, &x, 5, xq));
    }

    #[test]
    fn qgemm_is_bitwise_deterministic_across_threads() {
        let codes: Vec<i8> = (0..64 * 48).map(|v| ((v * 31) % 251) as i8).collect();
        let scales: Vec<f32> = (0..64 * 3).map(|v| 0.01 + v as f32 * 1e-4).collect();
        let w = QuantizedMatrix::new(codes, 64, 48, scales, 16).unwrap();
        let x: Vec<i8> = (0..48 * 33).map(|v| ((v * 17) % 199) as i8).collect();
        let xq = XQuant::symmetric(0.03);
        let mut serial = vec![0.0f32; 64 * 33];
        with_threads(1, || qgemm(&w, &x, 33, xq, &mut serial).unwrap());
        for t in [2usize, 7] {
            let mut par = vec![0.0f32; 64 * 33];
            with_threads(t, || qgemm(&w, &x, 33, xq, &mut par).unwrap());
            let sb: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u32> = par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, pb, "qgemm differs at {t} threads");
        }
    }

    #[test]
    fn qgemm_delta_with_full_mask_matches_dense() {
        let codes: Vec<i8> = (0..6 * 8).map(|v| ((v * 13) % 127) as i8 - 60).collect();
        let scales: Vec<f32> = (0i32..12).map(|b| 0.5f32.powi(b % 5 + 1)).collect();
        let w = QuantizedMatrix::new(codes, 6, 8, scales, 4).unwrap();
        let prev: Vec<i8> = (0..8 * 5).map(|v| ((v * 11) % 200) as i8).collect();
        let curr: Vec<i8> = prev.iter().map(|&v| v.wrapping_add(3)).collect();
        let xq = XQuant {
            scale: 0.25,
            zero_point: -2,
        };
        let mut prev_out = vec![0.0f32; 30];
        qgemm(&w, &prev, 5, xq, &mut prev_out).unwrap();
        let mut dense = vec![0.0f32; 30];
        qgemm(&w, &curr, 5, xq, &mut dense).unwrap();
        let mut delta = vec![0.0f32; 30];
        qgemm_delta(&w, &curr, &prev, &[true; 8], 5, xq, &prev_out, &mut delta).unwrap();
        // Power-of-two scales keep every intermediate exact: bitwise match.
        for (d, e) in delta.iter().zip(dense.iter()) {
            assert_eq!(d.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn qgemm_delta_skips_unchanged_rows_exactly() {
        // Only rows 1 and 3 change; the mask marks exactly those, and the
        // delta result must equal the dense recomputation.
        let w =
            QuantizedMatrix::per_channel(vec![1, -2, 3, -4, 5, -6, 7, -8], 2, 4, vec![0.5, 0.25])
                .unwrap();
        let prev: Vec<i8> = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120];
        let mut curr = prev.clone();
        for j in 0..3 {
            curr[3 + j] = curr[3 + j].wrapping_add(5); // row 1
            curr[9 + j] = curr[9 + j].wrapping_sub(7); // row 3
        }
        let xq = XQuant::symmetric(0.125);
        let mut prev_out = vec![0.0f32; 6];
        qgemm(&w, &prev, 3, xq, &mut prev_out).unwrap();
        let mut dense = vec![0.0f32; 6];
        qgemm(&w, &curr, 3, xq, &mut dense).unwrap();
        let mut delta = vec![0.0f32; 6];
        qgemm_delta(
            &w,
            &curr,
            &prev,
            &[false, true, false, true],
            3,
            xq,
            &prev_out,
            &mut delta,
        )
        .unwrap();
        assert_eq!(delta, dense);
    }

    #[test]
    fn transpose_i8_round_trips() {
        let src: Vec<i8> = (0..15).map(|v| v as i8 - 7).collect();
        let t = transpose_i8(&src, 3, 5).unwrap();
        assert_eq!(t[0], src[0]);
        assert_eq!(t[1], src[5]);
        assert_eq!(transpose_i8(&t, 5, 3).unwrap(), src);
        assert!(transpose_i8(&src, 4, 5).is_err());
    }

    #[test]
    fn im2col_i8_matches_f32_im2col_layout() {
        let codes: Vec<i8> = (0..2 * 2 * 4 * 4).map(|v| (v % 17) as i8 - 8).collect();
        let geom = Conv2dGeometry::new(2, 1);
        let ic = im2col_i8(&codes, 2, 2, 4, 4, 3, 3, geom, 0).unwrap();
        let xf = Tensor::from_vec(codes.iter().map(|&v| v as f32).collect(), [2, 2, 4, 4]).unwrap();
        let fc = crate::ops::im2col(&xf, 3, 3, geom).unwrap();
        assert_eq!(ic.len(), fc.len());
        for (a, b) in ic.iter().zip(fc.as_slice()) {
            assert_eq!(*a as f32, *b);
        }
    }

    #[test]
    fn im2col_i8_pads_with_zero_point_code() {
        // 1x1x2x2 input, 3x3 kernel, padding 1: corners of the matrix are
        // entirely padding and must carry the zero-point code.
        let codes: Vec<i8> = vec![1, 2, 3, 4];
        let ic = im2col_i8(&codes, 1, 1, 2, 2, 3, 3, Conv2dGeometry::same(3), 5).unwrap();
        // Row 0 (ky=0, kx=0) column 0 (oy=0, ox=0) reads input (-1, -1): pad.
        assert_eq!(ic[0], 5);
        // Center row (ky=1, kx=1) is the identity gather: no padding.
        let center = 4; // (ky * kw + kx) with ky = kx = 1
        assert_eq!(&ic[center * 4..center * 4 + 4], &[1, 2, 3, 4]);
    }

    #[test]
    fn conv2d_i8_matches_f32_conv_on_pow2_scales() {
        // Codes and power-of-two scales: the f32 conv over dequantized
        // operands is exact, so the integer path must match bitwise.
        let xc: Vec<i8> = (0..50).map(|v| ((v * 29) % 255) as i8).collect(); // [1, 2, 5, 5]
        let wc: Vec<i8> = (0..54).map(|v| ((v * 37) % 251) as i8).collect(); // [3, 2, 3, 3]
        let w_scales = vec![0.5f32, 0.25, 0.125];
        let xq = XQuant::symmetric(0.0625);
        let bias = vec![0.75f32, -1.5, 3.0];
        let geom = Conv2dGeometry::same(3);

        let wq = QuantizedMatrix::per_channel(wc.clone(), 3, 18, w_scales.clone()).unwrap();
        let yi = conv2d_i8(&xc, 1, 2, 5, 5, &wq, 3, 3, Some(&bias), geom, xq).unwrap();

        let xf = Tensor::from_vec(
            xc.iter().map(|&v| v as f32 * xq.scale).collect(),
            [1, 2, 5, 5],
        )
        .unwrap();
        let wf = Tensor::from_vec(
            wc.iter()
                .enumerate()
                .map(|(i, &v)| v as f32 * w_scales[i / 18])
                .collect(),
            [3, 2, 3, 3],
        )
        .unwrap();
        let bf = Tensor::from_vec(bias.clone(), [3]).unwrap();
        let yf = crate::ops::conv2d(&xf, &wf, Some(&bf), geom).unwrap();
        assert_eq!(yi.dims(), yf.dims());
        for (a, b) in yi.as_slice().iter().zip(yf.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn shape_errors_are_reported() {
        let w = QuantizedMatrix::per_channel(vec![1, 2, 3, 4], 2, 2, vec![1.0, 1.0]).unwrap();
        let xq = XQuant::symmetric(1.0);
        let mut out = vec![0.0f32; 4];
        assert!(qgemm(&w, &[1i8; 5], 2, xq, &mut out).is_err());
        assert!(qgemm(&w, &[1i8; 4], 2, xq, &mut [0.0f32; 3]).is_err());
        assert!(qgemm_delta(&w, &[1; 4], &[1; 3], &[true; 2], 2, xq, &[0.0; 4], &mut out).is_err());
        assert!(qgemm_delta(&w, &[1; 4], &[1; 4], &[true; 3], 2, xq, &[0.0; 4], &mut out).is_err());
        assert!(QuantizedMatrix::new(vec![1], 1, 2, vec![1.0], 2).is_err());
        assert!(QuantizedMatrix::new(vec![1, 2], 1, 2, vec![1.0, 1.0], 1).is_ok());
        assert!(QuantizedMatrix::new(vec![1, 2], 1, 2, vec![1.0], 0).is_err());
        assert!(im2col_i8(&[1i8; 3], 1, 1, 2, 2, 3, 3, Conv2dGeometry::same(3), 0).is_err());
    }

    /// Builds an arbitrary blocked 6x8 weight matrix shared by the multi
    /// tests.
    fn multi_test_weight() -> QuantizedMatrix {
        let codes: Vec<i8> = (0..6 * 8).map(|v| ((v * 23) % 251) as i8).collect();
        let scales: Vec<f32> = (0..12).map(|v| 0.002 + v as f32 * 3e-4).collect();
        QuantizedMatrix::new(codes, 6, 8, scales, 4).unwrap()
    }

    #[test]
    fn qgemm_multi_is_bitwise_identical_to_per_request_calls() {
        let w = multi_test_weight();
        let k = w.cols();
        let stripe = 5;
        // Three requests with distinct scales *and* zero points.
        let xqs = [
            XQuant {
                scale: 0.03,
                zero_point: 2,
            },
            XQuant::symmetric(0.011),
            XQuant {
                scale: 0.25,
                zero_point: -7,
            },
        ];
        // Per-request code matrices [k, stripe], then packed side by side.
        let per: Vec<Vec<i8>> = (0..3)
            .map(|r| {
                (0..k * stripe)
                    .map(|v| ((v * 7 + r * 31) % 229) as i8)
                    .collect()
            })
            .collect();
        let n = stripe * xqs.len();
        let mut packed = vec![0i8; k * n];
        for row in 0..k {
            for (r, p) in per.iter().enumerate() {
                packed[row * n + r * stripe..row * n + (r + 1) * stripe]
                    .copy_from_slice(&p[row * stripe..(row + 1) * stripe]);
            }
        }
        for threads in [1usize, 2, 7] {
            with_threads(threads, || {
                let mut batched = vec![0.0f32; w.rows() * n];
                qgemm_multi(&w, &packed, stripe, &xqs, &mut batched).unwrap();
                for (r, p) in per.iter().enumerate() {
                    let mut single = vec![0.0f32; w.rows() * stripe];
                    qgemm(&w, p, stripe, xqs[r], &mut single).unwrap();
                    for i in 0..w.rows() {
                        for j in 0..stripe {
                            let b = batched[i * n + r * stripe + j];
                            let s = single[i * stripe + j];
                            assert_eq!(
                                b.to_bits(),
                                s.to_bits(),
                                "request {r} ({i},{j}) at {threads} threads: {b} vs {s}"
                            );
                        }
                    }
                }
            });
        }
    }

    #[test]
    fn qgemm_delta_multi_applies_each_streams_own_mask() {
        let w = multi_test_weight();
        let k = w.cols();
        let stripe = 4;
        let xqs = [XQuant::symmetric(0.02), XQuant::symmetric(0.05)];
        // Stream 0 changes rows {1, 6}; stream 1 changes rows {0, 3, 7}.
        let masks = [
            [false, true, false, false, false, false, true, false],
            [true, false, false, true, false, false, false, true],
        ];
        let prev: Vec<Vec<i8>> = (0..2)
            .map(|r| {
                (0..k * stripe)
                    .map(|v| ((v * 13 + r * 17) % 211) as i8)
                    .collect()
            })
            .collect();
        let curr: Vec<Vec<i8>> = prev
            .iter()
            .zip(masks.iter())
            .map(|(p, m)| {
                let mut c = p.clone();
                for (row, &ch) in m.iter().enumerate() {
                    if ch {
                        for v in &mut c[row * stripe..(row + 1) * stripe] {
                            *v = v.wrapping_add(4);
                        }
                    }
                }
                c
            })
            .collect();
        let pack = |srcs: &[Vec<i8>]| {
            let n = stripe * srcs.len();
            let mut out = vec![0i8; k * n];
            for row in 0..k {
                for (r, p) in srcs.iter().enumerate() {
                    out[row * n + r * stripe..row * n + (r + 1) * stripe]
                        .copy_from_slice(&p[row * stripe..(row + 1) * stripe]);
                }
            }
            out
        };
        let n = stripe * 2;
        let packed_prev = pack(&prev);
        let packed_curr = pack(&curr);
        let flat_mask: Vec<bool> = masks.iter().flatten().copied().collect();
        let mut prev_out = vec![0.0f32; w.rows() * n];
        qgemm_multi(&w, &packed_prev, stripe, &xqs, &mut prev_out).unwrap();
        for threads in [1usize, 2, 7] {
            with_threads(threads, || {
                let mut batched = vec![0.0f32; w.rows() * n];
                qgemm_delta_multi(
                    &w,
                    &packed_curr,
                    &packed_prev,
                    &flat_mask,
                    stripe,
                    &xqs,
                    &prev_out,
                    &mut batched,
                )
                .unwrap();
                for r in 0..2 {
                    let mut sprev = vec![0.0f32; w.rows() * stripe];
                    qgemm(&w, &prev[r], stripe, xqs[r], &mut sprev).unwrap();
                    let mut single = vec![0.0f32; w.rows() * stripe];
                    qgemm_delta(
                        &w,
                        &curr[r],
                        &prev[r],
                        &masks[r],
                        stripe,
                        xqs[r],
                        &sprev,
                        &mut single,
                    )
                    .unwrap();
                    for i in 0..w.rows() {
                        for j in 0..stripe {
                            let b = batched[i * n + r * stripe + j];
                            let s = single[i * stripe + j];
                            assert_eq!(
                                b.to_bits(),
                                s.to_bits(),
                                "stream {r} ({i},{j}) at {threads} threads"
                            );
                        }
                    }
                }
            });
        }
    }

    #[test]
    fn conv2d_i8_multi_matches_per_sample_convs_bitwise() {
        let (n, c, h, w_ext) = (3usize, 2usize, 5usize, 4usize);
        let geom = Conv2dGeometry::same(3);
        let wq = QuantizedMatrix::per_channel(
            (0..2 * 18).map(|v| ((v * 41) % 253) as i8).collect(),
            2,
            18,
            vec![0.004, 0.009],
        )
        .unwrap();
        let bias = [0.5f32, -0.25];
        let xqs = [
            XQuant::symmetric(0.02),
            XQuant {
                scale: 0.05,
                zero_point: 3,
            },
            XQuant::symmetric(0.013),
        ];
        let stride = c * h * w_ext;
        let codes: Vec<i8> = (0..n * stride).map(|v| ((v * 29) % 241) as i8).collect();
        let batched =
            conv2d_i8_multi(&codes, n, c, h, w_ext, &wq, 3, 3, Some(&bias), geom, &xqs).unwrap();
        for nn in 0..n {
            let single = conv2d_i8(
                &codes[nn * stride..(nn + 1) * stride],
                1,
                c,
                h,
                w_ext,
                &wq,
                3,
                3,
                Some(&bias),
                geom,
                xqs[nn],
            )
            .unwrap();
            let per = single.len();
            for (j, (&b, &s)) in batched.as_slice()[nn * per..(nn + 1) * per]
                .iter()
                .zip(single.as_slice())
                .enumerate()
            {
                assert_eq!(b.to_bits(), s.to_bits(), "sample {nn} element {j}");
            }
        }
    }

    #[test]
    fn multi_kernels_report_shape_errors() {
        let w = QuantizedMatrix::per_channel(vec![1, 2, 3, 4], 2, 2, vec![1.0, 1.0]).unwrap();
        let xqs = [XQuant::symmetric(1.0), XQuant::symmetric(0.5)];
        let mut out = vec![0.0f32; 2 * 2 * 2];
        // Wrong code length for 2 stripes of width 2.
        assert!(qgemm_multi(&w, &[1i8; 7], 2, &xqs, &mut out).is_err());
        // Mask length must be streams x k.
        assert!(qgemm_delta_multi(
            &w, &[1i8; 8], &[1i8; 8], &[true; 3], 2, &xqs, &[0.0; 8], &mut out,
        )
        .is_err());
        // Per-request quantization list must match the batch size.
        assert!(conv2d_i8_multi(
            &[1i8; 8],
            2,
            1,
            2,
            2,
            &QuantizedMatrix::per_channel(vec![1; 4], 1, 4, vec![1.0]).unwrap(),
            2,
            2,
            None,
            Conv2dGeometry::new(1, 0),
            &xqs[..1],
        )
        .is_err());
        assert!(im2col_i8_multi(
            &[1i8; 8],
            2,
            1,
            2,
            2,
            2,
            2,
            Conv2dGeometry::new(1, 0),
            &[0, 0, 0],
        )
        .is_err());
    }

    #[test]
    fn empty_operands_yield_empty_or_zero() {
        let w = QuantizedMatrix::per_channel(Vec::new(), 0, 3, Vec::new()).unwrap();
        let mut out = Vec::new();
        qgemm(&w, &[1i8; 6], 2, XQuant::symmetric(1.0), &mut out).unwrap();
        // Zero-length reduction: no scale blocks exist, output is zeroed.
        let wk0 = QuantizedMatrix::per_channel(Vec::new(), 2, 0, Vec::new()).unwrap();
        let mut out2 = vec![9.0f32; 4];
        qgemm(&wk0, &[], 2, XQuant::symmetric(1.0), &mut out2).unwrap();
        assert_eq!(out2, vec![0.0; 4]);
    }
}
