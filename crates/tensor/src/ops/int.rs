//! Native integer execution kernels: packed i8×i8 GEMM microkernels with
//! scale/zero-point requantization, integer im2col/conv2d, and a temporal
//! sparse-delta GEMM with a density-threshold dense fallback.
//!
//! The dense f32 kernels in this crate *simulate* quantization
//! (quantize→dequantize, then float math). The kernels here execute the
//! compute model the paper actually accelerates: operands stay in low-bit
//! integer codes, multiply-accumulate runs in exact i32 arithmetic, and a
//! single requantization step maps each block's accumulator back to real
//! values.
//!
//! # Packed microkernel layout
//!
//! The hot kernels run on a packed, cache-blocked layout instead of the
//! raw i8 operands:
//!
//! * **Weights** are packed once into a [`PackedQuantizedMatrix`]: each
//!   row's scale blocks are widened to i16 and padded to
//!   [`blocking::LANE`]-lane quanta (pads are zero codes), so every
//!   block-aligned dot product runs over whole vector registers with no
//!   scalar tail. Rows are grouped into [`blocking::PANEL_ROWS`]-row
//!   panels — the parallel work unit, sized with the f32 core's shared
//!   heuristic in [`crate::ops::blocking`].
//! * **Activations** are packed per call into the transposed `[n,
//!   packed_k]` i16 layout with the per-stream zero point folded in, so
//!   the inner loop is a straight dot product over two contiguous i16
//!   streams.
//! * **Inner loop.** The dot product is scalar Rust shaped so LLVM
//!   autovectorizes it to i16×i16→i32 **pair accumulation** (`vpmaddwd`
//!   on x86). Pair products here are bounded by `128 · 32 768 < 2²³`, so
//!   the pair sums are exact — the instruction's lone saturating case
//!   (`−32768 · −32768` in both lanes) cannot occur. A panel sweeps the
//!   activation columns in L1-sized tiles ([`blocking::col_tile`]) so the
//!   packed streams stay cache-resident across the panel's rows.
//! * **ISA dispatch.** At runtime the kernels pick an AVX2-compiled body
//!   when the CPU has AVX2 (std's `is_x86_feature_detected!`; the build
//!   stays scalar Rust — no intrinsics, no new dependencies) and a
//!   portable 4-column-stream body otherwise. Both bodies produce
//!   bit-identical results (see below); [`force_generic_kernels`] pins
//!   the portable body for testing.
//!
//! # Determinism contract
//!
//! Layout and determinism follow the f32 kernel layer: the left operand
//! is a [`QuantizedMatrix`] whose per-row scale blocks tile the reduction
//! dimension, the right operand is a row-major code matrix with one
//! per-tensor scale/zero-point ([`XQuant`]), and output panels are fanned
//! out over the [`crate::parallel`] worker pool in contiguous blocks.
//! Every output element is `Σ_b asc (acc_b as f32 · (w_scale[i, b] ·
//! x_scale))` where each block accumulator `acc_b` is **exact** i32 —
//! integer addition is associative, so the kernels are free to reorder
//! the reduction (pair accumulation, padded lanes, ISA-specific bodies)
//! without changing a single bit. The f32 requantization epilogue always
//! folds blocks in ascending order per element, so results are bitwise
//! identical at any `SQDM_THREADS`, on either ISA body, and to the
//! pre-overhaul broadcast kernels.
//!
//! **Accumulator range.** Block accumulators are i32, matching the
//! accumulator width of real INT8 datapaths. One product is bounded by
//! `128 · 255 = 32 640` for in-range zero points, so a scale block may
//! span up to ~65 000 reduction elements before overflow becomes possible
//! — far beyond any layer in this workspace (the largest reduction is
//! `C·kh·kw` of a convolution). The packed i16 activation layout bounds
//! zero points to [`MAX_ZERO_POINT`]; out-of-range zero points (which the
//! workspace's symmetric formats never produce) are rejected.
//!
//! # Temporal sparsity crossover
//!
//! [`qgemm_delta_multi`] consumes a temporal change mask
//! (`sqdm-sparsity`'s per-channel change masks, expanded to reduction
//! rows) and only accumulates contributions from rows that changed since
//! the previous denoising step. Row-skipping only wins while the mask is
//! sparse: above the measured crossover fraction
//! ([`DELTA_DENSE_THRESHOLD`]) the kernel falls back to the packed dense
//! microkernel over the masked deltas, which is bitwise identical (masked
//! rows contribute exact i32 zeros and inactive blocks skip the f32
//! epilogue either way) but much faster at high change density.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::arena;
use crate::error::{Result, TensorError};
use crate::ops::{blocking, Conv2dGeometry};
use crate::parallel;
use crate::tensor::Tensor;

/// Per-tensor quantization parameters of the right-hand (activation)
/// operand: `real = scale · (code − zero_point)`.
///
/// The workspace's symmetric formats always use `zero_point = 0`; the
/// kernels still honor a nonzero zero point so asymmetric activation
/// grids can be executed (and tested) without a separate code path. The
/// packed i16 layout bounds the magnitude to [`MAX_ZERO_POINT`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XQuant {
    /// Real value of one code step.
    pub scale: f32,
    /// Code representing real zero.
    pub zero_point: i32,
}

impl XQuant {
    /// Symmetric per-tensor quantization (zero point 0).
    pub fn symmetric(scale: f32) -> Self {
        XQuant {
            scale,
            zero_point: 0,
        }
    }
}

/// Largest zero-point magnitude the packed kernels accept: any i8 code
/// minus the zero point must fit the packed i16 activation lanes, so
/// `|zero_point| ≤ i16::MAX − i8::MAX = 32 640`.
pub const MAX_ZERO_POINT: i32 = i16::MAX as i32 - i8::MAX as i32;

/// An integer-code matrix with per-row scale blocks along its columns —
/// the weight operand of the integer GEMM family.
///
/// `codes` is row-major `[rows, cols]`. Row `i` is requantized in blocks
/// of `block_len` consecutive columns; `scales[i · n_blocks + b]` is the
/// real value of one code step in block `b` of row `i`. Per-channel
/// quantization is the single-block case (`block_len == cols`).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    codes: Vec<i8>,
    rows: usize,
    cols: usize,
    scales: Vec<f32>,
    block_len: usize,
}

impl QuantizedMatrix {
    /// Builds a matrix from codes and per-row blocked scales.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the code or scale
    /// buffer length is inconsistent with `rows × cols` and the block
    /// structure, or if `block_len` is zero while `cols` is not.
    pub fn new(
        codes: Vec<i8>,
        rows: usize,
        cols: usize,
        scales: Vec<f32>,
        block_len: usize,
    ) -> Result<Self> {
        if codes.len() != rows * cols {
            return Err(TensorError::InvalidArgument {
                op: "QuantizedMatrix::new",
                reason: format!("{} codes for a {rows}x{cols} matrix", codes.len()),
            });
        }
        if cols > 0 && block_len == 0 {
            return Err(TensorError::InvalidArgument {
                op: "QuantizedMatrix::new",
                reason: "block_len must be nonzero for a nonempty matrix".into(),
            });
        }
        let n_blocks = if cols == 0 {
            0
        } else {
            cols.div_ceil(block_len)
        };
        if scales.len() != rows * n_blocks {
            return Err(TensorError::InvalidArgument {
                op: "QuantizedMatrix::new",
                reason: format!(
                    "{} scales for {rows} rows x {n_blocks} blocks",
                    scales.len()
                ),
            });
        }
        Ok(QuantizedMatrix {
            codes,
            rows,
            cols,
            scales,
            block_len,
        })
    }

    /// Builds a per-channel matrix: one scale per row, a single block
    /// spanning all columns.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantizedMatrix::new`].
    pub fn per_channel(codes: Vec<i8>, rows: usize, cols: usize, scales: Vec<f32>) -> Result<Self> {
        Self::new(codes, rows, cols, scales, cols.max(1))
    }

    /// Number of rows (output channels of the GEMM).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the reduction length).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Scale-block length along the columns.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Number of scale blocks per row.
    pub fn n_blocks(&self) -> usize {
        if self.cols == 0 {
            0
        } else {
            self.cols.div_ceil(self.block_len)
        }
    }

    /// The integer codes, row-major.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// The per-row blocked scales, `[rows, n_blocks]` row-major.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }
}

/// A [`QuantizedMatrix`] pre-packed into the microkernel weight layout:
/// i16 codes, block-aligned and padded to [`blocking::LANE`]-lane quanta,
/// rows grouped into [`blocking::PANEL_ROWS`]-row panels (the parallel
/// work unit).
///
/// Packing costs one sweep over the codes; callers that apply the same
/// weight to many activations (the `nn` executor's prepared projections,
/// batched serving) pack once and call the `*_packed` kernel entry
/// points. The unpacked entry points ([`qgemm_multi`] etc.) pack
/// internally per call — correct, just repaying the pack each time.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedQuantizedMatrix {
    w: QuantizedMatrix,
    packed: Vec<i16>,
    /// Packed offset of each scale block within a row, plus the final
    /// packed row length: `starts[b]` is block `b`'s first lane,
    /// `starts[n_blocks]` is `packed_cols()`.
    starts: Vec<usize>,
}

impl PackedQuantizedMatrix {
    /// Packs a weight matrix into the microkernel layout.
    pub fn pack(w: QuantizedMatrix) -> Self {
        let (starts, pk) = block_spans(w.cols, w.block_len);
        let packed = pack_weight_codes(&w, &starts, pk);
        PackedQuantizedMatrix { w, packed, starts }
    }

    /// The underlying unpacked matrix.
    pub fn matrix(&self) -> &QuantizedMatrix {
        &self.w
    }

    /// Recovers the unpacked matrix.
    pub fn into_matrix(self) -> QuantizedMatrix {
        self.w
    }

    /// Packed row length in i16 lanes: the sum of every scale block's
    /// length rounded up to a [`blocking::LANE`] multiple.
    pub fn packed_cols(&self) -> usize {
        *self.starts.last().unwrap_or(&0)
    }

    /// The packed i16 codes, `[rows, packed_cols]` row-major; pad lanes
    /// hold zero codes.
    pub fn packed_codes(&self) -> &[i16] {
        &self.packed
    }

    /// Packed block offsets: `n_blocks() + 1` entries, the last being
    /// [`Self::packed_cols`].
    pub fn block_starts(&self) -> &[usize] {
        &self.starts
    }
}

/// Pins the portable (non-AVX2) kernel body, for testing the dispatching
/// kernels' bitwise-identity claim on machines where AVX2 would otherwise
/// be selected. Affects all subsequent kernel calls in the process until
/// re-enabled; both bodies produce identical bits, so flipping this
/// mid-run never changes results.
pub fn force_generic_kernels(enabled: bool) {
    FORCE_GENERIC.store(enabled, Ordering::SeqCst);
}

static FORCE_GENERIC: AtomicBool = AtomicBool::new(false);

/// Whether the AVX2-compiled kernel body should be used. Decided on the
/// calling thread before entering the parallel region and passed down as
/// a plain bool, so every worker runs the same body.
#[cfg(target_arch = "x86_64")]
fn kernel_uses_avx2() -> bool {
    !FORCE_GENERIC.load(Ordering::SeqCst) && std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn kernel_uses_avx2() -> bool {
    false
}

/// Packed block offsets for a `[*, k]` matrix with `block_len`-column
/// scale blocks: returns (`starts`, `packed_k`) where `starts` has
/// `n_blocks + 1` entries, each block padded to a [`blocking::LANE`]
/// multiple.
fn block_spans(k: usize, block_len: usize) -> (Vec<usize>, usize) {
    let nb = if k == 0 {
        0
    } else {
        k.div_ceil(block_len.max(1))
    };
    let mut starts = arena::take::<usize>(nb + 1);
    starts.push(0usize);
    let mut off = 0usize;
    for b in 0..nb {
        let len = (k - b * block_len).min(block_len);
        off += len.div_ceil(blocking::LANE) * blocking::LANE;
        starts.push(off);
    }
    (starts, off)
}

/// Widens weight codes into the padded i16 layout; pad lanes stay zero,
/// which keeps every padded dot product exact (`0 · x = 0` in i32).
fn pack_weight_codes(w: &QuantizedMatrix, starts: &[usize], pk: usize) -> Vec<i16> {
    let mut packed = arena::take_zeroed::<i16>(w.rows * pk);
    if packed.is_empty() {
        return packed;
    }
    let k = w.cols;
    parallel::par_chunks_mut(&mut packed, pk, blocking::gemm_task_work(k, 1), |i, row| {
        let src = &w.codes[i * k..(i + 1) * k];
        for (b, win) in starts.windows(2).enumerate() {
            let k0 = b * w.block_len;
            let k1 = (k0 + w.block_len).min(k);
            for (slot, &c) in row[win[0]..win[0] + (k1 - k0)].iter_mut().zip(&src[k0..k1]) {
                *slot = c as i16;
            }
        }
    });
    packed
}

/// Packs the `[k, n]` activation codes into the transposed `[n,
/// packed_k]` i16 layout, folding each column stripe's zero point in
/// (columns `[s · stripe, (s + 1) · stripe)` belong to request `s`).
fn pack_xt(
    x: &[i8],
    k: usize,
    stripe: usize,
    xqs: &[XQuant],
    starts: &[usize],
    block_len: usize,
    pk: usize,
) -> Vec<i16> {
    let n = stripe * xqs.len();
    let mut xt = arena::take_zeroed::<i16>(n * pk);
    if xt.is_empty() {
        return xt;
    }
    parallel::par_chunks_mut(&mut xt, pk, blocking::gemm_task_work(k, 1), |j, row| {
        let zp = xqs[j / stripe].zero_point as i16;
        for (b, win) in starts.windows(2).enumerate() {
            let k0 = b * block_len;
            let k1 = (k0 + block_len).min(k);
            for (kk, slot) in row[win[0]..win[0] + (k1 - k0)].iter_mut().enumerate() {
                *slot = x[(k0 + kk) * n + j] as i16 - zp;
            }
        }
    });
    xt
}

/// Packs the **masked code deltas** `x_curr − x_prev` into the transposed
/// `[n, packed_k]` i16 layout: rows a stream's mask marks unchanged stay
/// zero (never read), so a packed dense GEMM over this operand computes
/// exactly the sparse-delta correction (zero points cancel in the delta).
#[allow(clippy::too_many_arguments)] // GEMM geometry + two steps of state
fn pack_delta_xt(
    x_curr: &[i8],
    x_prev: &[i8],
    changed: &[bool],
    k: usize,
    stripe: usize,
    streams: usize,
    starts: &[usize],
    block_len: usize,
    pk: usize,
) -> Vec<i16> {
    let n = stripe * streams;
    let mut dt = arena::take_zeroed::<i16>(n * pk);
    if dt.is_empty() {
        return dt;
    }
    parallel::par_chunks_mut(&mut dt, pk, blocking::gemm_task_work(k, 1), |j, row| {
        let mask = &changed[(j / stripe) * k..(j / stripe + 1) * k];
        for (b, win) in starts.windows(2).enumerate() {
            let k0 = b * block_len;
            let k1 = (k0 + block_len).min(k);
            for (kk, slot) in row[win[0]..win[0] + (k1 - k0)].iter_mut().enumerate() {
                if mask[k0 + kk] {
                    let idx = (k0 + kk) * n + j;
                    *slot = x_curr[idx] as i16 - x_prev[idx] as i16;
                }
            }
        }
    });
    dt
}

/// Per-column activation scales: `xqs[j / stripe].scale` replicated, so
/// the kernel epilogue needs no division in its hot path.
fn stream_scales(stripe: usize, xqs: &[XQuant]) -> Vec<f32> {
    let mut scales = arena::take::<f32>(stripe * xqs.len());
    scales.extend(
        xqs.iter()
            .flat_map(|q| std::iter::repeat_n(q.scale, stripe)),
    );
    scales
}

/// Single-stream packed dot product, shaped so LLVM autovectorizes it to
/// i16×i16→i32 pair accumulation (`vpmaddwd` under AVX2). Exact: pair
/// sums are bounded by `2 · 128 · 32 768 = 2²³` (see the module docs).
#[inline(always)]
fn dot_i16(a: &[i16], b: &[i16]) -> i32 {
    let mut s = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        s += x as i32 * y as i32;
    }
    s
}

/// Four-column-stream packed dot product: one weight segment against four
/// activation segments, four independent accumulator streams. This is the
/// portable body's inner loop — without AVX2 the extra ILP beats the
/// single-stream form, while under AVX2 the single-stream `vpmaddwd`
/// reduction wins (measured at the bench shape).
#[inline(always)]
fn dot_i16_x4(w: &[i16], x0: &[i16], x1: &[i16], x2: &[i16], x3: &[i16]) -> [i32; 4] {
    let len = w.len();
    let (x0, x1, x2, x3) = (&x0[..len], &x1[..len], &x2[..len], &x3[..len]);
    let mut s = [0i32; 4];
    for (i, &wv) in w.iter().enumerate() {
        let wv = wv as i32;
        s[0] += wv * x0[i] as i32;
        s[1] += wv * x1[i] as i32;
        s[2] += wv * x2[i] as i32;
        s[3] += wv * x3[i] as i32;
    }
    s
}

/// Borrowed view of everything a packed kernel body needs; one instance
/// is shared (immutably) by every worker of a parallel region.
struct PackedKernelCtx<'a> {
    /// Packed weight codes, `[rows, pk]`.
    codes: &'a [i16],
    /// Weight scales, `[rows, nb]`.
    scales: &'a [f32],
    /// Packed block offsets, `nb + 1` entries.
    starts: &'a [usize],
    /// Packed row length.
    pk: usize,
    /// Scale blocks per row.
    nb: usize,
    /// Packed activations (or masked deltas), `[n, pk]`.
    xt: &'a [i16],
    /// Per-column activation scale, `[n]`.
    xscale: &'a [f32],
    /// Output columns.
    n: usize,
    /// Activation columns per L1 tile.
    tile: usize,
}

/// Dense panel body: produces `chunk` (one panel of output rows, zeroed
/// semantics) from the packed operands. `X4` selects the 4-stream inner
/// loop (portable body); the AVX2 instantiation uses the single-stream
/// form. Per element the f32 epilogue folds blocks in ascending order
/// from `0.0`, reproducing the pre-overhaul kernel bitwise.
#[inline(always)]
fn dense_panel<const X4: bool>(ctx: &PackedKernelCtx<'_>, i0: usize, chunk: &mut [f32]) {
    let n = ctx.n;
    let rows = chunk.len() / n;
    let mut jt = 0usize;
    while jt < n {
        let j_end = (jt + ctx.tile).min(n);
        for r in 0..rows {
            let i = i0 + r;
            let w_row = &ctx.codes[i * ctx.pk..(i + 1) * ctx.pk];
            let w_sc = &ctx.scales[i * ctx.nb..(i + 1) * ctx.nb];
            let o_row = &mut chunk[r * n..(r + 1) * n];
            let mut j = jt;
            if X4 {
                while j + 4 <= j_end {
                    let x0 = &ctx.xt[j * ctx.pk..(j + 1) * ctx.pk];
                    let x1 = &ctx.xt[(j + 1) * ctx.pk..(j + 2) * ctx.pk];
                    let x2 = &ctx.xt[(j + 2) * ctx.pk..(j + 3) * ctx.pk];
                    let x3 = &ctx.xt[(j + 3) * ctx.pk..(j + 4) * ctx.pk];
                    let mut y = [0.0f32; 4];
                    for (win, &ws) in ctx.starts.windows(2).zip(w_sc) {
                        let (s0, s1) = (win[0], win[1]);
                        let acc = dot_i16_x4(
                            &w_row[s0..s1],
                            &x0[s0..s1],
                            &x1[s0..s1],
                            &x2[s0..s1],
                            &x3[s0..s1],
                        );
                        for (t, (yy, &a)) in y.iter_mut().zip(&acc).enumerate() {
                            *yy += a as f32 * (ws * ctx.xscale[j + t]);
                        }
                    }
                    o_row[j..j + 4].copy_from_slice(&y);
                    j += 4;
                }
            }
            while j < j_end {
                let x_row = &ctx.xt[j * ctx.pk..(j + 1) * ctx.pk];
                let mut y = 0.0f32;
                for (win, &ws) in ctx.starts.windows(2).zip(w_sc) {
                    let acc = dot_i16(&w_row[win[0]..win[1]], &x_row[win[0]..win[1]]);
                    y += acc as f32 * (ws * ctx.xscale[j]);
                }
                o_row[j] = y;
                j += 1;
            }
        }
        jt = j_end;
    }
}

/// Delta panel body: `chunk` arrives pre-initialized to the previous
/// output; only blocks whose (stream, block) slot in `active` holds a
/// changed row contribute — skipped blocks leave the element untouched
/// (no `+ 0.0`, which could flip a `-0.0`), exactly like the sparse path.
///
/// `#[inline(always)]` is load-bearing: the AVX2 wrapper's
/// `#[target_feature]` only reaches code inlined into it.
#[inline(always)]
fn delta_panel(
    ctx: &PackedKernelCtx<'_>,
    stripe: usize,
    active: &[bool],
    i0: usize,
    chunk: &mut [f32],
) {
    let n = ctx.n;
    let rows = chunk.len() / n;
    let mut jt = 0usize;
    while jt < n {
        let j_end = (jt + ctx.tile).min(n);
        for r in 0..rows {
            let i = i0 + r;
            let w_row = &ctx.codes[i * ctx.pk..(i + 1) * ctx.pk];
            let w_sc = &ctx.scales[i * ctx.nb..(i + 1) * ctx.nb];
            let o_row = &mut chunk[r * n..(r + 1) * n];
            for j in jt..j_end {
                let act = &active[(j / stripe) * ctx.nb..(j / stripe + 1) * ctx.nb];
                let x_row = &ctx.xt[j * ctx.pk..(j + 1) * ctx.pk];
                let mut y = o_row[j];
                for ((win, &ws), &on) in ctx.starts.windows(2).zip(w_sc).zip(act) {
                    if !on {
                        continue;
                    }
                    let acc = dot_i16(&w_row[win[0]..win[1]], &x_row[win[0]..win[1]]);
                    y += acc as f32 * (ws * ctx.xscale[j]);
                }
                o_row[j] = y;
            }
        }
        jt = j_end;
    }
}

/// AVX2 instantiation of the dense body: same scalar Rust, compiled with
/// the AVX2 feature so the single-stream dot lowers to `vpmaddwd`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dense_panel_avx2(ctx: &PackedKernelCtx<'_>, i0: usize, chunk: &mut [f32]) {
    dense_panel::<false>(ctx, i0, chunk);
}

/// AVX2 instantiation of the delta body.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn delta_panel_avx2(
    ctx: &PackedKernelCtx<'_>,
    stripe: usize,
    active: &[bool],
    i0: usize,
    chunk: &mut [f32],
) {
    delta_panel(ctx, stripe, active, i0, chunk);
}

/// Dispatches one dense panel to the ISA-selected body.
fn run_dense_panel(use_avx2: bool, ctx: &PackedKernelCtx<'_>, i0: usize, chunk: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2 {
        // SAFETY: `use_avx2` is only true when `kernel_uses_avx2`
        // observed AVX2 via `is_x86_feature_detected!` on this machine,
        // which is the target-feature contract of `dense_panel_avx2`.
        unsafe { dense_panel_avx2(ctx, i0, chunk) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_avx2;
    dense_panel::<true>(ctx, i0, chunk);
}

/// Dispatches one delta panel to the ISA-selected body.
fn run_delta_panel(
    use_avx2: bool,
    ctx: &PackedKernelCtx<'_>,
    stripe: usize,
    active: &[bool],
    i0: usize,
    chunk: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2 {
        // SAFETY: as in `run_dense_panel` — gated on runtime detection.
        unsafe { delta_panel_avx2(ctx, stripe, active, i0, chunk) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_avx2;
    delta_panel(ctx, stripe, active, i0, chunk);
}

fn check_qgemm(op: &'static str, w: &QuantizedMatrix, x_len: usize, n: usize) -> Result<()> {
    if x_len != w.cols * n {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: vec![w.rows, w.cols],
            rhs: vec![x_len / n.max(1), n],
        });
    }
    Ok(())
}

/// Rejects zero points the packed i16 activation layout cannot represent.
fn check_zero_points(xqs: &[XQuant]) -> Result<()> {
    for q in xqs {
        if q.zero_point > MAX_ZERO_POINT || q.zero_point < -MAX_ZERO_POINT {
            return Err(TensorError::InvalidArgument {
                op: "qgemm(zero_point)",
                reason: format!(
                    "zero point {} exceeds the packed-kernel bound ±{MAX_ZERO_POINT}",
                    q.zero_point
                ),
            });
        }
    }
    Ok(())
}

/// Shared argument validation of the dense GEMM entry points.
fn check_dense_call(
    w: &QuantizedMatrix,
    x_len: usize,
    stripe: usize,
    xqs: &[XQuant],
    out_len: usize,
) -> Result<()> {
    let n = stripe * xqs.len();
    check_qgemm("qgemm", w, x_len, n)?;
    if out_len != w.rows * n {
        return Err(TensorError::ShapeMismatch {
            op: "qgemm(out)",
            lhs: vec![out_len],
            rhs: vec![w.rows, n],
        });
    }
    check_zero_points(xqs)
}

/// Shared argument validation of the delta GEMM entry points.
#[allow(clippy::too_many_arguments)] // GEMM geometry + two steps of state
fn check_delta_call(
    w: &QuantizedMatrix,
    x_curr_len: usize,
    x_prev_len: usize,
    changed_len: usize,
    stripe: usize,
    xqs: &[XQuant],
    prev_out_len: usize,
    out_len: usize,
) -> Result<()> {
    let n = stripe * xqs.len();
    check_qgemm("qgemm_delta", w, x_curr_len, n)?;
    if x_prev_len != x_curr_len {
        return Err(TensorError::ShapeMismatch {
            op: "qgemm_delta(prev)",
            lhs: vec![x_prev_len],
            rhs: vec![x_curr_len],
        });
    }
    if changed_len != w.cols * xqs.len() {
        return Err(TensorError::ShapeMismatch {
            op: "qgemm_delta(mask)",
            lhs: vec![changed_len],
            rhs: vec![xqs.len(), w.cols],
        });
    }
    if out_len != w.rows * n || prev_out_len != out_len {
        return Err(TensorError::ShapeMismatch {
            op: "qgemm_delta(out)",
            lhs: vec![prev_out_len, out_len],
            rhs: vec![w.rows, n],
        });
    }
    Ok(())
}

/// Integer GEMM with requantization: `out[i, j] = x.scale · Σ_b w.scale[i, b]
/// · Σ_{k ∈ block b} w[i, k] · (x[k, j] − x.zero_point)`.
///
/// `w` is `[m, k]`, `x_codes` is row-major `[k, n]`, `out` is `[m, n]` and
/// is fully overwritten. The per-block i32 accumulation is exact; the only
/// roundings are the two f32 scale multiplies per block, so for
/// power-of-two scales the result is bitwise identical to the fake-quant
/// f32 reference (which accumulates the same products in the same
/// ascending-`k` order).
///
/// Runs on the packed microkernels (the weight is packed internally per
/// call; see [`PackedQuantizedMatrix`] and [`qgemm_packed`] to amortize
/// the pack across calls).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if buffer lengths disagree with
/// the shapes, and [`TensorError::InvalidArgument`] for zero points
/// beyond [`MAX_ZERO_POINT`].
pub fn qgemm(
    w: &QuantizedMatrix,
    x_codes: &[i8],
    n: usize,
    xq: XQuant,
    out: &mut [f32],
) -> Result<()> {
    qgemm_multi(w, x_codes, n, &[xq], out)
}

/// Batched integer GEMM: one weight pack applied to a batch of
/// independently quantized activation matrices, in a single kernel call.
///
/// The activation operand packs `xqs.len()` request stripes side by side:
/// columns `[s · stripe, (s + 1) · stripe)` of the `[k, stripe ·
/// xqs.len()]` code matrix belong to request `s` and are requantized with
/// `xqs[s]`. This is the batched-serving entry point — the weight codes,
/// scales and the per-channel requant parameters are shared by every
/// request, so the (re)quantization cost of `w` is paid once per batch
/// instead of once per request.
///
/// Every output element is produced by the exact per-request [`qgemm`]
/// operation sequence (exact i32 block accumulation, then one f32
/// requantization per scale block in ascending block order), so the
/// result is **bitwise identical** to `xqs.len()` independent
/// single-request calls — at any `SQDM_THREADS` and on either ISA body.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if buffer lengths disagree with
/// the shapes, and [`TensorError::InvalidArgument`] for zero points
/// beyond [`MAX_ZERO_POINT`].
pub fn qgemm_multi(
    w: &QuantizedMatrix,
    x_codes: &[i8],
    stripe: usize,
    xqs: &[XQuant],
    out: &mut [f32],
) -> Result<()> {
    check_dense_call(w, x_codes.len(), stripe, xqs, out.len())?;
    if w.rows == 0 || stripe * xqs.len() == 0 {
        return Ok(());
    }
    let (starts, pk) = block_spans(w.cols, w.block_len);
    let packed = pack_weight_codes(w, &starts, pk);
    qgemm_packed_run(w, &packed, &starts, x_codes, stripe, xqs, out);
    arena::recycle(packed);
    arena::recycle(starts);
    Ok(())
}

/// [`qgemm`] on a pre-packed weight: identical results, the pack cost
/// paid once at [`PackedQuantizedMatrix::pack`] time.
///
/// # Errors
///
/// Same conditions as [`qgemm`].
pub fn qgemm_packed(
    pw: &PackedQuantizedMatrix,
    x_codes: &[i8],
    n: usize,
    xq: XQuant,
    out: &mut [f32],
) -> Result<()> {
    qgemm_packed_multi(pw, x_codes, n, &[xq], out)
}

/// [`qgemm_multi`] on a pre-packed weight: identical results, the pack
/// cost paid once at [`PackedQuantizedMatrix::pack`] time.
///
/// # Errors
///
/// Same conditions as [`qgemm_multi`].
pub fn qgemm_packed_multi(
    pw: &PackedQuantizedMatrix,
    x_codes: &[i8],
    stripe: usize,
    xqs: &[XQuant],
    out: &mut [f32],
) -> Result<()> {
    check_dense_call(&pw.w, x_codes.len(), stripe, xqs, out.len())?;
    if pw.w.rows == 0 || stripe * xqs.len() == 0 {
        return Ok(());
    }
    qgemm_packed_run(&pw.w, &pw.packed, &pw.starts, x_codes, stripe, xqs, out);
    Ok(())
}

/// The packed dense core: packs the activations, then fans
/// [`blocking::PANEL_ROWS`]-row panels of `out` over the worker pool.
/// Arguments are pre-validated and non-degenerate (`rows > 0`, `n > 0`).
fn qgemm_packed_run(
    w: &QuantizedMatrix,
    packed: &[i16],
    starts: &[usize],
    x_codes: &[i8],
    stripe: usize,
    xqs: &[XQuant],
    out: &mut [f32],
) {
    let n = stripe * xqs.len();
    let pk = *starts.last().unwrap_or(&0);
    let xt = pack_xt(x_codes, w.cols, stripe, xqs, starts, w.block_len, pk);
    let xscale = stream_scales(stripe, xqs);
    let ctx = PackedKernelCtx {
        codes: packed,
        scales: &w.scales,
        starts,
        pk,
        nb: w.n_blocks(),
        xt: &xt,
        xscale: &xscale,
        n,
        tile: blocking::col_tile(pk, n),
    };
    let use_avx2 = kernel_uses_avx2();
    let panel = blocking::PANEL_ROWS;
    parallel::par_chunks_mut(
        out,
        panel * n,
        panel * blocking::gemm_task_work(pk.max(w.cols), n),
        |p, chunk| run_dense_panel(use_avx2, &ctx, p * panel, chunk),
    );
    arena::recycle(xt);
    arena::recycle(xscale);
}

/// Changed fraction the delta dispatch compares against the density
/// threshold (`0.0` for an empty mask).
fn changed_fraction(changed: &[bool]) -> f32 {
    if changed.is_empty() {
        return 0.0;
    }
    changed.iter().filter(|&&c| c).count() as f32 / changed.len() as f32
}

/// Changed-row fraction at or above which [`qgemm_delta_multi`] abandons
/// row-skipping and recomputes the correction with the packed dense
/// microkernel over the masked deltas.
///
/// Measured on the 256³ bench shape (see `BENCH_ci.json`'s
/// `qgemm_delta_int8` sparsity sweep): the sparse broadcast path's cost
/// grows linearly with the changed fraction (≈0.35 ms at 5 % changed,
/// ≈0.96 ms at 25 %, ≈1.17 ms at 30 %) while the packed dense path is
/// flat at ≈1.05 ms, so the curves cross between 25 % and 30 % changed
/// rows; the threshold sits at the low edge of that band. Both paths are
/// bitwise identical, so the threshold is purely a performance decision;
/// [`qgemm_delta_multi_with_threshold`] overrides it for testing.
pub const DELTA_DENSE_THRESHOLD: f32 = 0.25;

/// Temporal sparse-delta GEMM: recomputes only the contributions of
/// reduction rows whose activation changed since the previous step.
///
/// Given the previous step's output `prev_out = qgemm(w, x_prev)` and a
/// change mask over the `k` reduction rows, computes
///
/// ```text
/// out[i, j] = prev_out[i, j]
///           + x.scale · Σ_b w.scale[i, b] · Σ_{k ∈ b, changed[k]}
///                 w[i, k] · (x_curr[k, j] − x_prev[k, j])
/// ```
///
/// which equals the dense `qgemm(w, x_curr)` whenever the mask covers
/// every row that actually differs (zero points cancel in the code
/// delta). Rows marked unchanged are not read at all, so the arithmetic
/// cost scales with the changed fraction — the paper's temporal-sparsity
/// win. Both steps must share one activation scale (static calibration),
/// otherwise the code-space delta is meaningless.
///
/// Above [`DELTA_DENSE_THRESHOLD`] the kernel switches to the packed
/// dense microkernel over the masked deltas — bitwise identical, faster
/// once the mask is dense enough that row-skipping stops paying.
///
/// The mask typically comes from
/// `sqdm_sparsity::TemporalTrace::change_mask`, expanded to reduction
/// rows for convolutions (each channel owns `kh·kw` consecutive rows).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on any buffer-length
/// disagreement (codes, mask, previous output, output).
#[allow(clippy::too_many_arguments)] // GEMM geometry + two steps of state
pub fn qgemm_delta(
    w: &QuantizedMatrix,
    x_curr: &[i8],
    x_prev: &[i8],
    changed: &[bool],
    n: usize,
    xq: XQuant,
    prev_out: &[f32],
    out: &mut [f32],
) -> Result<()> {
    qgemm_delta_multi(w, x_curr, x_prev, changed, n, &[xq], prev_out, out)
}

/// Batched temporal sparse-delta GEMM: [`qgemm_delta`] over a batch of
/// independent request streams, each with its **own** change mask.
///
/// Columns are striped per request exactly as in [`qgemm_multi`]; the
/// mask is the per-stream concatenation `changed[s · k + r]` = "reduction
/// row `r` of stream `s` changed since that stream's previous denoising
/// step" (`k = w.cols()`). Streams are fully independent: one stream at a
/// fully-dense step (mask all true) recomputes everything while a
/// converged neighbor stream skips nearly all of its rows — the
/// sparse-delta win applies per stream, not per batch.
///
/// Bitwise identical to `xqs.len()` independent [`qgemm_delta`] calls at
/// any thread count, by the same argument as [`qgemm_multi`] (exact i32
/// accumulation; per-element f32 requantization in identical order). The
/// dense-fallback dispatch (see [`DELTA_DENSE_THRESHOLD`]) looks at the
/// overall changed fraction of the batch.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on any buffer-length
/// disagreement (codes, mask, previous output, output).
#[allow(clippy::too_many_arguments)] // GEMM geometry + two steps of state
pub fn qgemm_delta_multi(
    w: &QuantizedMatrix,
    x_curr: &[i8],
    x_prev: &[i8],
    changed: &[bool],
    stripe: usize,
    xqs: &[XQuant],
    prev_out: &[f32],
    out: &mut [f32],
) -> Result<()> {
    qgemm_delta_multi_with_threshold(
        w,
        x_curr,
        x_prev,
        changed,
        stripe,
        xqs,
        prev_out,
        out,
        DELTA_DENSE_THRESHOLD,
    )
}

/// [`qgemm_delta_multi`] with an explicit density threshold, for tests
/// and calibration sweeps: `dense_threshold <= 0.0` forces the packed
/// dense fallback, `dense_threshold > 1.0` forces the row-skipping sparse
/// path. Both paths are bitwise identical; the threshold only moves the
/// crossover.
///
/// # Errors
///
/// Same conditions as [`qgemm_delta_multi`].
#[allow(clippy::too_many_arguments)] // GEMM geometry + two steps of state
pub fn qgemm_delta_multi_with_threshold(
    w: &QuantizedMatrix,
    x_curr: &[i8],
    x_prev: &[i8],
    changed: &[bool],
    stripe: usize,
    xqs: &[XQuant],
    prev_out: &[f32],
    out: &mut [f32],
    dense_threshold: f32,
) -> Result<()> {
    check_delta_call(
        w,
        x_curr.len(),
        x_prev.len(),
        changed.len(),
        stripe,
        xqs,
        prev_out.len(),
        out.len(),
    )?;
    if w.rows == 0 || stripe * xqs.len() == 0 {
        return Ok(());
    }
    if changed_fraction(changed) >= dense_threshold {
        let (starts, pk) = block_spans(w.cols, w.block_len);
        let packed = pack_weight_codes(w, &starts, pk);
        qgemm_delta_packed_run(
            w, &packed, &starts, x_curr, x_prev, changed, stripe, xqs, prev_out, out,
        );
        arena::recycle(packed);
        arena::recycle(starts);
    } else {
        qgemm_delta_sparse_run(w, x_curr, x_prev, changed, stripe, xqs, prev_out, out);
    }
    Ok(())
}

/// [`qgemm_delta_multi`] on a pre-packed weight: the dense-fallback
/// branch reuses the pack instead of repacking per call; the sparse
/// branch reads the unpacked codes held by the pack. Identical results.
///
/// # Errors
///
/// Same conditions as [`qgemm_delta_multi`].
#[allow(clippy::too_many_arguments)] // GEMM geometry + two steps of state
pub fn qgemm_delta_packed_multi(
    pw: &PackedQuantizedMatrix,
    x_curr: &[i8],
    x_prev: &[i8],
    changed: &[bool],
    stripe: usize,
    xqs: &[XQuant],
    prev_out: &[f32],
    out: &mut [f32],
) -> Result<()> {
    qgemm_delta_packed_multi_with_threshold(
        pw,
        x_curr,
        x_prev,
        changed,
        stripe,
        xqs,
        prev_out,
        out,
        DELTA_DENSE_THRESHOLD,
    )
}

/// [`qgemm_delta_packed_multi`] with an explicit density threshold, for
/// tests and calibration sweeps: `dense_threshold <= 0.0` forces the
/// packed dense fallback, `dense_threshold > 1.0` forces the
/// row-skipping sparse path. Both paths are bitwise identical; the
/// threshold only moves the crossover.
///
/// # Errors
///
/// Same conditions as [`qgemm_delta_multi`].
#[allow(clippy::too_many_arguments)] // GEMM geometry + two steps of state
pub fn qgemm_delta_packed_multi_with_threshold(
    pw: &PackedQuantizedMatrix,
    x_curr: &[i8],
    x_prev: &[i8],
    changed: &[bool],
    stripe: usize,
    xqs: &[XQuant],
    prev_out: &[f32],
    out: &mut [f32],
    dense_threshold: f32,
) -> Result<()> {
    check_delta_call(
        &pw.w,
        x_curr.len(),
        x_prev.len(),
        changed.len(),
        stripe,
        xqs,
        prev_out.len(),
        out.len(),
    )?;
    if pw.w.rows == 0 || stripe * xqs.len() == 0 {
        return Ok(());
    }
    if changed_fraction(changed) >= dense_threshold {
        qgemm_delta_packed_run(
            &pw.w, &pw.packed, &pw.starts, x_curr, x_prev, changed, stripe, xqs, prev_out, out,
        );
    } else {
        qgemm_delta_sparse_run(&pw.w, x_curr, x_prev, changed, stripe, xqs, prev_out, out);
    }
    Ok(())
}

/// Dense-fallback delta core: packs the masked deltas and runs the packed
/// microkernel, skipping (stream, block) slots with no changed rows so
/// the f32 epilogue touches exactly the elements the sparse path touches.
#[allow(clippy::too_many_arguments)] // GEMM geometry + two steps of state
fn qgemm_delta_packed_run(
    w: &QuantizedMatrix,
    packed: &[i16],
    starts: &[usize],
    x_curr: &[i8],
    x_prev: &[i8],
    changed: &[bool],
    stripe: usize,
    xqs: &[XQuant],
    prev_out: &[f32],
    out: &mut [f32],
) {
    let n = stripe * xqs.len();
    let k = w.cols;
    let nb = w.n_blocks();
    let pk = *starts.last().unwrap_or(&0);
    let dt = pack_delta_xt(
        x_curr,
        x_prev,
        changed,
        k,
        stripe,
        xqs.len(),
        starts,
        w.block_len,
        pk,
    );
    let xscale = stream_scales(stripe, xqs);
    let mut active = arena::take_zeroed::<bool>(xqs.len() * nb);
    for (s, row) in active.chunks_mut(nb.max(1)).enumerate() {
        let mask = &changed[s * k..(s + 1) * k];
        for (b, slot) in row.iter_mut().enumerate() {
            let k0 = b * w.block_len;
            let k1 = (k0 + w.block_len).min(k);
            *slot = mask[k0..k1].iter().any(|&c| c);
        }
    }
    let ctx = PackedKernelCtx {
        codes: packed,
        scales: &w.scales,
        starts,
        pk,
        nb,
        xt: &dt,
        xscale: &xscale,
        n,
        tile: blocking::col_tile(pk, n),
    };
    let use_avx2 = kernel_uses_avx2();
    let panel = blocking::PANEL_ROWS;
    parallel::par_chunks_mut(
        out,
        panel * n,
        panel * blocking::gemm_task_work(pk.max(k), n),
        |p, chunk| {
            let base = p * panel * n;
            chunk.copy_from_slice(&prev_out[base..base + chunk.len()]);
            run_delta_panel(use_avx2, &ctx, stripe, &active, p * panel, chunk);
        },
    );
    arena::recycle(dt);
    arena::recycle(xscale);
    arena::recycle(active);
}

/// Row-skipping sparse delta core (the pre-overhaul kernel): widens the
/// changed rows' code deltas once, then runs the broadcast
/// multiply-accumulate over only the changed rows of each stream.
#[allow(clippy::too_many_arguments)] // GEMM geometry + two steps of state
fn qgemm_delta_sparse_run(
    w: &QuantizedMatrix,
    x_curr: &[i8],
    x_prev: &[i8],
    changed: &[bool],
    stripe: usize,
    xqs: &[XQuant],
    prev_out: &[f32],
    out: &mut [f32],
) {
    let n = stripe * xqs.len();
    let k = w.cols;
    let nb = w.n_blocks();
    // Widen the code deltas of the *changed* rows once (zero points
    // cancel); unchanged rows stay zero and are never read. Each stream
    // widens only its own changed rows.
    let mut di = arena::take_zeroed::<i32>(x_curr.len());
    parallel::par_chunks_mut(&mut di, n, 2 * n, |row, block| {
        for s in 0..xqs.len() {
            if !changed[s * k + row] {
                continue;
            }
            let cols = row * n + s * stripe;
            let cur = &x_curr[cols..cols + stripe];
            let prv = &x_prev[cols..cols + stripe];
            let dst = &mut block[s * stripe..(s + 1) * stripe];
            for ((o, &c), &p) in dst.iter_mut().zip(cur.iter()).zip(prv.iter()) {
                *o = c as i32 - p as i32;
            }
        }
    });
    parallel::par_chunks_mut(out, n, blocking::gemm_task_work(k, n), |i, o_row| {
        o_row.copy_from_slice(&prev_out[i * n..(i + 1) * n]);
        let mut acc = arena::take_zeroed::<i32>(stripe);
        let w_row = &w.codes[i * k..(i + 1) * k];
        for (s, xq) in xqs.iter().enumerate() {
            let mask = &changed[s * k..(s + 1) * k];
            let o_stripe = &mut o_row[s * stripe..(s + 1) * stripe];
            for b in 0..nb {
                let k0 = b * w.block_len;
                let k1 = (k0 + w.block_len).min(k);
                if !mask[k0..k1].iter().any(|&c| c) {
                    continue;
                }
                acc.fill(0);
                for (kk, &w_ik) in w_row[k0..k1].iter().enumerate() {
                    if w_ik == 0 || !mask[k0 + kk] {
                        continue;
                    }
                    let w_ik = w_ik as i32;
                    let d_row = &di[(k0 + kk) * n + s * stripe..][..stripe];
                    for (a, &d_kj) in acc.iter_mut().zip(d_row.iter()) {
                        *a += w_ik * d_kj;
                    }
                }
                let sc = w.scales[i * nb + b] * xq.scale;
                for (o, &a) in o_stripe.iter_mut().zip(acc.iter()) {
                    *o += a as f32 * sc;
                }
            }
        }
        arena::recycle(acc);
    });
    arena::recycle(di);
}

/// Packs the transpose of a row-major `[rows, cols]` code matrix into a
/// new row-major `[cols, rows]` buffer (the integer analogue of the f32
/// `pack_transpose`, used to feed `[batch, features]` activations to
/// [`qgemm`]).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `src.len() != rows · cols`.
pub fn transpose_i8(src: &[i8], rows: usize, cols: usize) -> Result<Vec<i8>> {
    if src.len() != rows * cols {
        return Err(TensorError::InvalidArgument {
            op: "transpose_i8",
            reason: format!("{} codes for a {rows}x{cols} matrix", src.len()),
        });
    }
    let mut out = arena::take_zeroed::<i8>(src.len());
    if rows == 0 || cols == 0 {
        return Ok(out);
    }
    parallel::par_chunks_mut(&mut out, rows, 2 * rows, |j, o_row| {
        for (i, o) in o_row.iter_mut().enumerate() {
            *o = src[i * cols + j];
        }
    });
    Ok(out)
}

/// Integer im2col: lowers an `[N, C, H, W]` code map into the
/// `[C·kh·kw, N·oh·ow]` GEMM operand, exactly mirroring the f32
/// [`crate::ops::im2col`] layout.
///
/// Padding positions are filled with `pad_code` — the code representing
/// real zero, i.e. the activation zero point (0 for the workspace's
/// symmetric formats).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the code buffer does not
/// match the dimensions, or geometry errors from
/// [`Conv2dGeometry::out_extent`].
#[allow(clippy::too_many_arguments)] // mirrors the f32 im2col geometry tuple
pub fn im2col_i8(
    codes: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    geom: Conv2dGeometry,
    pad_code: i8,
) -> Result<Vec<i8>> {
    im2col_i8_multi(codes, n, c, h, w, kh, kw, geom, &vec![pad_code; n])
}

/// [`im2col_i8`] with a per-request padding code: sample `nn` of the
/// `[N, C, H, W]` code map pads with `pad_codes[nn]` — its own activation
/// zero point. The batched-serving lowering, where each batch element was
/// quantized independently.
///
/// # Errors
///
/// Same conditions as [`im2col_i8`], plus
/// [`TensorError::InvalidArgument`] if `pad_codes.len() != n`.
#[allow(clippy::too_many_arguments)] // mirrors the f32 im2col geometry tuple
pub fn im2col_i8_multi(
    codes: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    geom: Conv2dGeometry,
    pad_codes: &[i8],
) -> Result<Vec<i8>> {
    if codes.len() != n * c * h * w {
        return Err(TensorError::InvalidArgument {
            op: "im2col_i8",
            reason: format!("{} codes for [{n}, {c}, {h}, {w}]", codes.len()),
        });
    }
    if pad_codes.len() != n {
        return Err(TensorError::InvalidArgument {
            op: "im2col_i8",
            reason: format!("{} pad codes for batch {n}", pad_codes.len()),
        });
    }
    let oh = geom.out_extent(h, kh)?;
    let ow = geom.out_extent(w, kw)?;
    let rows = c * kh * kw;
    let cols = n * oh * ow;
    let mut out = arena::take_zeroed::<i8>(rows * cols);
    if rows > 0 && cols > 0 {
        parallel::par_chunks_mut(&mut out, cols, 2 * cols, |row, o_row| {
            let cc = row / (kh * kw);
            let ky = (row / kw) % kh;
            let kx = row % kw;
            for nn in 0..n {
                o_row[nn * oh * ow..(nn + 1) * oh * ow].fill(pad_codes[nn]);
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let in_row = &codes[((nn * c + cc) * h + iy as usize) * w..][..w];
                    let o_base = (nn * oh + oy) * ow;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        o_row[o_base + ox] = in_row[ix as usize];
                    }
                }
            }
        });
    }
    Ok(out)
}

/// Native integer 2-D convolution: integer im2col, [`qgemm`], then the
/// same `[K, N·oh·ow] → [N, K, oh, ow]` epilogue (with bias) as the f32
/// [`crate::ops::conv2d`].
///
/// * `x_codes`: activation codes, `[N, C, H, W]` row-major
/// * `wq`: weight codes `[K, C·kh·kw]` with per-row scale blocks
/// * `bias`: optional `[K]` real-valued bias
///
/// # Errors
///
/// Returns shape/geometry errors from the lowering or the GEMM, and
/// [`TensorError::ShapeMismatch`] if `wq` or `bias` disagree with the
/// activation geometry.
#[allow(clippy::too_many_arguments)] // conv geometry + quantization params
pub fn conv2d_i8(
    x_codes: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    wq: &QuantizedMatrix,
    kh: usize,
    kw: usize,
    bias: Option<&[f32]>,
    geom: Conv2dGeometry,
    xq: XQuant,
) -> Result<Tensor> {
    conv2d_i8_multi(x_codes, n, c, h, w, wq, kh, kw, bias, geom, &vec![xq; n])
}

/// Batched native integer convolution: one weight pack, `n` independently
/// quantized batch elements.
///
/// Sample `nn` of the `[N, C, H, W]` code map carries its own activation
/// quantization `xqs[nn]` (scale, zero point, and therefore padding
/// code). The weight matrix — codes, scale blocks, and the per-channel
/// requantization parameters — is shared across the whole batch, so
/// batched serving pays the weight quantization once per step instead of
/// once per request. The GEMM stage runs on the packed microkernels via
/// [`qgemm_multi`]. Bitwise identical to `n` single-sample [`conv2d_i8`]
/// calls at any thread count.
///
/// # Errors
///
/// Returns shape/geometry errors from the lowering or the GEMM, and
/// [`TensorError::ShapeMismatch`] if `wq`, `bias` or `xqs` disagree with
/// the activation geometry.
#[allow(clippy::too_many_arguments)] // conv geometry + quantization params
pub fn conv2d_i8_multi(
    x_codes: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    wq: &QuantizedMatrix,
    kh: usize,
    kw: usize,
    bias: Option<&[f32]>,
    geom: Conv2dGeometry,
    xqs: &[XQuant],
) -> Result<Tensor> {
    let oh = geom.out_extent(h, kh)?;
    let ow = geom.out_extent(w, kw)?;
    let mut out = arena::take_zeroed::<f32>(n * wq.rows() * oh * ow);
    conv2d_i8_core(
        x_codes,
        n,
        c,
        h,
        w,
        wq,
        kh,
        kw,
        bias,
        geom,
        xqs,
        &mut |cols, spatial, prod| qgemm_multi(wq, cols, spatial, xqs, prod),
        &mut out,
    )?;
    Tensor::from_vec(out, [n, wq.rows(), oh, ow])
}

/// [`conv2d_i8_multi`] on a pre-packed weight: identical results, the
/// pack cost paid once at [`PackedQuantizedMatrix::pack`] time instead of
/// per forward. The cached-pack convolution entry the serving registry's
/// steady state runs on.
///
/// # Errors
///
/// Same conditions as [`conv2d_i8_multi`].
#[allow(clippy::too_many_arguments)] // conv geometry + quantization params
pub fn conv2d_i8_packed_multi(
    pw: &PackedQuantizedMatrix,
    x_codes: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    bias: Option<&[f32]>,
    geom: Conv2dGeometry,
    xqs: &[XQuant],
) -> Result<Tensor> {
    let oh = geom.out_extent(h, kh)?;
    let ow = geom.out_extent(w, kw)?;
    let mut out = arena::take_zeroed::<f32>(n * pw.matrix().rows() * oh * ow);
    conv2d_i8_packed_into(pw, x_codes, n, c, h, w, kh, kw, bias, geom, xqs, &mut out)?;
    Tensor::from_vec(out, [n, pw.matrix().rows(), oh, ow])
}

/// [`conv2d_i8_packed_multi`] writing into caller-owned storage: `out`
/// must hold exactly `n · k · oh · ow` elements and is fully overwritten.
/// The zero-allocation serving path's convolution entry — no output
/// tensor is allocated, and all internal scratch is drawn from the
/// [`crate::arena`] when one is active.
///
/// # Errors
///
/// Same conditions as [`conv2d_i8_multi`], plus
/// [`TensorError::ShapeMismatch`] if `out` has the wrong length.
#[allow(clippy::too_many_arguments)] // conv geometry + quantization params
pub fn conv2d_i8_packed_into(
    pw: &PackedQuantizedMatrix,
    x_codes: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    bias: Option<&[f32]>,
    geom: Conv2dGeometry,
    xqs: &[XQuant],
    out: &mut [f32],
) -> Result<()> {
    conv2d_i8_core(
        x_codes,
        n,
        c,
        h,
        w,
        pw.matrix(),
        kh,
        kw,
        bias,
        geom,
        xqs,
        &mut |cols, spatial, prod| qgemm_packed_multi(pw, cols, spatial, xqs, prod),
        out,
    )
}

/// Per-layer carry state for [`conv2d_i8_packed_delta_multi`]: the
/// previous step's lowered activation codes, quantization parameters and
/// pre-epilogue GEMM product.
///
/// The buffers are reused across steps (cleared and refilled, never
/// shrunk), so steady-state delta execution does not allocate. One state
/// belongs to exactly one convolution layer of one sampling trajectory;
/// mixing layers or trajectories through a single state falls back to a
/// dense step on every shape or scale mismatch rather than producing
/// wrong results.
#[derive(Debug, Default)]
pub struct ConvDeltaState {
    prev_cols: Vec<i8>,
    prev_xqs: Vec<XQuant>,
    prev_prod: Vec<f32>,
    /// Steps executed through the delta kernel.
    pub delta_steps: usize,
    /// Steps executed as a full dense GEMM (first step, shape change, or
    /// activation-scale change).
    pub dense_steps: usize,
}

impl ConvDeltaState {
    /// An empty state: the first step through it is always dense.
    pub fn new() -> Self {
        ConvDeltaState::default()
    }

    /// Drops the carried step so the next call runs dense (e.g. when a
    /// sampling trajectory restarts).
    pub fn reset(&mut self) {
        self.prev_cols.clear();
        self.prev_xqs.clear();
        self.prev_prod.clear();
    }

    /// The activation quantization carried from the previous step, if any
    /// (the first stream's — callers replicate one grid across streams).
    /// Lets the caller re-quantize the next step on the *same* grid
    /// (static-calibration style) so the code-space delta is meaningful
    /// and the carry can engage.
    pub fn carried_xq(&self) -> Option<XQuant> {
        self.prev_xqs.first().copied()
    }
}

/// Temporal-delta convolution on a pre-packed weight: recomputes only the
/// contribution of reduction rows whose input codes changed since the
/// previous call, per the paper's inter-step activation similarity.
///
/// `changed_channels` holds one flag per `(stream, input-channel)`
/// (`n · c` entries, stream-major) — typically a
/// `TemporalTrace::change_mask` row. Each flagged channel expands to its
/// `kh·kw` im2col reduction rows, and the mask is then **unioned with the
/// exact per-row code difference** against the previous step, so the
/// kernel's correctness contract (mask covers every row that differs)
/// holds even when the trace under-reports. Density-based dispatch between
/// the sparse row-skipping path and the packed dense fallback follows
/// `dense_threshold` exactly as in
/// [`qgemm_delta_packed_multi_with_threshold`]; both paths agree bitwise.
///
/// The delta step only engages when the carried state matches the current
/// call (same lowered geometry and identical per-stream activation
/// quantization — the delta epilogue requires both steps to share one
/// activation scale). Otherwise the call silently runs the dense packed
/// GEMM and refreshes the state.
///
/// # Errors
///
/// Same conditions as [`conv2d_i8_packed_multi`], plus
/// [`TensorError::ShapeMismatch`] if `changed_channels` is not `n · c`
/// long.
#[allow(clippy::too_many_arguments)] // conv geometry + quantization params
pub fn conv2d_i8_packed_delta_multi(
    pw: &PackedQuantizedMatrix,
    x_codes: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    bias: Option<&[f32]>,
    geom: Conv2dGeometry,
    xqs: &[XQuant],
    changed_channels: &[bool],
    state: &mut ConvDeltaState,
    dense_threshold: f32,
) -> Result<Tensor> {
    if changed_channels.len() != n * c {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_i8_delta(changed_channels)",
            lhs: vec![changed_channels.len()],
            rhs: vec![n, c],
        });
    }
    let oh = geom.out_extent(h, kh)?;
    let ow = geom.out_extent(w, kw)?;
    let k_out = pw.matrix().rows();
    let mut out = arena::take_zeroed::<f32>(n * k_out * oh * ow);
    conv2d_i8_core(
        x_codes,
        n,
        c,
        h,
        w,
        pw.matrix(),
        kh,
        kw,
        bias,
        geom,
        xqs,
        &mut |cols, spatial, prod| {
            let carry_ok = state.prev_cols.len() == cols.len()
                && state.prev_prod.len() == prod.len()
                && state.prev_xqs == xqs;
            if carry_ok {
                let k_red = c * kh * kw;
                let rpc = kh * kw; // reduction rows per input channel
                let mut mask = arena::take_zeroed::<bool>(n * k_red);
                for s in 0..n {
                    for (ch, &chg) in changed_channels[s * c..(s + 1) * c].iter().enumerate() {
                        if chg {
                            mask[s * k_red + ch * rpc..s * k_red + (ch + 1) * rpc].fill(true);
                        }
                    }
                }
                // Union with the exact code difference so the mask is a
                // superset of the rows that actually changed — the delta
                // kernel's equality contract.
                let row_len = n * spatial;
                for s in 0..n {
                    for r in 0..k_red {
                        if mask[s * k_red + r] {
                            continue;
                        }
                        let seg = r * row_len + s * spatial..r * row_len + (s + 1) * spatial;
                        if cols[seg.clone()] != state.prev_cols[seg] {
                            mask[s * k_red + r] = true;
                        }
                    }
                }
                qgemm_delta_packed_multi_with_threshold(
                    pw,
                    cols,
                    &state.prev_cols,
                    &mask,
                    spatial,
                    xqs,
                    &state.prev_prod,
                    prod,
                    dense_threshold,
                )?;
                arena::recycle(mask);
                state.delta_steps += 1;
            } else {
                qgemm_packed_multi(pw, cols, spatial, xqs, prod)?;
                state.dense_steps += 1;
            }
            state.prev_cols.clear();
            state.prev_cols.extend_from_slice(cols);
            state.prev_xqs.clear();
            state.prev_xqs.extend_from_slice(xqs);
            state.prev_prod.clear();
            state.prev_prod.extend_from_slice(prod);
            Ok(())
        },
        &mut out,
    )?;
    Tensor::from_vec(out, [n, k_out, oh, ow])
}

/// GEMM stage of [`conv2d_i8_core`]: `(lowered operand, gemm columns,
/// product buffer)`.
type ConvGemmStage<'a> = dyn FnMut(&[i8], usize, &mut [f32]) -> Result<()> + 'a;

/// Shared body of the `conv2d_i8*` family: checks, integer im2col,
/// the caller-supplied GEMM stage, and the `[K, N·oh·ow] → [N, K, oh,
/// ow]` bias epilogue into `out`. All scratch (padding codes, lowered
/// operand, GEMM product) is drawn from and returned to the thread's
/// [`crate::arena`].
#[allow(clippy::too_many_arguments)] // conv geometry + quantization params
fn conv2d_i8_core(
    x_codes: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    wq: &QuantizedMatrix,
    kh: usize,
    kw: usize,
    bias: Option<&[f32]>,
    geom: Conv2dGeometry,
    xqs: &[XQuant],
    gemm: &mut ConvGemmStage<'_>,
    out: &mut [f32],
) -> Result<()> {
    if xqs.len() != n {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_i8(xqs)",
            lhs: vec![xqs.len()],
            rhs: vec![n],
        });
    }
    if wq.cols() != c * kh * kw {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_i8",
            lhs: vec![wq.rows(), wq.cols()],
            rhs: vec![c * kh * kw],
        });
    }
    let k = wq.rows();
    if let Some(b) = bias {
        if b.len() != k {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_i8(bias)",
                lhs: vec![b.len()],
                rhs: vec![k],
            });
        }
    }
    let oh = geom.out_extent(h, kh)?;
    let ow = geom.out_extent(w, kw)?;
    let spatial = oh * ow;
    if out.len() != n * k * spatial {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_i8(out)",
            lhs: vec![out.len()],
            rhs: vec![n, k, spatial],
        });
    }
    let mut pad_codes = arena::take::<i8>(n);
    pad_codes.extend(
        xqs.iter()
            .map(|q| q.zero_point.clamp(i8::MIN as i32, i8::MAX as i32) as i8),
    );
    let cols = im2col_i8_multi(x_codes, n, c, h, w, kh, kw, geom, &pad_codes)?;
    arena::recycle(pad_codes);
    let mut prod = arena::take_zeroed::<f32>(k * n * spatial);
    gemm(&cols, spatial, &mut prod)?;
    arena::recycle(cols);

    if n * k > 0 && spatial > 0 {
        parallel::par_chunks_mut(out, spatial, 2 * spatial, |plane, dst| {
            let nn = plane / k;
            let kk = plane % k;
            let b = bias.map(|b| b[kk]).unwrap_or(0.0);
            let src = &prod[kk * n * spatial + nn * spatial..kk * n * spatial + (nn + 1) * spatial];
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = s + b;
            }
        });
    }
    arena::recycle(prod);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::with_threads;

    /// Reference f64 requantized GEMM, straight from the definition.
    fn naive(w: &QuantizedMatrix, x: &[i8], n: usize, xq: XQuant) -> Vec<f32> {
        let (m, k, nb) = (w.rows(), w.cols(), w.n_blocks());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut y = 0.0f32;
                for b in 0..nb {
                    let k0 = b * w.block_len();
                    let k1 = (k0 + w.block_len()).min(k);
                    let mut acc = 0i32;
                    for kk in k0..k1 {
                        acc +=
                            w.codes()[i * k + kk] as i32 * (x[kk * n + j] as i32 - xq.zero_point);
                    }
                    y += acc as f32 * (w.scales()[i * nb + b] * xq.scale);
                }
                out[i * n + j] = y;
            }
        }
        out
    }

    #[test]
    fn qgemm_matches_naive_reference() {
        // 3x4 weights (two scale blocks of 2) times 4x5 activations.
        let codes: Vec<i8> = (0..12).map(|v| (v as i8) - 6).collect();
        let scales = vec![0.5, 0.25, 1.0, 0.125, 2.0, 0.5];
        let w = QuantizedMatrix::new(codes, 3, 4, scales, 2).unwrap();
        let x: Vec<i8> = (0..20).map(|v| ((v * 7) % 23) as i8 - 11).collect();
        let xq = XQuant {
            scale: 0.0625,
            zero_point: 3,
        };
        let mut out = vec![0.0f32; 15];
        qgemm(&w, &x, 5, xq, &mut out).unwrap();
        assert_eq!(out, naive(&w, &x, 5, xq));
    }

    #[test]
    fn qgemm_is_bitwise_deterministic_across_threads() {
        let codes: Vec<i8> = (0..64 * 48).map(|v| ((v * 31) % 251) as i8).collect();
        let scales: Vec<f32> = (0..64 * 3).map(|v| 0.01 + v as f32 * 1e-4).collect();
        let w = QuantizedMatrix::new(codes, 64, 48, scales, 16).unwrap();
        let x: Vec<i8> = (0..48 * 33).map(|v| ((v * 17) % 199) as i8).collect();
        let xq = XQuant::symmetric(0.03);
        let mut serial = vec![0.0f32; 64 * 33];
        with_threads(1, || qgemm(&w, &x, 33, xq, &mut serial).unwrap());
        for t in [2usize, 7] {
            let mut par = vec![0.0f32; 64 * 33];
            with_threads(t, || qgemm(&w, &x, 33, xq, &mut par).unwrap());
            let sb: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u32> = par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, pb, "qgemm differs at {t} threads");
        }
    }

    #[test]
    fn packed_entry_points_match_unpacked_bitwise() {
        let codes: Vec<i8> = (0..9 * 21).map(|v| ((v * 31) % 251) as i8).collect();
        let scales: Vec<f32> = (0..9 * 3).map(|v| 0.01 + v as f32 * 1e-4).collect();
        let w = QuantizedMatrix::new(codes, 9, 21, scales, 8).unwrap();
        let pw = PackedQuantizedMatrix::pack(w.clone());
        assert_eq!(pw.matrix(), &w);
        let x: Vec<i8> = (0..21 * 7).map(|v| ((v * 17) % 199) as i8).collect();
        let xq = XQuant {
            scale: 0.03,
            zero_point: -4,
        };
        let mut plain = vec![0.0f32; 9 * 7];
        qgemm(&w, &x, 7, xq, &mut plain).unwrap();
        let mut packed = vec![0.0f32; 9 * 7];
        qgemm_packed(&pw, &x, 7, xq, &mut packed).unwrap();
        for (a, b) in plain.iter().zip(&packed) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(pw.clone().into_matrix(), w);
    }

    #[test]
    fn generic_and_dispatched_bodies_agree_bitwise() {
        let codes: Vec<i8> = (0..10 * 37).map(|v| ((v * 29) % 253) as i8).collect();
        let scales: Vec<f32> = (0..10 * 5).map(|v| 0.002 + v as f32 * 2e-4).collect();
        let w = QuantizedMatrix::new(codes, 10, 37, scales, 8).unwrap();
        let x: Vec<i8> = (0..37 * 11).map(|v| ((v * 13) % 241) as i8).collect();
        let xq = XQuant {
            scale: 0.05,
            zero_point: 2,
        };
        let mut dispatched = vec![0.0f32; 10 * 11];
        qgemm(&w, &x, 11, xq, &mut dispatched).unwrap();
        force_generic_kernels(true);
        let mut generic = vec![0.0f32; 10 * 11];
        let r = qgemm(&w, &x, 11, xq, &mut generic);
        force_generic_kernels(false);
        r.unwrap();
        for (a, b) in dispatched.iter().zip(&generic) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn out_of_range_zero_points_are_rejected() {
        let w = QuantizedMatrix::per_channel(vec![1, 2, 3, 4], 2, 2, vec![1.0, 1.0]).unwrap();
        let mut out = vec![0.0f32; 4];
        for zp in [MAX_ZERO_POINT, -MAX_ZERO_POINT] {
            let xq = XQuant {
                scale: 1.0,
                zero_point: zp,
            };
            qgemm(&w, &[1i8; 4], 2, xq, &mut out).unwrap();
            assert_eq!(out, naive(&w, &[1i8; 4], 2, xq));
        }
        for zp in [MAX_ZERO_POINT + 1, -MAX_ZERO_POINT - 1, i32::MIN, i32::MAX] {
            let xq = XQuant {
                scale: 1.0,
                zero_point: zp,
            };
            assert!(qgemm(&w, &[1i8; 4], 2, xq, &mut out).is_err(), "zp {zp}");
        }
    }

    #[test]
    fn delta_threshold_zero_and_above_one_agree_bitwise() {
        let w = multi_test_weight();
        let k = w.cols();
        let stripe = 5;
        let xqs = [XQuant::symmetric(0.02), XQuant::symmetric(0.07)];
        let n = stripe * xqs.len();
        let prev: Vec<i8> = (0..k * n).map(|v| ((v * 11) % 201) as i8).collect();
        let mut curr = prev.clone();
        let mask: Vec<bool> = (0..k * xqs.len()).map(|r| r % 3 == 1).collect();
        for (s, chunk) in mask.chunks(k).enumerate() {
            for (row, &ch) in chunk.iter().enumerate() {
                if ch {
                    for v in &mut curr[row * n + s * stripe..row * n + (s + 1) * stripe] {
                        *v = v.wrapping_add(6);
                    }
                }
            }
        }
        let mut prev_out = vec![0.0f32; w.rows() * n];
        qgemm_multi(&w, &prev, stripe, &xqs, &mut prev_out).unwrap();
        let mut dense = vec![0.0f32; w.rows() * n];
        qgemm_delta_multi_with_threshold(
            &w, &curr, &prev, &mask, stripe, &xqs, &prev_out, &mut dense, 0.0,
        )
        .unwrap();
        let mut sparse = vec![0.0f32; w.rows() * n];
        qgemm_delta_multi_with_threshold(
            &w,
            &curr,
            &prev,
            &mask,
            stripe,
            &xqs,
            &prev_out,
            &mut sparse,
            1.5,
        )
        .unwrap();
        let mut dflt = vec![0.0f32; w.rows() * n];
        qgemm_delta_multi(&w, &curr, &prev, &mask, stripe, &xqs, &prev_out, &mut dflt).unwrap();
        for ((a, b), c) in dense.iter().zip(&sparse).zip(&dflt) {
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn qgemm_delta_with_full_mask_matches_dense() {
        let codes: Vec<i8> = (0..6 * 8).map(|v| ((v * 13) % 127) as i8 - 60).collect();
        let scales: Vec<f32> = (0i32..12).map(|b| 0.5f32.powi(b % 5 + 1)).collect();
        let w = QuantizedMatrix::new(codes, 6, 8, scales, 4).unwrap();
        let prev: Vec<i8> = (0..8 * 5).map(|v| ((v * 11) % 200) as i8).collect();
        let curr: Vec<i8> = prev.iter().map(|&v| v.wrapping_add(3)).collect();
        let xq = XQuant {
            scale: 0.25,
            zero_point: -2,
        };
        let mut prev_out = vec![0.0f32; 30];
        qgemm(&w, &prev, 5, xq, &mut prev_out).unwrap();
        let mut dense = vec![0.0f32; 30];
        qgemm(&w, &curr, 5, xq, &mut dense).unwrap();
        let mut delta = vec![0.0f32; 30];
        qgemm_delta(&w, &curr, &prev, &[true; 8], 5, xq, &prev_out, &mut delta).unwrap();
        // Power-of-two scales keep every intermediate exact: bitwise match.
        for (d, e) in delta.iter().zip(dense.iter()) {
            assert_eq!(d.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn qgemm_delta_skips_unchanged_rows_exactly() {
        // Only rows 1 and 3 change; the mask marks exactly those, and the
        // delta result must equal the dense recomputation.
        let w =
            QuantizedMatrix::per_channel(vec![1, -2, 3, -4, 5, -6, 7, -8], 2, 4, vec![0.5, 0.25])
                .unwrap();
        let prev: Vec<i8> = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120];
        let mut curr = prev.clone();
        for j in 0..3 {
            curr[3 + j] = curr[3 + j].wrapping_add(5); // row 1
            curr[9 + j] = curr[9 + j].wrapping_sub(7); // row 3
        }
        let xq = XQuant::symmetric(0.125);
        let mut prev_out = vec![0.0f32; 6];
        qgemm(&w, &prev, 3, xq, &mut prev_out).unwrap();
        let mut dense = vec![0.0f32; 6];
        qgemm(&w, &curr, 3, xq, &mut dense).unwrap();
        let mut delta = vec![0.0f32; 6];
        qgemm_delta(
            &w,
            &curr,
            &prev,
            &[false, true, false, true],
            3,
            xq,
            &prev_out,
            &mut delta,
        )
        .unwrap();
        assert_eq!(delta, dense);
    }

    /// Pow2-scale packed conv weight: every f32 intermediate is exact, so
    /// delta and dense conv results can be compared bitwise.
    fn pow2_conv_weight(kout: usize, c: usize, kh: usize, kw: usize) -> PackedQuantizedMatrix {
        let cols = c * kh * kw;
        let codes: Vec<i8> = (0..kout * cols)
            .map(|v| ((v * 13) % 127) as i8 - 60)
            .collect();
        let scales: Vec<f32> = (0i32..kout as i32)
            .map(|i| 0.5f32.powi(i % 4 + 1))
            .collect();
        PackedQuantizedMatrix::pack(
            QuantizedMatrix::per_channel(codes, kout, cols, scales).unwrap(),
        )
    }

    #[test]
    fn conv_delta_matches_dense_conv_bitwise_with_pow2_scales() {
        let (n, c, h, w, kh, kw) = (2usize, 3usize, 5usize, 5usize, 3usize, 3usize);
        let pw = pow2_conv_weight(4, c, kh, kw);
        let geom = Conv2dGeometry::same(3);
        let bias: Vec<f32> = (0..4).map(|i| 0.25 * i as f32).collect();
        let xqs = vec![XQuant::symmetric(0.25); n];
        let mut codes: Vec<i8> = (0..n * c * h * w)
            .map(|v| ((v * 7) % 120) as i8 - 60)
            .collect();
        let mut state = ConvDeltaState::new();
        // Step 0 is dense (empty carry); later steps change two channels of
        // stream 0 only, with the trace mask flagging just one of them —
        // the exact code-diff union must catch the other.
        for step in 0..4 {
            if step > 0 {
                for v in &mut codes[0..h * w] {
                    *v = v.wrapping_add(3); // stream 0, channel 0
                }
                for v in &mut codes[2 * h * w..3 * h * w] {
                    *v = v.wrapping_sub(2); // stream 0, channel 2: unreported
                }
            }
            let mut changed = vec![false; n * c];
            changed[0] = step > 0; // only channel 0 reported by the "trace"
            let delta = conv2d_i8_packed_delta_multi(
                &pw,
                &codes,
                n,
                c,
                h,
                w,
                kh,
                kw,
                Some(&bias),
                geom,
                &xqs,
                &changed,
                &mut state,
                DELTA_DENSE_THRESHOLD,
            )
            .unwrap();
            let dense =
                conv2d_i8_packed_multi(&pw, &codes, n, c, h, w, kh, kw, Some(&bias), geom, &xqs)
                    .unwrap();
            assert_eq!(delta.dims(), dense.dims());
            for (a, b) in delta.as_slice().iter().zip(dense.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "step {step}");
            }
        }
        assert_eq!(state.dense_steps, 1);
        assert_eq!(state.delta_steps, 3);
    }

    #[test]
    fn conv_delta_scale_change_falls_back_dense() {
        let (n, c, h, w, kh, kw) = (1usize, 2usize, 4usize, 4usize, 3usize, 3usize);
        let pw = pow2_conv_weight(3, c, kh, kw);
        let geom = Conv2dGeometry::same(3);
        let codes: Vec<i8> = (0..n * c * h * w)
            .map(|v| ((v * 5) % 100) as i8 - 48)
            .collect();
        let mut state = ConvDeltaState::new();
        let changed = vec![false; n * c];
        for &scale in &[0.5f32, 0.5, 0.25] {
            let xqs = vec![XQuant::symmetric(scale); n];
            let delta = conv2d_i8_packed_delta_multi(
                &pw,
                &codes,
                n,
                c,
                h,
                w,
                kh,
                kw,
                None,
                geom,
                &xqs,
                &changed,
                &mut state,
                DELTA_DENSE_THRESHOLD,
            )
            .unwrap();
            let dense =
                conv2d_i8_packed_multi(&pw, &codes, n, c, h, w, kh, kw, None, geom, &xqs).unwrap();
            for (a, b) in delta.as_slice().iter().zip(dense.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // First call and the scale change run dense; the identical middle
        // step is a (trivially empty) delta step.
        assert_eq!(state.dense_steps, 2);
        assert_eq!(state.delta_steps, 1);
        // reset() drops the carry: next call is dense again.
        state.reset();
        let xqs = vec![XQuant::symmetric(0.25); n];
        conv2d_i8_packed_delta_multi(
            &pw,
            &codes,
            n,
            c,
            h,
            w,
            kh,
            kw,
            None,
            geom,
            &xqs,
            &changed,
            &mut state,
            DELTA_DENSE_THRESHOLD,
        )
        .unwrap();
        assert_eq!(state.dense_steps, 3);
    }

    #[test]
    fn conv_delta_sparse_and_dense_dispatch_agree_bitwise() {
        // Arbitrary (non-pow2) scales: the two dispatch paths of the delta
        // kernel itself must still agree bitwise.
        let (n, c, h, w, kh, kw) = (2usize, 2usize, 4usize, 4usize, 3usize, 3usize);
        let cols = c * kh * kw;
        let codes_w: Vec<i8> = (0..3 * cols).map(|v| ((v * 19) % 127) as i8 - 63).collect();
        let scales: Vec<f32> = vec![0.013, 0.21, 0.0077];
        let pw = PackedQuantizedMatrix::pack(
            QuantizedMatrix::per_channel(codes_w, 3, cols, scales).unwrap(),
        );
        let geom = Conv2dGeometry::same(3);
        let xqs = vec![XQuant::symmetric(0.031); n];
        let mut codes: Vec<i8> = (0..n * c * h * w)
            .map(|v| ((v * 3) % 90) as i8 - 40)
            .collect();
        let mut s_sparse = ConvDeltaState::new();
        let mut s_dense = ConvDeltaState::new();
        for step in 0..3 {
            if step > 0 {
                for v in &mut codes[h * w..2 * h * w] {
                    *v = v.wrapping_add(1);
                }
            }
            let changed = vec![false; n * c]; // exact diff supplies the mask
            let a = conv2d_i8_packed_delta_multi(
                &pw,
                &codes,
                n,
                c,
                h,
                w,
                kh,
                kw,
                None,
                geom,
                &xqs,
                &changed,
                &mut s_sparse,
                1.5,
            )
            .unwrap();
            let b = conv2d_i8_packed_delta_multi(
                &pw,
                &codes,
                n,
                c,
                h,
                w,
                kh,
                kw,
                None,
                geom,
                &xqs,
                &changed,
                &mut s_dense,
                0.0,
            )
            .unwrap();
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "step {step}");
            }
        }
        assert_eq!(s_sparse.delta_steps, 2);
        assert_eq!(s_dense.delta_steps, 2);
    }

    #[test]
    fn transpose_i8_round_trips() {
        let src: Vec<i8> = (0..15).map(|v| v as i8 - 7).collect();
        let t = transpose_i8(&src, 3, 5).unwrap();
        assert_eq!(t[0], src[0]);
        assert_eq!(t[1], src[5]);
        assert_eq!(transpose_i8(&t, 5, 3).unwrap(), src);
        assert!(transpose_i8(&src, 4, 5).is_err());
    }

    #[test]
    fn im2col_i8_matches_f32_im2col_layout() {
        let codes: Vec<i8> = (0..2 * 2 * 4 * 4).map(|v| (v % 17) as i8 - 8).collect();
        let geom = Conv2dGeometry::new(2, 1);
        let ic = im2col_i8(&codes, 2, 2, 4, 4, 3, 3, geom, 0).unwrap();
        let xf = Tensor::from_vec(codes.iter().map(|&v| v as f32).collect(), [2, 2, 4, 4]).unwrap();
        let fc = crate::ops::im2col(&xf, 3, 3, geom).unwrap();
        assert_eq!(ic.len(), fc.len());
        for (a, b) in ic.iter().zip(fc.as_slice()) {
            assert_eq!(*a as f32, *b);
        }
    }

    #[test]
    fn im2col_i8_pads_with_zero_point_code() {
        // 1x1x2x2 input, 3x3 kernel, padding 1: corners of the matrix are
        // entirely padding and must carry the zero-point code.
        let codes: Vec<i8> = vec![1, 2, 3, 4];
        let ic = im2col_i8(&codes, 1, 1, 2, 2, 3, 3, Conv2dGeometry::same(3), 5).unwrap();
        // Row 0 (ky=0, kx=0) column 0 (oy=0, ox=0) reads input (-1, -1): pad.
        assert_eq!(ic[0], 5);
        // Center row (ky=1, kx=1) is the identity gather: no padding.
        let center = 4; // (ky * kw + kx) with ky = kx = 1
        assert_eq!(&ic[center * 4..center * 4 + 4], &[1, 2, 3, 4]);
    }

    #[test]
    fn conv2d_i8_matches_f32_conv_on_pow2_scales() {
        // Codes and power-of-two scales: the f32 conv over dequantized
        // operands is exact, so the integer path must match bitwise.
        let xc: Vec<i8> = (0..50).map(|v| ((v * 29) % 255) as i8).collect(); // [1, 2, 5, 5]
        let wc: Vec<i8> = (0..54).map(|v| ((v * 37) % 251) as i8).collect(); // [3, 2, 3, 3]
        let w_scales = vec![0.5f32, 0.25, 0.125];
        let xq = XQuant::symmetric(0.0625);
        let bias = vec![0.75f32, -1.5, 3.0];
        let geom = Conv2dGeometry::same(3);

        let wq = QuantizedMatrix::per_channel(wc.clone(), 3, 18, w_scales.clone()).unwrap();
        let yi = conv2d_i8(&xc, 1, 2, 5, 5, &wq, 3, 3, Some(&bias), geom, xq).unwrap();

        let xf = Tensor::from_vec(
            xc.iter().map(|&v| v as f32 * xq.scale).collect(),
            [1, 2, 5, 5],
        )
        .unwrap();
        let wf = Tensor::from_vec(
            wc.iter()
                .enumerate()
                .map(|(i, &v)| v as f32 * w_scales[i / 18])
                .collect(),
            [3, 2, 3, 3],
        )
        .unwrap();
        let bf = Tensor::from_vec(bias.clone(), [3]).unwrap();
        let yf = crate::ops::conv2d(&xf, &wf, Some(&bf), geom).unwrap();
        assert_eq!(yi.dims(), yf.dims());
        for (a, b) in yi.as_slice().iter().zip(yf.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn shape_errors_are_reported() {
        let w = QuantizedMatrix::per_channel(vec![1, 2, 3, 4], 2, 2, vec![1.0, 1.0]).unwrap();
        let xq = XQuant::symmetric(1.0);
        let mut out = vec![0.0f32; 4];
        assert!(qgemm(&w, &[1i8; 5], 2, xq, &mut out).is_err());
        assert!(qgemm(&w, &[1i8; 4], 2, xq, &mut [0.0f32; 3]).is_err());
        assert!(qgemm_delta(&w, &[1; 4], &[1; 3], &[true; 2], 2, xq, &[0.0; 4], &mut out).is_err());
        assert!(qgemm_delta(&w, &[1; 4], &[1; 4], &[true; 3], 2, xq, &[0.0; 4], &mut out).is_err());
        assert!(QuantizedMatrix::new(vec![1], 1, 2, vec![1.0], 2).is_err());
        assert!(QuantizedMatrix::new(vec![1, 2], 1, 2, vec![1.0, 1.0], 1).is_ok());
        assert!(QuantizedMatrix::new(vec![1, 2], 1, 2, vec![1.0], 0).is_err());
        assert!(im2col_i8(&[1i8; 3], 1, 1, 2, 2, 3, 3, Conv2dGeometry::same(3), 0).is_err());
    }

    /// Builds an arbitrary blocked 6x8 weight matrix shared by the multi
    /// tests.
    fn multi_test_weight() -> QuantizedMatrix {
        let codes: Vec<i8> = (0..6 * 8).map(|v| ((v * 23) % 251) as i8).collect();
        let scales: Vec<f32> = (0..12).map(|v| 0.002 + v as f32 * 3e-4).collect();
        QuantizedMatrix::new(codes, 6, 8, scales, 4).unwrap()
    }

    #[test]
    fn qgemm_multi_is_bitwise_identical_to_per_request_calls() {
        let w = multi_test_weight();
        let k = w.cols();
        let stripe = 5;
        // Three requests with distinct scales *and* zero points.
        let xqs = [
            XQuant {
                scale: 0.03,
                zero_point: 2,
            },
            XQuant::symmetric(0.011),
            XQuant {
                scale: 0.25,
                zero_point: -7,
            },
        ];
        // Per-request code matrices [k, stripe], then packed side by side.
        let per: Vec<Vec<i8>> = (0..3)
            .map(|r| {
                (0..k * stripe)
                    .map(|v| ((v * 7 + r * 31) % 229) as i8)
                    .collect()
            })
            .collect();
        let n = stripe * xqs.len();
        let mut packed = vec![0i8; k * n];
        for row in 0..k {
            for (r, p) in per.iter().enumerate() {
                packed[row * n + r * stripe..row * n + (r + 1) * stripe]
                    .copy_from_slice(&p[row * stripe..(row + 1) * stripe]);
            }
        }
        for threads in [1usize, 2, 7] {
            with_threads(threads, || {
                let mut batched = vec![0.0f32; w.rows() * n];
                qgemm_multi(&w, &packed, stripe, &xqs, &mut batched).unwrap();
                for (r, p) in per.iter().enumerate() {
                    let mut single = vec![0.0f32; w.rows() * stripe];
                    qgemm(&w, p, stripe, xqs[r], &mut single).unwrap();
                    for i in 0..w.rows() {
                        for j in 0..stripe {
                            let b = batched[i * n + r * stripe + j];
                            let s = single[i * stripe + j];
                            assert_eq!(
                                b.to_bits(),
                                s.to_bits(),
                                "request {r} ({i},{j}) at {threads} threads: {b} vs {s}"
                            );
                        }
                    }
                }
            });
        }
    }

    #[test]
    fn qgemm_delta_multi_applies_each_streams_own_mask() {
        let w = multi_test_weight();
        let k = w.cols();
        let stripe = 4;
        let xqs = [XQuant::symmetric(0.02), XQuant::symmetric(0.05)];
        // Stream 0 changes rows {1, 6}; stream 1 changes rows {0, 3, 7}.
        let masks = [
            [false, true, false, false, false, false, true, false],
            [true, false, false, true, false, false, false, true],
        ];
        let prev: Vec<Vec<i8>> = (0..2)
            .map(|r| {
                (0..k * stripe)
                    .map(|v| ((v * 13 + r * 17) % 211) as i8)
                    .collect()
            })
            .collect();
        let curr: Vec<Vec<i8>> = prev
            .iter()
            .zip(masks.iter())
            .map(|(p, m)| {
                let mut c = p.clone();
                for (row, &ch) in m.iter().enumerate() {
                    if ch {
                        for v in &mut c[row * stripe..(row + 1) * stripe] {
                            *v = v.wrapping_add(4);
                        }
                    }
                }
                c
            })
            .collect();
        let pack = |srcs: &[Vec<i8>]| {
            let n = stripe * srcs.len();
            let mut out = vec![0i8; k * n];
            for row in 0..k {
                for (r, p) in srcs.iter().enumerate() {
                    out[row * n + r * stripe..row * n + (r + 1) * stripe]
                        .copy_from_slice(&p[row * stripe..(row + 1) * stripe]);
                }
            }
            out
        };
        let n = stripe * 2;
        let packed_prev = pack(&prev);
        let packed_curr = pack(&curr);
        let flat_mask: Vec<bool> = masks.iter().flatten().copied().collect();
        let mut prev_out = vec![0.0f32; w.rows() * n];
        qgemm_multi(&w, &packed_prev, stripe, &xqs, &mut prev_out).unwrap();
        for threads in [1usize, 2, 7] {
            with_threads(threads, || {
                let mut batched = vec![0.0f32; w.rows() * n];
                qgemm_delta_multi(
                    &w,
                    &packed_curr,
                    &packed_prev,
                    &flat_mask,
                    stripe,
                    &xqs,
                    &prev_out,
                    &mut batched,
                )
                .unwrap();
                for r in 0..2 {
                    let mut sprev = vec![0.0f32; w.rows() * stripe];
                    qgemm(&w, &prev[r], stripe, xqs[r], &mut sprev).unwrap();
                    let mut single = vec![0.0f32; w.rows() * stripe];
                    qgemm_delta(
                        &w,
                        &curr[r],
                        &prev[r],
                        &masks[r],
                        stripe,
                        xqs[r],
                        &sprev,
                        &mut single,
                    )
                    .unwrap();
                    for i in 0..w.rows() {
                        for j in 0..stripe {
                            let b = batched[i * n + r * stripe + j];
                            let s = single[i * stripe + j];
                            assert_eq!(
                                b.to_bits(),
                                s.to_bits(),
                                "stream {r} ({i},{j}) at {threads} threads"
                            );
                        }
                    }
                }
            });
        }
    }

    #[test]
    fn conv2d_i8_multi_matches_per_sample_convs_bitwise() {
        let (n, c, h, w_ext) = (3usize, 2usize, 5usize, 4usize);
        let geom = Conv2dGeometry::same(3);
        let wq = QuantizedMatrix::per_channel(
            (0..2 * 18).map(|v| ((v * 41) % 253) as i8).collect(),
            2,
            18,
            vec![0.004, 0.009],
        )
        .unwrap();
        let bias = [0.5f32, -0.25];
        let xqs = [
            XQuant::symmetric(0.02),
            XQuant {
                scale: 0.05,
                zero_point: 3,
            },
            XQuant::symmetric(0.013),
        ];
        let stride = c * h * w_ext;
        let codes: Vec<i8> = (0..n * stride).map(|v| ((v * 29) % 241) as i8).collect();
        let batched =
            conv2d_i8_multi(&codes, n, c, h, w_ext, &wq, 3, 3, Some(&bias), geom, &xqs).unwrap();
        for nn in 0..n {
            let single = conv2d_i8(
                &codes[nn * stride..(nn + 1) * stride],
                1,
                c,
                h,
                w_ext,
                &wq,
                3,
                3,
                Some(&bias),
                geom,
                xqs[nn],
            )
            .unwrap();
            let per = single.len();
            for (j, (&b, &s)) in batched.as_slice()[nn * per..(nn + 1) * per]
                .iter()
                .zip(single.as_slice())
                .enumerate()
            {
                assert_eq!(b.to_bits(), s.to_bits(), "sample {nn} element {j}");
            }
        }
    }

    #[test]
    fn multi_kernels_report_shape_errors() {
        let w = QuantizedMatrix::per_channel(vec![1, 2, 3, 4], 2, 2, vec![1.0, 1.0]).unwrap();
        let xqs = [XQuant::symmetric(1.0), XQuant::symmetric(0.5)];
        let mut out = vec![0.0f32; 2 * 2 * 2];
        // Wrong code length for 2 stripes of width 2.
        assert!(qgemm_multi(&w, &[1i8; 7], 2, &xqs, &mut out).is_err());
        // Mask length must be streams x k.
        assert!(qgemm_delta_multi(
            &w, &[1i8; 8], &[1i8; 8], &[true; 3], 2, &xqs, &[0.0; 8], &mut out,
        )
        .is_err());
        // Per-request quantization list must match the batch size.
        assert!(conv2d_i8_multi(
            &[1i8; 8],
            2,
            1,
            2,
            2,
            &QuantizedMatrix::per_channel(vec![1; 4], 1, 4, vec![1.0]).unwrap(),
            2,
            2,
            None,
            Conv2dGeometry::new(1, 0),
            &xqs[..1],
        )
        .is_err());
        assert!(im2col_i8_multi(
            &[1i8; 8],
            2,
            1,
            2,
            2,
            2,
            2,
            Conv2dGeometry::new(1, 0),
            &[0, 0, 0],
        )
        .is_err());
    }

    #[test]
    fn empty_operands_yield_empty_or_zero() {
        let w = QuantizedMatrix::per_channel(Vec::new(), 0, 3, Vec::new()).unwrap();
        let mut out = Vec::new();
        qgemm(&w, &[1i8; 6], 2, XQuant::symmetric(1.0), &mut out).unwrap();
        // Zero-length reduction: no scale blocks exist, output is zeroed.
        let wk0 = QuantizedMatrix::per_channel(Vec::new(), 2, 0, Vec::new()).unwrap();
        let mut out2 = vec![9.0f32; 4];
        qgemm(&wk0, &[], 2, XQuant::symmetric(1.0), &mut out2).unwrap();
        assert_eq!(out2, vec![0.0; 4]);
    }
}
