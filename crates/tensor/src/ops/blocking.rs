//! Per-shape blocking heuristic shared by the GEMM cores.
//!
//! Both matrix-multiply families in this crate — the dense f32 core in
//! [`super::matmul`] and the packed integer microkernels in [`super::int`]
//! — size their work units here, so the cache model lives in one place:
//!
//! * **Task work estimate.** [`gemm_task_work`] is the flop estimate the
//!   worker pool uses to decide how many tasks a GEMM is worth; both cores
//!   feed it to [`crate::parallel::par_chunks_mut`].
//! * **Row panels.** [`PANEL_ROWS`] output rows form one panel — the unit
//!   the packed integer kernel partitions over the pool, chosen so a
//!   panel's weight rows plus one L1 column tile stay cache-resident.
//! * **Column tiles.** [`col_tile`] sizes the stripe of packed activation
//!   columns a panel sweeps before moving on, so the tile (`tile ×
//!   packed_k` i16 lanes) stays within half an L1 data cache and is reused
//!   by every row of the panel.
//!
//! The f32 core *consults* this module but deliberately keeps its
//! broadcast-form i-k-j loop untiled: it streams full `n`-wide rows of the
//! right operand, and measurements at the bench shape (256³) show
//! panel×tile restructuring slows that kernel down (the wide contiguous
//! inner loop is already bandwidth-optimal for f32, and tiling shortens
//! it). The dot-form integer kernel has the opposite profile — its inner
//! loop walks two short i16 streams, so keeping a tile of those streams
//! hot in L1 across a panel is what makes it beat the f32 core. The
//! heuristic therefore exposes both shapes of advice and each core takes
//! the part that matches its loop form.

/// i16 lanes in one 256-bit vector — the pad quantum of the packed
/// integer layouts. Scale blocks are padded to multiples of this so every
/// block-aligned dot product runs over whole vector registers.
pub const LANE: usize = 16;

/// Output rows per panel in the packed integer kernel: the parallel work
/// unit, and the number of weight rows that share one resident column
/// tile. Small enough that `PANEL_ROWS` packed weight rows (a few KiB)
/// never crowd the tile out of L1.
pub const PANEL_ROWS: usize = 4;

/// Bytes of L1 data cache a column tile may occupy: half of the common
/// 32 KiB, leaving the other half for the panel's weight rows, the output
/// stripe, and incidental traffic.
const L1_TILE_BYTES: usize = 16 * 1024;

/// Approximate work units (fused multiply-adds) one `[k] × [k, n]` output
/// row costs — the per-chunk work estimate both GEMM cores hand to the
/// worker pool.
pub fn gemm_task_work(k: usize, n: usize) -> usize {
    2 * k.max(1) * n.max(1)
}

/// Number of packed activation columns (each `packed_k` i16 lanes long) a
/// panel sweeps per tile: as many as fit in the L1 tile budget, clamped
/// to `[4, n]` and rounded down to a multiple of 4 so the 4-wide generic
/// microkernel never straddles a tile edge.
pub fn col_tile(packed_k: usize, n: usize) -> usize {
    if n == 0 {
        return 4;
    }
    let fit = L1_TILE_BYTES / (2 * packed_k.max(1));
    let tile = fit.clamp(4, n.max(4));
    (tile & !3).max(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_tile_fits_l1_and_is_quad_aligned() {
        for pk in [1usize, 16, 64, 256, 1024, 4096, 1 << 20] {
            for n in [1usize, 4, 7, 256, 10_000] {
                let t = col_tile(pk, n);
                assert!(t >= 4, "tile {t} too small at pk={pk} n={n}");
                assert_eq!(t % 4, 0, "tile {t} not quad-aligned");
                // Either the tile obeys the L1 budget or it is the minimum.
                assert!(t == 4 || 2 * t * pk <= L1_TILE_BYTES);
            }
        }
    }

    #[test]
    fn task_work_scales_with_shape_and_never_vanishes() {
        assert_eq!(gemm_task_work(256, 256), 2 * 256 * 256);
        assert!(gemm_task_work(0, 0) > 0);
    }
}
