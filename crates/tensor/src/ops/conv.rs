//! 2-D convolution: forward and backward kernels built on im2col.
//!
//! The EDM U-Net is convolution-dominated (the paper's Figure 4 attributes
//! over 90% of compute to Conv+activation blocks), so these kernels carry
//! almost all of the model's arithmetic. The im2col lowering also mirrors how
//! the accelerator simulator lowers convolutions to GEMM workloads.

use crate::error::{Result, TensorError};
use crate::ops::matmul::{matmul, matmul_a_bt, matmul_at_b};
use crate::parallel;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D convolution (square stride/padding, no dilation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2dGeometry {
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub padding: usize,
}

impl Default for Conv2dGeometry {
    fn default() -> Self {
        Conv2dGeometry {
            stride: 1,
            padding: 0,
        }
    }
}

impl Conv2dGeometry {
    /// Geometry with the given stride and padding.
    pub fn new(stride: usize, padding: usize) -> Self {
        Conv2dGeometry { stride, padding }
    }

    /// "Same" padding for odd kernel size `k` at stride 1.
    pub fn same(k: usize) -> Self {
        Conv2dGeometry {
            stride: 1,
            padding: k / 2,
        }
    }

    /// Output spatial extent for an input extent and kernel extent.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConvGeometry`] if the kernel does not
    /// fit in the padded input or the stride is zero.
    pub fn out_extent(&self, input: usize, kernel: usize) -> Result<usize> {
        if self.stride == 0 {
            return Err(TensorError::InvalidConvGeometry {
                reason: "stride must be nonzero".into(),
            });
        }
        let padded = input + 2 * self.padding;
        if kernel == 0 || kernel > padded {
            return Err(TensorError::InvalidConvGeometry {
                reason: format!("kernel {kernel} does not fit padded input {padded}"),
            });
        }
        Ok((padded - kernel) / self.stride + 1)
    }
}

/// Lowers an input feature map `[N, C, H, W]` into the im2col matrix
/// `[C*kh*kw, N*oh*ow]` for the given kernel size and geometry.
///
/// Column `((n*oh + oy)*ow + ox)` holds the receptive field of output pixel
/// `(oy, ox)` of batch element `n`, flattened in `(c, ky, kx)` order. This
/// matches the weight layout `[K, C*kh*kw]` used by [`conv2d`]. Rows of the
/// matrix are gathered independently, so they are distributed over the
/// worker pool; every matrix element is written exactly once, making the
/// result identical at any thread count.
///
/// # Errors
///
/// Returns an error for non-rank-4 input or invalid geometry.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, geom: Conv2dGeometry) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let oh = geom.out_extent(h, kh)?;
    let ow = geom.out_extent(w, kw)?;
    let rows = c * kh * kw;
    let cols = n * oh * ow;
    let iv = input.as_slice();
    let mut out = vec![0.0f32; rows * cols];
    if rows > 0 && cols > 0 {
        parallel::par_chunks_mut(&mut out, cols, 2 * cols, |row, o_row| {
            let cc = row / (kh * kw);
            let ky = (row / kw) % kh;
            let kx = row % kw;
            for nn in 0..n {
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let in_row = &iv[((nn * c + cc) * h + iy as usize) * w..][..w];
                    let o_base = (nn * oh + oy) * ow;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        o_row[o_base + ox] = in_row[ix as usize];
                    }
                }
            }
        });
    }
    Tensor::from_vec(out, [rows, cols])
}

/// Scatters an im2col matrix `[C*kh*kw, N*oh*ow]` back onto a feature map
/// `[N, C, H, W]`, accumulating overlapping contributions.
///
/// This is the adjoint of [`im2col`] and implements the input-gradient pass
/// of the convolution.
///
/// # Errors
///
/// Returns an error if the matrix shape is inconsistent with the geometry.
#[allow(clippy::too_many_arguments)] // mirrors im2col's full geometry tuple
pub fn col2im(
    cols_mat: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    geom: Conv2dGeometry,
) -> Result<Tensor> {
    let oh = geom.out_extent(h, kh)?;
    let ow = geom.out_extent(w, kw)?;
    let rows = c * kh * kw;
    let cols = n * oh * ow;
    if cols_mat.dims() != [rows, cols] {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: cols_mat.dims().to_vec(),
            rhs: vec![rows, cols],
        });
    }
    let cv = cols_mat.as_slice();
    let mut out = vec![0.0f32; n * c * h * w];
    // Scatter one (n, c) image plane per chunk: all contributions to a
    // plane come from its own channel's rows, so planes are independent,
    // and within a plane the (oy, ox, ky, kx) accumulation order matches
    // the serial loop — bitwise identical at any thread count.
    if n * c > 0 && h * w > 0 {
        parallel::par_chunks_mut(&mut out, h * w, 2 * oh * ow * kh * kw, |plane, o_plane| {
            let nn = plane / c;
            let cc = plane % c;
            for oy in 0..oh {
                for ox in 0..ow {
                    let col = (nn * oh + oy) * ow + ox;
                    for ky in 0..kh {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let row = (cc * kh + ky) * kw + kx;
                            o_plane[iy as usize * w + ix as usize] += cv[row * cols + col];
                        }
                    }
                }
            }
        });
    }
    Tensor::from_vec(out, [n, c, h, w])
}

/// 2-D convolution forward pass.
///
/// * `input`: `[N, C, H, W]`
/// * `weight`: `[K, C, kh, kw]`
/// * `bias`: optional `[K]`
///
/// Returns `[N, K, oh, ow]`.
///
/// # Errors
///
/// Returns an error for rank/shape mismatches or invalid geometry.
///
/// # Examples
///
/// ```
/// use sqdm_tensor::{Tensor, ops::{conv2d, Conv2dGeometry}};
/// # fn main() -> Result<(), sqdm_tensor::TensorError> {
/// let x = Tensor::ones([1, 1, 4, 4]);
/// let w = Tensor::ones([1, 1, 3, 3]);
/// let y = conv2d(&x, &w, None, Conv2dGeometry::same(3))?;
/// assert_eq!(y.dims(), &[1, 1, 4, 4]);
/// assert_eq!(y.get(&[0, 0, 1, 1])?, 9.0); // fully-overlapped window
/// # Ok(())
/// # }
/// ```
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    geom: Conv2dGeometry,
) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (k, wc, kh, kw) = weight.shape().as_nchw()?;
    if wc != c {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: input.dims().to_vec(),
            rhs: weight.dims().to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.dims() != [k] {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d(bias)",
                lhs: b.dims().to_vec(),
                rhs: vec![k],
            });
        }
    }
    let oh = geom.out_extent(h, kh)?;
    let ow = geom.out_extent(w, kw)?;

    let cols = im2col(input, kh, kw, geom)?;
    let wmat = weight.reshape([k, c * kh * kw])?;
    // [K, C*kh*kw] x [C*kh*kw, N*oh*ow] -> [K, N*oh*ow]
    let prod = matmul(&wmat, &cols)?;

    // Re-lay out from [K, N*oh*ow] to [N, K, oh, ow] and add bias, one
    // (n, k) output plane per chunk.
    let pv = prod.as_slice();
    let mut out = vec![0.0f32; n * k * oh * ow];
    let spatial = oh * ow;
    if n * k > 0 && spatial > 0 {
        parallel::par_chunks_mut(&mut out, spatial, 2 * spatial, |plane, dst| {
            let nn = plane / k;
            let kk = plane % k;
            let b = bias.map(|b| b.as_slice()[kk]).unwrap_or(0.0);
            let src = &pv[kk * n * spatial + nn * spatial..kk * n * spatial + (nn + 1) * spatial];
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = s + b;
            }
        });
    }
    Tensor::from_vec(out, [n, k, oh, ow])
}

/// Multi-request 2-D convolution: applies one weight (and bias) to a
/// batch of independent inputs in a single [`conv2d`] call.
///
/// Each request `xs[i]` is `[Nᵢ, C, H, W]` over a shared spatial
/// geometry; the inputs are stacked along the batch axis, lowered and
/// multiplied once — one im2col, one weight reshape, one GEMM for the
/// whole batch — and the outputs are split back per request. Because the
/// convolution's im2col columns, GEMM reductions and bias epilogue are
/// all per-sample independent, each returned tensor is bitwise identical
/// to `conv2d(&xs[i], weight, bias, geom)` at any `SQDM_THREADS`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the requests disagree on
/// `[C, H, W]`, plus all [`conv2d`] error conditions.
pub fn conv2d_multi(
    xs: &[Tensor],
    weight: &Tensor,
    bias: Option<&Tensor>,
    geom: Conv2dGeometry,
) -> Result<Vec<Tensor>> {
    if xs.is_empty() {
        return Ok(Vec::new());
    }
    let (_, c, h, w) = xs[0].shape().as_nchw()?;
    let mut total_n = 0usize;
    for x in xs {
        let (nx, cx, hx, wx) = x.shape().as_nchw()?;
        if (cx, hx, wx) != (c, h, w) {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_multi",
                lhs: x.dims().to_vec(),
                rhs: xs[0].dims().to_vec(),
            });
        }
        total_n += nx;
    }
    let mut packed = Vec::with_capacity(total_n * c * h * w);
    for x in xs {
        packed.extend_from_slice(x.as_slice());
    }
    let packed = Tensor::from_vec(packed, [total_n, c, h, w])?;
    let y = conv2d(&packed, weight, bias, geom)?;
    let (_, k, oh, ow) = y.shape().as_nchw()?;
    let stride = k * oh * ow;
    let yv = y.as_slice();
    let mut results = Vec::with_capacity(xs.len());
    let mut row = 0usize;
    for x in xs {
        let nx = x.dims()[0];
        results.push(Tensor::from_vec(
            yv[row * stride..(row + nx) * stride].to_vec(),
            [nx, k, oh, ow],
        )?);
        row += nx;
    }
    Ok(results)
}

/// Gradients of a 2-D convolution.
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the input, `[N, C, H, W]`.
    pub grad_input: Tensor,
    /// Gradient with respect to the weight, `[K, C, kh, kw]`.
    pub grad_weight: Tensor,
    /// Gradient with respect to the bias, `[K]`.
    pub grad_bias: Tensor,
}

/// 2-D convolution backward pass.
///
/// Given the upstream gradient `grad_out` of shape `[N, K, oh, ow]`, the
/// original `input` and `weight`, computes gradients for input, weight and
/// bias.
///
/// # Errors
///
/// Returns an error for rank/shape mismatches or invalid geometry.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    geom: Conv2dGeometry,
) -> Result<Conv2dGrads> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (k, wc, kh, kw) = weight.shape().as_nchw()?;
    if wc != c {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: input.dims().to_vec(),
            rhs: weight.dims().to_vec(),
        });
    }
    let oh = geom.out_extent(h, kh)?;
    let ow = geom.out_extent(w, kw)?;
    if grad_out.dims() != [n, k, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward(grad_out)",
            lhs: grad_out.dims().to_vec(),
            rhs: vec![n, k, oh, ow],
        });
    }

    // Rearrange grad_out from [N, K, oh, ow] to the GEMM layout [K, N*oh*ow].
    let spatial = oh * ow;
    let gv = grad_out.as_slice();
    let mut gmat = vec![0.0f32; k * n * spatial];
    for nn in 0..n {
        for kk in 0..k {
            let src = &gv[(nn * k + kk) * spatial..(nn * k + kk + 1) * spatial];
            let dst =
                &mut gmat[kk * n * spatial + nn * spatial..kk * n * spatial + (nn + 1) * spatial];
            dst.copy_from_slice(src);
        }
    }
    let gmat = Tensor::from_vec(gmat, [k, n * spatial])?;

    // grad_weight = gmat x colsᵀ  -> [K, C*kh*kw]
    let cols = im2col(input, kh, kw, geom)?;
    let gw = matmul_a_bt(&gmat, &cols)?;
    let grad_weight = gw.reshape([k, c, kh, kw])?;

    // grad_input = col2im(wmatᵀ x gmat)
    let wmat = weight.reshape([k, c * kh * kw])?;
    let gcols = matmul_at_b(&wmat, &gmat)?; // [C*kh*kw, N*oh*ow]
    let grad_input = col2im(&gcols, n, c, h, w, kh, kw, geom)?;

    // grad_bias = per-output-channel sum of grad_out.
    let mut gb = vec![0.0f32; k];
    for nn in 0..n {
        for kk in 0..k {
            let src = &gv[(nn * k + kk) * spatial..(nn * k + kk + 1) * spatial];
            gb[kk] += src.iter().sum::<f32>();
        }
    }
    let grad_bias = Tensor::from_vec(gb, [k])?;

    Ok(Conv2dGrads {
        grad_input,
        grad_weight,
        grad_bias,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Direct convolution reference (no im2col), for cross-checking.
    fn conv2d_naive(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        geom: Conv2dGeometry,
    ) -> Tensor {
        let (n, c, h, w) = input.shape().as_nchw().unwrap();
        let (k, _, kh, kw) = weight.shape().as_nchw().unwrap();
        let oh = geom.out_extent(h, kh).unwrap();
        let ow = geom.out_extent(w, kw).unwrap();
        let mut out = Tensor::zeros([n, k, oh, ow]);
        for nn in 0..n {
            for kk in 0..k {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map(|b| b.as_slice()[kk]).unwrap_or(0.0);
                        for cc in 0..c {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy =
                                        (oy * geom.stride + ky) as isize - geom.padding as isize;
                                    let ix =
                                        (ox * geom.stride + kx) as isize - geom.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.get(&[nn, cc, iy as usize, ix as usize]).unwrap()
                                        * weight.get(&[kk, cc, ky, kx]).unwrap();
                                }
                            }
                        }
                        out.set(&[nn, kk, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_naive() {
        let mut rng = Rng::seed_from(10);
        for (geom, n, c, k, h, w, kh) in [
            (Conv2dGeometry::new(1, 0), 1, 1, 1, 5, 5, 3),
            (Conv2dGeometry::same(3), 2, 3, 4, 6, 6, 3),
            (Conv2dGeometry::new(2, 1), 1, 2, 3, 8, 8, 3),
            (Conv2dGeometry::new(1, 0), 1, 2, 2, 4, 4, 1),
        ] {
            let x = Tensor::randn([n, c, h, w], &mut rng);
            let wt = Tensor::randn([k, c, kh, kh], &mut rng);
            let b = Tensor::randn([k], &mut rng);
            let fast = conv2d(&x, &wt, Some(&b), geom).unwrap();
            let slow = conv2d_naive(&x, &wt, Some(&b), geom);
            assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn multi_request_conv_matches_per_request_calls_bitwise() {
        let mut rng = Rng::seed_from(23);
        let geom = Conv2dGeometry::same(3);
        let wt = Tensor::randn([4, 3, 3, 3], &mut rng);
        let b = Tensor::randn([4], &mut rng);
        let xs = [
            Tensor::randn([1, 3, 6, 6], &mut rng),
            Tensor::randn([2, 3, 6, 6], &mut rng),
            Tensor::randn([1, 3, 6, 6], &mut rng),
        ];
        let batched = conv2d_multi(&xs, &wt, Some(&b), geom).unwrap();
        assert_eq!(batched.len(), xs.len());
        for (x, y) in xs.iter().zip(&batched) {
            let single = conv2d(x, &wt, Some(&b), geom).unwrap();
            assert_eq!(single.dims(), y.dims());
            for (a, c) in single.as_slice().iter().zip(y.as_slice()) {
                assert_eq!(a.to_bits(), c.to_bits());
            }
        }
        // Spatial mismatch across requests is rejected.
        let bad = [Tensor::zeros([1, 3, 6, 6]), Tensor::zeros([1, 3, 4, 4])];
        assert!(conv2d_multi(&bad, &wt, Some(&b), geom).is_err());
        assert!(conv2d_multi(&[], &wt, None, geom).unwrap().is_empty());
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = Rng::seed_from(11);
        let geom = Conv2dGeometry::same(3);
        let x = Tensor::randn([1, 2, 4, 4], &mut rng);
        let wt = Tensor::randn([3, 2, 3, 3], &mut rng).scale(0.5);
        let b = Tensor::randn([3], &mut rng);

        // Loss = sum(conv(x)) so the upstream gradient is all-ones.
        let y = conv2d(&x, &wt, Some(&b), geom).unwrap();
        let gout = Tensor::ones(y.dims());
        let grads = conv2d_backward(&x, &wt, &gout, geom).unwrap();

        let eps = 1e-2f32;
        let loss = |x: &Tensor, wt: &Tensor, b: &Tensor| -> f32 {
            conv2d(x, wt, Some(b), geom).unwrap().sum()
        };

        // Spot-check a handful of coordinates in each gradient.
        for idx in [0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&xp, &wt, &b) - loss(&xm, &wt, &b)) / (2.0 * eps);
            let an = grads.grad_input.as_slice()[idx];
            assert!((fd - an).abs() < 0.05, "input grad {idx}: fd={fd} an={an}");
        }
        for idx in [0usize, 5, 17, 53] {
            let mut wp = wt.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = wt.clone();
            wm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            let an = grads.grad_weight.as_slice()[idx];
            assert!((fd - an).abs() < 0.05, "weight grad {idx}: fd={fd} an={an}");
        }
        for idx in 0..3 {
            let mut bp = b.clone();
            bp.as_mut_slice()[idx] += eps;
            let mut bm = b.clone();
            bm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&x, &wt, &bp) - loss(&x, &wt, &bm)) / (2.0 * eps);
            let an = grads.grad_bias.as_slice()[idx];
            assert!((fd - an).abs() < 0.05, "bias grad {idx}: fd={fd} an={an}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y: the defining
        // property of an adjoint pair, which backprop correctness rests on.
        let mut rng = Rng::seed_from(12);
        let geom = Conv2dGeometry::new(2, 1);
        let (n, c, h, w, kh, kw) = (2, 3, 5, 5, 3, 3);
        let x = Tensor::randn([n, c, h, w], &mut rng);
        let cols = im2col(&x, kh, kw, geom).unwrap();
        let y = Tensor::randn(cols.dims(), &mut rng);
        let lhs: f32 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let back = col2im(&y, n, c, h, w, kh, kw, geom).unwrap();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn geometry_validation() {
        let g = Conv2dGeometry::new(1, 0);
        assert!(g.out_extent(2, 3).is_err());
        assert!(Conv2dGeometry::new(0, 0).out_extent(4, 3).is_err());
        assert_eq!(Conv2dGeometry::same(3).out_extent(7, 3).unwrap(), 7);
        assert_eq!(Conv2dGeometry::new(2, 1).out_extent(8, 3).unwrap(), 4);
    }

    #[test]
    fn channel_mismatch_rejected() {
        let x = Tensor::zeros([1, 2, 4, 4]);
        let w = Tensor::zeros([3, 5, 3, 3]);
        assert!(conv2d(&x, &w, None, Conv2dGeometry::same(3)).is_err());
    }

    #[test]
    fn bias_shape_checked() {
        let x = Tensor::zeros([1, 1, 4, 4]);
        let w = Tensor::zeros([2, 1, 3, 3]);
        let bad_bias = Tensor::zeros([3]);
        assert!(conv2d(&x, &w, Some(&bad_bias), Conv2dGeometry::same(3)).is_err());
    }
}
