//! Error types for tensor operations.

use std::fmt;

/// Error produced by tensor construction and tensor math kernels.
///
/// Every fallible public function in this crate returns
/// `Result<_, TensorError>`; the variants carry enough context to diagnose
/// the failing call without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the length of
    /// the provided data buffer.
    DataLenMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Length of the provided buffer.
        actual: usize,
    },
    /// Two tensors participating in an operation have incompatible shapes.
    ShapeMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// A tensor had a different rank (number of dimensions) than required.
    RankMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Actual rank of the tensor.
        actual: usize,
    },
    /// A reshape would change the total number of elements.
    ReshapeMismatch {
        /// Element count of the source shape.
        from: usize,
        /// Element count of the requested shape.
        to: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// Convolution geometry is invalid (e.g. kernel larger than padded input).
    InvalidConvGeometry {
        /// Explanation of the geometric inconsistency.
        reason: String,
    },
    /// A parameter value was invalid for the operation.
    InvalidArgument {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Explanation of why the argument is invalid.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataLenMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape element count {expected}"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op}: expected rank {expected}, got rank {actual}"),
            TensorError::ReshapeMismatch { from, to } => {
                write!(f, "reshape would change element count from {from} to {to}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::InvalidConvGeometry { reason } => {
                write!(f, "invalid convolution geometry: {reason}")
            }
            TensorError::InvalidArgument { op, reason } => {
                write!(f, "{op}: invalid argument: {reason}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<TensorError> = vec![
            TensorError::DataLenMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                op: "add",
                lhs: vec![2, 2],
                rhs: vec![3],
            },
            TensorError::RankMismatch {
                op: "conv2d",
                expected: 4,
                actual: 2,
            },
            TensorError::ReshapeMismatch { from: 6, to: 8 },
            TensorError::AxisOutOfRange { axis: 5, rank: 2 },
            TensorError::InvalidConvGeometry {
                reason: "kernel exceeds input".into(),
            },
            TensorError::InvalidArgument {
                op: "softmax",
                reason: "empty axis".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
