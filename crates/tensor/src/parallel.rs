//! Deterministic worker-pool parallelism for the math kernels.
//!
//! Every hot kernel in this crate (the matmul family, `im2col`/`col2im`,
//! `softmax_rows`, the elementwise activations) is written on top of the
//! small API in this module, which fans contiguous chunks of the output
//! out to a persistent pool of `std::thread` workers. The build
//! environment is offline, so this is a from-scratch pool — no rayon —
//! with the subset of behavior the kernels need:
//!
//! * **Pool size.** Taken from the `SQDM_THREADS` environment variable,
//!   defaulting to [`std::thread::available_parallelism`]. Tests (and any
//!   scoped override) use [`with_threads`].
//! * **Bitwise determinism.** Work is always partitioned into contiguous
//!   blocks so that every output element is produced by exactly one task
//!   running the exact serial code, in the exact serial order. Results are
//!   therefore bitwise identical for *every* thread count, including 1.
//! * **Nested calls run serially.** A kernel invoked from inside a pool
//!   task sees [`current_threads`]` == 1` and runs inline, so the pool
//!   never deadlocks on itself and the partitioning stays flat.
//! * **Panic propagation.** A panic inside any task is caught, forwarded
//!   to the caller of the parallel region, and resumed there after all
//!   sibling tasks have finished (which is also what makes the lifetime
//!   erasure below sound).
//!
//! Small workloads bypass the pool entirely: dispatching a task costs a
//! queue lock plus a condvar wake, so regions are only split when each
//! task gets at least `MIN_WORK_PER_TASK` work units (roughly flops).

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A queued unit of pool work whose borrows have been erased to `'static`.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Work units (roughly fused multiply-adds) below which splitting off an
/// extra task costs more in dispatch latency than it recovers in compute.
const MIN_WORK_PER_TASK: usize = 4096;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
    /// Number of worker threads spawned so far; grown on demand so that
    /// `with_threads(n)` scopes larger than the default still get `n`-way
    /// execution.
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Scoped thread-count override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// True while the current thread is executing inside a parallel
    /// region (as a pool worker, or as the caller running its own share);
    /// kernels re-entered in that state run serially.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        shared: Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

impl Pool {
    /// Ensures at least `n` workers exist (workers are daemons: they park
    /// on the queue condvar and are never joined).
    fn ensure_workers(&self, n: usize) {
        let mut spawned = self.spawned.lock().unwrap();
        while *spawned < n {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("sqdm-worker-{spawned}"))
                .spawn(move || worker_loop(&shared))
                .expect("failed to spawn sqdm worker thread");
            *spawned += 1;
        }
    }

    fn submit(&self, job: Job) {
        self.shared.queue.lock().unwrap().push_back(job);
        self.shared.available.notify_one();
    }
}

fn worker_loop(shared: &PoolShared) {
    IN_PARALLEL.with(|c| c.set(true));
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        job();
    }
}

/// Pool size when no [`with_threads`] scope is active: `SQDM_THREADS` if
/// set to a positive integer, otherwise the machine's available
/// parallelism.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("SQDM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// The number of threads parallel regions started from this thread will
/// use: 1 inside a parallel region, the innermost [`with_threads`]
/// override if one is active, the `SQDM_THREADS`/auto default otherwise.
pub fn current_threads() -> usize {
    if IN_PARALLEL.with(Cell::get) {
        return 1;
    }
    OVERRIDE.with(Cell::get).unwrap_or_else(default_threads)
}

/// Runs `f` with parallel regions on this thread capped at `threads`
/// workers, restoring the previous setting afterwards (including on
/// panic). `with_threads(1, ..)` forces fully serial execution and is the
/// reference the equivalence tests compare against.
///
/// # Panics
///
/// Panics if `threads` is zero.
///
/// # Examples
///
/// ```
/// use sqdm_tensor::parallel::{current_threads, with_threads};
/// let n = with_threads(3, current_threads);
/// assert_eq!(n, 3);
/// ```
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads >= 1, "with_threads requires at least one thread");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(threads))));
    f()
}

/// Countdown latch used by [`run_tasks`] to wait for offloaded jobs,
/// carrying the first panic payload observed on a worker.
struct Latch {
    state: Mutex<(usize, Option<Box<dyn Any + Send>>)>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(Latch {
            state: Mutex::new((count, None)),
            done: Condvar::new(),
        })
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut state = self.state.lock().unwrap();
        state.0 -= 1;
        if state.1.is_none() {
            state.1 = panic;
        }
        if state.0 == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every job has completed, then re-raises the first
    /// worker panic, if any.
    fn wait_and_rethrow(&self) {
        let mut state = self.state.lock().unwrap();
        while state.0 > 0 {
            state = self.done.wait(state).unwrap();
        }
        if let Some(payload) = state.1.take() {
            drop(state);
            resume_unwind(payload);
        }
    }
}

/// Executes every task, offloading all but the first to the pool and
/// running the first on the calling thread. Returns (or unwinds) only
/// after *all* tasks have finished.
fn run_tasks(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let mut tasks = tasks.into_iter();
    let Some(own) = tasks.next() else { return };
    if tasks.len() == 0 {
        own();
        return;
    }
    let pool = pool();
    pool.ensure_workers(tasks.len());
    let latch = Latch::new(tasks.len());
    for task in tasks {
        // SAFETY: the transmute only erases the borrow lifetime of the
        // task; `run_tasks` does not return (normally or by unwinding)
        // until `latch.wait_and_rethrow()` has observed every offloaded
        // job complete, so all borrows strictly outlive the job.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send + 'static>>(
                task,
            )
        };
        let latch = Arc::clone(&latch);
        pool.submit(Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(job));
            latch.complete(outcome.err());
        }));
    }
    let own_outcome = {
        struct Exit(bool);
        impl Drop for Exit {
            fn drop(&mut self) {
                IN_PARALLEL.with(|c| c.set(self.0));
            }
        }
        let _exit = Exit(IN_PARALLEL.with(|c| c.replace(true)));
        catch_unwind(AssertUnwindSafe(own))
    };
    latch.wait_and_rethrow();
    if let Err(payload) = own_outcome {
        resume_unwind(payload);
    }
}

/// Number of tasks to split `items` independent work items into, given
/// the approximate work units each item costs.
fn task_count(items: usize, work_per_item: usize) -> usize {
    let threads = current_threads();
    if threads <= 1 || items <= 1 {
        return 1;
    }
    let total = items.saturating_mul(work_per_item.max(1));
    threads.min(items).min((total / MIN_WORK_PER_TASK).max(1))
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the
/// last may be shorter) and calls `f(chunk_index, chunk)` for each,
/// distributing contiguous *blocks of chunks* over the pool.
///
/// `chunk_work` is the approximate work units (roughly flops) one chunk
/// costs; regions too small to amortize a dispatch run inline. Chunk
/// indices are global and ascending within each task, so any computation
/// whose serial form iterates chunks in order is reproduced bitwise.
///
/// # Panics
///
/// Panics if `chunk_len` is zero while `data` is non-empty, or if a task
/// closure panics (the panic is propagated to the caller).
///
/// # Examples
///
/// ```
/// use sqdm_tensor::parallel::par_chunks_mut;
/// let mut rows = vec![0u32; 6];
/// par_chunks_mut(&mut rows, 2, 1 << 20, |i, chunk| {
///     for v in chunk {
///         *v = i as u32;
///     }
/// });
/// assert_eq!(rows, [0, 0, 1, 1, 2, 2]);
/// ```
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, chunk_work: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "par_chunks_mut requires a nonzero chunk_len");
    let n_chunks = data.len().div_ceil(chunk_len);
    let n_tasks = task_count(n_chunks, chunk_work);
    if n_tasks <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let chunks_per_task = n_chunks.div_ceil(n_tasks);
    let f = &f;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(n_tasks);
    let mut rest = data;
    let mut first_chunk = 0usize;
    while !rest.is_empty() {
        let take = (chunks_per_task * chunk_len).min(rest.len());
        let (block, tail) = rest.split_at_mut(take);
        rest = tail;
        let base = first_chunk;
        tasks.push(Box::new(move || {
            for (offset, chunk) in block.chunks_mut(chunk_len).enumerate() {
                f(base + offset, chunk);
            }
        }));
        first_chunk += chunks_per_task;
    }
    run_tasks(tasks);
}

/// Computes `f(0), f(1), …, f(n - 1)` — possibly in parallel — and
/// returns the results in index order. `item_work` is the approximate
/// work units one call costs.
///
/// # Panics
///
/// Propagates panics from `f`.
///
/// # Examples
///
/// ```
/// use sqdm_tensor::parallel::par_map_indexed;
/// let squares = par_map_indexed(5, 1 << 20, |i| i * i);
/// assert_eq!(squares, [0, 1, 4, 9, 16]);
/// ```
pub fn par_map_indexed<R, F>(n: usize, item_work: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    par_chunks_mut(&mut out, 1, item_work, |i, slot| slot[0] = Some(f(i)));
    out.into_iter()
        .map(|r| r.expect("par_map_indexed task did not fill its slot"))
        .collect()
}

/// Runs two closures — possibly in parallel — and returns both results.
///
/// # Panics
///
/// Propagates panics from either closure.
pub fn par_join<RA, RB, FA, FB>(a: FA, b: FB) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    FA: FnOnce() -> RA + Send,
    FB: FnOnce() -> RB + Send,
{
    if current_threads() <= 1 {
        return (a(), b());
    }
    let mut ra = None;
    let mut rb = None;
    run_tasks(vec![
        Box::new(|| ra = Some(a())),
        Box::new(|| rb = Some(b())),
    ]);
    (
        ra.expect("par_join first closure did not run"),
        rb.expect("par_join second closure did not run"),
    )
}

/// Applies `f` to every element of `data` in place, in parallel for large
/// slices. `item_work` is the approximate work units one element costs.
pub fn par_map_inplace(data: &mut [f32], item_work: usize, f: impl Fn(f32) -> f32 + Sync) {
    let chunk = elementwise_chunk_len(data.len());
    par_chunks_mut(data, chunk, chunk.saturating_mul(item_work), |_, block| {
        for v in block {
            *v = f(*v);
        }
    });
}

/// Sets `dst[i] = f(dst[i], src[i])` for every element, in parallel for
/// large slices. The slices must have equal lengths.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn par_zip_inplace(
    dst: &mut [f32],
    src: &[f32],
    item_work: usize,
    f: impl Fn(f32, f32) -> f32 + Sync,
) {
    assert_eq!(dst.len(), src.len(), "par_zip_inplace length mismatch");
    let chunk = elementwise_chunk_len(dst.len());
    par_chunks_mut(dst, chunk, chunk.saturating_mul(item_work), |i, block| {
        let s = &src[i * chunk..i * chunk + block.len()];
        for (d, &v) in block.iter_mut().zip(s.iter()) {
            *d = f(*d, v);
        }
    });
}

/// Chunk length for elementwise sweeps: large enough to amortize
/// dispatch, small enough to split across the pool.
pub(crate) fn elementwise_chunk_len(len: usize) -> usize {
    len.div_ceil(current_threads().max(1)).clamp(1, 1 << 14)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = current_threads();
        let inner = with_threads(5, || {
            assert_eq!(current_threads(), 5);
            with_threads(2, current_threads)
        });
        assert_eq!(inner, 2);
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let outer = current_threads();
        let caught = catch_unwind(|| with_threads(3, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn par_chunks_mut_covers_every_chunk_once() {
        // 103 elements in chunks of 10 -> 11 chunks, the last of length 3.
        let mut data = vec![0usize; 103];
        with_threads(4, || {
            par_chunks_mut(&mut data, 10, 1 << 20, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v += i + 1;
                }
            });
        });
        for (pos, &v) in data.iter().enumerate() {
            assert_eq!(v, pos / 10 + 1, "element {pos}");
        }
    }

    #[test]
    fn par_map_indexed_preserves_order() {
        let out = with_threads(7, || par_map_indexed(23, 1 << 20, |i| i * 3));
        assert_eq!(out, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        assert!(with_threads(4, || par_map_indexed(0, 1, |i| i)).is_empty());
    }

    #[test]
    fn par_join_returns_both_results() {
        let (a, b) = with_threads(2, || par_join(|| 6 * 7, || "ok"));
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_regions_run_serially() {
        let depths = with_threads(4, || par_map_indexed(4, 1 << 20, |_| current_threads()));
        // Every task (the caller's own share included) sees a serial
        // context, so nested kernels cannot re-enter the pool.
        assert_eq!(depths, [1, 1, 1, 1]);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let caught = catch_unwind(|| {
            with_threads(4, || {
                par_map_indexed(8, 1 << 20, |i| {
                    if i == 5 {
                        panic!("injected task failure");
                    }
                    i
                })
            })
        });
        assert!(caught.is_err());
        // The pool must remain usable after a task panic.
        let ok = with_threads(4, || par_map_indexed(8, 1 << 20, |i| i + 1));
        assert_eq!(ok, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn elementwise_helpers_match_serial() {
        let src: Vec<f32> = (0..1000).map(|i| i as f32 * 0.25).collect();
        let mut par = src.clone();
        with_threads(3, || par_map_inplace(&mut par, 4, |v| v * 2.0 + 1.0));
        let serial: Vec<f32> = src.iter().map(|&v| v * 2.0 + 1.0).collect();
        assert_eq!(par, serial);

        let mut zip = src.clone();
        with_threads(3, || {
            par_zip_inplace(&mut zip, &serial, 4, |a, b| a + b);
        });
        let expect: Vec<f32> = src.iter().zip(&serial).map(|(&a, &b)| a + b).collect();
        assert_eq!(zip, expect);
    }
}
