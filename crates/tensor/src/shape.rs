//! Shape utilities shared by all tensor kernels.

use crate::error::{Result, TensorError};
use serde::de::Value;
use serde::{Deserialize, Serialize, Serializer};

/// Maximum rank an inline [`Shape`] can hold.
///
/// The workspace's tensors top out at rank 4 (`[N, C, H, W]`); 6 leaves
/// headroom without growing the inline footprint meaningfully.
const MAX_RANK: usize = 6;

/// The shape of a tensor: a list of dimension extents, outermost first.
///
/// `Shape` stores its extents inline (up to rank 6) so constructing a tensor
/// performs no heap allocation — a prerequisite for the zero-allocation
/// steady-state serving path, where tensors are created and dropped every
/// denoise round. Dimensions of extent zero are allowed (producing empty
/// tensors). The serialized form is unchanged from the earlier
/// `Vec<usize>`-backed representation (a newtype over the dimension
/// sequence), so committed artifacts keep deserializing.
///
/// # Examples
///
/// ```
/// use sqdm_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Extents, outermost first; axes `rank..` are zero-filled so the
    /// derived `PartialEq`/`Hash` agree with logical equality.
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Creates a shape from dimension extents, outermost first.
    ///
    /// # Panics
    ///
    /// Panics if more than 6 dimensions are given; the inline representation
    /// is sized for the rank ≤ 4 tensors this workspace uses.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape::from_dims(&dims)
    }

    /// Creates a shape from a slice of extents, outermost first.
    ///
    /// # Panics
    ///
    /// Panics if more than 6 dimensions are given.
    pub fn from_dims(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "Shape supports at most {MAX_RANK} dimensions, got {}",
            dims.len()
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: inline,
            rank: dims.len(),
        }
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of elements (product of all extents; 1 for rank 0).
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Returns `true` if the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims()[axis]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank];
        for i in (0..self.rank.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the index rank differs
    /// from the shape rank or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank {
            return Err(TensorError::InvalidArgument {
                op: "offset",
                reason: format!(
                    "index rank {} does not match shape rank {}",
                    index.len(),
                    self.rank
                ),
            });
        }
        // Walk axes innermost-first with a running stride: no allocation on
        // the element-access path.
        let mut off = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.rank).rev() {
            let (i, d) = (index[axis], self.dims[axis]);
            if i >= d {
                return Err(TensorError::InvalidArgument {
                    op: "offset",
                    reason: format!("coordinate {i} out of range {d} on axis {axis}"),
                });
            }
            off += i * stride;
            stride *= d;
        }
        Ok(off)
    }

    /// Converts a flat row-major offset back into a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `offset >= len()`.
    pub fn unravel(&self, offset: usize) -> Result<Vec<usize>> {
        if offset >= self.len().max(1) {
            return Err(TensorError::InvalidArgument {
                op: "unravel",
                reason: format!("offset {offset} out of range for {} elements", self.len()),
            });
        }
        let mut idx = vec![0usize; self.rank];
        let mut rem = offset;
        for (axis, stride) in self.strides().iter().enumerate() {
            idx[axis] = rem / stride;
            rem %= stride;
        }
        Ok(idx)
    }

    /// Validates that this shape matches the 4-D convention `[N, C, H, W]`
    /// and returns the four extents.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for any rank other than 4.
    pub fn as_nchw(&self) -> Result<(usize, usize, usize, usize)> {
        if self.rank != 4 {
            return Err(TensorError::RankMismatch {
                op: "as_nchw",
                expected: 4,
                actual: self.rank,
            });
        }
        Ok((self.dims[0], self.dims[1], self.dims[2], self.dims[3]))
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::from_dims(&dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::from_dims(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::from_dims(&dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

// Manual serde impls matching what `#[derive]` produced for the previous
// `Shape(Vec<usize>)` newtype, so serialized artifacts stay compatible.
impl Serialize for Shape {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_newtype_struct("Shape", self.dims())
    }
}

impl<'de> Deserialize<'de> for Shape {
    fn from_value(value: &Value) -> std::result::Result<Self, String> {
        let dims: Vec<usize> = Deserialize::from_value(value)?;
        if dims.len() > MAX_RANK {
            return Err(format!(
                "Shape supports at most {MAX_RANK} dimensions, got {}",
                dims.len()
            ));
        }
        Ok(Shape::from_dims(&dims))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
        assert_eq!(Shape::new(vec![]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_unravel_round_trip() {
        let s = Shape::from([3, 4, 5]);
        for off in 0..s.len() {
            let idx = s.unravel(off).unwrap();
            assert_eq!(s.offset(&idx).unwrap(), off);
        }
    }

    #[test]
    fn offset_rejects_out_of_range() {
        let s = Shape::from([2, 2]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.unravel(4).is_err());
    }

    #[test]
    fn nchw_validation() {
        assert_eq!(Shape::from([1, 2, 3, 4]).as_nchw().unwrap(), (1, 2, 3, 4));
        assert!(Shape::from([2, 3]).as_nchw().is_err());
    }

    #[test]
    fn zero_extent_is_empty() {
        let s = Shape::from([2, 0, 3]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn equality_and_hash_ignore_inline_padding() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Shape::from([2, 3]);
        let b = Shape::new(vec![2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, Shape::from([2, 3, 1]));
        let hash = |s: &Shape| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    #[should_panic(expected = "at most 6 dimensions")]
    fn rank_above_inline_capacity_panics() {
        let _ = Shape::from([1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn serde_round_trips_as_dimension_sequence() {
        // The wire format is the dimension list (what the old
        // `Shape(Vec<usize>)` derive produced): deserializing from a plain
        // sequence must keep working.
        let value = Value::Seq(vec![Value::U64(2), Value::U64(3), Value::U64(4)]);
        let s = <Shape as Deserialize>::from_value(&value).unwrap();
        assert_eq!(s, Shape::from([2, 3, 4]));
        let too_deep = Value::Seq(vec![Value::U64(1); 7]);
        assert!(<Shape as Deserialize>::from_value(&too_deep).is_err());
    }
}
