//! Shape utilities shared by all tensor kernels.

use crate::error::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// The shape of a tensor: a list of dimension extents, outermost first.
///
/// `Shape` is a thin, validated wrapper around `Vec<usize>` that provides the
/// stride arithmetic used by every kernel in this crate. Dimensions of extent
/// zero are allowed (producing empty tensors).
///
/// # Examples
///
/// ```
/// use sqdm_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents, outermost first.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of all extents; 1 for rank 0).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` if the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the index rank differs
    /// from the shape rank or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.0.len() {
            return Err(TensorError::InvalidArgument {
                op: "offset",
                reason: format!(
                    "index rank {} does not match shape rank {}",
                    index.len(),
                    self.0.len()
                ),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::InvalidArgument {
                    op: "offset",
                    reason: format!("coordinate {i} out of range {d} on axis {axis}"),
                });
            }
            off += i * strides[axis];
        }
        Ok(off)
    }

    /// Converts a flat row-major offset back into a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `offset >= len()`.
    pub fn unravel(&self, offset: usize) -> Result<Vec<usize>> {
        if offset >= self.len().max(1) {
            return Err(TensorError::InvalidArgument {
                op: "unravel",
                reason: format!("offset {offset} out of range for {} elements", self.len()),
            });
        }
        let mut idx = vec![0usize; self.0.len()];
        let mut rem = offset;
        for (axis, stride) in self.strides().iter().enumerate() {
            idx[axis] = rem / stride;
            rem %= stride;
        }
        Ok(idx)
    }

    /// Validates that this shape matches the 4-D convention `[N, C, H, W]`
    /// and returns the four extents.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for any rank other than 4.
    pub fn as_nchw(&self) -> Result<(usize, usize, usize, usize)> {
        if self.0.len() != 4 {
            return Err(TensorError::RankMismatch {
                op: "as_nchw",
                expected: 4,
                actual: self.0.len(),
            });
        }
        Ok((self.0[0], self.0[1], self.0[2], self.0[3]))
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
        assert_eq!(Shape::new(vec![]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_unravel_round_trip() {
        let s = Shape::from([3, 4, 5]);
        for off in 0..s.len() {
            let idx = s.unravel(off).unwrap();
            assert_eq!(s.offset(&idx).unwrap(), off);
        }
    }

    #[test]
    fn offset_rejects_out_of_range() {
        let s = Shape::from([2, 2]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.unravel(4).is_err());
    }

    #[test]
    fn nchw_validation() {
        assert_eq!(Shape::from([1, 2, 3, 4]).as_nchw().unwrap(), (1, 2, 3, 4));
        assert!(Shape::from([2, 3]).as_nchw().is_err());
    }

    #[test]
    fn zero_extent_is_empty() {
        let s = Shape::from([2, 0, 3]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
