//! Temporal per-channel sparsity traces (paper Figure 7).
//!
//! A [`TemporalTrace`] records, for one layer, the zero-fraction of every
//! activation channel at every diffusion time step. The paper's key
//! observation is that this map is *structured*: channels differ strongly
//! from one another, and individual channels flip between sparse and dense
//! as sampling progresses.

use serde::{Deserialize, Serialize};
use sqdm_tensor::Tensor;

/// Per-channel zero fractions of one activation tensor `[N, C, H, W]`,
/// aggregated over batch and spatial dimensions.
///
/// # Panics
///
/// Panics if the tensor is not rank 4.
pub fn channel_sparsity(t: &Tensor) -> Vec<f64> {
    let (n, c, h, w) = t
        .shape()
        .as_nchw()
        .expect("channel_sparsity requires [N, C, H, W]");
    let tv = t.as_slice();
    let mut out = vec![0.0f64; c];
    let hw = h * w;
    for (ch, o) in out.iter_mut().enumerate() {
        let mut zeros = 0usize;
        for nn in 0..n {
            let start = (nn * c + ch) * hw;
            zeros += tv[start..start + hw].iter().filter(|&&v| v == 0.0).count();
        }
        *o = zeros as f64 / (n * hw).max(1) as f64;
    }
    out
}

/// The sparsity history of one layer across diffusion time steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalTrace {
    channels: usize,
    /// `data[step][channel]` = zero fraction in `[0, 1]`.
    data: Vec<Vec<f64>>,
}

impl TemporalTrace {
    /// Creates an empty trace for a layer with `channels` channels.
    pub fn new(channels: usize) -> Self {
        TemporalTrace {
            channels,
            data: Vec::new(),
        }
    }

    /// Appends the per-channel sparsity of one time step.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity.len()` differs from the channel count.
    pub fn push_step(&mut self, sparsity: Vec<f64>) {
        assert_eq!(
            sparsity.len(),
            self.channels,
            "step has {} channels, trace has {}",
            sparsity.len(),
            self.channels
        );
        self.data.push(sparsity);
    }

    /// Number of recorded time steps.
    pub fn steps(&self) -> usize {
        self.data.len()
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Sparsity of `channel` at `step`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn sparsity(&self, step: usize, channel: usize) -> f64 {
        self.data[step][channel]
    }

    /// Per-channel sparsities at one step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of range.
    pub fn step(&self, step: usize) -> &[f64] {
        &self.data[step]
    }

    /// Mean sparsity over all steps and channels.
    pub fn mean_sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let total: f64 = self.data.iter().flat_map(|s| s.iter()).sum();
        total / (self.data.len() * self.channels) as f64
    }

    /// Mean sparsity of one channel across time.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_mean(&self, channel: usize) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|s| s[channel]).sum::<f64>() / self.data.len() as f64
    }

    /// How often a channel's dense/sparse classification (at `threshold`)
    /// changes between consecutive steps, averaged over channels — a direct
    /// measure of the "temporal" in temporal sparsity.
    pub fn flip_rate(&self, threshold: f64) -> f64 {
        if self.data.len() < 2 || self.channels == 0 {
            return 0.0;
        }
        let mut flips = 0usize;
        for w in self.data.windows(2) {
            for (&prev, &next) in w[0].iter().zip(&w[1]) {
                if (prev >= threshold) != (next >= threshold) {
                    flips += 1;
                }
            }
        }
        flips as f64 / ((self.data.len() - 1) * self.channels) as f64
    }

    /// Renders the trace as the paper's Figure 7 bitmap: one row per
    /// channel, one column per time step; `#` marks channels classified
    /// sparse at `threshold`, `.` dense.
    pub fn ascii_bitmap(&self, threshold: f64) -> String {
        let mut s = String::new();
        for ch in 0..self.channels {
            s.push_str(&format!("ch{ch:>3} |"));
            for step in &self.data {
                s.push(if step[ch] >= threshold { '#' } else { '.' });
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_sparsity_counts_zeros_per_channel() {
        let mut t = Tensor::zeros([1, 2, 2, 2]);
        // Channel 0: 2 of 4 zero. Channel 1: all nonzero.
        t.set(&[0, 0, 0, 0], 1.0).unwrap();
        t.set(&[0, 0, 0, 1], 2.0).unwrap();
        for y in 0..2 {
            for x in 0..2 {
                t.set(&[0, 1, y, x], 3.0).unwrap();
            }
        }
        let s = channel_sparsity(&t);
        assert_eq!(s, vec![0.5, 0.0]);
    }

    #[test]
    fn channel_sparsity_aggregates_batch() {
        let mut t = Tensor::zeros([2, 1, 1, 2]);
        t.set(&[0, 0, 0, 0], 1.0).unwrap(); // batch 0: 1 of 2 zero
                                            // batch 1: 2 of 2 zero
        let s = channel_sparsity(&t);
        assert_eq!(s, vec![0.75]);
    }

    #[test]
    fn trace_accumulates_and_averages() {
        let mut tr = TemporalTrace::new(2);
        tr.push_step(vec![0.9, 0.1]);
        tr.push_step(vec![0.7, 0.3]);
        assert_eq!(tr.steps(), 2);
        assert_eq!(tr.channels(), 2);
        assert!((tr.mean_sparsity() - 0.5).abs() < 1e-12);
        assert!((tr.channel_mean(0) - 0.8).abs() < 1e-12);
        assert_eq!(tr.sparsity(1, 1), 0.3);
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn wrong_channel_count_panics() {
        let mut tr = TemporalTrace::new(3);
        tr.push_step(vec![0.5, 0.5]);
    }

    #[test]
    fn flip_rate_detects_temporal_change() {
        let mut stable = TemporalTrace::new(1);
        let mut flippy = TemporalTrace::new(1);
        for i in 0..10 {
            stable.push_step(vec![0.9]);
            flippy.push_step(vec![if i % 2 == 0 { 0.9 } else { 0.1 }]);
        }
        assert_eq!(stable.flip_rate(0.5), 0.0);
        assert_eq!(flippy.flip_rate(0.5), 1.0);
    }

    #[test]
    fn bitmap_renders_threshold() {
        let mut tr = TemporalTrace::new(2);
        tr.push_step(vec![0.9, 0.1]);
        tr.push_step(vec![0.2, 0.8]);
        let bmp = tr.ascii_bitmap(0.5);
        let lines: Vec<&str> = bmp.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("#."));
        assert!(lines[1].ends_with(".#"));
    }

    #[test]
    fn empty_trace_is_safe() {
        let tr = TemporalTrace::new(4);
        assert_eq!(tr.mean_sparsity(), 0.0);
        assert_eq!(tr.flip_rate(0.5), 0.0);
        assert_eq!(tr.channel_mean(2), 0.0);
    }
}
