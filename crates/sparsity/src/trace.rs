//! Temporal per-channel sparsity traces (paper Figure 7).
//!
//! A [`TemporalTrace`] records, for one layer, the zero-fraction of every
//! activation channel at every diffusion time step. The paper's key
//! observation is that this map is *structured*: channels differ strongly
//! from one another, and individual channels flip between sparse and dense
//! as sampling progresses.

use serde::{Deserialize, Serialize};
use sqdm_tensor::Tensor;

/// Per-channel zero fractions of one activation tensor `[N, C, H, W]`,
/// aggregated over batch and spatial dimensions.
///
/// # Panics
///
/// Panics if the tensor is not rank 4.
pub fn channel_sparsity(t: &Tensor) -> Vec<f64> {
    let (n, c, h, w) = t
        .shape()
        .as_nchw()
        .expect("channel_sparsity requires [N, C, H, W]");
    let tv = t.as_slice();
    let mut out = vec![0.0f64; c];
    let hw = h * w;
    for (ch, o) in out.iter_mut().enumerate() {
        let mut zeros = 0usize;
        for nn in 0..n {
            let start = (nn * c + ch) * hw;
            zeros += tv[start..start + hw].iter().filter(|&&v| v == 0.0).count();
        }
        *o = zeros as f64 / (n * hw).max(1) as f64;
    }
    out
}

/// The sparsity history of one layer across diffusion time steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalTrace {
    channels: usize,
    /// `data[step][channel]` = zero fraction in `[0, 1]`.
    data: Vec<Vec<f64>>,
}

impl TemporalTrace {
    /// Creates an empty trace for a layer with `channels` channels.
    pub fn new(channels: usize) -> Self {
        TemporalTrace {
            channels,
            data: Vec::new(),
        }
    }

    /// Appends the per-channel sparsity of one time step.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity.len()` differs from the channel count.
    pub fn push_step(&mut self, sparsity: Vec<f64>) {
        assert_eq!(
            sparsity.len(),
            self.channels,
            "step has {} channels, trace has {}",
            sparsity.len(),
            self.channels
        );
        self.data.push(sparsity);
    }

    /// Number of recorded time steps.
    pub fn steps(&self) -> usize {
        self.data.len()
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Sparsity of `channel` at `step`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn sparsity(&self, step: usize, channel: usize) -> f64 {
        self.data[step][channel]
    }

    /// Per-channel sparsities at one step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of range.
    pub fn step(&self, step: usize) -> &[f64] {
        &self.data[step]
    }

    /// Mean sparsity over all steps and channels.
    pub fn mean_sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let total: f64 = self.data.iter().flat_map(|s| s.iter()).sum();
        total / (self.data.len() * self.channels) as f64
    }

    /// Mean sparsity of one channel across time.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_mean(&self, channel: usize) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|s| s[channel]).sum::<f64>() / self.data.len() as f64
    }

    /// How often a channel's dense/sparse classification (at `threshold`)
    /// changes between consecutive steps, averaged over channels — a direct
    /// measure of the "temporal" in temporal sparsity.
    pub fn flip_rate(&self, threshold: f64) -> f64 {
        if self.data.len() < 2 || self.channels == 0 {
            return 0.0;
        }
        let mut flips = 0usize;
        for w in self.data.windows(2) {
            for (&prev, &next) in w[0].iter().zip(&w[1]) {
                if (prev >= threshold) != (next >= threshold) {
                    flips += 1;
                }
            }
        }
        flips as f64 / ((self.data.len() - 1) * self.channels) as f64
    }

    /// The temporal change mask at `step`: which channels' activations
    /// must be recomputed, and which can ride along from the previous
    /// denoising step.
    ///
    /// A channel is marked changed when its zero fraction moved by more
    /// than `tol` since the previous step — the trace-level proxy for "the
    /// channel's activation pattern shifted". **Step 0 is always fully
    /// dense** (every channel changed): there is no previous step, so
    /// there are no deltas to apply and the first evaluation must compute
    /// everything. This is the mask the sparse-delta GEMM
    /// (`sqdm_tensor::ops::int::qgemm_delta`) consumes, expanded to
    /// reduction rows via [`ChangeMask::expand_rows`] for convolutions.
    ///
    /// # Panics
    ///
    /// Panics if `step` is outside the recorded range.
    pub fn change_mask(&self, step: usize, tol: f64) -> ChangeMask {
        assert!(
            step < self.data.len(),
            "step {step} out of range for a {}-step trace",
            self.data.len()
        );
        let changed = if step == 0 {
            vec![true; self.channels]
        } else {
            self.data[step]
                .iter()
                .zip(&self.data[step - 1])
                .map(|(&now, &before)| (now - before).abs() > tol)
                .collect()
        };
        ChangeMask { changed }
    }

    /// Renders the trace as the paper's Figure 7 bitmap: one row per
    /// channel, one column per time step; `#` marks channels classified
    /// sparse at `threshold`, `.` dense.
    pub fn ascii_bitmap(&self, threshold: f64) -> String {
        let mut s = String::new();
        for ch in 0..self.channels {
            s.push_str(&format!("ch{ch:>3} |"));
            for step in &self.data {
                s.push(if step[ch] >= threshold { '#' } else { '.' });
            }
            s.push('\n');
        }
        s
    }
}

/// Which channels changed between two consecutive denoising steps.
///
/// Produced by [`TemporalTrace::change_mask`]; consumed (after
/// [`ChangeMask::expand_rows`]) by the sparse-delta GEMM, which skips the
/// contributions of unchanged channels entirely.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangeMask {
    changed: Vec<bool>,
}

impl ChangeMask {
    /// Per-channel change flags.
    pub fn as_slice(&self) -> &[bool] {
        &self.changed
    }

    /// Number of channels that must be recomputed.
    pub fn changed_count(&self) -> usize {
        self.changed.iter().filter(|&&c| c).count()
    }

    /// Fraction of channels that must be recomputed (1.0 = fully dense).
    pub fn fraction_changed(&self) -> f64 {
        if self.changed.is_empty() {
            return 1.0;
        }
        self.changed_count() as f64 / self.changed.len() as f64
    }

    /// True when every channel must be recomputed — no deltas to apply.
    pub fn is_fully_dense(&self) -> bool {
        self.changed.iter().all(|&c| c)
    }

    /// Expands the per-channel mask to GEMM reduction rows: each channel
    /// owns `rows_per_channel` consecutive rows (for a convolution lowered
    /// by im2col, `kh · kw`).
    pub fn expand_rows(&self, rows_per_channel: usize) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.changed.len() * rows_per_channel);
        for &c in &self.changed {
            out.extend(std::iter::repeat_n(c, rows_per_channel));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_sparsity_counts_zeros_per_channel() {
        let mut t = Tensor::zeros([1, 2, 2, 2]);
        // Channel 0: 2 of 4 zero. Channel 1: all nonzero.
        t.set(&[0, 0, 0, 0], 1.0).unwrap();
        t.set(&[0, 0, 0, 1], 2.0).unwrap();
        for y in 0..2 {
            for x in 0..2 {
                t.set(&[0, 1, y, x], 3.0).unwrap();
            }
        }
        let s = channel_sparsity(&t);
        assert_eq!(s, vec![0.5, 0.0]);
    }

    #[test]
    fn channel_sparsity_aggregates_batch() {
        let mut t = Tensor::zeros([2, 1, 1, 2]);
        t.set(&[0, 0, 0, 0], 1.0).unwrap(); // batch 0: 1 of 2 zero
                                            // batch 1: 2 of 2 zero
        let s = channel_sparsity(&t);
        assert_eq!(s, vec![0.75]);
    }

    #[test]
    fn trace_accumulates_and_averages() {
        let mut tr = TemporalTrace::new(2);
        tr.push_step(vec![0.9, 0.1]);
        tr.push_step(vec![0.7, 0.3]);
        assert_eq!(tr.steps(), 2);
        assert_eq!(tr.channels(), 2);
        assert!((tr.mean_sparsity() - 0.5).abs() < 1e-12);
        assert!((tr.channel_mean(0) - 0.8).abs() < 1e-12);
        assert_eq!(tr.sparsity(1, 1), 0.3);
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn wrong_channel_count_panics() {
        let mut tr = TemporalTrace::new(3);
        tr.push_step(vec![0.5, 0.5]);
    }

    #[test]
    fn flip_rate_detects_temporal_change() {
        let mut stable = TemporalTrace::new(1);
        let mut flippy = TemporalTrace::new(1);
        for i in 0..10 {
            stable.push_step(vec![0.9]);
            flippy.push_step(vec![if i % 2 == 0 { 0.9 } else { 0.1 }]);
        }
        assert_eq!(stable.flip_rate(0.5), 0.0);
        assert_eq!(flippy.flip_rate(0.5), 1.0);
    }

    #[test]
    fn bitmap_renders_threshold() {
        let mut tr = TemporalTrace::new(2);
        tr.push_step(vec![0.9, 0.1]);
        tr.push_step(vec![0.2, 0.8]);
        let bmp = tr.ascii_bitmap(0.5);
        let lines: Vec<&str> = bmp.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("#."));
        assert!(lines[1].ends_with(".#"));
    }

    /// Regression for the single-step (and first-step) case: step 0 has no
    /// predecessor, so its change mask must be fully dense — every channel
    /// recomputed, no deltas to apply — regardless of the tolerance.
    #[test]
    fn single_step_trace_has_fully_dense_step0_mask() {
        let mut tr = TemporalTrace::new(3);
        tr.push_step(vec![0.9, 0.0, 0.5]);
        for tol in [0.0, 0.1, 1.0] {
            let m = tr.change_mask(0, tol);
            assert!(m.is_fully_dense(), "tol {tol}");
            assert_eq!(m.changed_count(), 3);
            assert_eq!(m.fraction_changed(), 1.0);
            assert_eq!(m.as_slice(), &[true, true, true]);
        }
        // Still fully dense at step 0 of a longer trace.
        tr.push_step(vec![0.9, 0.0, 0.5]);
        assert!(tr.change_mask(0, 0.5).is_fully_dense());
    }

    #[test]
    fn change_mask_flags_moved_channels_only() {
        let mut tr = TemporalTrace::new(3);
        tr.push_step(vec![0.5, 0.5, 0.5]);
        tr.push_step(vec![0.5, 0.9, 0.45]);
        let m = tr.change_mask(1, 0.1);
        assert_eq!(m.as_slice(), &[false, true, false]);
        assert_eq!(m.changed_count(), 1);
        assert!((m.fraction_changed() - 1.0 / 3.0).abs() < 1e-12);
        assert!(!m.is_fully_dense());
        // Tighter tolerance also catches the 0.05 move.
        assert_eq!(tr.change_mask(1, 0.01).as_slice(), &[false, true, true]);
    }

    #[test]
    fn change_mask_expands_to_reduction_rows() {
        let mut tr = TemporalTrace::new(2);
        tr.push_step(vec![0.0, 0.0]);
        tr.push_step(vec![0.8, 0.0]);
        let rows = tr.change_mask(1, 0.5).expand_rows(9); // 3x3 kernel
        assert_eq!(rows.len(), 18);
        assert!(rows[..9].iter().all(|&c| c));
        assert!(rows[9..].iter().all(|&c| !c));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn change_mask_rejects_unrecorded_step() {
        let mut tr = TemporalTrace::new(1);
        tr.push_step(vec![0.5]);
        let _ = tr.change_mask(1, 0.1);
    }

    #[test]
    fn empty_trace_is_safe() {
        let tr = TemporalTrace::new(4);
        assert_eq!(tr.mean_sparsity(), 0.0);
        assert_eq!(tr.flip_rate(0.5), 0.0);
        assert_eq!(tr.channel_mean(2), 0.0);
    }
}
