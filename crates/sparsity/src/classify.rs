//! Dense/sparse channel classification — the temporal sparsity detector's
//! decision (paper §IV-C).

use serde::{Deserialize, Serialize};

/// The paper's chosen sparsity threshold: 30% zeros marks a channel sparse,
/// balancing the dense and sparse engines' workloads while keeping the
/// sparse portion ~70% sparse (Figure 11, left).
pub const PAPER_THRESHOLD: f64 = 0.30;

/// A dense/sparse partition of a layer's channels at one time step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelPartition {
    threshold: f64,
    /// `true` = sparse channel.
    sparse: Vec<bool>,
    /// The per-channel sparsities the classification was made from.
    sparsity: Vec<f64>,
}

impl ChannelPartition {
    /// Classifies channels: sparsity ≥ `threshold` → sparse.
    pub fn classify(channel_sparsity: &[f64], threshold: f64) -> Self {
        ChannelPartition {
            threshold,
            sparse: channel_sparsity.iter().map(|&s| s >= threshold).collect(),
            sparsity: channel_sparsity.to_vec(),
        }
    }

    /// Re-classifies *stale* sparsities (from an earlier step) but keeps
    /// the current step's true sparsities for cost accounting. Models the
    /// update-frequency study of Figure 11 (right).
    pub fn classify_stale(
        stale_sparsity: &[f64],
        current_sparsity: &[f64],
        threshold: f64,
    ) -> Self {
        assert_eq!(stale_sparsity.len(), current_sparsity.len());
        ChannelPartition {
            threshold,
            sparse: stale_sparsity.iter().map(|&s| s >= threshold).collect(),
            sparsity: current_sparsity.to_vec(),
        }
    }

    /// Routes channels to balance the dense and sparse engines — the
    /// criterion the paper uses to choose its threshold ("determined to
    /// balance the execution time between the dense PE and sparse PE",
    /// §IV-C).
    ///
    /// The sparsest `k` channels go to the sparse engine; `k` is chosen to
    /// minimize `max(dense_work, sparse_nnz_work / spe_utilization)`. By an
    /// exchange argument, sparsest-prefix assignments contain the optimum
    /// for this cost structure.
    pub fn balanced(channel_sparsity: &[f64], spe_utilization: f64) -> Self {
        let util = spe_utilization.clamp(0.05, 1.0);
        let n = channel_sparsity.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| channel_sparsity[b].total_cmp(&channel_sparsity[a]));
        // Prefix sums of sparse-engine work in sorted order.
        let mut best_k = 0usize;
        let mut best_cost = f64::INFINITY;
        let mut sparse_work = 0.0f64;
        for k in 0..=n {
            if k > 0 {
                sparse_work += (1.0 - channel_sparsity[order[k - 1]]) / util;
            }
            let dense_work = (n - k) as f64;
            let cost = dense_work.max(sparse_work);
            if cost < best_cost {
                best_cost = cost;
                best_k = k;
            }
        }
        let mut sparse = vec![false; n];
        for &i in &order[..best_k] {
            sparse[i] = true;
        }
        // Report the implied boundary sparsity as the threshold.
        let threshold = if best_k > 0 && best_k < n {
            channel_sparsity[order[best_k - 1]]
        } else if best_k == n {
            0.0
        } else {
            1.0
        };
        ChannelPartition {
            threshold,
            sparse,
            sparsity: channel_sparsity.to_vec(),
        }
    }

    /// [`balanced`](Self::balanced) computed from *stale* sparsities (an
    /// earlier detector update) while keeping the current step's true
    /// sparsities for cost accounting — the Figure 11 (right) staleness
    /// model.
    pub fn balanced_stale(
        stale_sparsity: &[f64],
        current_sparsity: &[f64],
        spe_utilization: f64,
    ) -> Self {
        assert_eq!(stale_sparsity.len(), current_sparsity.len());
        let p = Self::balanced(stale_sparsity, spe_utilization);
        ChannelPartition {
            threshold: p.threshold,
            sparse: p.sparse,
            sparsity: current_sparsity.to_vec(),
        }
    }

    /// The classification threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.sparse.len()
    }

    /// Whether channel `ch` is classified sparse.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    pub fn is_sparse(&self, ch: usize) -> bool {
        self.sparse[ch]
    }

    /// True per-channel sparsities backing this partition.
    pub fn sparsities(&self) -> &[f64] {
        &self.sparsity
    }

    /// Indices of sparse channels.
    pub fn sparse_indices(&self) -> Vec<usize> {
        (0..self.sparse.len()).filter(|&i| self.sparse[i]).collect()
    }

    /// Indices of dense channels.
    pub fn dense_indices(&self) -> Vec<usize> {
        (0..self.sparse.len())
            .filter(|&i| !self.sparse[i])
            .collect()
    }

    /// Fraction of channels classified sparse.
    pub fn sparse_fraction(&self) -> f64 {
        if self.sparse.is_empty() {
            return 0.0;
        }
        self.sparse.iter().filter(|&&b| b).count() as f64 / self.sparse.len() as f64
    }

    /// Mean true sparsity of the channels *classified* sparse (the paper's
    /// "average sparsity of the sparse tensor portion").
    pub fn sparse_portion_sparsity(&self) -> f64 {
        let idx = self.sparse_indices();
        if idx.is_empty() {
            return 0.0;
        }
        idx.iter().map(|&i| self.sparsity[i]).sum::<f64>() / idx.len() as f64
    }

    /// Mean true sparsity of the channels classified dense.
    pub fn dense_portion_sparsity(&self) -> f64 {
        let idx = self.dense_indices();
        if idx.is_empty() {
            return 0.0;
        }
        idx.iter().map(|&i| self.sparsity[i]).sum::<f64>() / idx.len() as f64
    }

    /// Nonzero-work fractions `(dense_work, sparse_work)` relative to the
    /// full dense workload. A sparse engine skips zeros, so its work is the
    /// *nonzero* fraction of its channels; the dense engine pays full cost
    /// for every assigned channel.
    pub fn work_split(&self) -> (f64, f64) {
        let n = self.sparse.len().max(1) as f64;
        let dense_work = self.dense_indices().len() as f64 / n;
        let sparse_work: f64 = self
            .sparse_indices()
            .iter()
            .map(|&i| (1.0 - self.sparsity[i]) / n)
            .sum();
        (dense_work, sparse_work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_splits_on_threshold() {
        let p = ChannelPartition::classify(&[0.9, 0.1, 0.3, 0.29], 0.3);
        assert!(p.is_sparse(0));
        assert!(!p.is_sparse(1));
        assert!(p.is_sparse(2)); // boundary is inclusive
        assert!(!p.is_sparse(3));
        assert_eq!(p.sparse_indices(), vec![0, 2]);
        assert_eq!(p.dense_indices(), vec![1, 3]);
        assert_eq!(p.sparse_fraction(), 0.5);
    }

    #[test]
    fn portion_sparsities() {
        let p = ChannelPartition::classify(&[0.8, 0.6, 0.1, 0.2], 0.5);
        assert!((p.sparse_portion_sparsity() - 0.7).abs() < 1e-12);
        assert!((p.dense_portion_sparsity() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn work_split_accounts_for_skipped_zeros() {
        // 2 dense channels (full cost) + 2 sparse at 75% (quarter cost each).
        let p = ChannelPartition::classify(&[0.75, 0.75, 0.0, 0.0], 0.5);
        let (d, s) = p.work_split();
        assert!((d - 0.5).abs() < 1e-12);
        assert!((s - 0.125).abs() < 1e-12);
    }

    #[test]
    fn stale_classification_uses_old_data_for_routing() {
        // Channel was sparse at the stale step but is dense now: it is
        // still routed sparse, and the true (current) sparsity is kept for
        // cost computation.
        let p = ChannelPartition::classify_stale(&[0.9], &[0.05], 0.3);
        assert!(p.is_sparse(0));
        assert_eq!(p.sparsities(), &[0.05]);
        let (_, sparse_work) = p.work_split();
        assert!((sparse_work - 0.95).abs() < 1e-12);
    }

    #[test]
    fn empty_partition_is_safe() {
        let p = ChannelPartition::classify(&[], 0.3);
        assert_eq!(p.channels(), 0);
        assert_eq!(p.sparse_fraction(), 0.0);
        assert_eq!(p.work_split(), (0.0, 0.0));
    }

    #[test]
    fn paper_threshold_value() {
        assert_eq!(PAPER_THRESHOLD, 0.30);
    }

    #[test]
    fn balanced_equalizes_engine_work() {
        // Uniform 60% sparsity: threshold routing sends everything sparse
        // (sparse engine bottleneck); balanced routing splits the load.
        let sp = vec![0.6; 10];
        let p = ChannelPartition::balanced(&sp, 1.0);
        let (d, s) = p.work_split();
        assert!((d - s).abs() <= 1.0 / 10.0 + 1e-9, "dense {d} sparse {s}");
        // Both engines carry well under the full workload.
        assert!(d.max(s) < 0.5);
    }

    #[test]
    fn balanced_splits_even_fully_dense_data() {
        // SIGMA-style engines process dense operands too (at a utilization
        // penalty), so the balancer still shares load at zero sparsity.
        let sp = vec![0.0; 8];
        let p = ChannelPartition::balanced(&sp, 0.9);
        let (d, s) = p.work_split();
        assert!(d > 0.0 && s > 0.0);
    }

    #[test]
    fn balanced_prefers_sparsest_channels_for_spe() {
        let sp = vec![0.9, 0.1, 0.8, 0.2];
        let p = ChannelPartition::balanced(&sp, 1.0);
        // Whatever the split size, every sparse-routed channel is at least
        // as sparse as every dense-routed one.
        let min_sparse = p
            .sparse_indices()
            .iter()
            .map(|&i| sp[i])
            .fold(f64::INFINITY, f64::min);
        let max_dense = p
            .dense_indices()
            .iter()
            .map(|&i| sp[i])
            .fold(0.0f64, f64::max);
        assert!(min_sparse >= max_dense);
    }

    #[test]
    fn balanced_stale_keeps_current_costs() {
        let p = ChannelPartition::balanced_stale(&[0.9, 0.0], &[0.1, 0.1], 1.0);
        assert_eq!(p.sparsities(), &[0.1, 0.1]);
    }

    #[test]
    fn balanced_beats_threshold_on_uniform_mid_sparsity() {
        let sp = vec![0.55; 12];
        let th = ChannelPartition::classify(&sp, PAPER_THRESHOLD);
        let ba = ChannelPartition::balanced(&sp, 1.0);
        let cost = |p: &ChannelPartition| {
            let (d, s) = p.work_split();
            d.max(s)
        };
        assert!(cost(&ba) < cost(&th), "{} vs {}", cost(&ba), cost(&th));
    }

    #[test]
    fn empty_balanced_is_safe() {
        let p = ChannelPartition::balanced(&[], 0.9);
        assert_eq!(p.channels(), 0);
    }
}
