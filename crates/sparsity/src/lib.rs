//! # sqdm-sparsity
//!
//! Temporal per-channel activation-sparsity analysis for the SQ-DM
//! reproduction: sparsity traces across diffusion time steps (Figure 7),
//! the dense/sparse channel classifier with the paper's 30% threshold,
//! threshold sweeps (Figure 11 left) and update-frequency scheduling
//! (Figure 11 right).
//!
//! The crate is deliberately model-agnostic: it consumes plain per-channel
//! zero fractions, so both the EDM pipeline and the accelerator simulator
//! can use it without depending on each other.
//!
//! # Examples
//!
//! ```
//! use sqdm_sparsity::{ChannelPartition, PAPER_THRESHOLD};
//! let partition = ChannelPartition::classify(&[0.9, 0.05, 0.7, 0.2], PAPER_THRESHOLD);
//! assert_eq!(partition.sparse_indices(), vec![0, 2]);
//! let (dense_work, sparse_work) = partition.work_split();
//! assert!(dense_work > sparse_work);
//! ```

#![warn(missing_docs)]

mod classify;
mod schedule;
mod threshold;
mod trace;

pub use classify::{ChannelPartition, PAPER_THRESHOLD};
pub use schedule::UpdateSchedule;
pub use threshold::{best_balanced_threshold, threshold_sweep, ThresholdPoint};
pub use trace::{channel_sparsity, ChangeMask, TemporalTrace};
