//! Sparsity-update scheduling (paper Figure 11, right, and §IV-C).
//!
//! The temporal sparsity detector re-classifies channels every `period`
//! time steps. Stale classifications route channels to the wrong engine:
//! a channel that turned dense still goes to the sparse engine (which then
//! finds few zeros to skip), and vice versa. The paper finds per-step
//! updates (`period = 1`) best, with negligible update overhead.

use crate::classify::ChannelPartition;
use crate::trace::TemporalTrace;
use serde::{Deserialize, Serialize};

/// A periodic sparsity-update schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateSchedule {
    /// Steps between detector updates (1 = every step).
    pub period: usize,
}

impl UpdateSchedule {
    /// Creates a schedule; `period` is clamped to at least 1.
    pub fn every(period: usize) -> Self {
        UpdateSchedule {
            period: period.max(1),
        }
    }

    /// The step whose classification is in effect at `step`.
    pub fn effective_step(&self, step: usize) -> usize {
        (step / self.period) * self.period
    }

    /// Builds the per-step partitions a detector with this schedule would
    /// produce over a recorded trace: classification from the last update
    /// step, true sparsities from the current step.
    pub fn partitions(&self, trace: &TemporalTrace, threshold: f64) -> Vec<ChannelPartition> {
        (0..trace.steps())
            .map(|step| {
                let eff = self.effective_step(step);
                ChannelPartition::classify_stale(trace.step(eff), trace.step(step), threshold)
            })
            .collect()
    }

    /// Fraction of (step, channel) pairs whose stale classification
    /// disagrees with the fresh one.
    pub fn misclassification_rate(&self, trace: &TemporalTrace, threshold: f64) -> f64 {
        if trace.steps() == 0 || trace.channels() == 0 {
            return 0.0;
        }
        let mut wrong = 0usize;
        for step in 0..trace.steps() {
            let eff = self.effective_step(step);
            for ch in 0..trace.channels() {
                let stale = trace.sparsity(eff, ch) >= threshold;
                let fresh = trace.sparsity(step, ch) >= threshold;
                if stale != fresh {
                    wrong += 1;
                }
            }
        }
        wrong as f64 / (trace.steps() * trace.channels()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flippy_trace(steps: usize) -> TemporalTrace {
        // Channel 0 alternates sparse/dense each step; channel 1 is stable.
        let mut tr = TemporalTrace::new(2);
        for i in 0..steps {
            tr.push_step(vec![if i % 2 == 0 { 0.9 } else { 0.1 }, 0.8]);
        }
        tr
    }

    #[test]
    fn per_step_updates_never_misclassify() {
        let tr = flippy_trace(12);
        let s = UpdateSchedule::every(1);
        assert_eq!(s.misclassification_rate(&tr, 0.5), 0.0);
    }

    #[test]
    fn stale_updates_misclassify_flipping_channels() {
        let tr = flippy_trace(12);
        let s2 = UpdateSchedule::every(2);
        // Channel 0 is wrong on every odd step: rate = 0.5 · 0.5 = 0.25.
        assert!((s2.misclassification_rate(&tr, 0.5) - 0.25).abs() < 1e-9);
        let s4 = UpdateSchedule::every(4);
        assert!(s4.misclassification_rate(&tr, 0.5) >= 0.25 - 1e-9);
    }

    #[test]
    fn misclassification_monotone_in_period_for_flippy() {
        let tr = flippy_trace(16);
        let rates: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&p| UpdateSchedule::every(p).misclassification_rate(&tr, 0.5))
            .collect();
        for w in rates.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{rates:?}");
        }
    }

    #[test]
    fn effective_step_quantizes() {
        let s = UpdateSchedule::every(4);
        assert_eq!(s.effective_step(0), 0);
        assert_eq!(s.effective_step(3), 0);
        assert_eq!(s.effective_step(4), 4);
        assert_eq!(s.effective_step(11), 8);
    }

    #[test]
    fn partitions_carry_current_sparsities() {
        let tr = flippy_trace(4);
        let parts = UpdateSchedule::every(2).partitions(&tr, 0.5);
        assert_eq!(parts.len(), 4);
        // Step 1 uses step 0's classification (sparse) but step 1's data.
        assert!(parts[1].is_sparse(0));
        assert_eq!(parts[1].sparsities()[0], 0.1);
    }

    #[test]
    fn zero_period_clamped() {
        assert_eq!(UpdateSchedule::every(0).period, 1);
    }
}
