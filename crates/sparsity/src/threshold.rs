//! Sparsity-threshold analysis (paper Figure 11, left).
//!
//! The detector's threshold trades off two quantities: a higher threshold
//! makes the sparse portion *sparser* (better sparse-engine efficiency) but
//! routes fewer channels to it (worse engine balance). The paper selects
//! 30% as the balance point.

use crate::classify::ChannelPartition;
use crate::trace::TemporalTrace;
use serde::{Deserialize, Serialize};
use sqdm_tensor::parallel;

/// One row of the threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdPoint {
    /// The classification threshold swept.
    pub threshold: f64,
    /// Mean fraction of channels classified sparse.
    pub sparse_channel_fraction: f64,
    /// Mean true sparsity of the sparse portion.
    pub sparse_portion_sparsity: f64,
    /// Mean true sparsity of the dense portion.
    pub dense_portion_sparsity: f64,
    /// Dense-engine work fraction (of the full dense workload).
    pub dense_work: f64,
    /// Sparse-engine work fraction (zeros skipped).
    pub sparse_work: f64,
    /// |dense − sparse| work imbalance; 0 is perfectly balanced engines.
    pub imbalance: f64,
}

/// Sweeps classification thresholds over a recorded trace, averaging each
/// metric over all time steps.
///
/// An empty trace yields an empty sweep: there are no statistics to
/// average, and fabricating all-zero points would let
/// [`best_balanced_threshold`] report a fake "perfectly balanced"
/// threshold (`imbalance == 0`) that no data supports.
///
/// Sweep points are independent, so they are computed in parallel over
/// the [`sqdm_tensor::parallel`] worker pool, in input order.
pub fn threshold_sweep(trace: &TemporalTrace, thresholds: &[f64]) -> Vec<ThresholdPoint> {
    if trace.steps() == 0 {
        return Vec::new();
    }
    let point_work = trace.steps() * trace.channels() * 8;
    parallel::par_map_indexed(thresholds.len(), point_work, |ti| {
        let th = thresholds[ti];
        let mut frac = 0.0;
        let mut sparse_sp = 0.0;
        let mut dense_sp = 0.0;
        let mut dwork = 0.0;
        let mut swork = 0.0;
        for step in 0..trace.steps() {
            let p = ChannelPartition::classify(trace.step(step), th);
            frac += p.sparse_fraction();
            sparse_sp += p.sparse_portion_sparsity();
            dense_sp += p.dense_portion_sparsity();
            let (d, s) = p.work_split();
            dwork += d;
            swork += s;
        }
        let n = trace.steps() as f64;
        ThresholdPoint {
            threshold: th,
            sparse_channel_fraction: frac / n,
            sparse_portion_sparsity: sparse_sp / n,
            dense_portion_sparsity: dense_sp / n,
            dense_work: dwork / n,
            sparse_work: swork / n,
            imbalance: (dwork / n - swork / n).abs(),
        }
    })
}

/// Picks the threshold with the smallest dense/sparse work imbalance — the
/// selection criterion the paper describes for its 30% choice.
pub fn best_balanced_threshold(points: &[ThresholdPoint]) -> Option<ThresholdPoint> {
    points
        .iter()
        .copied()
        .min_by(|a, b| a.imbalance.total_cmp(&b.imbalance))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic trace with half very-sparse and half mostly-dense
    /// channels.
    fn bimodal_trace() -> TemporalTrace {
        let mut tr = TemporalTrace::new(8);
        for step in 0..10 {
            let wiggle = 0.02 * (step % 3) as f64;
            let mut s = vec![0.85 + wiggle, 0.8, 0.75, 0.9];
            s.extend([0.05, 0.1 + wiggle, 0.15, 0.02]);
            tr.push_step(s);
        }
        tr
    }

    #[test]
    fn sparse_portion_sparsity_rises_with_threshold() {
        let tr = bimodal_trace();
        let pts = threshold_sweep(&tr, &[0.1, 0.3, 0.5, 0.7]);
        for w in pts.windows(2) {
            assert!(
                w[1].sparse_portion_sparsity >= w[0].sparse_portion_sparsity - 1e-9,
                "{pts:?}"
            );
        }
    }

    #[test]
    fn sparse_fraction_falls_with_threshold() {
        let tr = bimodal_trace();
        let pts = threshold_sweep(&tr, &[0.01, 0.3, 0.95]);
        assert!(pts[0].sparse_channel_fraction > pts[1].sparse_channel_fraction);
        assert!(pts[1].sparse_channel_fraction > pts[2].sparse_channel_fraction);
        assert_eq!(pts[2].sparse_channel_fraction, 0.0);
    }

    #[test]
    fn mid_threshold_balances_bimodal_engines() {
        // For the bimodal trace, classifying the sparse half sparse gives
        // dense work 0.5, sparse work ≈ 0.5·(1−0.82) ≈ 0.09... the best
        // balance is *not* at the extremes.
        let tr = bimodal_trace();
        let pts = threshold_sweep(&tr, &[0.01, 0.3, 0.99]);
        let best = best_balanced_threshold(&pts).unwrap();
        assert_eq!(best.threshold, 0.3, "{pts:?}");
    }

    #[test]
    fn work_conservation() {
        // dense_work + sparse_work + skipped == 1 where skipped is the
        // sparse-portion's zero fraction share.
        let tr = bimodal_trace();
        for p in threshold_sweep(&tr, &[0.3]) {
            let skipped: f64 = p.sparse_channel_fraction * p.sparse_portion_sparsity;
            assert!(
                (p.dense_work + p.sparse_work + skipped - 1.0).abs() < 1e-9,
                "{p:?}"
            );
        }
    }

    #[test]
    fn empty_trace_yields_empty_sweep() {
        // Regression: the sweep used to divide by `steps.max(1)` and emit
        // all-zero points for an empty trace, whose `imbalance == 0` made
        // `best_balanced_threshold` report a fake perfectly-balanced
        // threshold. An empty trace must produce no points at all.
        let tr = TemporalTrace::new(4);
        let pts = threshold_sweep(&tr, &[0.1, 0.3, 0.9]);
        assert!(pts.is_empty(), "{pts:?}");
        assert!(best_balanced_threshold(&pts).is_none());
        assert!(best_balanced_threshold(&[]).is_none());
    }

    #[test]
    fn sweep_is_identical_at_any_thread_count() {
        let tr = bimodal_trace();
        let ths: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
        let serial = parallel::with_threads(1, || threshold_sweep(&tr, &ths));
        for t in [2, 7] {
            let par = parallel::with_threads(t, || threshold_sweep(&tr, &ths));
            assert_eq!(serial, par, "thread count {t}");
        }
    }
}
