//! Diagnostic probe: prints the Figure 1 headline rows at quick scale.
use sqdm_core::experiments::fig1;
use sqdm_core::{prepare, ExperimentScale};
use sqdm_edm::DatasetKind;

fn main() {
    let scale = ExperimentScale::quick();
    let mut pair = prepare(DatasetKind::CifarLike, scale).unwrap();
    let f = fig1::run(&mut pair, &scale).unwrap();
    print!("{}", f.render());
}
