//! Diagnostic probe for the Fig. 1 quality comparison: prints the sampling
//! trajectory divergence of both trained models under every headline format.
use sqdm_core::{prepare, sample_divergence, ExperimentScale};
use sqdm_edm::DatasetKind;
use sqdm_quant::{PrecisionAssignment, QuantFormat};

fn uniform(n: usize, f: QuantFormat) -> PrecisionAssignment {
    PrecisionAssignment::uniform(n, sqdm_quant::BlockPrecision::uniform(f), "u")
}

fn main() {
    let scale = ExperimentScale::quick();
    let n = scale.block_count();
    let mut pair = prepare(DatasetKind::CifarLike, scale).unwrap();
    for (name, net) in [("silu", &mut pair.silu), ("relu", &mut pair.relu)] {
        let net: &mut sqdm_edm::UNet = net;
        for (fname, asg) in [
            ("fp16", uniform(n, QuantFormat::fp16_surrogate())),
            ("mxint8", uniform(n, QuantFormat::mxint8())),
            ("int4_vsq", uniform(n, QuantFormat::int4_vsq())),
            ("int4", uniform(n, QuantFormat::int4())),
            (
                "mixed_signed",
                PrecisionAssignment::paper_mixed(
                    &sqdm_edm::block_profiles(&scale.model),
                    1,
                    1,
                    false,
                ),
            ),
            (
                "mixed_relu",
                PrecisionAssignment::paper_mixed(
                    &sqdm_edm::block_profiles(&scale.model),
                    1,
                    1,
                    true,
                ),
            ),
        ] {
            let d = sample_divergence(net, &pair.denoiser, Some(&asg), &scale).unwrap();
            println!("{name:>5} {fname:<14} {d:.6}");
        }
    }
}
