//! Error type for the experiment pipeline.

use std::fmt;

/// Error produced by the end-to-end pipeline and experiments.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Two pipeline artifacts disagree (e.g. trace vs model shape).
    Inconsistent {
        /// Explanation of the disagreement.
        reason: String,
    },
    /// An underlying EDM operation failed.
    Edm(sqdm_edm::EdmError),
    /// An underlying tensor kernel failed.
    Tensor(sqdm_tensor::TensorError),
    /// An underlying quantization operation failed.
    Quant(sqdm_quant::QuantError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Inconsistent { reason } => write!(f, "inconsistent pipeline: {reason}"),
            CoreError::Edm(e) => write!(f, "edm error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Quant(e) => write!(f, "quantization error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Edm(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            CoreError::Quant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sqdm_edm::EdmError> for CoreError {
    fn from(e: sqdm_edm::EdmError) -> Self {
        CoreError::Edm(e)
    }
}

impl From<sqdm_tensor::TensorError> for CoreError {
    fn from(e: sqdm_tensor::TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<sqdm_quant::QuantError> for CoreError {
    fn from(e: sqdm_quant::QuantError) -> Self {
        CoreError::Quant(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::Inconsistent { reason: "x".into() };
        assert!(e.to_string().contains("inconsistent"));
        let e: CoreError = sqdm_tensor::TensorError::ReshapeMismatch { from: 1, to: 2 }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
