//! Figure 1: headline comparison — generation quality and speed-up per
//! data format.
//!
//! The paper's teaser pairs four configurations: FP16 (1×), MXINT8
//! (2.27×), INT4-VSQ (3.78×) and Ours (6.91×), with only Ours retaining
//! image quality at 4-bit. This experiment reports the same series from
//! the reproduction's accelerator model and sFID scores.

use crate::error::Result;
use crate::experiments::fig12;
use crate::experiments::util::uniform;
use crate::pipeline::{ExperimentScale, TrainedPair};
use serde::{Deserialize, Serialize};
use sqdm_accel::{Accelerator, AcceleratorConfig, LayerQuant, RunStats};
use sqdm_quant::QuantFormat;

/// One headline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Configuration name.
    pub name: String,
    /// sFID on the first dataset (quality proxy).
    pub sfid: f64,
    /// Speed-up over the FP16 dense baseline.
    pub speedup: f64,
}

/// The Figure 1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1 {
    /// Rows in paper order: FP16, MXINT8, INT4-VSQ, Ours.
    pub rows: Vec<Fig1Row>,
}

/// Runs the headline comparison on one dataset pair.
///
/// # Errors
///
/// Propagates sampling/metric errors.
pub fn run(pair: &mut TrainedPair, scale: &ExperimentScale) -> Result<Fig1> {
    let n = scale.block_count();
    // Quality scores.
    let fp16 = crate::pipeline::eval_sfid(
        &mut pair.silu,
        &pair.denoiser,
        &pair.dataset,
        Some(&uniform(n, QuantFormat::fp16_surrogate())),
        scale,
    )?;
    let mx8 = crate::pipeline::eval_sfid(
        &mut pair.silu,
        &pair.denoiser,
        &pair.dataset,
        Some(&uniform(n, QuantFormat::mxint8())),
        scale,
    )?;
    let vsq = crate::pipeline::eval_sfid(
        &mut pair.silu,
        &pair.denoiser,
        &pair.dataset,
        Some(&uniform(n, QuantFormat::int4_vsq())),
        scale,
    )?;
    // Speed-ups: dense runs at each precision + the full system for ours.
    let row12 = fig12::run_one(pair, scale)?;
    let (fp16_cycles, int8_cycles, int4_cycles) = {
        let base = Accelerator::new(AcceleratorConfig::dense_baseline());
        let sites = crate::pipeline::conv_sites(&scale.model);
        let traces = crate::pipeline::record_traces(&mut pair.relu, &pair.denoiser, scale, None)?;
        let mut c16 = RunStats::default();
        let mut c8 = RunStats::default();
        let mut c4 = RunStats::default();
        for step in 0..scale.sampler.steps {
            let ws = crate::pipeline::workloads_at_step(&sites, &traces, step)?;
            for w in &ws {
                c16.push(&base.run_layer(w, None, LayerQuant::fp16()));
                c8.push(&base.run_layer(w, None, LayerQuant::int8()));
                c4.push(&base.run_layer(w, None, LayerQuant::int4()));
            }
        }
        (c16, c8, c4)
    };

    let ours_sfid = crate::pipeline::eval_sfid(
        &mut pair.relu,
        &pair.denoiser,
        &pair.dataset,
        Some(&sqdm_quant::PrecisionAssignment::paper_mixed(
            &sqdm_edm::block_profiles(&scale.model),
            1,
            1,
            true,
        )),
        scale,
    )?;

    Ok(Fig1 {
        rows: vec![
            Fig1Row {
                name: "FP16".into(),
                sfid: fp16,
                speedup: 1.0,
            },
            Fig1Row {
                name: "MXINT8".into(),
                sfid: mx8,
                speedup: int8_cycles.speedup_vs(&fp16_cycles),
            },
            Fig1Row {
                name: "INT4-VSQ".into(),
                sfid: vsq,
                speedup: int4_cycles.speedup_vs(&fp16_cycles),
            },
            Fig1Row {
                name: "Ours".into(),
                sfid: ours_sfid,
                speedup: row12.total_speedup,
            },
        ],
    })
}

impl Fig1 {
    /// Renders the headline table.
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 1: quality and speed-up per format\n");
        s.push_str(&format!(
            "{:<10}{:>10}{:>10}\n",
            "Format", "sFID", "Speed-up"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<10}{:>10.2}{:>9.2}x\n",
                r.name, r.sfid, r.speedup
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::testutil::shared_pair;

    #[test]
    fn headline_ordering() {
        let scale = ExperimentScale::quick();
        let mut pair = shared_pair();
        let f = run(&mut pair, &scale).unwrap();
        assert_eq!(f.rows.len(), 4);
        // Speed-ups ascend: FP16 < MXINT8 < INT4-VSQ < Ours.
        for w in f.rows.windows(2) {
            assert!(
                w[1].speedup > w[0].speedup,
                "{} {} -> {} {}",
                w[0].name,
                w[0].speedup,
                w[1].name,
                w[1].speedup
            );
        }
        // Quality: the figure's own sFID rows must tell the paper's story —
        // only Ours retains image quality at 4-bit. (Trajectory divergence
        // is not comparable across the SiLU and ReLU models, so the claim is
        // checked on sFID, which is computed per model against the dataset.)
        let sfid = |name: &str| {
            f.rows
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("missing row {name}"))
                .sfid
        };
        let (fp16, vsq, ours) = (sfid("FP16"), sfid("INT4-VSQ"), sfid("Ours"));
        // A degenerate metric (near-zero or non-finite sFID) would make any
        // ordering below meaningless, so rule it out first.
        assert!(
            fp16.is_finite() && ours.is_finite() && fp16 > 0.1 && ours > 0.1,
            "degenerate sFID: fp16 {fp16} ours {ours}"
        );
        // Quality retained: Ours at 4-bit stays within a modest band of the
        // FP16 reference...
        assert!(ours < 1.2 * fp16 + 0.1, "ours {ours} vs fp16 {fp16}");
        // ...and must not be worse than the uniform 4-bit VSQ baseline.
        assert!(ours <= vsq, "ours {ours} should not trail INT4-VSQ {vsq}");
        // On the same model, the mixed policy damages the trajectory less
        // than uniform plain INT4 (the naive 4-bit headline contrast).
        let n = scale.block_count();
        let mixed = sqdm_quant::PrecisionAssignment::paper_mixed(
            &sqdm_edm::block_profiles(&scale.model),
            1,
            1,
            true,
        );
        let ours_div = crate::pipeline::sample_divergence(
            &mut pair.relu,
            &pair.denoiser,
            Some(&mixed),
            &scale,
        )
        .unwrap();
        let int4_div = crate::pipeline::sample_divergence(
            &mut pair.relu,
            &pair.denoiser,
            Some(&uniform(n, QuantFormat::int4())),
            &scale,
        )
        .unwrap();
        assert!(ours_div < int4_div, "ours {ours_div} int4 {int4_div}");
        assert!(f.render().contains("Ours"));
    }

    /// The figure's quality metric, evaluated end-to-end on the integer
    /// engine: `NativeInt` sampling must reproduce the fake-quant sFID
    /// within a small band at INT8 (the two paths quantize identically and
    /// differ only by accumulation rounding), and the full mixed-precision
    /// headline configuration must run and stay in the fake-quant row's
    /// quality regime.
    #[test]
    fn quality_metric_matches_under_native_int_execution() {
        use sqdm_quant::{BlockPrecision, ExecMode};
        let scale = ExperimentScale::quick();
        let mut pair = shared_pair();
        let n = scale.block_count();

        let int8 = sqdm_quant::PrecisionAssignment::uniform(
            n,
            BlockPrecision::uniform(QuantFormat::int8()),
            "INT8",
        );
        let fake = crate::pipeline::eval_sfid(
            &mut pair.silu,
            &pair.denoiser,
            &pair.dataset,
            Some(&int8.clone().with_mode(ExecMode::FakeQuant)),
            &scale,
        )
        .unwrap();
        let native = crate::pipeline::eval_sfid(
            &mut pair.silu,
            &pair.denoiser,
            &pair.dataset,
            Some(&int8.with_mode(ExecMode::NativeInt)),
            &scale,
        )
        .unwrap();
        assert!(fake.is_finite() && native.is_finite() && fake > 0.1);
        assert!(
            (native - fake).abs() < 0.15 * fake + 0.05,
            "INT8 sFID diverges across engines: fake {fake} native {native}"
        );

        // The headline mixed policy (fig 1's "Ours" row) end-to-end on the
        // integer engine: 4-bit blocks run per-tensor-scaled UINT4/INT4
        // natively, so the tolerance is the fake-quant row's own band.
        let mixed = sqdm_quant::PrecisionAssignment::paper_mixed(
            &sqdm_edm::block_profiles(&scale.model),
            1,
            1,
            true,
        );
        let ours_fake = crate::pipeline::eval_sfid(
            &mut pair.relu,
            &pair.denoiser,
            &pair.dataset,
            Some(&mixed.clone().with_mode(ExecMode::FakeQuant)),
            &scale,
        )
        .unwrap();
        let ours_native = crate::pipeline::eval_sfid(
            &mut pair.relu,
            &pair.denoiser,
            &pair.dataset,
            Some(&mixed.with_mode(ExecMode::NativeInt)),
            &scale,
        )
        .unwrap();
        assert!(ours_native.is_finite(), "native sFID {ours_native}");
        assert!(
            ours_native < 1.5 * ours_fake + 0.2,
            "mixed-policy native sFID {ours_native} vs fake {ours_fake}"
        );
    }
}
