//! Figure 7: the temporal per-channel sparsity bitmap of one layer of the
//! ReLU-based model across sampling time steps.

use crate::error::{CoreError, Result};
use crate::pipeline::{record_traces, ExperimentScale, TrainedPair};
use serde::{Deserialize, Serialize};
use sqdm_edm::block_ids;
use sqdm_sparsity::{TemporalTrace, PAPER_THRESHOLD};

/// The Figure 7 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7 {
    /// The layer's temporal trace.
    pub trace: TemporalTrace,
    /// Mean sparsity over the whole map.
    pub mean_sparsity: f64,
    /// Classification flip rate at the paper threshold (temporal churn).
    pub flip_rate: f64,
    /// Spread of per-channel mean sparsities (per-channel structure).
    pub channel_spread: f64,
}

/// Records the trace of a representative mid-network layer of the ReLU
/// model.
///
/// # Errors
///
/// Propagates model errors; fails if the layer was not observed.
pub fn run(pair: &mut TrainedPair, scale: &ExperimentScale) -> Result<Fig7> {
    let traces = record_traces(&mut pair.relu, &pair.denoiser, scale, None)?;
    let key = (block_ids::ENC_LO[1], 1);
    let trace = traces
        .get(&key)
        .cloned()
        .ok_or_else(|| CoreError::Inconsistent {
            reason: format!("no trace recorded for layer {key:?}"),
        })?;
    let means: Vec<f64> = (0..trace.channels())
        .map(|c| trace.channel_mean(c))
        .collect();
    let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Ok(Fig7 {
        mean_sparsity: trace.mean_sparsity(),
        flip_rate: trace.flip_rate(PAPER_THRESHOLD),
        channel_spread: hi - lo,
        trace,
    })
}

impl Fig7 {
    /// Renders the bitmap (rows = channels, columns = time steps; `#`
    /// marks sparse at the paper threshold).
    pub fn render(&self) -> String {
        format!(
            "Figure 7: temporal per-channel sparsity (mean {:.1}%, flip rate {:.2}, channel spread {:.2})\n{}",
            self.mean_sparsity * 100.0,
            self.flip_rate,
            self.channel_spread,
            self.trace.ascii_bitmap(PAPER_THRESHOLD)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::testutil::shared_pair;

    #[test]
    fn relu_trace_shows_per_channel_structure() {
        let scale = ExperimentScale::quick();
        let mut pair = shared_pair();
        let f = run(&mut pair, &scale).unwrap();
        assert_eq!(f.trace.steps(), scale.sampler.steps);
        // Channels must differ from one another (the paper's key point).
        assert!(f.channel_spread > 0.1, "spread {}", f.channel_spread);
        assert!(f.mean_sparsity > 0.1, "mean {}", f.mean_sparsity);
        let bmp = f.render();
        assert!(bmp.contains('#') || bmp.contains('.'));
    }
}
