//! Shared helpers for the experiment implementations.

use sqdm_accel::LayerQuant;
use sqdm_quant::{BlockPrecision, PrecisionAssignment, QuantFormat};

/// Uniform assignment across all model blocks.
pub fn uniform(n_blocks: usize, fmt: QuantFormat) -> PrecisionAssignment {
    PrecisionAssignment::uniform(n_blocks, BlockPrecision::uniform(fmt), fmt.name)
}

/// Derives the accelerator-side numeric configuration of one block from a
/// precision assignment.
pub fn layer_quant_for(assignment: Option<&PrecisionAssignment>, block: usize) -> LayerQuant {
    match assignment {
        None => LayerQuant::fp16(),
        Some(a) => {
            let p = a.block(block);
            let wb = p.weights.map(|f| f.grid.bits as u32).unwrap_or(16);
            let ab = p.activations.map(|f| f.grid.bits as u32).unwrap_or(16);
            LayerQuant::from_bits(wb, ab)
        }
    }
}

/// Renders a right-aligned numeric cell.
pub fn cell(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:>9.1}")
    } else {
        format!("{v:>9.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_accel::MacPrecision;

    #[test]
    fn layer_quant_derivation() {
        let a = uniform(4, QuantFormat::ours_int4());
        assert_eq!(layer_quant_for(Some(&a), 2).mac, MacPrecision::Int4);
        assert_eq!(layer_quant_for(None, 0).mac, MacPrecision::Fp16);
        let a8 = uniform(4, QuantFormat::mxint8());
        assert_eq!(layer_quant_for(Some(&a8), 0).weight_bits, 8);
    }

    #[test]
    fn cell_widths() {
        assert_eq!(cell(1.5).len(), 9);
        assert_eq!(cell(123.456).len(), 9);
    }
}
