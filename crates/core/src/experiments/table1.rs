//! Table I: sFID of existing quantization formats across datasets.
//!
//! Paper finding: FP16 ≈ FP32; INT8 (coarse scales) degrades; MXINT8
//! (fine-grained) ≈ FP32; INT4 catastrophic; INT4-VSQ in between.

use crate::error::Result;
use crate::experiments::util::{cell, uniform};
use crate::pipeline::{eval_sfid, ExperimentScale, TrainedPair};
use serde::{Deserialize, Serialize};
use sqdm_quant::{PrecisionAssignment, QuantFormat};

/// The six format rows of Table I, in paper order.
pub fn table1_formats(n_blocks: usize) -> Vec<(String, Option<PrecisionAssignment>)> {
    vec![
        ("FP32".to_string(), None),
        (
            "FP16".to_string(),
            Some(uniform(n_blocks, QuantFormat::fp16_surrogate())),
        ),
        (
            "INT8".to_string(),
            Some(uniform(n_blocks, QuantFormat::int8())),
        ),
        (
            "MXINT8".to_string(),
            Some(uniform(n_blocks, QuantFormat::mxint8())),
        ),
        (
            "INT4".to_string(),
            Some(uniform(n_blocks, QuantFormat::int4())),
        ),
        (
            "INT4-VSQ".to_string(),
            Some(uniform(n_blocks, QuantFormat::int4_vsq())),
        ),
    ]
}

/// One cell of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Cell {
    /// Dataset display name.
    pub dataset: String,
    /// Measured sFID.
    pub sfid: f64,
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Format name.
    pub format: String,
    /// Per-dataset scores.
    pub cells: Vec<Table1Cell>,
}

/// The complete Table I result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows in paper order.
    pub rows: Vec<Table1Row>,
}

/// Runs Table I over prepared dataset pairs (SiLU models, as the paper's
/// baseline formats target the unmodified network).
///
/// # Errors
///
/// Propagates sampling/metric errors.
pub fn run(pairs: &mut [TrainedPair], scale: &ExperimentScale) -> Result<Table1> {
    let formats = table1_formats(scale.block_count());
    let mut rows = Vec::new();
    for (name, assignment) in &formats {
        let mut cells = Vec::new();
        for pair in pairs.iter_mut() {
            let sfid = eval_sfid(
                &mut pair.silu,
                &pair.denoiser,
                &pair.dataset,
                assignment.as_ref(),
                scale,
            )?;
            cells.push(Table1Cell {
                dataset: pair.dataset.kind.name().to_string(),
                sfid,
            });
        }
        rows.push(Table1Row {
            format: name.clone(),
            cells,
        });
    }
    Ok(Table1 { rows })
}

impl Table1 {
    /// sFID of `format` on dataset column `col`.
    pub fn score(&self, format: &str, col: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.format == format)
            .and_then(|r| r.cells.get(col))
            .map(|c| c.sfid)
    }

    /// Mean sFID of a format across datasets.
    pub fn mean_score(&self, format: &str) -> Option<f64> {
        let row = self.rows.iter().find(|r| r.format == format)?;
        if row.cells.is_empty() {
            return None;
        }
        Some(row.cells.iter().map(|c| c.sfid).sum::<f64>() / row.cells.len() as f64)
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut s = String::from("Table I: sFID comparison of existing quantization formats\n");
        if let Some(first) = self.rows.first() {
            s.push_str(&format!("{:<10}", "Format"));
            for c in &first.cells {
                s.push_str(&format!("{:>15}", c.dataset));
            }
            s.push('\n');
        }
        for r in &self.rows {
            s.push_str(&format!("{:<10}", r.format));
            for c in &r.cells {
                s.push_str(&format!("{:>15}", cell(c.sfid)));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::sample_divergence;
    use crate::pipeline::testutil::shared_pair;

    #[test]
    fn table1_runs_and_scores_are_finite() {
        let scale = ExperimentScale::quick();
        let mut pairs = vec![shared_pair()];
        let t = run(&mut pairs, &scale).unwrap();
        assert_eq!(t.rows.len(), 6);
        for r in &t.rows {
            for c in &r.cells {
                assert!(c.sfid.is_finite() && c.sfid >= 0.0, "{r:?}");
            }
        }
        // FP16 tracks FP32 closely even on the noisy small-sample metric.
        let fp32 = t.score("FP32", 0).unwrap();
        let fp16 = t.score("FP16", 0).unwrap();
        assert!(
            (fp16 - fp32).abs() < 0.35 * fp32.max(1.0),
            "fp32 {fp32} fp16 {fp16}"
        );
        let rendered = t.render();
        assert!(rendered.contains("INT4-VSQ"));
        assert!(rendered.contains("CIFAR-10(syn)"));
    }

    #[test]
    fn format_damage_orderings_match_paper() {
        // The deterministic trajectory-divergence companion to Table I:
        // identical noise seeds, so format error is the only difference.
        let scale = ExperimentScale::quick();
        let mut pair = shared_pair();
        let formats = table1_formats(scale.block_count());
        let mut div = std::collections::BTreeMap::new();
        for (name, a) in &formats {
            let d = sample_divergence(&mut pair.silu, &pair.denoiser, a.as_ref(), &scale).unwrap();
            div.insert(name.clone(), d);
        }
        // FP16 is indistinguishable from FP32.
        assert!(div["FP16"] < 1e-4, "{div:?}");
        // Fine-grained 8-bit tracks coarse 8-bit within a few percent.
        // (Since the attention projections execute quantized too, the
        // micro model's 24-channel attention weights clip MXINT8's
        // 32-element blocks to one block per row — the same granularity
        // as per-channel INT8 but with power-of-two instead of f32
        // scales, a small handicap that at paper scale, where rows hold
        // several blocks, turns back into a win. At 8 bits both formats
        // are far from the 4-bit regime where granularity decides the
        // story, so the strict orderings below carry the claim.)
        //
        // Under SQDM_EXEC=native-int the integer engine additionally
        // coerces *activation* scales to per-tensor (they cannot be
        // folded out of an integer dot product), which erases MXINT8's
        // fine-grained activation advantage entirely and leaves its
        // power-of-two scales up to 2× coarser than INT8's f32 scales.
        // The granularity story is a property of the fake-quant
        // methodology; on the native engine we pin the 8-bit regime
        // instead.
        match sqdm_quant::ExecMode::from_env() {
            sqdm_quant::ExecMode::FakeQuant => {
                assert!(div["MXINT8"] < 1.1 * div["INT8"], "{div:?}");
                // The *strict* fine-beats-coarse pin, isolated from the
                // clipped attention projections: the same whole-model
                // comparison with the attention block held at FP16, where
                // MXINT8's per-block scales act on full 32-element conv
                // blocks. This is the guard that catches a blocked-format
                // regression outright.
                use sqdm_quant::BlockPrecision;
                let conv_only = |fmt: sqdm_quant::QuantFormat| {
                    let mut blocks = vec![BlockPrecision::uniform(fmt); scale.block_count()];
                    blocks[sqdm_edm::block_ids::MID_ATTN] = BlockPrecision::FP16;
                    PrecisionAssignment::from_blocks(blocks, fmt.name)
                };
                let mx8 = sample_divergence(
                    &mut pair.silu,
                    &pair.denoiser,
                    Some(&conv_only(QuantFormat::mxint8())),
                    &scale,
                )
                .unwrap();
                let i8_coarse = sample_divergence(
                    &mut pair.silu,
                    &pair.denoiser,
                    Some(&conv_only(QuantFormat::int8())),
                    &scale,
                )
                .unwrap();
                assert!(mx8 < i8_coarse, "conv-only mxint8 {mx8} int8 {i8_coarse}");
            }
            sqdm_quant::ExecMode::NativeInt => {
                assert!(div["MXINT8"] < 4.0 * div["INT8"], "{div:?}");
            }
        }
        // 8-bit beats 4-bit; VSQ rescues part of the 4-bit damage.
        assert!(div["INT8"] < div["INT4"], "{div:?}");
        assert!(div["INT4-VSQ"] < div["INT4"], "{div:?}");
        assert!(div["MXINT8"] < div["INT4-VSQ"], "{div:?}");
    }
}
