//! Figure 4: EDM computation and memory breakdown by block type.

use serde::{Deserialize, Serialize};
use sqdm_edm::{block_profiles, breakdown_by_kind, KindShare, UNetConfig};

/// The Figure 4 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4 {
    /// Per-kind compute and memory shares.
    pub shares: Vec<KindShare>,
}

/// Computes the breakdown for a model configuration.
pub fn run(cfg: &UNetConfig) -> Fig4 {
    Fig4 {
        shares: breakdown_by_kind(&block_profiles(cfg)),
    }
}

impl Fig4 {
    /// The Conv+Act compute share (the paper's >90% headline).
    pub fn conv_compute_share(&self) -> f64 {
        self.shares
            .iter()
            .find(|s| s.kind == sqdm_quant::BlockKind::ConvAct)
            .map(|s| s.compute_fraction)
            .unwrap_or(0.0)
    }

    /// Renders the breakdown.
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 4: compute and memory breakdown by block type\n");
        s.push_str(&format!(
            "{:<12}{:>12}{:>12}\n",
            "Block", "Compute", "Memory"
        ));
        for sh in &self.shares {
            s.push_str(&format!(
                "{:<12}{:>11.1}%{:>11.1}%\n",
                sh.kind.name(),
                sh.compute_fraction * 100.0,
                sh.memory_fraction * 100.0
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_dominates() {
        let f = run(&UNetConfig::default());
        assert!(f.conv_compute_share() > 0.8);
        assert!(f.render().contains("Conv+Act"));
        assert_eq!(f.shares.len(), 4);
    }
}
