//! Figure 6: quantization-level utilization of SiLU+INT4 versus
//! ReLU+UINT4 (delegates to the analysis in `sqdm-quant`).

use serde::{Deserialize, Serialize};
use sqdm_quant::{figure6_comparison, LevelUtilization};

/// The Figure 6 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6 {
    /// SiLU quantized with signed INT4.
    pub silu_int4: LevelUtilization,
    /// ReLU quantized with unsigned INT4.
    pub relu_uint4: LevelUtilization,
}

/// Runs the comparison.
pub fn run() -> Fig6 {
    let (silu_int4, relu_uint4) = figure6_comparison();
    Fig6 {
        silu_int4,
        relu_uint4,
    }
}

impl Fig6 {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 6: quantization level utilization for x in [-1, 1]\n");
        for u in [&self.silu_int4, &self.relu_uint4] {
            s.push_str(&format!(
                "{:<10} {} bits ({}): {:>2} / {:>2} levels used ({:.0}%)\n",
                u.activation,
                u.grid.bits,
                if u.grid.signed { "signed" } else { "unsigned" },
                u.used_levels,
                u.total_levels,
                u.utilization * 100.0
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_uses_all_silu_does_not() {
        let f = run();
        assert_eq!(f.relu_uint4.used_levels, 16);
        assert!(f.silu_int4.used_levels < 12);
        assert!(f.render().contains("levels used"));
    }
}
