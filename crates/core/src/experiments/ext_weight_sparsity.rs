//! Extension experiment: combining 2:4 structured *weight* sparsity with
//! the paper's temporal *activation* sparsity (§II-B: "activation sparsity
//! can be combined with weight sparsity to enable additional efficiency").
//!
//! Weights of every convolution are pruned to the 2:4 pattern, the model's
//! generation quality impact is measured, and the accelerator is run with
//! the halved weight density on top of the usual dense/sparse channel
//! routing.

use crate::error::Result;
use crate::pipeline::{conv_sites, record_traces, workloads_at_step, ExperimentScale, TrainedPair};
use serde::{Deserialize, Serialize};
use sqdm_accel::{Accelerator, AcceleratorConfig, LayerQuant, RunStats};
use sqdm_edm::UNet;
use sqdm_quant::prune_m_of_n;
use sqdm_sparsity::ChannelPartition;

/// The extension-experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtWeightSparsity {
    /// Trajectory divergence of the pruned model vs its dense self.
    pub prune_divergence: f64,
    /// Speed-up of activation sparsity alone over the dense baseline.
    pub act_only_speedup: f64,
    /// Speed-up with 2:4 weights on top of activation sparsity.
    pub combined_speedup: f64,
    /// Energy saving with both sparsities vs the dense baseline.
    pub combined_energy_saving: f64,
    /// Number of conv weight tensors pruned.
    pub pruned_tensors: usize,
}

/// Prunes every rank-4 (convolution) weight of a model to 2:4 along the
/// reduction dimension. Returns the number of tensors pruned.
///
/// # Errors
///
/// Propagates pruning layout errors.
pub fn prune_model_weights_2_4(net: &mut UNet) -> Result<usize> {
    let mut count = 0usize;
    for p in net.params_mut() {
        // Conv weights are the rank-4 parameters [K, C, kh, kw] with a
        // reduction slice of at least one 2:4 group.
        if p.value.rank() == 4 && p.value.len() >= p.value.dims()[0] * 4 {
            p.value = prune_m_of_n(&p.value, 2, 4, sqdm_quant::ChannelLayout::WEIGHT)?;
            count += 1;
        }
    }
    Ok(count)
}

/// Runs the extension experiment on a trained pair's ReLU model.
///
/// # Errors
///
/// Propagates model and pipeline errors.
pub fn run(pair: &mut TrainedPair, scale: &ExperimentScale) -> Result<ExtWeightSparsity> {
    // Quality: divergence of the pruned model's samples from the unpruned
    // model's (same seeds, both full precision).
    let mut pruned = pair.relu.clone();
    let pruned_tensors = prune_model_weights_2_4(&mut pruned)?;
    let mut r1 = sqdm_tensor::Rng::seed_from(scale.seed ^ 0x24);
    let dense_samples = sqdm_edm::sample(
        &mut pair.relu,
        &pair.denoiser,
        8,
        scale.sampler,
        None,
        &mut r1,
    )?;
    let mut r2 = sqdm_tensor::Rng::seed_from(scale.seed ^ 0x24);
    let pruned_samples =
        sqdm_edm::sample(&mut pruned, &pair.denoiser, 8, scale.sampler, None, &mut r2)?;
    let prune_divergence = dense_samples
        .mse(&pruned_samples)
        .map_err(sqdm_edm::EdmError::from)? as f64;

    // Performance: traces from the pruned model drive both configurations.
    let traces = record_traces(&mut pruned, &pair.denoiser, scale, None)?;
    let sites = conv_sites(&scale.model);
    let het = Accelerator::new(AcceleratorConfig::paper());
    let base = Accelerator::new(AcceleratorConfig::dense_baseline());
    let mut dense_stats = RunStats::default();
    let mut act_only = RunStats::default();
    let mut combined = RunStats::default();
    for step in 0..scale.sampler.steps {
        let ws = workloads_at_step(&sites, &traces, step)?;
        for w in &ws {
            let p = ChannelPartition::balanced(&w.act_sparsity, 0.9);
            dense_stats.push(&base.run_layer(w, None, LayerQuant::int4()));
            act_only.push(&het.run_layer(w, Some(&p), LayerQuant::int4()));
            let w24 = w.clone().with_weight_density(0.5);
            combined.push(&het.run_layer(&w24, Some(&p), LayerQuant::int4()));
        }
    }
    Ok(ExtWeightSparsity {
        prune_divergence,
        act_only_speedup: act_only.speedup_vs(&dense_stats),
        combined_speedup: combined.speedup_vs(&dense_stats),
        combined_energy_saving: combined.energy_saving_vs(&dense_stats),
        pruned_tensors,
    })
}

impl ExtWeightSparsity {
    /// Renders the extension report.
    pub fn render(&self) -> String {
        format!(
            "Extension: 2:4 weight sparsity on top of temporal activation sparsity\n\
             pruned conv weight tensors : {}\n\
             pruning sample divergence  : {:.5}\n\
             activation sparsity only   : {:.2}x over dense baseline\n\
             + 2:4 weight sparsity      : {:.2}x over dense baseline\n\
             combined energy saving     : {:.1}%\n",
            self.pruned_tensors,
            self.prune_divergence,
            self.act_only_speedup,
            self.combined_speedup,
            self.combined_energy_saving * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::testutil::shared_pair;

    #[test]
    fn weight_sparsity_adds_speedup() {
        let scale = ExperimentScale::quick();
        let mut pair = shared_pair();
        let r = run(&mut pair, &scale).unwrap();
        assert!(r.pruned_tensors >= 10, "pruned {}", r.pruned_tensors);
        assert!(
            r.combined_speedup > r.act_only_speedup,
            "combined {} vs act-only {}",
            r.combined_speedup,
            r.act_only_speedup
        );
        assert!(r.combined_energy_saving > 0.3);
        assert!(r.prune_divergence.is_finite());
        assert!(r.render().contains("2:4"));
    }
}
