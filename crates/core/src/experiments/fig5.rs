//! Figure 5: activation distributions at the output of Conv+SiLU versus
//! Conv+ReLU.
//!
//! Paper finding: the SiLU model's activation distribution extends into a
//! small negative tail (forcing signed formats), while the ReLU model's
//! is non-negative with a mass spike at exactly zero.

use crate::error::Result;
use crate::pipeline::{ExperimentScale, TrainedPair};
use serde::{Deserialize, Serialize};
use sqdm_edm::{block_ids, RunConfig};
use sqdm_tensor::stats::{Histogram, Moments};
use sqdm_tensor::{Rng, Tensor};

/// Distribution summary of one model's mid-network activations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActDistribution {
    /// Which activation function produced it.
    pub activation: String,
    /// Histogram over a fixed range.
    pub histogram: Histogram,
    /// Moments of the sample.
    pub moments: Moments,
    /// Fraction of exactly-zero samples.
    pub zero_fraction: f64,
    /// Minimum observed value.
    pub min: f32,
}

/// The Figure 5 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5 {
    /// SiLU-model distribution.
    pub silu: ActDistribution,
    /// ReLU-model distribution.
    pub relu: ActDistribution,
}

fn collect(
    net: &mut sqdm_edm::UNet,
    denoiser: &sqdm_edm::Denoiser,
    scale: &ExperimentScale,
) -> Result<ActDistribution> {
    let mut rng = Rng::seed_from(scale.seed ^ 0xF165);
    let cfg = *net.config();
    // Mid-trajectory noisy input at a representative sigma.
    let sigma = 1.0f32;
    let x = Tensor::randn(
        [4, cfg.in_channels, cfg.image_size, cfg.image_size],
        &mut rng,
    )
    .scale(sigma);
    let mut values: Vec<f32> = Vec::new();
    let target_block = block_ids::ENC_LO[1];
    {
        let mut obs = |ev: sqdm_edm::ActEvent<'_>| {
            if ev.block_index == target_block && ev.stage == 1 {
                values.extend_from_slice(ev.tensor.as_slice());
            }
        };
        let mut rc = RunConfig {
            train: false,
            assignment: None,
            observer: Some(&mut obs),
            batched: false,
            packs: None,
            delta: None,
        };
        denoiser.denoise(net, &x, &[sigma; 4], &mut rc)?;
    }
    let t = Tensor::from_slice(&values);
    let mut histogram = Histogram::new(-1.0, 4.0, 50).map_err(sqdm_edm::EdmError::from)?;
    histogram.add_tensor(&t);
    let act = format!("{:?}", net.activation());
    Ok(ActDistribution {
        activation: act,
        moments: Moments::of(&t),
        zero_fraction: t.sparsity(),
        min: t.min(),
        histogram,
    })
}

/// Runs the distribution comparison on a trained pair.
///
/// # Errors
///
/// Propagates model errors.
pub fn run(pair: &mut TrainedPair, scale: &ExperimentScale) -> Result<Fig5> {
    Ok(Fig5 {
        silu: collect(&mut pair.silu, &pair.denoiser, scale)?,
        relu: collect(&mut pair.relu, &pair.denoiser, scale)?,
    })
}

impl Fig5 {
    /// Renders both histograms.
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 5: activation distributions, Conv+SiLU vs Conv+ReLU\n");
        for d in [&self.silu, &self.relu] {
            s.push_str(&format!(
                "\n{} — min {:.3}, zero fraction {:.1}%, mean {:.3}\n",
                d.activation,
                d.min,
                d.zero_fraction * 100.0,
                d.moments.mean
            ));
            s.push_str(&d.histogram.ascii(40));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::testutil::shared_pair;

    #[test]
    fn silu_has_negative_tail_relu_has_zero_spike() {
        let scale = ExperimentScale::quick();
        let mut pair = shared_pair();
        let f = run(&mut pair, &scale).unwrap();
        // SiLU: outputs dip below zero but never below the SiLU minimum.
        assert!(f.silu.min < 0.0, "silu min {}", f.silu.min);
        assert!(f.silu.min >= sqdm_tensor::ops::SILU_MIN - 1e-4);
        assert!(f.silu.zero_fraction < 0.05);
        // ReLU: non-negative with a large exact-zero mass.
        assert_eq!(f.relu.min, 0.0);
        assert!(
            f.relu.zero_fraction > 0.25,
            "relu zeros {}",
            f.relu.zero_fraction
        );
        assert!(f.render().contains("Relu"));
    }
}
