//! Table II: the proposed quantization schemes versus INT4-VSQ.
//!
//! Rows: INT4-VSQ (uniform 4-bit baseline), Ours(MP-only) — mixed
//! precision on the SiLU model — and Ours(MP+ReLU) — mixed precision on
//! the ReLU-finetuned model with unsigned 4-bit activations. Columns also
//! report the cost model's average compute and memory savings.

use crate::error::Result;
use crate::experiments::util::{cell, uniform};
use crate::pipeline::{eval_sfid, ExperimentScale, TrainedPair};
use serde::{Deserialize, Serialize};
use sqdm_edm::block_profiles;
use sqdm_quant::{evaluate_cost, PrecisionAssignment, QuantFormat};

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Method name.
    pub method: String,
    /// Average compute saving vs FP16 (0.75 = 75%).
    pub compute_saving: f64,
    /// Average memory saving vs FP16.
    pub memory_saving: f64,
    /// Per-dataset sFID.
    pub sfid: Vec<(String, f64)>,
}

/// The complete Table II result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Rows in paper order.
    pub rows: Vec<Table2Row>,
}

/// Runs Table II over prepared dataset pairs.
///
/// # Errors
///
/// Propagates sampling/metric errors.
pub fn run(pairs: &mut [TrainedPair], scale: &ExperimentScale) -> Result<Table2> {
    let profiles = block_profiles(&scale.model);
    let n = scale.block_count();

    let vsq = uniform(n, QuantFormat::int4_vsq());
    let mp_only = PrecisionAssignment::paper_mixed(&profiles, 1, 1, false);
    let mp_relu = PrecisionAssignment::paper_mixed(&profiles, 1, 1, true);

    // (name, assignment, use relu model?)
    let methods: Vec<(String, PrecisionAssignment, bool)> = vec![
        ("INT4-VSQ".to_string(), vsq, false),
        ("Ours(MP-only)".to_string(), mp_only, false),
        ("Ours(MP+ReLU)".to_string(), mp_relu, true),
    ];

    let mut rows = Vec::new();
    for (name, assignment, use_relu) in methods {
        let cost = evaluate_cost(&profiles, &assignment);
        let mut sfid = Vec::new();
        for pair in pairs.iter_mut() {
            let net = if use_relu {
                &mut pair.relu
            } else {
                &mut pair.silu
            };
            let v = eval_sfid(net, &pair.denoiser, &pair.dataset, Some(&assignment), scale)?;
            sfid.push((pair.dataset.kind.name().to_string(), v));
        }
        rows.push(Table2Row {
            method: name,
            compute_saving: cost.compute_saving,
            memory_saving: cost.memory_saving,
            sfid,
        });
    }
    Ok(Table2 { rows })
}

impl Table2 {
    /// sFID of `method` on dataset column `col`.
    pub fn score(&self, method: &str, col: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.method == method)
            .and_then(|r| r.sfid.get(col))
            .map(|&(_, v)| v)
    }

    /// Mean sFID of `method` across datasets.
    pub fn mean_score(&self, method: &str) -> Option<f64> {
        let r = self.rows.iter().find(|r| r.method == method)?;
        if r.sfid.is_empty() {
            return None;
        }
        Some(r.sfid.iter().map(|&(_, v)| v).sum::<f64>() / r.sfid.len() as f64)
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut s = String::from("Table II: sFID comparison of quantized models\n");
        s.push_str(&format!(
            "{:<16}{:>10}{:>10}",
            "Method", "Comp.Sav", "Mem.Sav"
        ));
        if let Some(first) = self.rows.first() {
            for (d, _) in &first.sfid {
                s.push_str(&format!("{:>15}", d));
            }
        }
        s.push('\n');
        for r in &self.rows {
            s.push_str(&format!(
                "{:<16}{:>9.0}%{:>9.0}%",
                r.method,
                r.compute_saving * 100.0,
                r.memory_saving * 100.0
            ));
            for (_, v) in &r.sfid {
                s.push_str(&format!("{:>15}", cell(*v)));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::testutil::shared_pair;

    #[test]
    fn ours_beats_vsq_and_savings_match_paper_band() {
        let scale = ExperimentScale::quick();
        let mut pairs = vec![shared_pair()];
        let t = run(&mut pairs, &scale).unwrap();
        assert_eq!(t.rows.len(), 3);

        let vsq = t.score("INT4-VSQ", 0).unwrap();
        let mp = t.score("Ours(MP-only)", 0).unwrap();
        let mp_relu = t.score("Ours(MP+ReLU)", 0).unwrap();
        // The paper's ordering: MP-only improves on VSQ, MP+ReLU is best.
        assert!(mp < vsq, "mp {mp} vsq {vsq}");
        assert!(mp_relu <= mp * 1.35, "mp_relu {mp_relu} mp {mp}");

        // Savings: VSQ 75/75, ours a little below (sensitive blocks 8-bit).
        let vsq_row = &t.rows[0];
        assert!((vsq_row.compute_saving - 0.75).abs() < 0.01);
        let ours = &t.rows[1];
        assert!(ours.compute_saving > 0.5 && ours.compute_saving < 0.75);

        assert!(t.render().contains("Ours(MP+ReLU)"));
    }
}
