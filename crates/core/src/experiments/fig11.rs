//! Figure 11: temporal sparsity detection analysis.
//!
//! Left: sweep of the dense/sparse classification threshold (the paper
//! selects 30%, where the sparse portion averages ~70% sparsity and the
//! engines balance). Right: system speed-up versus the detector's update
//! period (the paper selects per-step updates).

use crate::error::Result;
use crate::pipeline::{
    conv_sites, record_traces, workloads_at_step, ExperimentScale, LayerKey, TrainedPair,
};
use serde::{Deserialize, Serialize};
use sqdm_accel::{Accelerator, AcceleratorConfig, LayerQuant, RunStats};
use sqdm_sparsity::{
    threshold_sweep, ChannelPartition, TemporalTrace, ThresholdPoint, UpdateSchedule,
    PAPER_THRESHOLD,
};
use sqdm_tensor::parallel;
use std::collections::BTreeMap;

/// One point of the update-period sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodPoint {
    /// Steps between detector updates.
    pub period: usize,
    /// Speed-up over the dense baseline with this staleness.
    pub speedup: f64,
    /// Misclassification rate of the stale classifications.
    pub misclassification: f64,
}

/// The Figure 11 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11 {
    /// Threshold sweep (left panel).
    pub thresholds: Vec<ThresholdPoint>,
    /// Update-period sweep (right panel).
    pub periods: Vec<PeriodPoint>,
}

/// Stacks the traces of every conv site into one combined trace (channels
/// concatenated per step), for whole-model threshold statistics.
pub fn combined_trace(traces: &BTreeMap<LayerKey, TemporalTrace>) -> TemporalTrace {
    let steps = traces.values().map(|t| t.steps()).min().unwrap_or(0);
    let channels: usize = traces.values().map(|t| t.channels()).sum();
    let mut out = TemporalTrace::new(channels);
    for s in 0..steps {
        let mut row = Vec::with_capacity(channels);
        for t in traces.values() {
            row.extend_from_slice(t.step(s));
        }
        out.push_step(row);
    }
    out
}

/// Runs both panels on the ReLU model of a trained pair.
///
/// # Errors
///
/// Propagates model and pipeline errors.
pub fn run(pair: &mut TrainedPair, scale: &ExperimentScale) -> Result<Fig11> {
    let traces = record_traces(&mut pair.relu, &pair.denoiser, scale, None)?;
    let combined = combined_trace(&traces);

    // Left panel: threshold sweep on the combined trace.
    let ths: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let thresholds = threshold_sweep(&combined, &ths);

    // Right panel: speed-up vs update period.
    let sites = conv_sites(&scale.model);
    let het = Accelerator::new(AcceleratorConfig::paper());
    let base = Accelerator::new(AcceleratorConfig::dense_baseline());
    let steps = scale.sampler.steps;

    // Baseline: dense, all steps.
    let mut base_stats = RunStats::default();
    for step in 0..steps {
        let ws = workloads_at_step(&sites, &traces, step)?;
        for w in &ws {
            base_stats.push(&base.run_layer(w, None, LayerQuant::int4()));
        }
    }

    // The update-period sweep points are independent (each reads the
    // shared traces and simulates its own accelerator run), so they run
    // in parallel over the `sqdm_tensor::parallel` worker pool.
    let mut candidates = vec![1usize, 2, 3, 4, 6, steps.max(1)];
    candidates.retain(|&p| p <= steps);
    candidates.dedup();
    let periods = parallel::par_map_indexed(candidates.len(), 1 << 20, |pi| {
        let period = candidates[pi];
        let sched = UpdateSchedule::every(period);
        let mut het_stats = RunStats::default();
        for step in 0..steps {
            let eff = sched.effective_step(step);
            let ws = workloads_at_step(&sites, &traces, step)?;
            let ws_eff = workloads_at_step(&sites, &traces, eff)?;
            for (w, w_eff) in ws.iter().zip(ws_eff.iter()) {
                // Classification from the stale step, true sparsity from
                // the current one.
                let p = ChannelPartition::balanced_stale(&w_eff.act_sparsity, &w.act_sparsity, 0.9);
                het_stats.push(&het.run_layer(w, Some(&p), LayerQuant::int4()));
            }
        }
        Ok(PeriodPoint {
            period,
            speedup: het_stats.speedup_vs(&base_stats),
            misclassification: sched.misclassification_rate(&combined, PAPER_THRESHOLD),
        })
    })
    .into_iter()
    .collect::<Result<Vec<_>>>()?;

    Ok(Fig11 {
        thresholds,
        periods,
    })
}

impl Fig11 {
    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 11 (left): sparsity threshold analysis\n");
        s.push_str(&format!(
            "{:>9}{:>14}{:>16}{:>12}{:>12}\n",
            "thresh", "sparse frac", "sparse portion", "dense work", "sparse work"
        ));
        for p in &self.thresholds {
            s.push_str(&format!(
                "{:>9.1}{:>13.1}%{:>15.1}%{:>12.3}{:>12.3}\n",
                p.threshold,
                p.sparse_channel_fraction * 100.0,
                p.sparse_portion_sparsity * 100.0,
                p.dense_work,
                p.sparse_work
            ));
        }
        s.push_str("\nFigure 11 (right): update frequency vs speed-up\n");
        s.push_str(&format!(
            "{:>8}{:>10}{:>10}\n",
            "period", "speed-up", "misclass"
        ));
        for p in &self.periods {
            s.push_str(&format!(
                "{:>8}{:>9.2}x{:>9.1}%\n",
                p.period,
                p.speedup,
                p.misclassification * 100.0
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::testutil::shared_pair;

    #[test]
    fn panels_show_paper_trends() {
        let scale = ExperimentScale::quick();
        let mut pair = shared_pair();
        let f = run(&mut pair, &scale).unwrap();

        // Left: sparse-portion sparsity is nondecreasing in threshold.
        for w in f.thresholds.windows(2) {
            assert!(w[1].sparse_portion_sparsity >= w[0].sparse_portion_sparsity - 1e-9);
        }
        // Right: per-step updates give the best (or tied-best) speed-up,
        // and misclassification grows with the period.
        assert_eq!(f.periods[0].period, 1);
        assert_eq!(f.periods[0].misclassification, 0.0);
        let best = f.periods.iter().map(|p| p.speedup).fold(f64::MIN, f64::max);
        assert!(f.periods[0].speedup >= best - 1e-9, "{:?}", f.periods);
        assert!(f.render().contains("update frequency"));
    }
}
