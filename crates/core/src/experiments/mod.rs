//! Experiment registry: one module per table or figure of the paper.
//!
//! | Module    | Paper artifact | Content |
//! |-----------|----------------|---------|
//! | [`table1`] | Table I   | sFID of existing formats across datasets |
//! | [`table2`] | Table II  | proposed schemes vs INT4-VSQ + savings |
//! | [`fig1`]   | Figure 1  | headline quality/speed-up series |
//! | [`fig3`]   | Figure 3  | block-wise quantization sensitivity |
//! | [`fig4`]   | Figure 4  | compute/memory breakdown by block type |
//! | [`fig5`]   | Figure 5  | SiLU vs ReLU activation distributions |
//! | [`fig6`]   | Figure 6  | quantization level utilization |
//! | [`fig7`]   | Figure 7  | temporal per-channel sparsity bitmap |
//! | [`fig11`]  | Figure 11 | threshold and update-frequency analysis |
//! | [`fig12`]  | Figure 12 | system speed-up and energy evaluation |
//! | [`ext_weight_sparsity`] | §II-B extension | 2:4 weight sparsity on top of temporal activation sparsity |

pub mod ext_weight_sparsity;
pub mod fig1;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod table1;
pub mod table2;
pub mod util;
