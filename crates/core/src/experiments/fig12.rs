//! Figure 12: system evaluation.
//!
//! Top panel: speed-up and energy saving of the heterogeneous D/S
//! accelerator over the 2-DPE dense baseline (temporal sparsity only, both
//! at 4-bit). Bottom panel: total speed-up over an FP16 SiLU model —
//! quantization contributes ~3.8×, temporal sparsity ~1.8× on top, ~6.9×
//! combined.

use crate::error::Result;
use crate::experiments::util::layer_quant_for;
use crate::pipeline::{conv_sites, record_traces, workloads_at_step, ExperimentScale, TrainedPair};
use serde::{Deserialize, Serialize};
use sqdm_accel::{Accelerator, AcceleratorConfig, LayerQuant, RunStats};
use sqdm_edm::block_profiles;
use sqdm_quant::PrecisionAssignment;

/// SPE sustained utilization assumed by the load balancer (matches
/// [`sqdm_accel::SparsePe`]'s default).
const SPE_UTILIZATION: f64 = 0.9;
use sqdm_sparsity::ChannelPartition;

/// Per-dataset system results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Row {
    /// Dataset name.
    pub dataset: String,
    /// Speed-up from temporal sparsity alone (ours vs dense baseline,
    /// both 4-bit).
    pub sparsity_speedup: f64,
    /// System energy saving from temporal sparsity alone.
    pub energy_saving: f64,
    /// Speed-up of 4-bit mixed-precision quantization over FP16 (dense).
    pub quant_speedup: f64,
    /// Total speed-up over the FP16 dense baseline.
    pub total_speedup: f64,
}

/// The Figure 12 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12 {
    /// One row per dataset.
    pub rows: Vec<Fig12Row>,
}

/// Runs the system evaluation for one prepared dataset pair.
///
/// # Errors
///
/// Propagates model and pipeline errors.
pub fn run_one(pair: &mut TrainedPair, scale: &ExperimentScale) -> Result<Fig12Row> {
    let traces = record_traces(&mut pair.relu, &pair.denoiser, scale, None)?;
    let sites = conv_sites(&scale.model);
    let steps = scale.sampler.steps;
    let het = Accelerator::new(AcceleratorConfig::paper());
    let base = Accelerator::new(AcceleratorConfig::dense_baseline());

    // The paper's deployment precision: mixed 4/8-bit per block.
    let profiles = block_profiles(&scale.model);
    let mp = PrecisionAssignment::paper_mixed(&profiles, 1, 1, true);
    let quant_of = |block: usize| layer_quant_for(Some(&mp), block);

    let mut base_fp16 = RunStats::default();
    let mut base_int4 = RunStats::default();
    let mut ours = RunStats::default();
    for step in 0..steps {
        let ws = workloads_at_step(&sites, &traces, step)?;
        for (site, w) in sites.iter().zip(ws.iter()) {
            let q = quant_of(site.block);
            base_fp16.push(&base.run_layer(w, None, LayerQuant::fp16()));
            base_int4.push(&base.run_layer(w, None, q));
            let p = ChannelPartition::balanced(&w.act_sparsity, SPE_UTILIZATION);
            ours.push(&het.run_layer(w, Some(&p), q));
        }
    }

    Ok(Fig12Row {
        dataset: pair.dataset.kind.name().to_string(),
        sparsity_speedup: ours.speedup_vs(&base_int4),
        energy_saving: ours.energy_saving_vs(&base_int4),
        quant_speedup: base_int4.speedup_vs(&base_fp16),
        total_speedup: ours.speedup_vs(&base_fp16),
    })
}

/// Runs the evaluation for every prepared pair.
///
/// # Errors
///
/// Propagates per-dataset errors.
pub fn run(pairs: &mut [TrainedPair], scale: &ExperimentScale) -> Result<Fig12> {
    let rows = pairs
        .iter_mut()
        .map(|p| run_one(p, scale))
        .collect::<Result<Vec<_>>>()?;
    Ok(Fig12 { rows })
}

impl Fig12 {
    /// Mean sparsity speed-up across datasets.
    pub fn mean_sparsity_speedup(&self) -> f64 {
        self.rows.iter().map(|r| r.sparsity_speedup).sum::<f64>() / self.rows.len().max(1) as f64
    }

    /// Mean energy saving across datasets.
    pub fn mean_energy_saving(&self) -> f64 {
        self.rows.iter().map(|r| r.energy_saving).sum::<f64>() / self.rows.len().max(1) as f64
    }

    /// Mean total speed-up across datasets.
    pub fn mean_total_speedup(&self) -> f64 {
        self.rows.iter().map(|r| r.total_speedup).sum::<f64>() / self.rows.len().max(1) as f64
    }

    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 12 (top): speed-up & energy saving vs dense baseline\n");
        s.push_str(&format!(
            "{:<16}{:>12}{:>14}\n",
            "Dataset", "Speed-up", "Energy sav."
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<16}{:>11.2}x{:>13.1}%\n",
                r.dataset,
                r.sparsity_speedup,
                r.energy_saving * 100.0
            ));
        }
        s.push_str(&format!(
            "Average: {:.2}x speed-up, {:.1}% energy saving\n",
            self.mean_sparsity_speedup(),
            self.mean_energy_saving() * 100.0
        ));
        s.push_str("\nFigure 12 (bottom): total speed-up vs FP16 SiLU baseline\n");
        s.push_str(&format!(
            "{:<16}{:>12}{:>12}{:>12}\n",
            "Dataset", "Quant", "+Sparsity", "Total"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<16}{:>11.2}x{:>11.2}x{:>11.2}x\n",
                r.dataset, r.quant_speedup, r.sparsity_speedup, r.total_speedup
            ));
        }
        s.push_str(&format!(
            "Average total speed-up: {:.2}x\n",
            self.mean_total_speedup()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::testutil::shared_pair;

    #[test]
    fn speedups_compose_and_match_paper_bands() {
        let scale = ExperimentScale::quick();
        let mut pair = shared_pair();
        let row = run_one(&mut pair, &scale).unwrap();

        // Quantization alone: close to the paper's 3.78× (mixed precision
        // keeps a couple of blocks 8-bit, so below the ideal 4×).
        assert!(
            row.quant_speedup > 2.2 && row.quant_speedup <= 4.05,
            "quant {}",
            row.quant_speedup
        );
        // Temporal sparsity adds a further factor > 1.
        assert!(
            row.sparsity_speedup > 1.0,
            "sparsity {}",
            row.sparsity_speedup
        );
        // Total is the product (same baselines cancel).
        assert!(
            (row.total_speedup - row.quant_speedup * row.sparsity_speedup).abs()
                < 0.05 * row.total_speedup,
            "{row:?}"
        );
        // Energy saving from sparsity is positive.
        assert!(row.energy_saving > 0.0, "energy {}", row.energy_saving);
    }
}
