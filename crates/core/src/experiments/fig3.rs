//! Figure 3: block-wise quantization sensitivity.
//!
//! One block at a time is dropped to the 4-bit format while every other
//! block stays MXINT8; the sFID degradation of each variant localizes the
//! quantization-sensitive blocks (the paper finds: first and last).

use crate::error::Result;
use crate::pipeline::{eval_sfid, ExperimentScale, TrainedPair};
use serde::{Deserialize, Serialize};
use sqdm_quant::{BlockPrecision, PrecisionAssignment, QuantFormat};
use sqdm_tensor::parallel;

/// Sensitivity of one block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockSensitivity {
    /// Block index.
    pub block: usize,
    /// sFID with only this block at 4-bit.
    pub sfid: f64,
}

/// The Figure 3 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3 {
    /// All-MXINT8 reference score.
    pub reference_sfid: f64,
    /// Per-block scores.
    pub blocks: Vec<BlockSensitivity>,
}

/// Builds the assignment with `block` at 4-bit and the rest MXINT8.
pub fn single_block_4bit(n_blocks: usize, block: usize) -> PrecisionAssignment {
    let mut a = PrecisionAssignment::uniform(
        n_blocks,
        BlockPrecision::uniform(QuantFormat::mxint8()),
        format!("fig3-block{block}"),
    );
    // PrecisionAssignment is immutable per block; rebuild via profiles-free
    // construction: uniform then overwrite through a fresh vector.
    let mut blocks: Vec<BlockPrecision> = a.iter().copied().collect();
    blocks[block] = BlockPrecision::uniform(QuantFormat::ours_int4());
    a = PrecisionAssignment::from_blocks(blocks, format!("fig3-block{block}"));
    a
}

/// Runs the sensitivity sweep on one dataset pair (SiLU model, as in the
/// paper's EDM study).
///
/// The per-block sweep points are independent (each evaluation seeds its
/// own RNG), so they run in parallel over the `sqdm_tensor::parallel`
/// worker pool, each against its own clone of the SiLU model.
///
/// # Errors
///
/// Propagates sampling/metric errors.
pub fn run(pair: &mut TrainedPair, scale: &ExperimentScale) -> Result<Fig3> {
    let n = scale.block_count();
    let reference = eval_sfid(
        &mut pair.silu,
        &pair.denoiser,
        &pair.dataset,
        Some(&PrecisionAssignment::uniform(
            n,
            BlockPrecision::uniform(QuantFormat::mxint8()),
            "MXINT8",
        )),
        scale,
    )?;
    let silu = &pair.silu;
    let blocks = parallel::par_map_indexed(n, 1 << 20, |b| {
        let mut net = silu.clone();
        let a = single_block_4bit(n, b);
        eval_sfid(&mut net, &pair.denoiser, &pair.dataset, Some(&a), scale)
            .map(|sfid| BlockSensitivity { block: b, sfid })
    })
    .into_iter()
    .collect::<Result<Vec<_>>>()?;
    Ok(Fig3 {
        reference_sfid: reference,
        blocks,
    })
}

impl Fig3 {
    /// Degradation of block `b` relative to the all-8-bit reference.
    pub fn degradation(&self, b: usize) -> f64 {
        self.blocks[b].sfid - self.reference_sfid
    }

    /// Indices of the `k` most sensitive blocks.
    pub fn most_sensitive(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.blocks.len()).collect();
        idx.sort_by(|&a, &b| self.blocks[b].sfid.total_cmp(&self.blocks[a].sfid));
        idx.truncate(k);
        idx
    }

    /// Renders an ASCII bar chart.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Figure 3: block-wise sensitivity (reference MXINT8 sFID = {:.2})\n",
            self.reference_sfid
        );
        let max = self
            .blocks
            .iter()
            .map(|b| b.sfid)
            .fold(f64::MIN_POSITIVE, f64::max);
        for b in &self.blocks {
            let bar = "#".repeat(((b.sfid / max) * 40.0).round() as usize);
            s.push_str(&format!("block {:>2} {:>8.2} |{}\n", b.block, b.sfid, bar));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::testutil::shared_pair;

    #[test]
    fn sweep_covers_all_blocks() {
        let scale = ExperimentScale::quick();
        let mut pair = shared_pair();
        let f = run(&mut pair, &scale).unwrap();
        assert_eq!(f.blocks.len(), scale.block_count());
        assert!(f.reference_sfid.is_finite());
        for b in &f.blocks {
            assert!(b.sfid.is_finite());
        }
        assert!(f.render().contains("block"));
        assert_eq!(f.most_sensitive(3).len(), 3);
    }
}
