//! # sqdm-core
//!
//! The end-to-end SQ-DM pipeline: trains EDM models on the synthetic
//! datasets, applies the paper's quantization and SiLU→ReLU procedures,
//! records temporal sparsity traces, lowers the U-Net onto the
//! accelerator simulator, and packages every table and figure of the
//! paper as a runnable experiment (see [`experiments`]).
//!
//! # Examples
//!
//! Reproduce the Figure 6 level-utilization comparison (cheap, no
//! training):
//!
//! ```
//! let fig6 = sqdm_core::experiments::fig6::run();
//! assert_eq!(fig6.relu_uint4.used_levels, 16);
//! println!("{}", fig6.render());
//! ```

#![warn(missing_docs)]

mod error;
pub mod experiments;
mod pipeline;

pub use error::{CoreError, Result};
pub use pipeline::{
    conv_sites, eval_sfid, prepare, record_traces, sample_divergence, workloads_at_step, ConvSite,
    ExperimentScale, LayerKey, TrainedPair,
};
