//! The end-to-end SQ-DM pipeline: train models, evaluate quantized
//! generation quality, record temporal sparsity traces, and lower the
//! U-Net into accelerator workloads.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use sqdm_accel::ConvWorkload;
use sqdm_edm::{
    block_ids, Dataset, DatasetKind, Denoiser, EdmSchedule, FeatureExtractor, RunConfig,
    SamplerConfig, TrainConfig, UNet, UNetConfig,
};
use sqdm_quant::PrecisionAssignment;
use sqdm_sparsity::TemporalTrace;
use sqdm_tensor::{Rng, Tensor};
use std::collections::BTreeMap;

/// Experiment scale: model size, training budget, sampling and evaluation
/// effort. `quick()` keeps unit tests fast; `paper()` is what the report
/// binaries run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// U-Net configuration.
    pub model: UNetConfig,
    /// Pre-training budget.
    pub train: TrainConfig,
    /// SiLU→ReLU finetuning budget.
    pub finetune: TrainConfig,
    /// Sampler settings for evaluation.
    pub sampler: SamplerConfig,
    /// Samples per sFID evaluation.
    pub eval_samples: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// Small scale for unit tests: a 16×16 single-channel model large
    /// enough that accelerator overheads do not dominate layer cycles,
    /// with a short training budget.
    pub fn quick() -> Self {
        ExperimentScale {
            model: UNetConfig {
                in_channels: 1,
                base_channels: 12,
                emb_dim: 16,
                image_size: 16,
                groups: 4,
            },
            train: TrainConfig {
                steps: 40,
                batch: 4,
                lr: 3e-3,
            },
            finetune: TrainConfig {
                steps: 20,
                batch: 4,
                lr: 2e-3,
            },
            sampler: SamplerConfig { steps: 6 },
            eval_samples: 64,
            seed: 17,
        }
    }

    /// The scale used by the `repro_*` report binaries.
    pub fn paper() -> Self {
        ExperimentScale {
            model: UNetConfig::default(),
            train: TrainConfig {
                steps: 300,
                batch: 8,
                lr: 2e-3,
            },
            finetune: TrainConfig {
                steps: 100,
                batch: 8,
                lr: 1e-3,
            },
            sampler: SamplerConfig { steps: 10 },
            eval_samples: 128,
            seed: 1_000_003,
        }
    }

    /// Total precision-assignment slots the model needs.
    pub fn block_count(&self) -> usize {
        block_ids::COUNT
    }
}

/// A dataset's trained models: the original SiLU network and its
/// ReLU-finetuned counterpart (§III-B).
#[derive(Debug, Clone)]
pub struct TrainedPair {
    /// The SiLU-based pre-trained model.
    pub silu: UNet,
    /// The ReLU-converted and finetuned model.
    pub relu: UNet,
    /// The dataset both were trained on.
    pub dataset: Dataset,
    /// The shared denoiser (schedule).
    pub denoiser: Denoiser,
    /// The scale the pair was trained at.
    pub scale: ExperimentScale,
}

/// Trains the SiLU model and derives the ReLU model for a dataset.
///
/// # Errors
///
/// Propagates model construction and training errors.
pub fn prepare(kind: DatasetKind, scale: ExperimentScale) -> Result<TrainedPair> {
    let mut rng = Rng::seed_from(scale.seed ^ (kind as u64).wrapping_mul(0x9E37));
    let dataset = Dataset::new(kind, scale.model.in_channels, scale.model.image_size);
    let denoiser = Denoiser::new(EdmSchedule::default());
    let mut silu = UNet::new(scale.model, &mut rng)?;
    sqdm_edm::train(&mut silu, &denoiser, &dataset, scale.train, &mut rng)?;
    let mut relu = silu.clone();
    sqdm_edm::finetune_relu(&mut relu, &denoiser, &dataset, scale.finetune, &mut rng)?;
    Ok(TrainedPair {
        silu,
        relu,
        dataset,
        denoiser,
        scale,
    })
}

/// Generates samples under an optional precision assignment and scores
/// them against real dataset draws with the standard feature extractor.
///
/// # Errors
///
/// Propagates sampling and metric errors.
pub fn eval_sfid(
    net: &mut UNet,
    denoiser: &Denoiser,
    dataset: &Dataset,
    assignment: Option<&PrecisionAssignment>,
    scale: &ExperimentScale,
) -> Result<f64> {
    let mut rng = Rng::seed_from(scale.seed ^ 0xEBA1);
    let generated = sqdm_edm::sample(
        net,
        denoiser,
        scale.eval_samples,
        scale.sampler,
        assignment,
        &mut rng,
    )?;
    let real = dataset.batch(scale.eval_samples, &mut rng);
    let extractor = FeatureExtractor::standard(dataset.channels);
    Ok(sqdm_edm::sfid(&extractor, &real, &generated)?)
}

/// Mean-squared divergence between samples generated under `assignment`
/// and full-precision samples from the *same* noise seeds.
///
/// A deterministic, high-sensitivity companion to [`eval_sfid`]: sFID needs
/// many samples to separate formats near the metric's noise floor, while
/// trajectory divergence exposes quantization error directly and preserves
/// the Table I ordering at any scale.
///
/// # Errors
///
/// Propagates sampling errors.
pub fn sample_divergence(
    net: &mut UNet,
    denoiser: &Denoiser,
    assignment: Option<&PrecisionAssignment>,
    scale: &ExperimentScale,
) -> Result<f64> {
    let batch = 8usize.min(scale.eval_samples.max(1));
    let mut r1 = Rng::seed_from(scale.seed ^ 0xD1FF);
    let reference = sqdm_edm::sample(net, denoiser, batch, scale.sampler, None, &mut r1)?;
    let mut r2 = Rng::seed_from(scale.seed ^ 0xD1FF);
    let quantized = sqdm_edm::sample(net, denoiser, batch, scale.sampler, assignment, &mut r2)?;
    Ok(reference
        .mse(&quantized)
        .map_err(sqdm_edm::EdmError::from)? as f64)
}

/// Identifier of one activation site: `(block index, stage)`.
pub type LayerKey = (usize, usize);

/// Temporal sparsity traces for every observed activation site, recorded
/// over a full sampling trajectory (one column per time step, first model
/// evaluation of each Heun step).
///
/// # Errors
///
/// Propagates model errors.
pub fn record_traces(
    net: &mut UNet,
    denoiser: &Denoiser,
    scale: &ExperimentScale,
    assignment: Option<&PrecisionAssignment>,
) -> Result<BTreeMap<LayerKey, TemporalTrace>> {
    let mut rng = Rng::seed_from(scale.seed ^ 0x7ACE);
    let cfg = *net.config();
    let batch = 4usize.min(scale.eval_samples.max(1));
    let grid = denoiser.schedule.sigma_steps(scale.sampler.steps);
    let mut x = Tensor::randn(
        [batch, cfg.in_channels, cfg.image_size, cfg.image_size],
        &mut rng,
    )
    .scale(grid[0]);

    let mut traces: BTreeMap<LayerKey, TemporalTrace> = BTreeMap::new();

    for i in 0..scale.sampler.steps {
        let (sig, sig_next) = (grid[i], grid[i + 1]);
        let sigmas = vec![sig; batch];
        // First (observed) model evaluation of the step.
        let mut step_sparsity: BTreeMap<LayerKey, Vec<f64>> = BTreeMap::new();
        let d0 = {
            let mut obs = |ev: sqdm_edm::ActEvent<'_>| {
                step_sparsity.insert(
                    (ev.block_index, ev.stage),
                    sqdm_sparsity::channel_sparsity(ev.tensor),
                );
            };
            let mut rc = RunConfig {
                train: false,
                assignment,
                observer: Some(&mut obs),
                batched: false,
                packs: None,
                delta: None,
            };
            denoiser.denoise(net, &x, &sigmas, &mut rc)?
        };
        for (key, sp) in step_sparsity {
            traces
                .entry(key)
                .or_insert_with(|| TemporalTrace::new(sp.len()))
                .push_step(sp);
        }

        // Advance x exactly as the Heun sampler does.
        let slope = x.sub(&d0)?.scale(1.0 / sig);
        let mut x_next = x.clone();
        x_next.add_scaled(&slope, sig_next - sig)?;
        if sig_next > 0.0 {
            let sigmas_next = vec![sig_next; batch];
            let d1 = denoiser.denoise(net, &x_next, &sigmas_next, &mut RunConfig::infer())?;
            let slope2 = x_next.sub(&d1)?.scale(1.0 / sig_next);
            let mut avg = slope.clone();
            avg.add_scaled(&slope2, 1.0)?;
            x_next = x.clone();
            x_next.add_scaled(&avg, 0.5 * (sig_next - sig))?;
        }
        x = x_next;
    }
    Ok(traces)
}

/// Description of one convolution the accelerator executes, tied to the
/// activation site that feeds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvSite {
    /// Block index (see [`block_ids`]).
    pub block: usize,
    /// Stage within the block whose post-activation tensor feeds this conv.
    pub stage: usize,
    /// Output channels.
    pub k: usize,
    /// Input channels.
    pub c: usize,
    /// Kernel extent.
    pub kernel: usize,
    /// Output spatial extent.
    pub spatial: usize,
}

/// Enumerates the convolution sites of the U-Net that consume observed
/// (post-activation) tensors, in execution order.
pub fn conv_sites(cfg: &UNetConfig) -> Vec<ConvSite> {
    let c = cfg.base_channels;
    let c2 = 2 * c;
    let s = cfg.image_size;
    let s2 = s / 2;
    let mut v = Vec::new();
    let mut push_block = |idx: usize, cin: usize, cout: usize, sp: usize| {
        v.push(ConvSite {
            block: idx,
            stage: 0,
            k: cout,
            c: cin,
            kernel: 3,
            spatial: sp,
        });
        v.push(ConvSite {
            block: idx,
            stage: 1,
            k: cout,
            c: cout,
            kernel: 3,
            spatial: sp,
        });
    };
    push_block(block_ids::ENC_HI[0], c, c, s);
    push_block(block_ids::ENC_HI[1], c, c, s);
    push_block(block_ids::ENC_LO[0], c, c2, s2);
    push_block(block_ids::ENC_LO[1], c2, c2, s2);
    push_block(block_ids::MID_CONV, c2, c2, s2);
    push_block(block_ids::DEC_LO, c2, c2, s2);
    push_block(block_ids::DEC_HI[0], c, c, s);
    push_block(block_ids::DEC_HI[1], c, c, s);
    // Output conv consumes the (block 11, stage 0) activation.
    v.push(ConvSite {
        block: block_ids::OUT_CONV,
        stage: 0,
        k: cfg.in_channels,
        c,
        kernel: 3,
        spatial: s,
    });
    v
}

/// Builds the accelerator workload of one time step: one [`ConvWorkload`]
/// per conv site with the per-channel sparsities recorded at `step`.
///
/// Sites without a trace (possible if the model config changed) fall back
/// to dense.
///
/// # Errors
///
/// Returns [`CoreError::Inconsistent`] if a trace exists but its channel
/// count does not match the site.
pub fn workloads_at_step(
    sites: &[ConvSite],
    traces: &BTreeMap<LayerKey, TemporalTrace>,
    step: usize,
) -> Result<Vec<ConvWorkload>> {
    sites
        .iter()
        .map(|site| {
            let sparsity = match traces.get(&(site.block, site.stage)) {
                Some(tr) if step < tr.steps() => {
                    // stage-0 traces can have fewer channels than the conv
                    // consumes only on mismatch; validate.
                    if tr.channels() != site.c {
                        return Err(CoreError::Inconsistent {
                            reason: format!(
                                "trace ({},{}) has {} channels, conv expects {}",
                                site.block,
                                site.stage,
                                tr.channels(),
                                site.c
                            ),
                        });
                    }
                    tr.step(step).to_vec()
                }
                _ => vec![0.0; site.c],
            };
            Ok(ConvWorkload::with_sparsity(
                site.k,
                site.c,
                site.kernel,
                site.kernel,
                site.spatial,
                site.spatial,
                sparsity,
            ))
        })
        .collect()
}

/// Test-only support: one shared trained pair per process, so every
/// experiment test does not pay its own training run.
#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use std::sync::OnceLock;

    static PAIR: OnceLock<TrainedPair> = OnceLock::new();

    /// A clone of the process-wide quick-scale trained pair.
    pub(crate) fn shared_pair() -> TrainedPair {
        PAIR.get_or_init(|| {
            prepare(DatasetKind::CifarLike, ExperimentScale::quick())
                .expect("quick-scale training must succeed")
        })
        .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::shared_pair;
    use super::*;
    use sqdm_tensor::ops::Activation;

    #[test]
    fn prepare_trains_both_models() {
        let pair = shared_pair();
        assert_eq!(pair.silu.activation(), Activation::Silu);
        assert_eq!(pair.relu.activation(), Activation::Relu);
    }

    #[test]
    fn relu_model_has_higher_activation_sparsity() {
        // The paper's §III-C: ~10% for SiLU vs ~65% for ReLU. At micro
        // scale the gap is smaller but must be decisive.
        let mut pair = shared_pair();
        let scale = pair.scale;
        let t_silu = record_traces(&mut pair.silu, &pair.denoiser, &scale, None).unwrap();
        let t_relu = record_traces(&mut pair.relu, &pair.denoiser, &scale, None).unwrap();
        let avg = |ts: &BTreeMap<LayerKey, TemporalTrace>| {
            let v: Vec<f64> = ts.values().map(|t| t.mean_sparsity()).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let s_silu = avg(&t_silu);
        let s_relu = avg(&t_relu);
        assert!(
            s_relu > s_silu + 0.2,
            "relu {s_relu} should far exceed silu {s_silu}"
        );
        assert!(s_relu > 0.3, "relu sparsity {s_relu}");
    }

    #[test]
    fn traces_cover_all_steps() {
        let mut pair = shared_pair();
        let scale = pair.scale;
        let traces = record_traces(&mut pair.relu, &pair.denoiser, &scale, None).unwrap();
        assert!(!traces.is_empty());
        for tr in traces.values() {
            assert_eq!(tr.steps(), scale.sampler.steps);
        }
    }

    #[test]
    fn conv_sites_match_traces() {
        let mut pair = shared_pair();
        let scale = pair.scale;
        let traces = record_traces(&mut pair.relu, &pair.denoiser, &scale, None).unwrap();
        let sites = conv_sites(&scale.model);
        let ws = workloads_at_step(&sites, &traces, 0).unwrap();
        assert_eq!(ws.len(), sites.len());
        // ReLU model: a majority of conv inputs show nonzero sparsity.
        let sparse_sites = ws.iter().filter(|w| w.mean_sparsity() > 0.05).count();
        assert!(
            sparse_sites * 2 > ws.len(),
            "{sparse_sites}/{} sites sparse",
            ws.len()
        );
    }

    #[test]
    fn sfid_prefers_trained_over_untrained() {
        let mut pair = shared_pair();
        let scale = pair.scale;
        let trained =
            eval_sfid(&mut pair.silu, &pair.denoiser, &pair.dataset, None, &scale).unwrap();
        let mut rng = Rng::seed_from(99);
        let mut fresh = UNet::new(scale.model, &mut rng).unwrap();
        let untrained = eval_sfid(&mut fresh, &pair.denoiser, &pair.dataset, None, &scale).unwrap();
        assert!(
            trained < untrained,
            "trained {trained} vs untrained {untrained}"
        );
    }
}
