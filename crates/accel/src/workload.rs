//! Accelerator workloads: convolution layers lowered to channel-group GEMMs
//! (the computation scheme of paper Figure 8).

use serde::{Deserialize, Serialize};

/// One convolution layer as the accelerator sees it.
///
/// The GEMM lowering is `M = K` (output channels), reduction dimension
/// `C·R·S`, `N = OH·OW` output pixels; splitting input channels into dense
/// and sparse groups splits the reduction dimension, and the two partial
/// sums add back together (Figure 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvWorkload {
    /// Output channels.
    pub k: usize,
    /// Input channels.
    pub c: usize,
    /// Kernel height.
    pub r: usize,
    /// Kernel width.
    pub s: usize,
    /// Output height.
    pub oh: usize,
    /// Output width.
    pub ow: usize,
    /// Per-input-channel activation zero fraction (length `c`).
    pub act_sparsity: Vec<f64>,
    /// Fraction of weights that are nonzero (1.0 = dense; 0.5 under 2:4
    /// structured weight sparsity, which the engines exploit directly).
    pub weight_density: f64,
}

impl ConvWorkload {
    /// Creates a workload with uniform activation sparsity on every
    /// channel.
    pub fn uniform(
        k: usize,
        c: usize,
        r: usize,
        s: usize,
        oh: usize,
        ow: usize,
        sparsity: f64,
    ) -> Self {
        ConvWorkload {
            k,
            c,
            r,
            s,
            oh,
            ow,
            act_sparsity: vec![sparsity.clamp(0.0, 1.0); c],
            weight_density: 1.0,
        }
    }

    /// Creates a workload with explicit per-channel sparsities.
    ///
    /// # Panics
    ///
    /// Panics if `act_sparsity.len() != c`.
    pub fn with_sparsity(
        k: usize,
        c: usize,
        r: usize,
        s: usize,
        oh: usize,
        ow: usize,
        act_sparsity: Vec<f64>,
    ) -> Self {
        assert_eq!(act_sparsity.len(), c, "need one sparsity per input channel");
        ConvWorkload {
            k,
            c,
            r,
            s,
            oh,
            ow,
            act_sparsity,
            weight_density: 1.0,
        }
    }

    /// Returns the workload with structured weight sparsity applied
    /// (e.g. 0.5 for the 2:4 pattern of §II-B). MAC counts, weight
    /// traffic and storage all scale by the density.
    pub fn with_weight_density(mut self, density: f64) -> Self {
        self.weight_density = density.clamp(0.0, 1.0);
        self
    }

    /// MACs contributed by one input channel (dense activations; weight
    /// sparsity already factored in).
    pub fn macs_per_channel(&self) -> u64 {
        ((self.k * self.r * self.s * self.oh * self.ow) as f64 * self.weight_density).round() as u64
    }

    /// Total dense MACs of the layer.
    pub fn total_macs(&self) -> u64 {
        self.macs_per_channel() * self.c as u64
    }

    /// Dense MACs of a channel subset.
    pub fn macs_for(&self, channels: &[usize]) -> u64 {
        self.macs_per_channel() * channels.len() as u64
    }

    /// Nonzero MACs of a channel subset (zeros skipped).
    pub fn nnz_macs_for(&self, channels: &[usize]) -> u64 {
        let per = self.macs_per_channel() as f64;
        channels
            .iter()
            .map(|&ch| (per * (1.0 - self.act_sparsity[ch])).round() as u64)
            .sum()
    }

    /// Stored weight elements of the layer (nonzeros only under weight
    /// sparsity; the 2:4 metadata overhead is charged by the caller's
    /// format accounting).
    pub fn weight_elems(&self) -> u64 {
        ((self.k * self.c * self.r * self.s) as f64 * self.weight_density).round() as u64
    }

    /// Input activation elements (one spatial plane per input channel;
    /// padding ignored, `H ≈ OH` for the stride-1 same-padded convs of the
    /// U-Net).
    pub fn input_elems(&self) -> u64 {
        (self.c * self.oh * self.ow) as u64
    }

    /// Input activation elements of a channel subset.
    pub fn input_elems_for(&self, channels: &[usize]) -> u64 {
        (channels.len() * self.oh * self.ow) as u64
    }

    /// Nonzero input elements of a channel subset.
    pub fn nnz_input_elems_for(&self, channels: &[usize]) -> u64 {
        let per = (self.oh * self.ow) as f64;
        channels
            .iter()
            .map(|&ch| (per * (1.0 - self.act_sparsity[ch])).round() as u64)
            .sum()
    }

    /// Output elements.
    pub fn output_elems(&self) -> u64 {
        (self.k * self.oh * self.ow) as u64
    }

    /// Mean activation sparsity across channels.
    pub fn mean_sparsity(&self) -> f64 {
        if self.c == 0 {
            return 0.0;
        }
        self.act_sparsity.iter().sum::<f64>() / self.c as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_accounting() {
        let w = ConvWorkload::uniform(16, 8, 3, 3, 8, 8, 0.5);
        assert_eq!(w.macs_per_channel(), 16 * 9 * 64);
        assert_eq!(w.total_macs(), 16 * 8 * 9 * 64);
        assert_eq!(w.macs_for(&[0, 1, 2]), 3 * w.macs_per_channel());
        // 50% sparsity halves nonzero MACs.
        assert_eq!(w.nnz_macs_for(&[0, 1]), w.macs_for(&[0, 1]) / 2);
    }

    #[test]
    fn split_conservation() {
        // Figure 8's invariant: dense-group + sparse-group = whole layer.
        let w = ConvWorkload::uniform(4, 6, 3, 3, 4, 4, 0.0);
        let dense: Vec<usize> = vec![0, 2, 4];
        let sparse: Vec<usize> = vec![1, 3, 5];
        assert_eq!(w.macs_for(&dense) + w.macs_for(&sparse), w.total_macs());
    }

    #[test]
    fn per_channel_sparsity() {
        let w = ConvWorkload::with_sparsity(2, 3, 1, 1, 2, 2, vec![0.0, 0.5, 1.0]);
        assert_eq!(w.nnz_macs_for(&[0]), w.macs_per_channel());
        assert_eq!(w.nnz_macs_for(&[1]), w.macs_per_channel() / 2);
        assert_eq!(w.nnz_macs_for(&[2]), 0);
        assert!((w.mean_sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn element_counts() {
        let w = ConvWorkload::uniform(16, 8, 3, 3, 8, 8, 0.25);
        assert_eq!(w.weight_elems(), 16 * 8 * 9);
        assert_eq!(w.input_elems(), 8 * 64);
        assert_eq!(w.output_elems(), 16 * 64);
        assert_eq!(w.nnz_input_elems_for(&[0]), 48);
    }

    #[test]
    #[should_panic(expected = "one sparsity per input channel")]
    fn sparsity_length_checked() {
        ConvWorkload::with_sparsity(1, 3, 1, 1, 1, 1, vec![0.5]);
    }

    #[test]
    fn weight_density_halves_macs_and_storage() {
        let dense = ConvWorkload::uniform(8, 8, 3, 3, 8, 8, 0.5);
        let pruned = dense.clone().with_weight_density(0.5);
        assert_eq!(pruned.total_macs(), dense.total_macs() / 2);
        assert_eq!(pruned.weight_elems(), dense.weight_elems() / 2);
        // Activation-sparsity skipping composes multiplicatively.
        assert_eq!(
            pruned.nnz_macs_for(&[0, 1]),
            dense.nnz_macs_for(&[0, 1]) / 2
        );
        let clamped = dense.clone().with_weight_density(1.7);
        assert_eq!(clamped.weight_density, 1.0);
    }
}
