//! The full accelerator system model (paper Figure 9): controller,
//! heterogeneous D/S PE array, global buffer, NoC, and the PPU's sparsity
//! detector, composed into per-layer and per-model cycle/energy estimates.

use crate::detector::SparsityDetector;
use crate::energy::{EnergyModel, MacPrecision};
use crate::noc::Noc;
use crate::pe::{DensePe, SparsePe};
use crate::workload::ConvWorkload;
use serde::{Deserialize, Serialize};
use sqdm_sparsity::ChannelPartition;

/// Numeric configuration of one layer's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerQuant {
    /// MAC datapath precision (set by the wider operand).
    pub mac: MacPrecision,
    /// Weight storage bits.
    pub weight_bits: u32,
    /// Activation storage bits.
    pub act_bits: u32,
}

impl LayerQuant {
    /// FP16 weights and activations.
    pub fn fp16() -> Self {
        LayerQuant {
            mac: MacPrecision::Fp16,
            weight_bits: 16,
            act_bits: 16,
        }
    }

    /// 8-bit weights and activations (MXINT8-class).
    pub fn int8() -> Self {
        LayerQuant {
            mac: MacPrecision::Int8,
            weight_bits: 8,
            act_bits: 8,
        }
    }

    /// 4-bit weights and activations (the paper's format).
    pub fn int4() -> Self {
        LayerQuant {
            mac: MacPrecision::Int4,
            weight_bits: 4,
            act_bits: 4,
        }
    }

    /// Derives the datapath precision from mixed weight/activation widths.
    pub fn from_bits(weight_bits: u32, act_bits: u32) -> Self {
        let mac = match weight_bits.max(act_bits) {
            0..=4 => MacPrecision::Int4,
            5..=8 => MacPrecision::Int8,
            _ => MacPrecision::Fp16,
        };
        LayerQuant {
            mac,
            weight_bits,
            act_bits,
        }
    }
}

/// System configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of dense PEs.
    pub dpes: usize,
    /// Number of sparse PEs.
    pub spes: usize,
    /// Multipliers per PE (128 in the paper).
    pub pe_multipliers: usize,
    /// Global-buffer bandwidth in bits per cycle.
    pub buffer_bw_bits: u64,
    /// NoC link width in bits.
    pub noc_link_bits: u64,
    /// Sparsity detector in the PPU.
    pub detector: SparsityDetector,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Charge DRAM energy for weights and activations each layer. The
    /// default (false) models the paper's setting where the model is
    /// resident in the global buffer across time steps.
    pub include_dram: bool,
}

impl AcceleratorConfig {
    /// The paper's configuration: one DPE + one SPE, 128 multipliers each.
    pub fn paper() -> Self {
        AcceleratorConfig {
            dpes: 1,
            spes: 1,
            pe_multipliers: 128,
            buffer_bw_bits: 2048,
            noc_link_bits: 512,
            detector: SparsityDetector::paper(),
            energy: EnergyModel::default(),
            include_dram: false,
        }
    }

    /// The comparison baseline: a purely dense architecture with two DPEs
    /// (iso-multiplier with [`paper`](Self::paper)).
    pub fn dense_baseline() -> Self {
        AcceleratorConfig {
            spes: 0,
            dpes: 2,
            ..Self::paper()
        }
    }

    /// A scaled-up instance with `pairs` D/S PE pairs and proportional
    /// buffer bandwidth — the paper's "architecture is scalable to meet
    /// specific latency and power requirements" (§IV-D).
    pub fn scaled(pairs: usize) -> Self {
        let pairs = pairs.max(1);
        AcceleratorConfig {
            dpes: pairs,
            spes: pairs,
            buffer_bw_bits: 2048 * pairs as u64,
            ..Self::paper()
        }
    }

    /// Total PE count.
    pub fn total_pes(&self) -> usize {
        self.dpes + self.spes
    }
}

/// Energy breakdown of a run, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC datapath energy.
    pub compute_pj: f64,
    /// Global-buffer access energy.
    pub sram_pj: f64,
    /// DRAM energy (zero unless `include_dram`).
    pub dram_pj: f64,
    /// NoC transfer energy.
    pub noc_pj: f64,
    /// Leakage over the run's cycles.
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.sram_pj + self.dram_pj + self.noc_pj + self.leakage_pj
    }

    fn add(&mut self, other: &EnergyBreakdown) {
        self.compute_pj += other.compute_pj;
        self.sram_pj += other.sram_pj;
        self.dram_pj += other.dram_pj;
        self.noc_pj += other.noc_pj;
        self.leakage_pj += other.leakage_pj;
    }
}

/// Cycle and energy statistics of one layer execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// End-to-end cycles (compute/fetch overlapped, detector hidden).
    pub cycles: u64,
    /// Dense-engine compute cycles.
    pub dense_cycles: u64,
    /// Sparse-engine compute cycles.
    pub sparse_cycles: u64,
    /// Buffer fetch/drain cycles.
    pub fetch_cycles: u64,
    /// Detector counting cycles (overlapped with the output drain).
    pub detector_cycles: u64,
    /// MACs actually executed (zeros skipped on the SPE).
    pub macs_executed: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

/// Aggregate statistics over layers and time steps.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total cycles.
    pub cycles: u64,
    /// Total MACs executed.
    pub macs_executed: u64,
    /// Aggregate energy.
    pub energy: EnergyBreakdown,
    /// Number of layer executions accumulated.
    pub layers: usize,
}

impl RunStats {
    /// Accumulates one layer.
    pub fn push(&mut self, s: &LayerStats) {
        self.cycles += s.cycles;
        self.macs_executed += s.macs_executed;
        self.energy.add(&s.energy);
        self.layers += 1;
    }

    /// Speed-up of this run relative to a baseline (`baseline / self`).
    ///
    /// Returns [`f64::NAN`] when either run is empty (zero cycles): an
    /// empty run has no speed to compare, and clamping only one side — as
    /// an earlier version did — silently reported `0×` for an empty
    /// baseline while inventing a huge finite ratio for an empty `self`.
    pub fn speedup_vs(&self, baseline: &RunStats) -> f64 {
        if self.cycles == 0 || baseline.cycles == 0 {
            return f64::NAN;
        }
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Fractional energy saving relative to a baseline.
    ///
    /// Returns [`f64::NAN`] when either run carries no energy: clamping
    /// only the baseline — as an earlier version did — reported a perfect
    /// `100%` saving for any empty run.
    pub fn energy_saving_vs(&self, baseline: &RunStats) -> f64 {
        let (own, base) = (self.energy.total_pj(), baseline.energy.total_pj());
        if own <= 0.0 || base <= 0.0 {
            return f64::NAN;
        }
        1.0 - own / base
    }
}

/// The accelerator system simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    /// System configuration.
    pub config: AcceleratorConfig,
}

impl Accelerator {
    /// Creates a simulator from a configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        Accelerator { config }
    }

    /// Executes one convolution layer.
    ///
    /// With SPEs present and a `partition` supplied, dense channels run on
    /// the DPEs and sparse channels on the SPEs in parallel (Figure 8);
    /// otherwise every channel runs dense. Fetch and compute overlap
    /// (double-buffered tiles), so layer latency is their maximum. The
    /// detector scans outputs during the drain and only surfaces cycles if
    /// it is slower than the drain itself.
    pub fn run_layer(
        &self,
        w: &ConvWorkload,
        partition: Option<&ChannelPartition>,
        q: LayerQuant,
    ) -> LayerStats {
        let cfg = &self.config;
        let dpe = DensePe::new(cfg.pe_multipliers);
        let spe = SparsePe::new(cfg.pe_multipliers);
        let all: Vec<usize> = (0..w.c).collect();

        let (dense_ch, sparse_ch): (Vec<usize>, Vec<usize>) = match partition {
            Some(p) if cfg.spes > 0 => {
                debug_assert_eq!(p.channels(), w.c, "partition/channel mismatch");
                (p.dense_indices(), p.sparse_indices())
            }
            _ => (all.clone(), Vec::new()),
        };

        // Compute: work split evenly across engines of each kind.
        let dense_macs = w.macs_for(&dense_ch);
        let sparse_nnz = w.nnz_macs_for(&sparse_ch);
        let dense_cycles = if cfg.dpes > 0 {
            dpe.compute_cycles(dense_macs.div_ceil(cfg.dpes.max(1) as u64), q.mac)
        } else {
            0
        };
        let sparse_cycles = if cfg.spes > 0 && !sparse_ch.is_empty() {
            let per_spe_nnz = sparse_nnz.div_ceil(cfg.spes as u64);
            let per_spe_ch = sparse_ch.len().div_ceil(cfg.spes);
            spe.compute_cycles(per_spe_nnz, per_spe_ch, q.mac)
        } else {
            0
        };
        let compute_cycles = dense_cycles.max(sparse_cycles);

        // Buffer traffic. Weights: all channels' weights at weight_bits.
        // Dense activations raw; sparse activations bitmap-compressed.
        let weight_bits = w.weight_elems() * q.weight_bits as u64;
        let dense_act_bits = w.input_elems_for(&dense_ch) * q.act_bits as u64;
        let sparse_act_bits = w.input_elems_for(&sparse_ch) // bitmap: 1 bit/elem
            + w.nnz_input_elems_for(&sparse_ch) * q.act_bits as u64;
        let output_bits = w.output_elems() * q.act_bits as u64;
        let traffic_bits = weight_bits + dense_act_bits + sparse_act_bits + output_bits;
        let fetch_cycles = traffic_bits.div_ceil(cfg.buffer_bw_bits.max(1));

        // The detector counts zeros as outputs stream out of the
        // accumulation buffers, so its work overlaps the whole layer; it
        // only surfaces cycles if slower than compute and fetch combined.
        let detector_cycles = cfg.detector.count_cycles(w.output_elems());
        let overlapped = compute_cycles.max(fetch_cycles);
        let detector_exposed = detector_cycles.saturating_sub(overlapped);

        let cycles = overlapped + detector_exposed;

        // Energy.
        let macs_executed = dense_macs + sparse_nnz;
        let noc = Noc::new(cfg.total_pes().max(1), cfg.noc_link_bits);
        let em = &cfg.energy;
        let energy = EnergyBreakdown {
            compute_pj: macs_executed as f64 * em.mac_pj(q.mac),
            sram_pj: em.sram_pj(traffic_bits),
            dram_pj: if cfg.include_dram {
                em.dram_pj(weight_bits + dense_act_bits + sparse_act_bits + output_bits)
            } else {
                0.0
            },
            noc_pj: em.noc_pj(
                weight_bits + dense_act_bits + sparse_act_bits,
                noc.mean_hops().round() as u32,
            ),
            leakage_pj: em.leakage_pj(cfg.total_pes(), cycles),
        };

        LayerStats {
            cycles,
            dense_cycles,
            sparse_cycles,
            fetch_cycles,
            detector_cycles,
            macs_executed,
            energy,
        }
    }

    /// Executes a sequence of layers (one model evaluation).
    ///
    /// `partitions`, if given, must supply one channel partition per layer.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is present with the wrong length.
    pub fn run_model(
        &self,
        layers: &[(ConvWorkload, LayerQuant)],
        partitions: Option<&[ChannelPartition]>,
    ) -> RunStats {
        if let Some(ps) = partitions {
            assert_eq!(ps.len(), layers.len(), "one partition per layer");
        }
        let mut stats = RunStats::default();
        for (i, (w, q)) in layers.iter().enumerate() {
            let p = partitions.map(|ps| &ps[i]);
            stats.push(&self.run_layer(w, p, *q));
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_layer(sparsity: f64) -> ConvWorkload {
        ConvWorkload::uniform(24, 24, 3, 3, 16, 16, sparsity)
    }

    /// A ReLU-like layer (mean sparsity ≈ 0.63, as §III-C reports): most
    /// channels well above the 30% threshold, a few dense ones below it.
    fn bimodal_layer() -> ConvWorkload {
        let mut sp = vec![0.78; 18];
        sp.extend(vec![0.10; 6]);
        ConvWorkload::with_sparsity(24, 24, 3, 3, 16, 16, sp)
    }

    #[test]
    fn dense_run_executes_all_macs() {
        let acc = Accelerator::new(AcceleratorConfig::dense_baseline());
        let w = demo_layer(0.65);
        let s = acc.run_layer(&w, None, LayerQuant::int4());
        assert_eq!(s.macs_executed, w.total_macs());
        assert_eq!(s.sparse_cycles, 0);
        assert!(s.cycles > 0);
    }

    #[test]
    fn quantization_speedup_near_4x() {
        // Figure 12 (bottom): 4-bit quantization alone gives ~3.8× over
        // FP16 on the same dense hardware.
        let acc = Accelerator::new(AcceleratorConfig::dense_baseline());
        let w = demo_layer(0.0);
        let fp16 = acc.run_layer(&w, None, LayerQuant::fp16());
        let int4 = acc.run_layer(&w, None, LayerQuant::int4());
        let speedup = fp16.cycles as f64 / int4.cycles as f64;
        assert!(speedup > 3.3 && speedup <= 4.05, "speedup {speedup}");
    }

    #[test]
    fn heterogeneous_beats_dense_baseline_on_sparse_data() {
        // Figure 12 (top): ~1.8× from temporal sparsity at equal precision.
        let w = bimodal_layer();
        let partition = ChannelPartition::classify(&w.act_sparsity, sqdm_sparsity::PAPER_THRESHOLD);
        let base = Accelerator::new(AcceleratorConfig::dense_baseline());
        let het = Accelerator::new(AcceleratorConfig::paper());
        let sb = base.run_layer(&w, None, LayerQuant::int4());
        let sh = het.run_layer(&w, Some(&partition), LayerQuant::int4());
        let speedup = sb.cycles as f64 / sh.cycles as f64;
        assert!(speedup > 1.3 && speedup < 2.2, "speedup {speedup}");
    }

    #[test]
    fn sparse_energy_saving_is_substantial() {
        let w = bimodal_layer();
        let partition = ChannelPartition::classify(&w.act_sparsity, sqdm_sparsity::PAPER_THRESHOLD);
        let base = Accelerator::new(AcceleratorConfig::dense_baseline());
        let het = Accelerator::new(AcceleratorConfig::paper());
        let mut b = RunStats::default();
        b.push(&base.run_layer(&w, None, LayerQuant::int4()));
        let mut h = RunStats::default();
        h.push(&het.run_layer(&w, Some(&partition), LayerQuant::int4()));
        let saving = h.energy_saving_vs(&b);
        assert!(saving > 0.25 && saving < 0.7, "saving {saving}");
    }

    #[test]
    fn heterogeneous_no_partition_degrades_gracefully() {
        // Without a partition the paper config runs everything on its one
        // DPE: correct, just slower than the 2-DPE baseline.
        let w = demo_layer(0.0);
        let het = Accelerator::new(AcceleratorConfig::paper());
        let base = Accelerator::new(AcceleratorConfig::dense_baseline());
        let sh = het.run_layer(&w, None, LayerQuant::int4());
        let sb = base.run_layer(&w, None, LayerQuant::int4());
        assert_eq!(sh.macs_executed, w.total_macs());
        assert!(sh.cycles >= sb.cycles);
    }

    #[test]
    fn detector_is_hidden_behind_drain() {
        let acc = Accelerator::new(AcceleratorConfig::paper());
        let w = demo_layer(0.5);
        let s = acc.run_layer(&w, None, LayerQuant::int4());
        // Detector cycles are reported but do not extend the layer:
        // compute dominates and the counting overlaps it entirely.
        assert!(s.detector_cycles > 0);
        assert_eq!(s.cycles, s.dense_cycles.max(s.fetch_cycles));
        assert!(s.detector_cycles < s.cycles);
    }

    #[test]
    fn fetch_bound_when_bandwidth_starved() {
        let mut cfg = AcceleratorConfig::dense_baseline();
        cfg.buffer_bw_bits = 8;
        let acc = Accelerator::new(cfg);
        let w = demo_layer(0.0);
        let s = acc.run_layer(&w, None, LayerQuant::int4());
        assert_eq!(s.cycles, s.fetch_cycles);
        assert!(s.fetch_cycles > s.dense_cycles);
    }

    #[test]
    fn run_model_accumulates() {
        let acc = Accelerator::new(AcceleratorConfig::dense_baseline());
        let layers = vec![
            (demo_layer(0.0), LayerQuant::int4()),
            (demo_layer(0.0), LayerQuant::int8()),
        ];
        let stats = acc.run_model(&layers, None);
        assert_eq!(stats.layers, 2);
        let l0 = acc.run_layer(&layers[0].0, None, layers[0].1);
        let l1 = acc.run_layer(&layers[1].0, None, layers[1].1);
        assert_eq!(stats.cycles, l0.cycles + l1.cycles);
        assert!(
            (stats.energy.total_pj() - l0.energy.total_pj() - l1.energy.total_pj()).abs() < 1e-6
        );
    }

    #[test]
    fn compressed_sparse_fetch_reduces_traffic() {
        let w = bimodal_layer();
        let partition = ChannelPartition::classify(&w.act_sparsity, sqdm_sparsity::PAPER_THRESHOLD);
        let het = Accelerator::new(AcceleratorConfig::paper());
        let with = het.run_layer(&w, Some(&partition), LayerQuant::int4());
        let without = het.run_layer(&w, None, LayerQuant::int4());
        assert!(with.energy.sram_pj < without.energy.sram_pj);
    }

    #[test]
    fn scaling_the_array_scales_throughput() {
        // §IV-D: the architecture is scalable. Two D/S pairs finish a big
        // layer in roughly half the cycles of one pair.
        let w = ConvWorkload::uniform(96, 96, 3, 3, 32, 32, 0.65);
        let partition = ChannelPartition::classify(&w.act_sparsity, sqdm_sparsity::PAPER_THRESHOLD);
        let one = Accelerator::new(AcceleratorConfig::scaled(1));
        let two = Accelerator::new(AcceleratorConfig::scaled(2));
        let s1 = one.run_layer(&w, Some(&partition), LayerQuant::int4());
        let s2 = two.run_layer(&w, Some(&partition), LayerQuant::int4());
        let ratio = s1.cycles as f64 / s2.cycles as f64;
        assert!(ratio > 1.6 && ratio < 2.1, "scaling ratio {ratio}");
        assert_eq!(s1.macs_executed, s2.macs_executed);
    }

    #[test]
    fn weight_sparsity_composes_with_activation_sparsity() {
        // §II-B: 2:4 weight sparsity halves MACs on top of activation
        // skipping.
        let w = bimodal_layer();
        let pruned = w.clone().with_weight_density(0.5);
        let p = ChannelPartition::balanced(&w.act_sparsity, 0.9);
        let acc = Accelerator::new(AcceleratorConfig::paper());
        let full = acc.run_layer(&w, Some(&p), LayerQuant::int4());
        let half = acc.run_layer(&pruned, Some(&p), LayerQuant::int4());
        // Per-channel rounding of nnz counts leaves ±1 MAC per channel.
        let diff = (half.macs_executed * 2).abs_diff(full.macs_executed);
        assert!(
            diff <= w.c as u64,
            "2x{} vs {}",
            half.macs_executed,
            full.macs_executed
        );
        assert!(half.cycles < full.cycles);
        assert!(half.energy.total_pj() < full.energy.total_pj());
    }

    #[test]
    fn empty_run_ratios_are_nan_in_both_directions() {
        // Regression: `speedup_vs` used to clamp only `self.cycles` and
        // `energy_saving_vs` only the baseline, so an empty run reported
        // 0× speedup or a perfect 100% saving depending on which side it
        // sat. Both ratios are now symmetric: any empty side means the
        // comparison is undefined.
        let empty = RunStats::default();
        let mut real = RunStats::default();
        let acc = Accelerator::new(AcceleratorConfig::dense_baseline());
        real.push(&acc.run_layer(&demo_layer(0.3), None, LayerQuant::int4()));

        assert!(empty.speedup_vs(&real).is_nan());
        assert!(real.speedup_vs(&empty).is_nan());
        assert!(empty.speedup_vs(&empty).is_nan());
        assert!(empty.energy_saving_vs(&real).is_nan());
        assert!(real.energy_saving_vs(&empty).is_nan());
        assert!(empty.energy_saving_vs(&empty).is_nan());

        // Non-empty comparisons are unchanged by the guard.
        assert_eq!(real.speedup_vs(&real), 1.0);
        assert!(real.energy_saving_vs(&real).abs() < 1e-12);
    }

    #[test]
    fn mixed_precision_runs_at_wider_operand_rate() {
        let q = LayerQuant::from_bits(4, 8);
        assert_eq!(q.mac, MacPrecision::Int8);
        let q2 = LayerQuant::from_bits(4, 4);
        assert_eq!(q2.mac, MacPrecision::Int4);
        let q3 = LayerQuant::from_bits(16, 4);
        assert_eq!(q3.mac, MacPrecision::Fp16);
    }
}
