//! The full accelerator system model (paper Figure 9): controller,
//! heterogeneous D/S PE array, global buffer, NoC, and the PPU's sparsity
//! detector, composed into per-layer and per-model cycle/energy estimates.

use crate::detector::SparsityDetector;
use crate::energy::{EnergyModel, MacPrecision};
use crate::noc::Noc;
use crate::pe::{DensePe, SparsePe};
use crate::power::ThrottleCurve;
use crate::workload::ConvWorkload;
use serde::{Deserialize, Serialize};
use sqdm_sparsity::ChannelPartition;

/// Numeric configuration of one layer's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerQuant {
    /// MAC datapath precision (set by the wider operand).
    pub mac: MacPrecision,
    /// Weight storage bits.
    pub weight_bits: u32,
    /// Activation storage bits.
    pub act_bits: u32,
}

impl LayerQuant {
    /// FP16 weights and activations.
    pub fn fp16() -> Self {
        LayerQuant {
            mac: MacPrecision::Fp16,
            weight_bits: 16,
            act_bits: 16,
        }
    }

    /// 8-bit weights and activations (MXINT8-class).
    pub fn int8() -> Self {
        LayerQuant {
            mac: MacPrecision::Int8,
            weight_bits: 8,
            act_bits: 8,
        }
    }

    /// 4-bit weights and activations (the paper's format).
    pub fn int4() -> Self {
        LayerQuant {
            mac: MacPrecision::Int4,
            weight_bits: 4,
            act_bits: 4,
        }
    }

    /// Derives the datapath precision from mixed weight/activation widths.
    pub fn from_bits(weight_bits: u32, act_bits: u32) -> Self {
        let mac = match weight_bits.max(act_bits) {
            0..=4 => MacPrecision::Int4,
            5..=8 => MacPrecision::Int8,
            _ => MacPrecision::Fp16,
        };
        LayerQuant {
            mac,
            weight_bits,
            act_bits,
        }
    }
}

/// System configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of dense PEs.
    pub dpes: usize,
    /// Number of sparse PEs.
    pub spes: usize,
    /// Multipliers per PE (128 in the paper).
    pub pe_multipliers: usize,
    /// Global-buffer bandwidth in bits per cycle.
    pub buffer_bw_bits: u64,
    /// NoC link width in bits.
    pub noc_link_bits: u64,
    /// Sparsity detector in the PPU.
    pub detector: SparsityDetector,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Charge DRAM energy for weights and activations each layer. The
    /// default (false) models the paper's setting where the model is
    /// resident in the global buffer across time steps.
    pub include_dram: bool,
}

impl AcceleratorConfig {
    /// The paper's configuration: one DPE + one SPE, 128 multipliers each.
    pub fn paper() -> Self {
        AcceleratorConfig {
            dpes: 1,
            spes: 1,
            pe_multipliers: 128,
            buffer_bw_bits: 2048,
            noc_link_bits: 512,
            detector: SparsityDetector::paper(),
            energy: EnergyModel::default(),
            include_dram: false,
        }
    }

    /// The comparison baseline: a purely dense architecture with two DPEs
    /// (iso-multiplier with [`paper`](Self::paper)).
    pub fn dense_baseline() -> Self {
        AcceleratorConfig {
            spes: 0,
            dpes: 2,
            ..Self::paper()
        }
    }

    /// A scaled-up instance with `pairs` D/S PE pairs and proportional
    /// buffer bandwidth — the paper's "architecture is scalable to meet
    /// specific latency and power requirements" (§IV-D).
    pub fn scaled(pairs: usize) -> Self {
        let pairs = pairs.max(1);
        AcceleratorConfig {
            dpes: pairs,
            spes: pairs,
            buffer_bw_bits: 2048 * pairs as u64,
            ..Self::paper()
        }
    }

    /// Total PE count.
    pub fn total_pes(&self) -> usize {
        self.dpes + self.spes
    }
}

/// Energy breakdown of a run, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC datapath energy.
    pub compute_pj: f64,
    /// Global-buffer access energy.
    pub sram_pj: f64,
    /// DRAM energy (zero unless `include_dram`).
    pub dram_pj: f64,
    /// NoC transfer energy.
    pub noc_pj: f64,
    /// Leakage over the run's cycles.
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.sram_pj + self.dram_pj + self.noc_pj + self.leakage_pj
    }

    fn add(&mut self, other: &EnergyBreakdown) {
        self.compute_pj += other.compute_pj;
        self.sram_pj += other.sram_pj;
        self.dram_pj += other.dram_pj;
        self.noc_pj += other.noc_pj;
        self.leakage_pj += other.leakage_pj;
    }
}

/// Cycle and energy statistics of one layer execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// End-to-end cycles (compute/fetch overlapped, detector hidden).
    pub cycles: u64,
    /// Dense-engine compute cycles.
    pub dense_cycles: u64,
    /// Sparse-engine compute cycles.
    pub sparse_cycles: u64,
    /// Buffer fetch/drain cycles.
    pub fetch_cycles: u64,
    /// Detector counting cycles (overlapped with the output drain).
    pub detector_cycles: u64,
    /// MACs actually executed (zeros skipped on the SPE).
    pub macs_executed: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

/// Aggregate statistics over layers and time steps.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total cycles.
    pub cycles: u64,
    /// Total MACs executed.
    pub macs_executed: u64,
    /// Aggregate energy.
    pub energy: EnergyBreakdown,
    /// Number of layer executions accumulated.
    pub layers: usize,
}

impl RunStats {
    /// Accumulates one layer.
    pub fn push(&mut self, s: &LayerStats) {
        self.cycles += s.cycles;
        self.macs_executed += s.macs_executed;
        self.energy.add(&s.energy);
        self.layers += 1;
    }

    /// Speed-up of this run relative to a baseline (`baseline / self`).
    ///
    /// Returns [`f64::NAN`] when either run is empty (zero cycles): an
    /// empty run has no speed to compare, and clamping only one side — as
    /// an earlier version did — silently reported `0×` for an empty
    /// baseline while inventing a huge finite ratio for an empty `self`.
    pub fn speedup_vs(&self, baseline: &RunStats) -> f64 {
        if self.cycles == 0 || baseline.cycles == 0 {
            return f64::NAN;
        }
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Fractional energy saving relative to a baseline.
    ///
    /// Returns [`f64::NAN`] when either run carries no energy: clamping
    /// only the baseline — as an earlier version did — reported a perfect
    /// `100%` saving for any empty run.
    pub fn energy_saving_vs(&self, baseline: &RunStats) -> f64 {
        let (own, base) = (self.energy.total_pj(), baseline.energy.total_pj());
        if own <= 0.0 || base <= 0.0 {
            return f64::NAN;
        }
        1.0 - own / base
    }
}

/// Cost of one incrementally-executed denoise round on the accelerator,
/// as produced by [`Accelerator::step_round`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Streams batched into the round.
    pub batch: usize,
    /// Cycles for the round after DVFS stretching (`nominal / freq_scale`).
    pub cycles: u64,
    /// Total round energy in pJ after DVFS scaling (dynamic ×`f²`,
    /// leakage ×`1/f`).
    pub energy_pj: f64,
    /// PE-array occupancy the round presented to the throttle curve:
    /// compute intensity × batch-slot fill, clamped to `0.0..=1.0`.
    pub occupancy: f64,
    /// Frequency scale the throttle curve chose for this round.
    pub freq_scale: f64,
}

/// Occupancy/energy ledger accumulated over a sequence of incremental
/// rounds — the accelerator-side counterpart of a serving run's stats.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunLedger {
    /// Every recorded round, in execution order.
    pub rounds: Vec<RoundStats>,
}

impl RunLedger {
    /// Appends one round.
    pub fn record(&mut self, round: RoundStats) {
        self.rounds.push(round);
    }

    /// Total energy across recorded rounds, pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.rounds.iter().map(|r| r.energy_pj).sum()
    }

    /// Total cycles across recorded rounds.
    pub fn total_cycles(&self) -> u64 {
        self.rounds.iter().map(|r| r.cycles).sum()
    }

    /// Mean occupancy over recorded rounds; [`f64::NAN`] when empty.
    pub fn mean_occupancy(&self) -> f64 {
        if self.rounds.is_empty() {
            return f64::NAN;
        }
        self.rounds.iter().map(|r| r.occupancy).sum::<f64>() / self.rounds.len() as f64
    }

    /// Peak occupancy over recorded rounds; `0.0` when empty.
    pub fn peak_occupancy(&self) -> f64 {
        self.rounds.iter().map(|r| r.occupancy).fold(0.0, f64::max)
    }
}

/// The accelerator system simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    /// System configuration.
    pub config: AcceleratorConfig,
}

impl Accelerator {
    /// Creates a simulator from a configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        Accelerator { config }
    }

    /// Executes one convolution layer.
    ///
    /// With SPEs present and a `partition` supplied, dense channels run on
    /// the DPEs and sparse channels on the SPEs in parallel (Figure 8);
    /// otherwise every channel runs dense. Fetch and compute overlap
    /// (double-buffered tiles), so layer latency is their maximum. The
    /// detector scans outputs during the drain and only surfaces cycles if
    /// it is slower than the drain itself.
    pub fn run_layer(
        &self,
        w: &ConvWorkload,
        partition: Option<&ChannelPartition>,
        q: LayerQuant,
    ) -> LayerStats {
        let cfg = &self.config;
        let dpe = DensePe::new(cfg.pe_multipliers);
        let spe = SparsePe::new(cfg.pe_multipliers);
        let all: Vec<usize> = (0..w.c).collect();

        let (dense_ch, sparse_ch): (Vec<usize>, Vec<usize>) = match partition {
            Some(p) if cfg.spes > 0 => {
                debug_assert_eq!(p.channels(), w.c, "partition/channel mismatch");
                (p.dense_indices(), p.sparse_indices())
            }
            _ => (all.clone(), Vec::new()),
        };

        // Compute: work split evenly across engines of each kind.
        let dense_macs = w.macs_for(&dense_ch);
        let sparse_nnz = w.nnz_macs_for(&sparse_ch);
        let dense_cycles = if cfg.dpes > 0 {
            dpe.compute_cycles(dense_macs.div_ceil(cfg.dpes.max(1) as u64), q.mac)
        } else {
            0
        };
        let sparse_cycles = if cfg.spes > 0 && !sparse_ch.is_empty() {
            let per_spe_nnz = sparse_nnz.div_ceil(cfg.spes as u64);
            let per_spe_ch = sparse_ch.len().div_ceil(cfg.spes);
            spe.compute_cycles(per_spe_nnz, per_spe_ch, q.mac)
        } else {
            0
        };
        let compute_cycles = dense_cycles.max(sparse_cycles);

        // Buffer traffic. Weights: all channels' weights at weight_bits.
        // Dense activations raw; sparse activations bitmap-compressed.
        let weight_bits = w.weight_elems() * q.weight_bits as u64;
        let dense_act_bits = w.input_elems_for(&dense_ch) * q.act_bits as u64;
        let sparse_act_bits = w.input_elems_for(&sparse_ch) // bitmap: 1 bit/elem
            + w.nnz_input_elems_for(&sparse_ch) * q.act_bits as u64;
        let output_bits = w.output_elems() * q.act_bits as u64;
        let traffic_bits = weight_bits + dense_act_bits + sparse_act_bits + output_bits;
        let fetch_cycles = traffic_bits.div_ceil(cfg.buffer_bw_bits.max(1));

        // The detector counts zeros as outputs stream out of the
        // accumulation buffers, so its work overlaps the whole layer; it
        // only surfaces cycles if slower than compute and fetch combined.
        let detector_cycles = cfg.detector.count_cycles(w.output_elems());
        let overlapped = compute_cycles.max(fetch_cycles);
        let detector_exposed = detector_cycles.saturating_sub(overlapped);

        let cycles = overlapped + detector_exposed;

        // Energy.
        let macs_executed = dense_macs + sparse_nnz;
        let noc = Noc::new(cfg.total_pes().max(1), cfg.noc_link_bits);
        let em = &cfg.energy;
        let energy = EnergyBreakdown {
            compute_pj: macs_executed as f64 * em.mac_pj(q.mac),
            sram_pj: em.sram_pj(traffic_bits),
            dram_pj: if cfg.include_dram {
                em.dram_pj(weight_bits + dense_act_bits + sparse_act_bits + output_bits)
            } else {
                0.0
            },
            noc_pj: em.noc_pj(
                weight_bits + dense_act_bits + sparse_act_bits,
                noc.mean_hops().round() as u32,
            ),
            leakage_pj: em.leakage_pj(cfg.total_pes(), cycles),
        };

        LayerStats {
            cycles,
            dense_cycles,
            sparse_cycles,
            fetch_cycles,
            detector_cycles,
            macs_executed,
            energy,
        }
    }

    /// Executes a sequence of layers (one model evaluation).
    ///
    /// `partitions`, if given, must supply one channel partition per layer.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is present with the wrong length.
    pub fn run_model(
        &self,
        layers: &[(ConvWorkload, LayerQuant)],
        partitions: Option<&[ChannelPartition]>,
    ) -> RunStats {
        if let Some(ps) = partitions {
            assert_eq!(ps.len(), layers.len(), "one partition per layer");
        }
        let mut stats = RunStats::default();
        for (i, (w, q)) in layers.iter().enumerate() {
            let p = partitions.map(|ps| &ps[i]);
            stats.push(&self.run_layer(w, p, *q));
        }
        stats
    }

    /// Peak MAC throughput of the configured array at `mac` precision, in
    /// MACs per cycle — the denominator of the occupancy estimate in
    /// [`Accelerator::step_round`].
    pub fn peak_macs_per_cycle(&self, mac: MacPrecision) -> f64 {
        (self.config.total_pes() * self.config.pe_multipliers) as f64
            * f64::from(mac.lanes_per_fp16_mult())
    }

    /// Executes **one** incremental denoise round: the model evaluated
    /// once per stream in a batch of `batch` streams, under a DVFS
    /// throttle `curve`, on a serving deployment provisioned for
    /// `provisioned` batch slots.
    ///
    /// This is the incremental counterpart of [`Accelerator::run_model`]
    /// for hardware-in-the-loop serving: instead of costing a whole
    /// trajectory up front, a scheduler calls this once per executed
    /// round and accumulates the [`RoundStats`] in a [`RunLedger`].
    ///
    /// The round's occupancy is the model's compute intensity (executed
    /// MACs over the array's peak across the round's nominal cycles)
    /// scaled by the batch-slot fill `batch / provisioned`, clamped to
    /// `0.0..=1.0`. The curve maps that occupancy to a frequency scale
    /// `f`; dynamic energy (compute, SRAM, DRAM, NoC) scales by `f²`,
    /// leakage by `1/f`, and cycles stretch by `1/f`.
    ///
    /// A `batch` of zero is an idle round: zero cycles and energy.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is present with the wrong length (as
    /// [`Accelerator::run_model`]) or if `provisioned` is zero with a
    /// non-zero `batch`.
    pub fn step_round(
        &self,
        layers: &[(ConvWorkload, LayerQuant)],
        partitions: Option<&[ChannelPartition]>,
        batch: usize,
        provisioned: usize,
        curve: &ThrottleCurve,
    ) -> RoundStats {
        if batch == 0 {
            return RoundStats {
                batch: 0,
                cycles: 0,
                energy_pj: 0.0,
                occupancy: 0.0,
                freq_scale: curve.freq_scale_at(0.0),
            };
        }
        assert!(provisioned > 0, "provisioned batch slots must be positive");
        // One stream's model evaluation; streams in a batch run the same
        // layers, so the batched round is `batch` sequential evaluations
        // on this array (weights stay resident; the fetch/compute overlap
        // is already inside `run_layer`).
        let base = self.run_model(layers, partitions);
        let nominal_cycles = base.cycles.saturating_mul(batch as u64);
        let macs = base.macs_executed.saturating_mul(batch as u64);

        // Compute intensity: fraction of the array's peak MAC throughput
        // the round actually uses. The model mixes precisions per layer,
        // so rate the peak at the widest (fp16) datapath for a
        // conservative intensity.
        let peak = self.peak_macs_per_cycle(MacPrecision::Fp16);
        let intensity = if nominal_cycles == 0 || peak <= 0.0 {
            0.0
        } else {
            (macs as f64 / (peak * nominal_cycles as f64)).min(1.0)
        };
        let fill = (batch as f64 / provisioned as f64).min(1.0);
        let occupancy = (intensity * fill).clamp(0.0, 1.0);

        let f = curve.freq_scale_at(occupancy);
        let cycles = ((nominal_cycles as f64) / f).ceil() as u64;
        let dynamic_pj = (base.energy.compute_pj
            + base.energy.sram_pj
            + base.energy.dram_pj
            + base.energy.noc_pj)
            * batch as f64;
        let leakage_pj = base.energy.leakage_pj * batch as f64;
        let energy_pj = dynamic_pj * f * f + leakage_pj / f;

        RoundStats {
            batch,
            cycles,
            energy_pj,
            occupancy,
            freq_scale: f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_layer(sparsity: f64) -> ConvWorkload {
        ConvWorkload::uniform(24, 24, 3, 3, 16, 16, sparsity)
    }

    /// A ReLU-like layer (mean sparsity ≈ 0.63, as §III-C reports): most
    /// channels well above the 30% threshold, a few dense ones below it.
    fn bimodal_layer() -> ConvWorkload {
        let mut sp = vec![0.78; 18];
        sp.extend(vec![0.10; 6]);
        ConvWorkload::with_sparsity(24, 24, 3, 3, 16, 16, sp)
    }

    #[test]
    fn dense_run_executes_all_macs() {
        let acc = Accelerator::new(AcceleratorConfig::dense_baseline());
        let w = demo_layer(0.65);
        let s = acc.run_layer(&w, None, LayerQuant::int4());
        assert_eq!(s.macs_executed, w.total_macs());
        assert_eq!(s.sparse_cycles, 0);
        assert!(s.cycles > 0);
    }

    #[test]
    fn quantization_speedup_near_4x() {
        // Figure 12 (bottom): 4-bit quantization alone gives ~3.8× over
        // FP16 on the same dense hardware.
        let acc = Accelerator::new(AcceleratorConfig::dense_baseline());
        let w = demo_layer(0.0);
        let fp16 = acc.run_layer(&w, None, LayerQuant::fp16());
        let int4 = acc.run_layer(&w, None, LayerQuant::int4());
        let speedup = fp16.cycles as f64 / int4.cycles as f64;
        assert!(speedup > 3.3 && speedup <= 4.05, "speedup {speedup}");
    }

    #[test]
    fn heterogeneous_beats_dense_baseline_on_sparse_data() {
        // Figure 12 (top): ~1.8× from temporal sparsity at equal precision.
        let w = bimodal_layer();
        let partition = ChannelPartition::classify(&w.act_sparsity, sqdm_sparsity::PAPER_THRESHOLD);
        let base = Accelerator::new(AcceleratorConfig::dense_baseline());
        let het = Accelerator::new(AcceleratorConfig::paper());
        let sb = base.run_layer(&w, None, LayerQuant::int4());
        let sh = het.run_layer(&w, Some(&partition), LayerQuant::int4());
        let speedup = sb.cycles as f64 / sh.cycles as f64;
        assert!(speedup > 1.3 && speedup < 2.2, "speedup {speedup}");
    }

    #[test]
    fn sparse_energy_saving_is_substantial() {
        let w = bimodal_layer();
        let partition = ChannelPartition::classify(&w.act_sparsity, sqdm_sparsity::PAPER_THRESHOLD);
        let base = Accelerator::new(AcceleratorConfig::dense_baseline());
        let het = Accelerator::new(AcceleratorConfig::paper());
        let mut b = RunStats::default();
        b.push(&base.run_layer(&w, None, LayerQuant::int4()));
        let mut h = RunStats::default();
        h.push(&het.run_layer(&w, Some(&partition), LayerQuant::int4()));
        let saving = h.energy_saving_vs(&b);
        assert!(saving > 0.25 && saving < 0.7, "saving {saving}");
    }

    #[test]
    fn heterogeneous_no_partition_degrades_gracefully() {
        // Without a partition the paper config runs everything on its one
        // DPE: correct, just slower than the 2-DPE baseline.
        let w = demo_layer(0.0);
        let het = Accelerator::new(AcceleratorConfig::paper());
        let base = Accelerator::new(AcceleratorConfig::dense_baseline());
        let sh = het.run_layer(&w, None, LayerQuant::int4());
        let sb = base.run_layer(&w, None, LayerQuant::int4());
        assert_eq!(sh.macs_executed, w.total_macs());
        assert!(sh.cycles >= sb.cycles);
    }

    #[test]
    fn detector_is_hidden_behind_drain() {
        let acc = Accelerator::new(AcceleratorConfig::paper());
        let w = demo_layer(0.5);
        let s = acc.run_layer(&w, None, LayerQuant::int4());
        // Detector cycles are reported but do not extend the layer:
        // compute dominates and the counting overlaps it entirely.
        assert!(s.detector_cycles > 0);
        assert_eq!(s.cycles, s.dense_cycles.max(s.fetch_cycles));
        assert!(s.detector_cycles < s.cycles);
    }

    #[test]
    fn fetch_bound_when_bandwidth_starved() {
        let mut cfg = AcceleratorConfig::dense_baseline();
        cfg.buffer_bw_bits = 8;
        let acc = Accelerator::new(cfg);
        let w = demo_layer(0.0);
        let s = acc.run_layer(&w, None, LayerQuant::int4());
        assert_eq!(s.cycles, s.fetch_cycles);
        assert!(s.fetch_cycles > s.dense_cycles);
    }

    #[test]
    fn run_model_accumulates() {
        let acc = Accelerator::new(AcceleratorConfig::dense_baseline());
        let layers = vec![
            (demo_layer(0.0), LayerQuant::int4()),
            (demo_layer(0.0), LayerQuant::int8()),
        ];
        let stats = acc.run_model(&layers, None);
        assert_eq!(stats.layers, 2);
        let l0 = acc.run_layer(&layers[0].0, None, layers[0].1);
        let l1 = acc.run_layer(&layers[1].0, None, layers[1].1);
        assert_eq!(stats.cycles, l0.cycles + l1.cycles);
        assert!(
            (stats.energy.total_pj() - l0.energy.total_pj() - l1.energy.total_pj()).abs() < 1e-6
        );
    }

    #[test]
    fn compressed_sparse_fetch_reduces_traffic() {
        let w = bimodal_layer();
        let partition = ChannelPartition::classify(&w.act_sparsity, sqdm_sparsity::PAPER_THRESHOLD);
        let het = Accelerator::new(AcceleratorConfig::paper());
        let with = het.run_layer(&w, Some(&partition), LayerQuant::int4());
        let without = het.run_layer(&w, None, LayerQuant::int4());
        assert!(with.energy.sram_pj < without.energy.sram_pj);
    }

    #[test]
    fn scaling_the_array_scales_throughput() {
        // §IV-D: the architecture is scalable. Two D/S pairs finish a big
        // layer in roughly half the cycles of one pair.
        let w = ConvWorkload::uniform(96, 96, 3, 3, 32, 32, 0.65);
        let partition = ChannelPartition::classify(&w.act_sparsity, sqdm_sparsity::PAPER_THRESHOLD);
        let one = Accelerator::new(AcceleratorConfig::scaled(1));
        let two = Accelerator::new(AcceleratorConfig::scaled(2));
        let s1 = one.run_layer(&w, Some(&partition), LayerQuant::int4());
        let s2 = two.run_layer(&w, Some(&partition), LayerQuant::int4());
        let ratio = s1.cycles as f64 / s2.cycles as f64;
        assert!(ratio > 1.6 && ratio < 2.1, "scaling ratio {ratio}");
        assert_eq!(s1.macs_executed, s2.macs_executed);
    }

    #[test]
    fn weight_sparsity_composes_with_activation_sparsity() {
        // §II-B: 2:4 weight sparsity halves MACs on top of activation
        // skipping.
        let w = bimodal_layer();
        let pruned = w.clone().with_weight_density(0.5);
        let p = ChannelPartition::balanced(&w.act_sparsity, 0.9);
        let acc = Accelerator::new(AcceleratorConfig::paper());
        let full = acc.run_layer(&w, Some(&p), LayerQuant::int4());
        let half = acc.run_layer(&pruned, Some(&p), LayerQuant::int4());
        // Per-channel rounding of nnz counts leaves ±1 MAC per channel.
        let diff = (half.macs_executed * 2).abs_diff(full.macs_executed);
        assert!(
            diff <= w.c as u64,
            "2x{} vs {}",
            half.macs_executed,
            full.macs_executed
        );
        assert!(half.cycles < full.cycles);
        assert!(half.energy.total_pj() < full.energy.total_pj());
    }

    #[test]
    fn empty_run_ratios_are_nan_in_both_directions() {
        // Regression: `speedup_vs` used to clamp only `self.cycles` and
        // `energy_saving_vs` only the baseline, so an empty run reported
        // 0× speedup or a perfect 100% saving depending on which side it
        // sat. Both ratios are now symmetric: any empty side means the
        // comparison is undefined.
        let empty = RunStats::default();
        let mut real = RunStats::default();
        let acc = Accelerator::new(AcceleratorConfig::dense_baseline());
        real.push(&acc.run_layer(&demo_layer(0.3), None, LayerQuant::int4()));

        assert!(empty.speedup_vs(&real).is_nan());
        assert!(real.speedup_vs(&empty).is_nan());
        assert!(empty.speedup_vs(&empty).is_nan());
        assert!(empty.energy_saving_vs(&real).is_nan());
        assert!(real.energy_saving_vs(&empty).is_nan());
        assert!(empty.energy_saving_vs(&empty).is_nan());

        // Non-empty comparisons are unchanged by the guard.
        assert_eq!(real.speedup_vs(&real), 1.0);
        assert!(real.energy_saving_vs(&real).abs() < 1e-12);
    }

    #[test]
    fn mixed_precision_runs_at_wider_operand_rate() {
        let q = LayerQuant::from_bits(4, 8);
        assert_eq!(q.mac, MacPrecision::Int8);
        let q2 = LayerQuant::from_bits(4, 4);
        assert_eq!(q2.mac, MacPrecision::Int4);
        let q3 = LayerQuant::from_bits(16, 4);
        assert_eq!(q3.mac, MacPrecision::Fp16);
    }

    fn round_layers() -> Vec<(ConvWorkload, LayerQuant)> {
        vec![
            (demo_layer(0.5), LayerQuant::int8()),
            (demo_layer(0.6), LayerQuant::int8()),
        ]
    }

    #[test]
    fn step_round_matches_run_model_at_nominal_frequency() {
        // At a flat f = 1.0 curve, one single-stream round is exactly one
        // run_model evaluation: same cycles, same total energy.
        let acc = Accelerator::new(AcceleratorConfig::paper());
        let layers = round_layers();
        let base = acc.run_model(&layers, None);
        let curve = crate::power::PowerProfile::Performance.curve();
        let round = acc.step_round(&layers, None, 1, 4, &curve);
        assert_eq!(round.batch, 1);
        assert_eq!(round.cycles, base.cycles);
        assert!((round.energy_pj - base.energy.total_pj()).abs() < 1e-6);
        assert_eq!(round.freq_scale, 1.0);
        // A batch of b costs b single-stream evaluations.
        let round3 = acc.step_round(&layers, None, 3, 4, &curve);
        assert_eq!(round3.cycles, base.cycles * 3);
        assert!((round3.energy_pj - base.energy.total_pj() * 3.0).abs() < 1e-6);
    }

    #[test]
    fn step_round_throttling_saves_energy_and_stretches_cycles() {
        // A small batch on a big provisioned array sits low on the
        // efficiency curve: it must spend measurably less energy per
        // stream than the same work at nominal frequency, and take
        // correspondingly more cycles.
        let acc = Accelerator::new(AcceleratorConfig::paper());
        let layers = round_layers();
        let nominal = acc.step_round(
            &layers,
            None,
            1,
            8,
            &crate::power::PowerProfile::Performance.curve(),
        );
        let throttled = acc.step_round(
            &layers,
            None,
            1,
            8,
            &crate::power::PowerProfile::Efficiency.curve(),
        );
        assert!(throttled.freq_scale < 1.0);
        assert!(
            throttled.energy_pj < nominal.energy_pj,
            "throttled {} vs nominal {}",
            throttled.energy_pj,
            nominal.energy_pj
        );
        assert!(throttled.cycles > nominal.cycles);
        assert_eq!(throttled.occupancy, nominal.occupancy);
    }

    #[test]
    fn step_round_idle_batch_is_free() {
        let acc = Accelerator::new(AcceleratorConfig::paper());
        let curve = crate::power::PowerProfile::Efficiency.curve();
        let idle = acc.step_round(&round_layers(), None, 0, 4, &curve);
        assert_eq!(idle.cycles, 0);
        assert_eq!(idle.energy_pj, 0.0);
        assert_eq!(idle.occupancy, 0.0);
    }

    #[test]
    fn run_ledger_aggregates_rounds() {
        let acc = Accelerator::new(AcceleratorConfig::paper());
        let layers = round_layers();
        let curve = crate::power::PowerProfile::Balanced.curve();
        let mut ledger = RunLedger::default();
        assert!(ledger.mean_occupancy().is_nan());
        assert_eq!(ledger.peak_occupancy(), 0.0);
        for batch in [1usize, 3, 2] {
            ledger.record(acc.step_round(&layers, None, batch, 4, &curve));
        }
        assert_eq!(ledger.rounds.len(), 3);
        assert!(ledger.total_energy_pj() > 0.0);
        assert!(ledger.total_cycles() > 0);
        assert!(ledger.mean_occupancy() > 0.0);
        assert!(ledger.peak_occupancy() >= ledger.mean_occupancy());
        assert_eq!(
            ledger.peak_occupancy(),
            ledger.rounds.iter().map(|r| r.occupancy).fold(0.0, f64::max)
        );
    }
}
