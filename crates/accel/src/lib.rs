//! # sqdm-accel
//!
//! A from-scratch cycle-level simulator of the SQ-DM heterogeneous
//! dense/sparse diffusion-model accelerator (paper §IV), standing in for
//! the Stonne framework the authors used:
//!
//! * [`DensePe`] — MAERI-like dense vector MAC datapath,
//! * [`SparsePe`] — SIGMA-like sparse datapath with bitmap operands,
//! * [`ActAddressMap`]/[`WeightAddressMap`] — the channel-last memory
//!   mapping of Figure 10,
//! * [`SparseChannel`] — bitmap-compressed sparse channel storage,
//! * [`SparsityDetector`] — the PPU's temporal sparsity detector,
//! * [`Noc`] — the router chain between the global buffer and the PEs,
//! * [`Accelerator`] — the composed system with per-layer and per-model
//!   cycle/energy estimates, plus the 2-DPE dense baseline configuration.
//!
//! # Examples
//!
//! ```
//! use sqdm_accel::{Accelerator, AcceleratorConfig, ConvWorkload, LayerQuant};
//! use sqdm_sparsity::{ChannelPartition, PAPER_THRESHOLD};
//!
//! let layer = ConvWorkload::uniform(16, 16, 3, 3, 16, 16, 0.7);
//! let partition = ChannelPartition::classify(&layer.act_sparsity, PAPER_THRESHOLD);
//! let ours = Accelerator::new(AcceleratorConfig::paper());
//! let baseline = Accelerator::new(AcceleratorConfig::dense_baseline());
//! let s_ours = ours.run_layer(&layer, Some(&partition), LayerQuant::int4());
//! let s_base = baseline.run_layer(&layer, None, LayerQuant::int4());
//! assert!(s_ours.cycles < s_base.cycles);
//! ```

#![warn(missing_docs)]

mod controller;
mod detector;
mod energy;
mod mapping;
mod noc;
mod pe;
mod power;
mod sparse_format;
mod system;
mod workload;

pub use controller::{Controller, TrajectoryStats};
pub use detector::SparsityDetector;
pub use energy::{EnergyModel, MacPrecision};
pub use mapping::{ActAddressMap, ActLayout, FetchPlan, WeightAddressMap};
pub use noc::Noc;
pub use pe::{DensePe, SparsePe};
pub use power::{PowerProfile, ThrottleCurve, ThrottlePoint};
pub use sparse_format::SparseChannel;
pub use system::{
    Accelerator, AcceleratorConfig, EnergyBreakdown, LayerQuant, LayerStats, RoundStats,
    RunLedger, RunStats,
};
pub use workload::ConvWorkload;
