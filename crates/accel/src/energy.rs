//! Energy model at 28 nm.
//!
//! Per-operation energies follow the widely used Horowitz ISSCC'14 45 nm
//! figures, scaled to 28 nm (×0.6 dynamic). Multiplier energy scales
//! quadratically with operand width and adder energy linearly, which yields
//! the paper's iso-energy intuition that INT4 MACs are ~an order of
//! magnitude cheaper than FP16 MACs. Absolute joules are not the point —
//! the reproduction reports energy *ratios* against the dense FP16
//! baseline, which are robust to the constants chosen here.

use serde::{Deserialize, Serialize};

/// Per-operation energy constants, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of an 8×8-bit integer multiply (pJ).
    pub int8_mult_pj: f64,
    /// Energy of an 8-bit integer add (pJ).
    pub int8_add_pj: f64,
    /// Energy of an FP16 multiply (pJ).
    pub fp16_mult_pj: f64,
    /// Energy of an FP16 add (pJ).
    pub fp16_add_pj: f64,
    /// SRAM (global buffer) access energy per bit (pJ/bit).
    pub sram_pj_per_bit: f64,
    /// DRAM access energy per bit (pJ/bit).
    pub dram_pj_per_bit: f64,
    /// NoC transfer energy per bit per hop (pJ/bit/hop).
    pub noc_pj_per_bit_hop: f64,
    /// Static leakage per PE per cycle (pJ).
    pub leakage_pj_per_pe_cycle: f64,
}

impl Default for EnergyModel {
    /// 28 nm constants (Horowitz 45 nm × 0.6).
    fn default() -> Self {
        EnergyModel {
            int8_mult_pj: 0.2 * 0.6,
            int8_add_pj: 0.03 * 0.6,
            fp16_mult_pj: 1.1 * 0.6,
            fp16_add_pj: 0.4 * 0.6,
            sram_pj_per_bit: 0.06,
            dram_pj_per_bit: 4.0,
            noc_pj_per_bit_hop: 0.02,
            leakage_pj_per_pe_cycle: 0.5,
        }
    }
}

/// Operand precision of a MAC datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MacPrecision {
    /// 4-bit integer operands.
    Int4,
    /// 8-bit integer operands.
    Int8,
    /// Half-precision floating point.
    Fp16,
}

impl MacPrecision {
    /// Operand width in bits.
    pub fn bits(&self) -> u32 {
        match self {
            MacPrecision::Int4 => 4,
            MacPrecision::Int8 => 8,
            MacPrecision::Fp16 => 16,
        }
    }

    /// Multiplier lanes obtained from one 16-bit-equivalent lane — the
    /// paper's 1 FP16 = 2 INT8 = 4 INT4 equivalence.
    pub fn lanes_per_fp16_mult(&self) -> u32 {
        16 / self.bits()
    }
}

impl EnergyModel {
    /// Energy of one multiply-accumulate at the given precision (pJ).
    ///
    /// Integer multiplier energy scales as the square of operand width;
    /// adder energy linearly (accumulators are kept at 4× operand width).
    pub fn mac_pj(&self, p: MacPrecision) -> f64 {
        match p {
            MacPrecision::Fp16 => self.fp16_mult_pj + self.fp16_add_pj,
            MacPrecision::Int8 => self.int8_mult_pj + self.int8_add_pj,
            MacPrecision::Int4 => {
                // (4/8)² of the INT8 multiplier, (4/8) of the adder.
                self.int8_mult_pj * 0.25 + self.int8_add_pj * 0.5
            }
        }
    }

    /// Energy of moving `bits` through the global buffer (pJ).
    pub fn sram_pj(&self, bits: u64) -> f64 {
        bits as f64 * self.sram_pj_per_bit
    }

    /// Energy of moving `bits` to or from DRAM (pJ).
    pub fn dram_pj(&self, bits: u64) -> f64 {
        bits as f64 * self.dram_pj_per_bit
    }

    /// Energy of moving `bits` across `hops` NoC links (pJ).
    pub fn noc_pj(&self, bits: u64, hops: u32) -> f64 {
        bits as f64 * hops as f64 * self.noc_pj_per_bit_hop
    }

    /// Leakage energy of `pes` processing elements over `cycles` (pJ).
    pub fn leakage_pj(&self, pes: usize, cycles: u64) -> f64 {
        pes as f64 * cycles as f64 * self.leakage_pj_per_pe_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_ordering() {
        let e = EnergyModel::default();
        assert!(e.mac_pj(MacPrecision::Int4) < e.mac_pj(MacPrecision::Int8));
        assert!(e.mac_pj(MacPrecision::Int8) < e.mac_pj(MacPrecision::Fp16));
        // FP16 MAC is roughly an order of magnitude above INT4.
        let ratio = e.mac_pj(MacPrecision::Fp16) / e.mac_pj(MacPrecision::Int4);
        assert!(ratio > 8.0 && ratio < 40.0, "ratio {ratio}");
    }

    #[test]
    fn lane_equivalence_matches_paper() {
        assert_eq!(MacPrecision::Fp16.lanes_per_fp16_mult(), 1);
        assert_eq!(MacPrecision::Int8.lanes_per_fp16_mult(), 2);
        assert_eq!(MacPrecision::Int4.lanes_per_fp16_mult(), 4);
    }

    #[test]
    fn dram_dominates_sram_per_bit() {
        let e = EnergyModel::default();
        assert!(e.dram_pj(8) > 10.0 * e.sram_pj(8));
    }

    #[test]
    fn linear_scaling_of_movement() {
        let e = EnergyModel::default();
        assert!((e.sram_pj(100) - 10.0 * e.sram_pj(10)).abs() < 1e-9);
        assert!((e.noc_pj(64, 3) - 3.0 * e.noc_pj(64, 1)).abs() < 1e-9);
        assert_eq!(e.noc_pj(64, 0), 0.0);
    }

    #[test]
    fn leakage_proportional_to_pe_cycles() {
        let e = EnergyModel::default();
        assert_eq!(e.leakage_pj(2, 100), 2.0 * e.leakage_pj(1, 100));
        assert_eq!(e.leakage_pj(0, 100), 0.0);
    }
}
