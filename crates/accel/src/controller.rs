//! The accelerator controller (paper Figure 9): orchestrates a diffusion
//! trajectory across time steps, feeding the PPU detector's channel
//! classifications back into the sparsity-aware address generator.
//!
//! At update steps the detector measures the true per-channel sparsity of
//! each layer's input stream and re-balances the dense/sparse routing;
//! between updates the stale routing persists while the data underneath it
//! drifts — exactly the trade-off of Figure 11 (right).

use crate::system::{Accelerator, AcceleratorConfig, LayerQuant, RunStats};
use crate::workload::ConvWorkload;
use serde::{Deserialize, Serialize};
use sqdm_sparsity::ChannelPartition;

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Controller {
    /// The accelerator under control.
    pub accelerator: AcceleratorConfig,
    /// Time steps between detector-driven routing updates (1 = per step).
    pub update_period: usize,
    /// SPE utilization assumed by the load balancer.
    pub spe_utilization: f64,
}

impl Controller {
    /// A controller with the paper's per-step updates.
    pub fn paper() -> Self {
        Controller {
            accelerator: AcceleratorConfig::paper(),
            update_period: 1,
            spe_utilization: 0.9,
        }
    }

    /// Same accelerator, custom update period.
    pub fn with_period(update_period: usize) -> Self {
        Controller {
            update_period: update_period.max(1),
            ..Self::paper()
        }
    }
}

/// Results of a trajectory run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryStats {
    /// Aggregate over all steps and layers.
    pub total: RunStats,
    /// Per-time-step aggregates.
    pub per_step: Vec<RunStats>,
    /// Number of detector updates performed.
    pub detector_updates: usize,
}

impl Controller {
    /// Runs a full diffusion trajectory.
    ///
    /// `steps[t][l]` is layer `l`'s workload at time step `t` (its true
    /// per-channel input sparsities); `quants[l]` is the layer's numeric
    /// configuration. Routing for each layer is recomputed from the
    /// measured sparsities at every `update_period`-th step and reused in
    /// between.
    ///
    /// # Panics
    ///
    /// Panics if step layer counts are inconsistent with `quants`.
    pub fn run_trajectory(
        &self,
        steps: &[Vec<ConvWorkload>],
        quants: &[LayerQuant],
    ) -> TrajectoryStats {
        let acc = Accelerator::new(self.accelerator);
        let mut total = RunStats::default();
        let mut per_step = Vec::with_capacity(steps.len());
        let mut routing: Vec<Option<ChannelPartition>> = vec![None; quants.len()];
        let mut detector_updates = 0usize;

        for (t, layers) in steps.iter().enumerate() {
            assert_eq!(
                layers.len(),
                quants.len(),
                "step {t} has {} layers, quants has {}",
                layers.len(),
                quants.len()
            );
            let update = t % self.update_period == 0;
            if update {
                detector_updates += 1;
            }
            let mut step_stats = RunStats::default();
            for (l, w) in layers.iter().enumerate() {
                if update || routing[l].is_none() {
                    // Fresh detection on the stream being consumed.
                    routing[l] = Some(ChannelPartition::balanced(
                        &w.act_sparsity,
                        self.spe_utilization,
                    ));
                } else if let Some(stale) = &routing[l] {
                    // Keep stale routing but account costs with the true
                    // current sparsities.
                    routing[l] = Some(ChannelPartition::balanced_stale(
                        stale.sparsities(),
                        &w.act_sparsity,
                        self.spe_utilization,
                    ));
                }
                let stats = acc.run_layer(w, routing[l].as_ref(), quants[l]);
                step_stats.push(&stats);
            }
            total.cycles += step_stats.cycles;
            total.macs_executed += step_stats.macs_executed;
            total.layers += step_stats.layers;
            // Merge energies.
            let mut merged = total.energy;
            merged.compute_pj += step_stats.energy.compute_pj;
            merged.sram_pj += step_stats.energy.sram_pj;
            merged.dram_pj += step_stats.energy.dram_pj;
            merged.noc_pj += step_stats.energy.noc_pj;
            merged.leakage_pj += step_stats.energy.leakage_pj;
            total.energy = merged;
            per_step.push(step_stats);
        }
        TrajectoryStats {
            total,
            per_step,
            detector_updates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_tensor::Rng;

    /// A drifting trajectory: channels start sparse and densify over time.
    fn trajectory(steps: usize, layers: usize, channels: usize) -> Vec<Vec<ConvWorkload>> {
        let mut rng = Rng::seed_from(50);
        (0..steps)
            .map(|t| {
                (0..layers)
                    .map(|_| {
                        let drift = 0.3 * t as f64 / steps.max(1) as f64;
                        let sp: Vec<f64> = (0..channels)
                            .map(|ch| {
                                let base = if ch % 4 == 0 { 0.2 } else { 0.8 };
                                (base - drift + 0.1 * (rng.uniform() as f64 - 0.5)).clamp(0.0, 1.0)
                            })
                            .collect();
                        ConvWorkload::with_sparsity(16, channels, 3, 3, 16, 16, sp)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn per_step_updates_never_lose_to_stale() {
        let steps = trajectory(8, 3, 16);
        let quants = vec![LayerQuant::int4(); 3];
        let fresh = Controller::paper().run_trajectory(&steps, &quants);
        let stale = Controller::with_period(4).run_trajectory(&steps, &quants);
        assert!(fresh.total.cycles <= stale.total.cycles);
        assert_eq!(fresh.detector_updates, 8);
        assert_eq!(stale.detector_updates, 2);
    }

    #[test]
    fn per_step_breakdown_sums_to_total() {
        let steps = trajectory(5, 2, 8);
        let quants = vec![LayerQuant::int8(); 2];
        let r = Controller::paper().run_trajectory(&steps, &quants);
        let sum: u64 = r.per_step.iter().map(|s| s.cycles).sum();
        assert_eq!(sum, r.total.cycles);
        assert_eq!(r.per_step.len(), 5);
        assert_eq!(r.total.layers, 10);
    }

    #[test]
    fn empty_trajectory_is_empty() {
        let r = Controller::paper().run_trajectory(&[], &[]);
        assert_eq!(r.total.cycles, 0);
        assert_eq!(r.detector_updates, 0);
    }

    #[test]
    #[should_panic(expected = "layers")]
    fn inconsistent_layer_count_panics() {
        let steps = trajectory(2, 2, 8);
        Controller::paper().run_trajectory(&steps, &[LayerQuant::int4()]);
    }
}
