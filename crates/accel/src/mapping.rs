//! Channel-last memory mapping (paper Figure 10).
//!
//! The sparsity-aware address generator fetches whole channels in an order
//! decided at runtime (dense channels to the DPE, sparse to the SPE), so
//! channels must be *contiguous* in the global buffer. The paper's mapping
//! places the channel index in the most-significant address position:
//!
//! * activations: `addr(c, h, w) = (c·H + h)·W + w`  (W fastest, C last)
//! * weights:     `addr(c, k, r, s) = ((c·K + k)·R + r)·S + s` (S fastest,
//!   then R, then output channel K, with input channel C last) so all
//!   weights consumed together with input channel `c` form one burst.
//!
//! The ablation baseline is the interleaved `HWC` layout, where a channel
//! fetch needs one burst per pixel.

use serde::{Deserialize, Serialize};

/// Address map for an activation tensor of extents `[C, H, W]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActAddressMap {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Layout variant.
    pub layout: ActLayout,
}

/// Activation memory layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActLayout {
    /// The paper's channel-last mapping: channels are contiguous planes.
    ChannelLast,
    /// Interleaved baseline (`HWC`): channel elements are strided.
    Interleaved,
}

impl ActAddressMap {
    /// Creates a channel-last activation map.
    pub fn channel_last(c: usize, h: usize, w: usize) -> Self {
        ActAddressMap {
            c,
            h,
            w,
            layout: ActLayout::ChannelLast,
        }
    }

    /// Creates an interleaved (HWC) activation map.
    pub fn interleaved(c: usize, h: usize, w: usize) -> Self {
        ActAddressMap {
            c,
            h,
            w,
            layout: ActLayout::Interleaved,
        }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear address of element `(c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if any coordinate is out of range.
    pub fn addr(&self, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(c < self.c && h < self.h && w < self.w);
        match self.layout {
            ActLayout::ChannelLast => (c * self.h + h) * self.w + w,
            ActLayout::Interleaved => (h * self.w + w) * self.c + c,
        }
    }

    /// Number of contiguous bursts needed to fetch the whole of channel
    /// `ch` — the figure of merit of the channel-last layout.
    pub fn channel_bursts(&self, ch: usize) -> usize {
        debug_assert!(ch < self.c);
        match self.layout {
            ActLayout::ChannelLast => 1,
            ActLayout::Interleaved => self.h * self.w,
        }
    }

    /// The contiguous address range of channel `ch` under channel-last;
    /// `None` for interleaved layouts (no such range exists).
    pub fn channel_range(&self, ch: usize) -> Option<std::ops::Range<usize>> {
        match self.layout {
            ActLayout::ChannelLast => {
                let plane = self.h * self.w;
                Some(ch * plane..(ch + 1) * plane)
            }
            ActLayout::Interleaved => None,
        }
    }
}

/// Address map for a weight tensor of extents `[K, C, R, S]` stored
/// channel-last (`C` most significant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightAddressMap {
    /// Output channels.
    pub k: usize,
    /// Input channels.
    pub c: usize,
    /// Kernel height.
    pub r: usize,
    /// Kernel width.
    pub s: usize,
}

impl WeightAddressMap {
    /// Creates a channel-last weight map.
    pub fn new(k: usize, c: usize, r: usize, s: usize) -> Self {
        WeightAddressMap { k, c, r, s }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.k * self.c * self.r * self.s
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear address of weight `(k, c, r, s)`: S fastest, R next, K, then
    /// input channel C last.
    ///
    /// # Panics
    ///
    /// Panics (debug) if any coordinate is out of range.
    pub fn addr(&self, k: usize, c: usize, r: usize, s: usize) -> usize {
        debug_assert!(k < self.k && c < self.c && r < self.r && s < self.s);
        ((c * self.k + k) * self.r + r) * self.s + s
    }

    /// The contiguous address range holding every weight that multiplies
    /// input channel `c` (all output channels, all kernel positions).
    pub fn input_channel_range(&self, c: usize) -> std::ops::Range<usize> {
        let per_c = self.k * self.r * self.s;
        c * per_c..(c + 1) * per_c
    }
}

/// Fetch-order plan produced by the sparsity-aware address generator:
/// dense channels first (for the DPE), sparse channels after (for the
/// SPE), each expressed as a burst list `(start_addr, len)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FetchPlan {
    /// Bursts feeding the dense engine.
    pub dense_bursts: Vec<(usize, usize)>,
    /// Bursts feeding the sparse engine.
    pub sparse_bursts: Vec<(usize, usize)>,
}

impl FetchPlan {
    /// Builds the fetch plan for an activation tensor and a channel
    /// partition (dense/sparse indices).
    ///
    /// # Panics
    ///
    /// Panics if the map is not channel-last (the generator requires
    /// contiguous channels) or an index is out of range.
    pub fn for_activations(
        map: &ActAddressMap,
        dense_channels: &[usize],
        sparse_channels: &[usize],
    ) -> FetchPlan {
        let burst = |ch: usize| {
            let r = map
                .channel_range(ch)
                .expect("fetch plan requires channel-last layout");
            (r.start, r.end - r.start)
        };
        FetchPlan {
            dense_bursts: dense_channels.iter().map(|&c| burst(c)).collect(),
            sparse_bursts: sparse_channels.iter().map(|&c| burst(c)).collect(),
        }
    }

    /// Total elements fetched.
    pub fn total_elems(&self) -> usize {
        self.dense_bursts
            .iter()
            .chain(self.sparse_bursts.iter())
            .map(|&(_, l)| l)
            .sum()
    }

    /// Total burst count (one per channel under channel-last).
    pub fn burst_count(&self) -> usize {
        self.dense_bursts.len() + self.sparse_bursts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn act_channel_last_is_bijective() {
        let m = ActAddressMap::channel_last(3, 4, 5);
        let mut seen = BTreeSet::new();
        for c in 0..3 {
            for h in 0..4 {
                for w in 0..5 {
                    assert!(seen.insert(m.addr(c, h, w)));
                }
            }
        }
        assert_eq!(seen.len(), 60);
        assert_eq!(*seen.iter().next_back().unwrap(), 59);
    }

    #[test]
    fn act_interleaved_is_bijective() {
        let m = ActAddressMap::interleaved(3, 4, 5);
        let mut seen = BTreeSet::new();
        for c in 0..3 {
            for h in 0..4 {
                for w in 0..5 {
                    assert!(seen.insert(m.addr(c, h, w)));
                }
            }
        }
        assert_eq!(seen.len(), 60);
    }

    #[test]
    fn channel_last_orders_w_then_h_then_c() {
        let m = ActAddressMap::channel_last(2, 2, 2);
        assert_eq!(m.addr(0, 0, 0), 0);
        assert_eq!(m.addr(0, 0, 1), 1); // W fastest
        assert_eq!(m.addr(0, 1, 0), 2); // then H
        assert_eq!(m.addr(1, 0, 0), 4); // C last
    }

    #[test]
    fn channel_fetch_burst_counts() {
        let cl = ActAddressMap::channel_last(8, 16, 16);
        let il = ActAddressMap::interleaved(8, 16, 16);
        assert_eq!(cl.channel_bursts(3), 1);
        assert_eq!(il.channel_bursts(3), 256);
        let r = cl.channel_range(2).unwrap();
        assert_eq!(r, 512..768);
        assert!(il.channel_range(2).is_none());
    }

    #[test]
    fn weight_map_groups_by_input_channel() {
        let m = WeightAddressMap::new(4, 3, 3, 3);
        // S fastest.
        assert_eq!(m.addr(0, 0, 0, 1), m.addr(0, 0, 0, 0) + 1);
        // R next.
        assert_eq!(m.addr(0, 0, 1, 0), m.addr(0, 0, 0, 0) + 3);
        // K next.
        assert_eq!(m.addr(1, 0, 0, 0), m.addr(0, 0, 0, 0) + 9);
        // C most significant.
        assert_eq!(m.addr(0, 1, 0, 0), m.addr(0, 0, 0, 0) + 36);
        // Every weight touching input channel 1 lives in one range.
        let range = m.input_channel_range(1);
        for k in 0..4 {
            for r in 0..3 {
                for s in 0..3 {
                    assert!(range.contains(&m.addr(k, 1, r, s)));
                }
            }
        }
        assert_eq!(range.len(), 36);
    }

    #[test]
    fn weight_map_bijective() {
        let m = WeightAddressMap::new(4, 3, 3, 3);
        let mut seen = BTreeSet::new();
        for k in 0..4 {
            for c in 0..3 {
                for r in 0..3 {
                    for s in 0..3 {
                        assert!(seen.insert(m.addr(k, c, r, s)));
                    }
                }
            }
        }
        assert_eq!(seen.len(), m.len());
    }

    #[test]
    fn fetch_plan_covers_partition() {
        let m = ActAddressMap::channel_last(4, 2, 2);
        let plan = FetchPlan::for_activations(&m, &[0, 2], &[1, 3]);
        assert_eq!(plan.burst_count(), 4);
        assert_eq!(plan.total_elems(), 16);
        assert_eq!(plan.dense_bursts[0], (0, 4));
        assert_eq!(plan.sparse_bursts[1], (12, 4));
    }

    #[test]
    #[should_panic(expected = "channel-last")]
    fn fetch_plan_rejects_interleaved() {
        let m = ActAddressMap::interleaved(4, 2, 2);
        FetchPlan::for_activations(&m, &[0], &[1]);
    }
}
