//! Interconnection network between the global buffer and the PEs
//! (the configurable routers of paper Figure 9).

use serde::{Deserialize, Serialize};

/// A linear router chain from the global buffer to the PE array.
///
/// PE `i` sits `i + 1` hops from the buffer port. Transfers are pipelined:
/// a message of `bits` occupies `ceil(bits / link_bits)` cycles on each
/// link, and the first flit pays the hop latency once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Noc {
    /// Number of PEs on the chain.
    pub pes: usize,
    /// Link width in bits per cycle.
    pub link_bits: u64,
    /// Per-hop router latency in cycles.
    pub hop_latency: u64,
}

impl Noc {
    /// Creates a NoC with 1-cycle routers.
    pub fn new(pes: usize, link_bits: u64) -> Self {
        Noc {
            pes,
            link_bits,
            hop_latency: 1,
        }
    }

    /// Hop count from the global buffer to PE `pe`.
    ///
    /// # Panics
    ///
    /// Panics if `pe >= pes`.
    pub fn hops(&self, pe: usize) -> u32 {
        assert!(pe < self.pes, "pe {pe} out of range {}", self.pes);
        (pe + 1) as u32
    }

    /// Cycles to stream `bits` to PE `pe` (pipelined wormhole transfer).
    pub fn transfer_cycles(&self, bits: u64, pe: usize) -> u64 {
        if bits == 0 {
            return 0;
        }
        let serialization = bits.div_ceil(self.link_bits.max(1));
        serialization + self.hops(pe) as u64 * self.hop_latency
    }

    /// Mean hop count across the array (for energy accounting of traffic
    /// spread over all PEs).
    pub fn mean_hops(&self) -> f64 {
        if self.pes == 0 {
            return 0.0;
        }
        (1..=self.pes).sum::<usize>() as f64 / self.pes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_increase_along_chain() {
        let n = Noc::new(4, 256);
        assert_eq!(n.hops(0), 1);
        assert_eq!(n.hops(3), 4);
        assert_eq!(n.mean_hops(), 2.5);
    }

    #[test]
    fn transfer_is_pipelined_not_per_hop_serialized() {
        let n = Noc::new(4, 128);
        // 1024 bits over 128-bit links = 8 serialization cycles + hops.
        assert_eq!(n.transfer_cycles(1024, 0), 8 + 1);
        assert_eq!(n.transfer_cycles(1024, 3), 8 + 4);
        assert_eq!(n.transfer_cycles(0, 3), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pe_panics() {
        Noc::new(2, 64).hops(2);
    }
}
