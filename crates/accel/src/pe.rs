//! Processing-element timing models.
//!
//! The paper pairs a MAERI-style dense datapath (a fat multiplier array
//! with a configurable reduction tree that tolerates irregular tile sizes)
//! with a SIGMA-style sparse datapath (flexible distribution/reduction
//! networks driven by bitmap operands). Both are modeled at tile
//! granularity: compute cycles per assigned work, plus the structural
//! overheads that distinguish them — reduction-tree fill for the DPE,
//! per-channel distribution setup and a utilization derating for the SPE.

use crate::energy::MacPrecision;
use serde::{Deserialize, Serialize};

/// Timing parameters of a dense PE (MAERI-like).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensePe {
    /// Physical multipliers (sized for FP16; narrower precisions pack
    /// more lanes per multiplier).
    pub multipliers: usize,
}

impl DensePe {
    /// Creates a dense PE with the given multiplier count.
    pub fn new(multipliers: usize) -> Self {
        DensePe { multipliers }
    }

    /// Effective MAC lanes at a precision (1 FP16 = 2 INT8 = 4 INT4).
    pub fn lanes(&self, p: MacPrecision) -> u64 {
        self.multipliers as u64 * p.lanes_per_fp16_mult() as u64
    }

    /// Cycles to execute `macs` dense MACs at precision `p`.
    ///
    /// The reconfigurable reduction tree adds a one-time fill latency of
    /// `log2(multipliers)` cycles; MAERI's virtual-neuron mapping keeps
    /// utilization near 1 even for irregular shapes, so no derating is
    /// applied.
    pub fn compute_cycles(&self, macs: u64, p: MacPrecision) -> u64 {
        if macs == 0 {
            return 0;
        }
        let lanes = self.lanes(p).max(1);
        macs.div_ceil(lanes) + self.tree_depth()
    }

    /// Reduction-tree depth in cycles.
    pub fn tree_depth(&self) -> u64 {
        (self.multipliers.max(2) as f64).log2().ceil() as u64
    }
}

/// Timing parameters of a sparse PE (SIGMA-like).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparsePe {
    /// Physical multipliers.
    pub multipliers: usize,
    /// Sustained utilization of the flexible distribution network on
    /// irregular sparsity (SIGMA reports near-full; 0.9 default).
    pub utilization: f64,
    /// Cycles to reconfigure the distribution network per channel group.
    pub setup_cycles: u64,
}

impl SparsePe {
    /// Creates a sparse PE with default SIGMA-like overheads.
    pub fn new(multipliers: usize) -> Self {
        SparsePe {
            multipliers,
            utilization: 0.9,
            setup_cycles: 4,
        }
    }

    /// Effective MAC lanes at a precision.
    pub fn lanes(&self, p: MacPrecision) -> u64 {
        self.multipliers as u64 * p.lanes_per_fp16_mult() as u64
    }

    /// Cycles to execute `nnz_macs` nonzero MACs spread over `channels`
    /// channel groups at precision `p`.
    ///
    /// Only nonzero MACs occupy multiplier lanes (the bitmap distribution
    /// network routes around zeros); each channel group pays a setup cost
    /// and the reduction network a fill latency.
    pub fn compute_cycles(&self, nnz_macs: u64, channels: usize, p: MacPrecision) -> u64 {
        if nnz_macs == 0 && channels == 0 {
            return 0;
        }
        let lanes = (self.lanes(p) as f64 * self.utilization).max(1.0);
        (nnz_macs as f64 / lanes).ceil() as u64
            + self.setup_cycles * channels as u64
            + self.tree_depth()
    }

    /// Reduction-network depth in cycles.
    pub fn tree_depth(&self) -> u64 {
        (self.multipliers.max(2) as f64).log2().ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_throughput_scales_with_precision() {
        let pe = DensePe::new(128);
        let macs = 1_000_000;
        let c16 = pe.compute_cycles(macs, MacPrecision::Fp16);
        let c8 = pe.compute_cycles(macs, MacPrecision::Int8);
        let c4 = pe.compute_cycles(macs, MacPrecision::Int4);
        // Paper equivalence: 2× at INT8, 4× at INT4 (up to fill latency).
        assert!((c16 as f64 / c8 as f64 - 2.0).abs() < 0.01, "{c16}/{c8}");
        assert!((c16 as f64 / c4 as f64 - 4.0).abs() < 0.02, "{c16}/{c4}");
    }

    #[test]
    fn dense_zero_work_is_free() {
        let pe = DensePe::new(128);
        assert_eq!(pe.compute_cycles(0, MacPrecision::Int8), 0);
    }

    #[test]
    fn dense_fill_latency_small_but_present() {
        let pe = DensePe::new(128);
        assert_eq!(pe.tree_depth(), 7);
        assert_eq!(pe.compute_cycles(128, MacPrecision::Fp16), 1 + 7);
    }

    #[test]
    fn sparse_skips_zeros() {
        let dpe = DensePe::new(128);
        let spe = SparsePe::new(128);
        let dense_macs = 1_000_000u64;
        let nnz = 300_000u64; // 70% sparse
        let d = dpe.compute_cycles(dense_macs, MacPrecision::Int4);
        let s = spe.compute_cycles(nnz, 16, MacPrecision::Int4);
        assert!(
            (s as f64) < 0.4 * d as f64,
            "sparse {s} should be well under dense {d}"
        );
    }

    #[test]
    fn sparse_overheads_hurt_dense_data() {
        // On data with no zeros, the SPE is slower than the DPE: the
        // utilization derating and setup costs are pure loss. This is why
        // the detector routes dense channels to the DPE.
        let dpe = DensePe::new(128);
        let spe = SparsePe::new(128);
        let macs = 500_000u64;
        assert!(
            spe.compute_cycles(macs, 32, MacPrecision::Int4)
                > dpe.compute_cycles(macs, MacPrecision::Int4)
        );
    }

    #[test]
    fn sparse_setup_scales_with_channels() {
        let spe = SparsePe::new(128);
        let a = spe.compute_cycles(1000, 1, MacPrecision::Int8);
        let b = spe.compute_cycles(1000, 11, MacPrecision::Int8);
        assert_eq!(b - a, 10 * spe.setup_cycles);
    }
}
