//! Bitmap-compressed sparse channel storage (paper §IV-B).
//!
//! Sparse channels store only nonzero values plus a one-bit-per-element
//! presence bitmap — the format SIGMA's distribution network consumes
//! directly, and what the global buffer holds for channels classified
//! sparse.

use serde::{Deserialize, Serialize};
use sqdm_tensor::Tensor;

/// A bitmap-compressed view of one activation channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseChannel {
    len: usize,
    /// Presence bitmap, packed 64 elements per word.
    bitmap: Vec<u64>,
    /// The nonzero values in scan order.
    values: Vec<f32>,
}

impl SparseChannel {
    /// Compresses a dense slice.
    pub fn encode(dense: &[f32]) -> Self {
        let len = dense.len();
        let mut bitmap = vec![0u64; len.div_ceil(64)];
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                bitmap[i / 64] |= 1u64 << (i % 64);
                values.push(v);
            }
        }
        SparseChannel {
            len,
            bitmap,
            values,
        }
    }

    /// Decompresses back to a dense vector.
    pub fn decode(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        let mut vi = 0usize;
        for (i, o) in out.iter_mut().enumerate() {
            if self.bitmap[i / 64] & (1u64 << (i % 64)) != 0 {
                *o = self.values[vi];
                vi += 1;
            }
        }
        out
    }

    /// Original (dense) element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the channel has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Zero fraction of the channel.
    pub fn sparsity(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / self.len as f64
    }

    /// The nonzero values in scan order.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Whether element `i` is present (nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len);
        self.bitmap[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Storage footprint in bits: one bitmap bit per element plus
    /// `value_bits` per nonzero.
    pub fn storage_bits(&self, value_bits: u32) -> u64 {
        self.len as u64 + self.nnz() as u64 * value_bits as u64
    }

    /// Dense storage footprint in bits, for comparison.
    pub fn dense_bits(&self, value_bits: u32) -> u64 {
        self.len as u64 * value_bits as u64
    }

    /// Compresses every channel of a `[N, C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4.
    pub fn encode_channels(t: &Tensor) -> Vec<SparseChannel> {
        let (n, c, h, w) = t
            .shape()
            .as_nchw()
            .expect("encode_channels requires [N, C, H, W]");
        let tv = t.as_slice();
        let hw = h * w;
        // Channel ch aggregates its planes across the batch.
        (0..c)
            .map(|ch| {
                let mut dense = Vec::with_capacity(n * hw);
                for nn in 0..n {
                    let start = (nn * c + ch) * hw;
                    dense.extend_from_slice(&tv[start..start + hw]);
                }
                SparseChannel::encode(&dense)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_tensor::Rng;

    #[test]
    fn round_trip_exact() {
        let dense = vec![0.0, 1.5, 0.0, 0.0, -2.0, 3.0, 0.0, 0.25];
        let sc = SparseChannel::encode(&dense);
        assert_eq!(sc.decode(), dense);
        assert_eq!(sc.nnz(), 4);
        assert_eq!(sc.sparsity(), 0.5);
        assert!(sc.contains(1));
        assert!(!sc.contains(0));
    }

    #[test]
    fn round_trip_random_lengths() {
        let mut rng = Rng::seed_from(1);
        for len in [0usize, 1, 63, 64, 65, 200] {
            let dense: Vec<f32> = (0..len)
                .map(|_| {
                    if rng.bernoulli(0.6) {
                        0.0
                    } else {
                        rng.normal()
                    }
                })
                .collect();
            let sc = SparseChannel::encode(&dense);
            assert_eq!(sc.decode(), dense, "len {len}");
        }
    }

    #[test]
    fn storage_wins_for_sparse_losses_for_dense() {
        // 75% sparse at 4-bit values: 16 + 4·4 = 32 bits vs dense 64.
        let sc = SparseChannel::encode(&[
            0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 4.0,
        ]);
        assert!(sc.storage_bits(4) < sc.dense_bits(4));
        // Fully dense: bitmap is pure overhead.
        let dense = SparseChannel::encode(&[1.0; 16]);
        assert!(dense.storage_bits(4) > dense.dense_bits(4));
    }

    #[test]
    fn all_zero_channel() {
        let sc = SparseChannel::encode(&[0.0; 100]);
        assert_eq!(sc.nnz(), 0);
        assert_eq!(sc.sparsity(), 1.0);
        assert_eq!(sc.decode(), vec![0.0; 100]);
        assert_eq!(sc.storage_bits(8), 100);
    }

    #[test]
    fn encode_channels_aggregates_batch() {
        let mut t = Tensor::zeros([2, 2, 1, 2]);
        t.set(&[0, 0, 0, 0], 1.0).unwrap();
        t.set(&[1, 0, 0, 1], 2.0).unwrap();
        // Channel 1 stays all-zero.
        let chans = SparseChannel::encode_channels(&t);
        assert_eq!(chans.len(), 2);
        assert_eq!(chans[0].len(), 4);
        assert_eq!(chans[0].nnz(), 2);
        assert_eq!(chans[1].nnz(), 0);
        assert_eq!(chans[0].decode(), vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn values_preserve_scan_order() {
        let sc = SparseChannel::encode(&[0.0, 5.0, 0.0, 7.0, 9.0]);
        assert_eq!(sc.values(), &[5.0, 7.0, 9.0]);
    }
}
