//! DVFS throttle policies expressed as configuration data.
//!
//! The serving stack needs to reason about how the accelerator's
//! dynamic-voltage-and-frequency-scaling governor reacts to load without
//! hard-coding governor logic anywhere. Following the config-profile
//! idiom (curves as data tables, not code), a throttle policy here is a
//! piecewise-linear curve mapping **PE-array occupancy** (the fraction of
//! provisioned compute actually busy in a round, `0.0..=1.0`) to a
//! **frequency scale** `f` (`0.0 < f <= 1.0`, relative to nominal).
//!
//! The DVFS semantics applied by [`crate::Accelerator::step_round`] are
//! the standard first-order model: with voltage tracked proportionally to
//! frequency,
//!
//! * dynamic energy per operation scales with `f²` (E ∝ C·V²),
//! * a round's cycle count stretches by `1/f` (fewer cycles per second),
//! * leakage energy grows by `1/f` (the same static power integrated over
//!   the stretched round).
//!
//! So throttling *down* at low occupancy trades latency for energy: the
//! quadratic dynamic saving beats the linear leakage growth as long as
//! dynamic energy dominates, which it does for every configuration in
//! [`crate::EnergyModel`]'s default 45 nm numbers.
//!
//! Three built-in profiles cover the useful corners; custom curves can be
//! built from raw points with [`ThrottleCurve::from_points`].

use serde::{Deserialize, Serialize};

/// One knot of a throttle curve: at `occupancy`, run at `freq_scale`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrottlePoint {
    /// PE-array occupancy this knot anchors, in `0.0..=1.0`.
    pub occupancy: f64,
    /// Frequency relative to nominal at that occupancy, in `(0.0, 1.0]`.
    pub freq_scale: f64,
}

/// A validated piecewise-linear occupancy → frequency-scale curve.
///
/// Construct one from a [`PowerProfile`] or from raw knots with
/// [`ThrottleCurve::from_points`]; evaluate it with
/// [`ThrottleCurve::freq_scale_at`]. Outside the knot range the curve is
/// clamped to its end points, so a single-knot curve is a constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThrottleCurve {
    points: Vec<ThrottlePoint>,
}

impl ThrottleCurve {
    /// Builds a curve from knots sorted by strictly increasing occupancy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: at least
    /// one knot, occupancies strictly increasing within `0.0..=1.0`, and
    /// every frequency scale in `(0.0, 1.0]`.
    pub fn from_points(points: Vec<ThrottlePoint>) -> Result<Self, String> {
        if points.is_empty() {
            return Err("throttle curve needs at least one point".into());
        }
        for (i, p) in points.iter().enumerate() {
            if !(0.0..=1.0).contains(&p.occupancy) || !p.occupancy.is_finite() {
                return Err(format!(
                    "throttle point {i}: occupancy {} outside 0.0..=1.0",
                    p.occupancy
                ));
            }
            if !(p.freq_scale > 0.0 && p.freq_scale <= 1.0) {
                return Err(format!(
                    "throttle point {i}: freq_scale {} outside (0.0, 1.0]",
                    p.freq_scale
                ));
            }
            if i > 0 && points[i - 1].occupancy >= p.occupancy {
                return Err(format!(
                    "throttle point {i}: occupancy {} does not increase past {}",
                    p.occupancy,
                    points[i - 1].occupancy
                ));
            }
        }
        Ok(ThrottleCurve { points })
    }

    /// The curve's knots, in increasing-occupancy order.
    pub fn points(&self) -> &[ThrottlePoint] {
        &self.points
    }

    /// Frequency scale at `occupancy`, linearly interpolated between the
    /// surrounding knots and clamped to the end points outside the range.
    /// A non-finite query clamps to the low end.
    pub fn freq_scale_at(&self, occupancy: f64) -> f64 {
        let occ = if occupancy.is_finite() { occupancy } else { 0.0 };
        let first = self.points[0];
        let last = self.points[self.points.len() - 1];
        if occ <= first.occupancy {
            return first.freq_scale;
        }
        if occ >= last.occupancy {
            return last.freq_scale;
        }
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            if occ <= b.occupancy {
                let t = (occ - a.occupancy) / (b.occupancy - a.occupancy);
                return a.freq_scale + t * (b.freq_scale - a.freq_scale);
            }
        }
        last.freq_scale
    }
}

/// Built-in DVFS governor profiles, each a named curve-point data table.
///
/// The profile is the *configuration surface*: serving-side selectors
/// (scheduler builders, daemon flags) carry this `Copy` enum and expand
/// it to a [`ThrottleCurve`] only where rounds are actually costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerProfile {
    /// Never throttle: nominal frequency at every occupancy. The control
    /// baseline — energy per operation is occupancy-independent.
    Performance,
    /// Mild throttling below ~half occupancy; nominal above.
    Balanced,
    /// Aggressive throttling at low occupancy (down to half frequency
    /// when nearly idle), ramping back to nominal by ~70% occupancy.
    Efficiency,
}

/// `Performance`: flat nominal frequency.
const PERFORMANCE_POINTS: [(f64, f64); 1] = [(0.0, 1.0)];
/// `Balanced`: 0.8× when nearly idle, nominal from half occupancy up.
const BALANCED_POINTS: [(f64, f64); 3] = [(0.0, 0.8), (0.5, 1.0), (1.0, 1.0)];
/// `Efficiency`: 0.5× when nearly idle, 0.7× at 35%, nominal from 70%.
const EFFICIENCY_POINTS: [(f64, f64); 4] = [(0.0, 0.5), (0.35, 0.7), (0.7, 1.0), (1.0, 1.0)];

impl PowerProfile {
    /// Expands the profile's data table into a validated curve.
    pub fn curve(self) -> ThrottleCurve {
        let table: &[(f64, f64)] = match self {
            PowerProfile::Performance => &PERFORMANCE_POINTS,
            PowerProfile::Balanced => &BALANCED_POINTS,
            PowerProfile::Efficiency => &EFFICIENCY_POINTS,
        };
        let points = table
            .iter()
            .map(|&(occupancy, freq_scale)| ThrottlePoint {
                occupancy,
                freq_scale,
            })
            .collect();
        ThrottleCurve::from_points(points).expect("built-in profile tables are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_profiles_expand_to_valid_curves() {
        for profile in [
            PowerProfile::Performance,
            PowerProfile::Balanced,
            PowerProfile::Efficiency,
        ] {
            let curve = profile.curve();
            assert!(!curve.points().is_empty());
            for occ in [0.0, 0.2, 0.5, 0.9, 1.0] {
                let f = curve.freq_scale_at(occ);
                assert!(f > 0.0 && f <= 1.0, "{profile:?} at {occ}: {f}");
            }
        }
    }

    #[test]
    fn performance_profile_never_throttles() {
        let curve = PowerProfile::Performance.curve();
        for occ in [0.0, 0.33, 1.0] {
            assert_eq!(curve.freq_scale_at(occ), 1.0);
        }
    }

    #[test]
    fn efficiency_profile_throttles_monotonically() {
        let curve = PowerProfile::Efficiency.curve();
        assert_eq!(curve.freq_scale_at(0.0), 0.5);
        assert_eq!(curve.freq_scale_at(1.0), 1.0);
        let mut prev = 0.0;
        for i in 0..=20 {
            let f = curve.freq_scale_at(i as f64 / 20.0);
            assert!(f >= prev, "curve must be non-decreasing");
            prev = f;
        }
        // Interpolation lands strictly between knots.
        let mid = curve.freq_scale_at(0.175);
        assert!(mid > 0.5 && mid < 0.7, "interpolated {mid}");
    }

    #[test]
    fn curve_clamps_outside_knot_range_and_on_nan() {
        let curve = ThrottleCurve::from_points(vec![
            ThrottlePoint {
                occupancy: 0.25,
                freq_scale: 0.6,
            },
            ThrottlePoint {
                occupancy: 0.75,
                freq_scale: 1.0,
            },
        ])
        .unwrap();
        assert_eq!(curve.freq_scale_at(0.0), 0.6);
        assert_eq!(curve.freq_scale_at(1.0), 1.0);
        assert_eq!(curve.freq_scale_at(f64::NAN), 0.6);
        assert!((curve.freq_scale_at(0.5) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn from_points_rejects_invalid_tables() {
        assert!(ThrottleCurve::from_points(vec![]).is_err());
        let p = |occupancy, freq_scale| ThrottlePoint {
            occupancy,
            freq_scale,
        };
        assert!(ThrottleCurve::from_points(vec![p(1.5, 1.0)]).is_err());
        assert!(ThrottleCurve::from_points(vec![p(0.0, 0.0)]).is_err());
        assert!(ThrottleCurve::from_points(vec![p(0.0, 1.1)]).is_err());
        assert!(ThrottleCurve::from_points(vec![p(0.5, 1.0), p(0.5, 0.9)]).is_err());
        assert!(ThrottleCurve::from_points(vec![p(0.6, 1.0), p(0.4, 0.9)]).is_err());
    }

    #[test]
    fn curves_serialize_round_trip() {
        let curve = PowerProfile::Efficiency.curve();
        // Serde shim round trip: points survive as plain data.
        let again = curve.clone();
        assert_eq!(curve, again);
        assert_eq!(PowerProfile::Balanced, PowerProfile::Balanced);
    }
}
