//! The PPU's temporal sparsity detector (paper §IV-C).
//!
//! As each output channel drains from the accumulation buffer through the
//! post-processing unit, a zero counter tallies its zeros; comparing the
//! count to the threshold classifies the channel dense or sparse *for the
//! next layer*, and the result updates the sparsity-aware address
//! generator. Counting happens on data already streaming past, so its
//! cycles hide entirely behind the drain.

use serde::{Deserialize, Serialize};
use sqdm_sparsity::ChannelPartition;
use sqdm_tensor::Tensor;

/// Hardware sparsity detector model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparsityDetector {
    /// Zero-fraction threshold at or above which a channel is sparse.
    pub threshold: f64,
    /// Elements the zero-counter examines per cycle (matches the PPU
    /// drain width).
    pub elems_per_cycle: u64,
}

impl SparsityDetector {
    /// Creates a detector with the paper's 30% threshold.
    pub fn paper() -> Self {
        SparsityDetector {
            threshold: sqdm_sparsity::PAPER_THRESHOLD,
            elems_per_cycle: 16,
        }
    }

    /// Creates a detector with a custom threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        SparsityDetector {
            threshold,
            elems_per_cycle: 16,
        }
    }

    /// Classifies the channels of an output tensor `[N, C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4.
    pub fn detect(&self, output: &Tensor) -> ChannelPartition {
        let per_channel = sqdm_sparsity::channel_sparsity(output);
        ChannelPartition::classify(&per_channel, self.threshold)
    }

    /// Classifies from precomputed per-channel sparsities.
    pub fn detect_from_sparsity(&self, per_channel: &[f64]) -> ChannelPartition {
        ChannelPartition::classify(per_channel, self.threshold)
    }

    /// Cycles the zero counters need to scan `elems` output elements.
    /// These overlap with the accumulation-buffer drain; the caller only
    /// pays `max(0, detector − drain)`, which is zero whenever the PPU
    /// width matches the drain width (the design point).
    pub fn count_cycles(&self, elems: u64) -> u64 {
        elems.div_ceil(self.elems_per_cycle.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_mixed_channels() {
        let mut t = Tensor::zeros([1, 2, 2, 2]);
        // Channel 0 all zero; channel 1 all nonzero.
        for y in 0..2 {
            for x in 0..2 {
                t.set(&[0, 1, y, x], 1.0).unwrap();
            }
        }
        let det = SparsityDetector::paper();
        let p = det.detect(&t);
        assert!(p.is_sparse(0));
        assert!(!p.is_sparse(1));
    }

    #[test]
    fn threshold_boundary_inclusive() {
        let det = SparsityDetector::with_threshold(0.5);
        let p = det.detect_from_sparsity(&[0.5, 0.49]);
        assert!(p.is_sparse(0));
        assert!(!p.is_sparse(1));
    }

    #[test]
    fn counting_cycles_scale_with_width() {
        let det = SparsityDetector::paper();
        assert_eq!(det.count_cycles(0), 0);
        assert_eq!(det.count_cycles(16), 1);
        assert_eq!(det.count_cycles(17), 2);
        let wide = SparsityDetector {
            elems_per_cycle: 64,
            ..det
        };
        assert_eq!(wide.count_cycles(64), 1);
    }

    #[test]
    fn paper_threshold_matches_sparsity_crate() {
        assert_eq!(SparsityDetector::paper().threshold, 0.30);
    }
}
