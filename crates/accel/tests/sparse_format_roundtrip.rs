//! Property-style round-trip tests of the sparse bitmap codec
//! (`SparseChannel`): encode→decode must be the identity for any channel
//! contents, including the empty and fully-dense edge cases the bitmap
//! word-packing is most likely to get wrong.

use proptest::prelude::*;
use sqdm_accel::SparseChannel;
use sqdm_tensor::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode→decode is the identity for arbitrary sparsity mixes and for
    /// lengths straddling the 64-element bitmap word boundary.
    #[test]
    fn encode_decode_identity(
        dense in proptest::collection::vec(
            prop_oneof![2 => Just(0.0f32), 1 => -100.0f32..100.0],
            0..520,
        )
    ) {
        let enc = SparseChannel::encode(&dense);
        prop_assert_eq!(enc.decode(), dense.clone());
        prop_assert_eq!(enc.len(), dense.len());
        let nnz = dense.iter().filter(|&&v| v != 0.0).count();
        prop_assert_eq!(enc.nnz(), nnz);
        let sum_enc: f32 = enc.values().iter().sum();
        let sum_dense: f32 = dense.iter().sum();
        prop_assert!((sum_enc - sum_dense).abs() < 1e-3);
    }

    /// The presence bitmap agrees element-by-element with the dense input.
    #[test]
    fn bitmap_matches_dense(
        dense in proptest::collection::vec(
            prop_oneof![Just(0.0f32), Just(1.0f32)],
            1..200,
        )
    ) {
        let enc = SparseChannel::encode(&dense);
        for (i, &v) in dense.iter().enumerate() {
            prop_assert_eq!(enc.contains(i), v != 0.0, "element {}", i);
        }
    }
}

#[test]
fn seeded_random_channels_round_trip() {
    // Deterministic seeded sweep across densities and word-boundary lengths.
    let mut rng = Rng::seed_from(0xC0DEC);
    for &len in &[0usize, 1, 63, 64, 65, 127, 128, 129, 4096] {
        for &density in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let dense: Vec<f32> = (0..len)
                .map(|_| {
                    if rng.bernoulli(density) {
                        rng.normal()
                    } else {
                        0.0
                    }
                })
                .collect();
            let enc = SparseChannel::encode(&dense);
            assert_eq!(enc.decode(), dense, "len {len} density {density}");
        }
    }
}

#[test]
fn empty_channel_round_trips() {
    let enc = SparseChannel::encode(&[]);
    assert!(enc.is_empty());
    assert_eq!(enc.len(), 0);
    assert_eq!(enc.nnz(), 0);
    assert_eq!(enc.decode(), Vec::<f32>::new());
    // An empty channel occupies no storage at all.
    assert_eq!(enc.storage_bits(4), 0);
}

#[test]
fn all_dense_channel_round_trips() {
    // No zeros anywhere: every element must survive, in scan order.
    let dense: Vec<f32> = (1..=130).map(|i| i as f32).collect();
    let enc = SparseChannel::encode(&dense);
    assert_eq!(enc.nnz(), dense.len());
    assert_eq!(enc.sparsity(), 0.0);
    assert_eq!(enc.values(), dense.as_slice());
    assert_eq!(enc.decode(), dense);
}
