//! Batched serving vs. one-at-a-time sampling.
//!
//! The scale axis of the reproduction: `sqdm_edm::serve::BatchSampler`
//! packs N concurrent denoising requests into one batched U-Net forward
//! per Heun evaluation, so per-step fixed costs — weight (re)quantization
//! on the integer engine, fake-quant weight passes, im2col lowerings,
//! GEMM operand packs — are paid once per step instead of once per
//! request, and the worker pool sees batch × rows of work at a time.
//!
//! `sequential_bN` runs N independent `sample()` calls; `batched_bN`
//! serves the same N requests through the batch sampler (traces off).
//! Results are bitwise identical (pinned by the equivalence suites), so
//! any gap is pure throughput. Measured on this repo's default 16×16
//! INT8-native U-Net: batched wins from batch 2 and the advantage grows
//! with N (~1.2× at batch 4 on a single core from amortization alone;
//! larger with a multi-core pool, which sequential single-sample steps
//! cannot fill).

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_edm::serve::{BatchSampler, ServeRequest};
use sqdm_edm::{block_ids, sample, Denoiser, EdmSchedule, SamplerConfig, UNet, UNetConfig};
use sqdm_quant::{BlockPrecision, ExecMode, PrecisionAssignment, QuantFormat};
use sqdm_tensor::Rng;
use std::hint::black_box;
use std::time::Duration;

const STEPS: usize = 2;

fn bench_batched_sampler(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let mut net = UNet::new(UNetConfig::default(), &mut rng).expect("default UNet");
    let den = Denoiser::new(EdmSchedule::default());
    let asg = PrecisionAssignment::uniform(
        block_ids::COUNT,
        BlockPrecision::uniform(QuantFormat::int8()),
        "INT8",
    )
    .with_mode(ExecMode::NativeInt);
    let sampler = BatchSampler::new(den).with_traces(false);

    let mut group = c.benchmark_group("batched_sampler");
    for batch in [1usize, 4, 8] {
        let requests: Vec<ServeRequest> = (0..batch as u64)
            .map(|id| ServeRequest::new(id, STEPS).seed(id + 1))
            .collect();
        group.bench_function(format!("sequential_b{batch}"), |b| {
            b.iter(|| {
                for req in &requests {
                    let mut r = Rng::seed_from(req.seed);
                    black_box(
                        sample(
                            &mut net,
                            &den,
                            1,
                            SamplerConfig { steps: STEPS },
                            Some(&asg),
                            &mut r,
                        )
                        .unwrap(),
                    );
                }
            })
        });
        group.bench_function(format!("batched_b{batch}"), |b| {
            b.iter(|| black_box(sampler.run(&mut net, &requests, Some(&asg)).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    targets = bench_batched_sampler
}
criterion_main!(benches);
