//! Figure 10 harness: channel-last vs interleaved addressing, and fetch
//! plan construction.

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_accel::{ActAddressMap, FetchPlan};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig10(c: &mut Criterion) {
    let cl = ActAddressMap::channel_last(64, 32, 32);
    let il = ActAddressMap::interleaved(64, 32, 32);
    println!(
        "fig10: channel fetch bursts — channel-last {}, interleaved {}",
        cl.channel_bursts(0),
        il.channel_bursts(0)
    );

    c.bench_function("fig10_addr_channel_last", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for ch in 0..64 {
                for y in 0..32 {
                    for x in 0..32 {
                        acc = acc.wrapping_add(cl.addr(black_box(ch), y, x));
                    }
                }
            }
            acc
        })
    });
    c.bench_function("fig10_addr_interleaved", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for ch in 0..64 {
                for y in 0..32 {
                    for x in 0..32 {
                        acc = acc.wrapping_add(il.addr(black_box(ch), y, x));
                    }
                }
            }
            acc
        })
    });

    let dense: Vec<usize> = (0..16).collect();
    let sparse: Vec<usize> = (16..64).collect();
    c.bench_function("fig10_fetch_plan", |bch| {
        bch.iter(|| FetchPlan::for_activations(black_box(&cl), &dense, &sparse))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = bench_fig10
}
criterion_main!(benches);
