//! Ablation benches for the design choices called out in DESIGN.md:
//! FP8 vs f32 scale factors, temporal (per-step) vs static channel
//! classification, and channel-last vs interleaved mapping.

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_accel::{Accelerator, AcceleratorConfig, ConvWorkload, LayerQuant, RunStats};
use sqdm_quant::{quant_rmse, ChannelLayout, Granularity, IntGrid, QuantFormat, ScaleEncoding};
use sqdm_sparsity::{ChannelPartition, TemporalTrace};
use sqdm_tensor::{Rng, Tensor};
use std::hint::black_box;
use std::time::Duration;

/// FP8-encoded scales vs ideal f32 scales for the proposed 4-bit format:
/// the error penalty of the cheaper scale storage.
fn ablate_fp8_scales(c: &mut Criterion) {
    let mut rng = Rng::seed_from(40);
    let x = Tensor::randn([1, 24, 16, 16], &mut rng);
    let fp8 = QuantFormat::ours_int4();
    let f32s = QuantFormat {
        grid: IntGrid::signed(4),
        granularity: Granularity::PerBlock(32),
        scale_encoding: ScaleEncoding::F32,
        name: "INT4-F32S",
    };
    let e_fp8 = quant_rmse(&x, fp8, ChannelLayout::ACTIVATION).unwrap();
    let e_f32 = quant_rmse(&x, f32s, ChannelLayout::ACTIVATION).unwrap();
    println!(
        "ablate_fp8_scales: rmse fp8-scales {e_fp8:.5} vs f32-scales {e_f32:.5} ({:+.1}%)",
        (e_fp8 / e_f32 - 1.0) * 100.0
    );
    c.bench_function("ablate_fp8_scale_quant", |bch| {
        bch.iter(|| quant_rmse(black_box(&x), fp8, ChannelLayout::ACTIVATION).unwrap())
    });
}

/// Static (one-shot) vs temporal (per-step) channel classification over a
/// drifting sparsity trace.
fn ablate_static_vs_temporal(c: &mut Criterion) {
    let mut rng = Rng::seed_from(41);
    let channels = 24;
    let steps = 12;
    let mut trace = TemporalTrace::new(channels);
    // Channels drift: sparse early (high noise), denser later.
    for step in 0..steps {
        let drift = 0.25 * step as f64 / steps as f64;
        trace.push_step(
            (0..channels)
                .map(|ch| {
                    let base = if ch % 3 == 0 { 0.85 } else { 0.55 };
                    (base - drift + 0.1 * (rng.uniform() as f64 - 0.5)).clamp(0.0, 1.0)
                })
                .collect(),
        );
    }
    let het = Accelerator::new(AcceleratorConfig::paper());
    let base = Accelerator::new(AcceleratorConfig::dense_baseline());
    let mk = |sp: &[f64]| ConvWorkload::with_sparsity(24, 24, 3, 3, 16, 16, sp.to_vec());

    let static_part = ChannelPartition::balanced(trace.step(0), 0.9);
    let mut s_static = RunStats::default();
    let mut s_temporal = RunStats::default();
    let mut s_base = RunStats::default();
    for step in 0..steps {
        let w = mk(trace.step(step));
        let stale = ChannelPartition::balanced_stale(trace.step(0), trace.step(step), 0.9);
        let fresh = ChannelPartition::balanced(trace.step(step), 0.9);
        let _ = &static_part;
        s_static.push(&het.run_layer(&w, Some(&stale), LayerQuant::int4()));
        s_temporal.push(&het.run_layer(&w, Some(&fresh), LayerQuant::int4()));
        s_base.push(&base.run_layer(&w, None, LayerQuant::int4()));
    }
    println!(
        "ablate_static_vs_temporal: static {:.2}x vs temporal {:.2}x over dense baseline",
        s_static.speedup_vs(&s_base),
        s_temporal.speedup_vs(&s_base)
    );
    c.bench_function("ablate_temporal_partition", |bch| {
        bch.iter(|| ChannelPartition::balanced(black_box(trace.step(3)), 0.9))
    });
}

/// Channel-last vs interleaved mapping: buffer fetch cycles for one layer's
/// channel-ordered fetch.
fn ablate_mapping(c: &mut Criterion) {
    use sqdm_accel::ActAddressMap;
    let cl = ActAddressMap::channel_last(64, 16, 16);
    let il = ActAddressMap::interleaved(64, 16, 16);
    // A burst costs 1 setup beat + len/width beats; interleaved fetches are
    // per-pixel bursts.
    let width = 16usize;
    let cost = |bursts: usize, elems: usize| bursts + elems.div_ceil(width);
    let cl_cost = cost(64, 64 * 256);
    let il_cost = cost(64 * 256, 64 * 256);
    println!(
        "ablate_mapping: fetch beats channel-last {cl_cost} vs interleaved {il_cost} ({:.1}x)",
        il_cost as f64 / cl_cost as f64
    );
    c.bench_function("ablate_mapping_burst_enum", |bch| {
        bch.iter(|| {
            let mut total = 0usize;
            for ch in 0..64 {
                total += black_box(&cl).channel_bursts(ch) + il.channel_bursts(ch);
            }
            total
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = ablate_fp8_scales, ablate_static_vs_temporal, ablate_mapping
}
criterion_main!(benches);
