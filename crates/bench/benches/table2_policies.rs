//! Table II harness: times denoiser evaluation under each of the table's
//! precision assignments and prints the modeled savings columns.

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_edm::{block_profiles, Denoiser, EdmSchedule, RunConfig, UNet, UNetConfig};
use sqdm_quant::{evaluate_cost, PrecisionAssignment, QuantFormat};
use sqdm_tensor::{Rng, Tensor};
use std::hint::black_box;
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    let cfg = UNetConfig::default();
    let mut rng = Rng::seed_from(11);
    let mut net = UNet::new(cfg, &mut rng).unwrap();
    let den = Denoiser::new(EdmSchedule::default());
    let x = Tensor::randn([1, 3, 16, 16], &mut rng);
    let profiles = block_profiles(&cfg);

    let methods: Vec<(&str, PrecisionAssignment)> = vec![
        (
            "INT4-VSQ",
            PrecisionAssignment::uniform(
                sqdm_edm::block_ids::COUNT,
                sqdm_quant::BlockPrecision::uniform(QuantFormat::int4_vsq()),
                "INT4-VSQ",
            ),
        ),
        (
            "Ours(MP-only)",
            PrecisionAssignment::paper_mixed(&profiles, 1, 1, false),
        ),
        (
            "Ours(MP+ReLU)",
            PrecisionAssignment::paper_mixed(&profiles, 1, 1, true),
        ),
    ];

    let mut group = c.benchmark_group("table2_denoise");
    for (name, assignment) in methods {
        let cost = evaluate_cost(&profiles, &assignment);
        println!(
            "table2 {name:>14}: compute saving {:.0}%, memory saving {:.0}%",
            cost.compute_saving * 100.0,
            cost.memory_saving * 100.0
        );
        group.bench_function(name, |bch| {
            bch.iter(|| {
                let mut rc = RunConfig {
                    train: false,
                    assignment: Some(&assignment),
                    observer: None,
                    batched: false,
                    packs: None,
                    delta: None,
                };
                den.denoise(black_box(&mut net), black_box(&x), &[1.0], &mut rc)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = bench_table2
}
criterion_main!(benches);
