//! Dense f32 vs native-int vs sparse-delta GEMM.
//!
//! The three execution models the repo now implements, on one layer-sized
//! GEMM (`[256, 256] × [256, 256]`, the conv lowering shape of a
//! mid-sized block):
//!
//! * `f32_dense` — the fake-quant reference: dequantized operands through
//!   the f32 kernel.
//! * `int8_dense` — the native engine: i8 codes, i32 accumulation, one
//!   requantization per scale block.
//! * `int8_delta_pXX` — the temporal sparse-delta kernel at XX% *unchanged*
//!   reduction rows, masked by a `sqdm_sparsity` change mask exactly as
//!   the sampler's consecutive denoising steps would produce it.
//!
//! The paper's claim in miniature: at ≥50% temporal sparsity the delta
//! kernel beats the dense f32 baseline, and its advantage grows with the
//! unchanged fraction (~2.2× at 75%, ~4.7× at 90% on a 4-core host).
//! Dense i32 multiply-accumulate alone does *not* beat f32 FMA on
//! commodity SIMD without INT8 dot-product instructions — which is the
//! paper's own argument: the integer format pays off through dedicated
//! datapaths and, as here, through the work that temporal sparsity
//! removes.

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_sparsity::TemporalTrace;
use sqdm_tensor::ops::int::{qgemm, qgemm_delta, QuantizedMatrix, XQuant};
use sqdm_tensor::ops::matmul;
use sqdm_tensor::{Rng, Tensor};
use std::hint::black_box;
use std::time::Duration;

const M: usize = 256;
const K: usize = 256;
const N: usize = 256;

/// Builds a change mask over `K` reduction rows with the given fraction of
/// *unchanged* rows, routed through the real `TemporalTrace` API so the
/// bench consumes exactly what the sampler produces.
fn change_mask_rows(unchanged_fraction: f64) -> Vec<bool> {
    let mut trace = TemporalTrace::new(K);
    // Step 0: all channels at 0.5. Step 1: a prefix moves, the rest stays.
    trace.push_step(vec![0.5; K]);
    let moved = ((1.0 - unchanged_fraction) * K as f64).round() as usize;
    let step1: Vec<f64> = (0..K).map(|c| if c < moved { 0.9 } else { 0.5 }).collect();
    trace.push_step(step1);
    let mask = trace.change_mask(1, 0.1);
    mask.expand_rows(1)
}

fn bench_gemm_models(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);

    // Quantized weights: per-channel i8 codes.
    let w_codes: Vec<i8> = (0..M * K)
        .map(|_| (rng.uniform() * 254.0 - 127.0) as i8)
        .collect();
    let w_scales: Vec<f32> = (0..M).map(|_| 0.005 + rng.uniform() * 0.01).collect();
    let wq = QuantizedMatrix::per_channel(w_codes.clone(), M, K, w_scales.clone()).unwrap();
    let xq = XQuant::symmetric(0.02);

    // Two consecutive steps of activation codes; the "previous" step and a
    // current step that differs only in the changed rows.
    let x_prev: Vec<i8> = (0..K * N)
        .map(|_| (rng.uniform() * 254.0 - 127.0) as i8)
        .collect();

    // Dequantized f32 operands for the fake-quant baseline.
    let wf = Tensor::from_vec(
        w_codes
            .iter()
            .enumerate()
            .map(|(i, &v)| v as f32 * w_scales[i / K])
            .collect(),
        [M, K],
    )
    .unwrap();
    let xf = Tensor::from_vec(
        x_prev.iter().map(|&v| v as f32 * xq.scale).collect(),
        [K, N],
    )
    .unwrap();

    let mut prev_out = vec![0.0f32; M * N];
    qgemm(&wq, &x_prev, N, xq, &mut prev_out).unwrap();

    let mut group = c.benchmark_group("gemm_256_models");
    group.bench_function("f32_dense", |b| {
        b.iter(|| matmul(black_box(&wf), black_box(&xf)).unwrap())
    });
    group.bench_function("int8_dense", |b| {
        let mut out = vec![0.0f32; M * N];
        b.iter(|| {
            qgemm(black_box(&wq), black_box(&x_prev), N, xq, &mut out).unwrap();
            black_box(out[0])
        })
    });

    for unchanged in [0.5f64, 0.75, 0.9] {
        let mask = change_mask_rows(unchanged);
        let kept = mask.iter().filter(|&&m| !m).count();
        assert!(
            kept as f64 >= unchanged * K as f64 - 1.0,
            "mask should leave ~{unchanged} of rows unchanged"
        );
        // Current step: changed rows get fresh codes, unchanged rows are
        // carried over — the delta kernel never reads them.
        let mut x_curr = x_prev.clone();
        for (r, &changed) in mask.iter().enumerate() {
            if changed {
                for j in 0..N {
                    x_curr[r * N + j] = x_curr[r * N + j].wrapping_add(3);
                }
            }
        }
        let label = format!("int8_delta_p{:02}", (unchanged * 100.0) as u32);
        group.bench_function(label, |b| {
            let mut out = vec![0.0f32; M * N];
            b.iter(|| {
                qgemm_delta(
                    black_box(&wq),
                    black_box(&x_curr),
                    black_box(&x_prev),
                    black_box(&mask),
                    N,
                    xq,
                    black_box(&prev_out),
                    &mut out,
                )
                .unwrap();
                black_box(out[0])
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_gemm_models
}
criterion_main!(benches);
