//! Online-serving load test: continuous batching vs. gang scheduling.
//!
//! `sqdm_edm::serve::Scheduler` admits queued requests into the in-flight
//! batch at step boundaries (continuous batching); the
//! `AdmissionPolicy::Gang` baseline waits for `max_batch` requests to
//! assemble before launching a static batch. Under staggered Poisson
//! arrivals the two run the same total work — every output is bitwise the
//! solo `sample()` image either way — but continuous admission starts each
//! request as soon as capacity allows, so its **mean request latency** (in
//! virtual steps, from `ServeStats`) is strictly better; the gang
//! baseline's first arrival idles until the gang fills.
//!
//! The Criterion timings compare wall-clock per full trace drain; the
//! latency comparison is printed (and asserted) once per group from the
//! schedulers' `ServeStats`, since virtual-step latency is deterministic
//! and needs no repeated measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_bench::poisson_arrivals;
use sqdm_edm::serve::{AdmissionPolicy, ScheduledRequest, Scheduler, ServeRequest};
use sqdm_edm::{block_ids, Denoiser, EdmSchedule, UNet, UNetConfig};
use sqdm_quant::{BlockPrecision, ExecMode, PrecisionAssignment, QuantFormat};
use sqdm_tensor::Rng;
use std::hint::black_box;
use std::time::Duration;

/// Concurrent requests in the load trace.
const REQUESTS: usize = 8;
/// Mean arrivals per virtual step of the Poisson trace.
const RATE: f64 = 0.8;
/// In-flight batch capacity.
const MAX_BATCH: usize = 4;

/// The Poisson load trace: mixed 2/3-step budgets, staggered arrivals.
fn trace() -> Vec<ScheduledRequest> {
    poisson_arrivals(REQUESTS, RATE, 42)
        .into_iter()
        .enumerate()
        .map(|(i, arrival)| {
            ScheduledRequest::new(
                ServeRequest::new(i as u64, 2 + i % 2).seed(i as u64 + 1),
                arrival,
            )
        })
        .collect()
}

fn bench_serve_load(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let mut net = UNet::new(UNetConfig::default(), &mut rng).expect("default UNet");
    let den = Denoiser::new(EdmSchedule::default());
    let asg = PrecisionAssignment::uniform(
        block_ids::COUNT,
        BlockPrecision::uniform(QuantFormat::int8()),
        "INT8",
    )
    .with_mode(ExecMode::NativeInt);
    let requests = trace();

    let continuous = Scheduler::new(den, MAX_BATCH).with_traces(false);
    let gang = continuous.with_policy(AdmissionPolicy::Gang);

    // Latency comparison on the virtual clock (deterministic — one run).
    let (_, cont_stats) = continuous.run(&mut net, &requests, Some(&asg)).unwrap();
    let (_, gang_stats) = gang.run(&mut net, &requests, Some(&asg)).unwrap();
    println!(
        "serve_load: mean latency {:.2} steps continuous vs {:.2} gang \
         (queue delay {:.2} vs {:.2}, occupancy {:.2} vs {:.2})",
        cont_stats.mean_latency(),
        gang_stats.mean_latency(),
        cont_stats.mean_queue_delay(),
        gang_stats.mean_queue_delay(),
        cont_stats.mean_batch_occupancy(),
        gang_stats.mean_batch_occupancy(),
    );
    assert!(
        cont_stats.mean_latency() < gang_stats.mean_latency(),
        "continuous batching must beat gang scheduling on mean latency: {} vs {}",
        cont_stats.mean_latency(),
        gang_stats.mean_latency()
    );

    let mut group = c.benchmark_group("serve_load");
    group.bench_function(format!("continuous_poisson_n{REQUESTS}"), |b| {
        b.iter(|| black_box(continuous.run(&mut net, &requests, Some(&asg)).unwrap()))
    });
    group.bench_function(format!("gang_poisson_n{REQUESTS}"), |b| {
        b.iter(|| black_box(gang.run(&mut net, &requests, Some(&asg)).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    targets = bench_serve_load
}
criterion_main!(benches);
