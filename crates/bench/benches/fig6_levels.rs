//! Figure 6 harness: times the level-utilization analysis and prints the
//! figure's numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_quant::{figure6_comparison, level_utilization, IntGrid};
use sqdm_tensor::ops::Activation;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig6(c: &mut Criterion) {
    let (silu, relu) = figure6_comparison();
    println!(
        "fig6: SiLU+INT4 uses {}/{} levels, ReLU+UINT4 uses {}/{}",
        silu.used_levels, silu.total_levels, relu.used_levels, relu.total_levels
    );
    c.bench_function("fig6_level_utilization", |bch| {
        bch.iter(|| {
            level_utilization(
                black_box(Activation::Silu),
                IntGrid::signed(4),
                -1.0,
                1.0,
                10_000,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = bench_fig6
}
criterion_main!(benches);
