//! Serial-vs-parallel microbenchmarks for the worker-pool kernel layer.
//!
//! Each benchmark runs the same kernel twice: once pinned to one thread
//! (`with_threads(1, ..)`, today's serial baseline) and once on the
//! default pool (`SQDM_THREADS` or the machine's available parallelism).
//! Because the pool is bitwise-deterministic, the two compute the exact
//! same bits — only the wall-clock should differ. The headline target is
//! the 256×256×256 matmul: ≥3× over serial on 4 cores. On a single-core
//! host the "parallel" numbers simply match the serial ones.

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_tensor::ops::{conv2d, conv2d_backward, matmul, softmax_rows, Conv2dGeometry};
use sqdm_tensor::parallel::{current_threads, with_threads};
use sqdm_tensor::{Rng, Tensor};
use std::hint::black_box;
use std::time::Duration;

fn bench_matmul_256(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let a = Tensor::randn([256, 256], &mut rng);
    let b = Tensor::randn([256, 256], &mut rng);
    let threads = current_threads();
    let mut group = c.benchmark_group("matmul_256x256x256");
    group.bench_function("serial_1t", |bch| {
        bch.iter(|| with_threads(1, || matmul(black_box(&a), black_box(&b)).unwrap()))
    });
    group.bench_function(format!("parallel_{threads}t"), |bch| {
        bch.iter(|| matmul(black_box(&a), black_box(&b)).unwrap())
    });
    group.finish();
}

fn bench_conv_parallel(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let x = Tensor::randn([2, 16, 32, 32], &mut rng);
    let w = Tensor::randn([16, 16, 3, 3], &mut rng);
    let geom = Conv2dGeometry::same(3);
    let y = conv2d(&x, &w, None, geom).unwrap();
    let gout = Tensor::ones(y.dims());
    let threads = current_threads();

    let mut group = c.benchmark_group("conv2d_fwd_16ch_32px");
    group.bench_function("serial_1t", |bch| {
        bch.iter(|| {
            with_threads(1, || {
                conv2d(black_box(&x), black_box(&w), None, geom).unwrap()
            })
        })
    });
    group.bench_function(format!("parallel_{threads}t"), |bch| {
        bch.iter(|| conv2d(black_box(&x), black_box(&w), None, geom).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("conv2d_bwd_16ch_32px");
    group.bench_function("serial_1t", |bch| {
        bch.iter(|| {
            with_threads(1, || {
                conv2d_backward(black_box(&x), black_box(&w), black_box(&gout), geom).unwrap()
            })
        })
    });
    group.bench_function(format!("parallel_{threads}t"), |bch| {
        bch.iter(|| conv2d_backward(black_box(&x), black_box(&w), black_box(&gout), geom).unwrap())
    });
    group.finish();
}

fn bench_softmax_parallel(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let x = Tensor::randn([512, 512], &mut rng);
    let threads = current_threads();
    let mut group = c.benchmark_group("softmax_512x512");
    group.bench_function("serial_1t", |bch| {
        bch.iter(|| with_threads(1, || softmax_rows(black_box(&x)).unwrap()))
    });
    group.bench_function(format!("parallel_{threads}t"), |bch| {
        bch.iter(|| softmax_rows(black_box(&x)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    targets = bench_matmul_256, bench_conv_parallel, bench_softmax_parallel
}
criterion_main!(benches);
