//! Figure 12 harness: full-system simulation throughput and the modeled
//! speed-up/energy numbers on a paper-shaped workload.

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_accel::{Accelerator, AcceleratorConfig, ConvWorkload, LayerQuant, RunStats};
use sqdm_sparsity::ChannelPartition;
use sqdm_tensor::Rng;
use std::hint::black_box;
use std::time::Duration;

/// A U-Net-shaped layer stack with ReLU-like per-channel sparsities.
fn model_layers(rng: &mut Rng) -> Vec<ConvWorkload> {
    let mut layers = Vec::new();
    for &(k, c, sp) in &[(12usize, 12usize, 16usize); 8] {
        let sparsity: Vec<f64> = (0..c)
            .map(|_| (0.65 + 0.3 * (rng.uniform() as f64 - 0.5)).clamp(0.0, 0.95))
            .collect();
        layers.push(ConvWorkload::with_sparsity(k, c, 3, 3, sp, sp, sparsity));
    }
    for _ in 0..6 {
        let sparsity: Vec<f64> = (0..24)
            .map(|_| (0.65 + 0.3 * (rng.uniform() as f64 - 0.5)).clamp(0.0, 0.95))
            .collect();
        layers.push(ConvWorkload::with_sparsity(24, 24, 3, 3, 8, 8, sparsity));
    }
    layers
}

fn bench_fig12(c: &mut Criterion) {
    let mut rng = Rng::seed_from(31);
    let layers = model_layers(&mut rng);
    let het = Accelerator::new(AcceleratorConfig::paper());
    let base = Accelerator::new(AcceleratorConfig::dense_baseline());

    // Print the modeled numbers (the figure's content).
    let mut ours = RunStats::default();
    let mut dense4 = RunStats::default();
    let mut dense16 = RunStats::default();
    for w in &layers {
        let p = ChannelPartition::balanced(&w.act_sparsity, 0.9);
        ours.push(&het.run_layer(w, Some(&p), LayerQuant::int4()));
        dense4.push(&base.run_layer(w, None, LayerQuant::int4()));
        dense16.push(&base.run_layer(w, None, LayerQuant::fp16()));
    }
    println!(
        "fig12: sparsity speed-up {:.2}x | energy saving {:.1}% | quant {:.2}x | total {:.2}x",
        ours.speedup_vs(&dense4),
        ours.energy_saving_vs(&dense4) * 100.0,
        dense4.speedup_vs(&dense16),
        ours.speedup_vs(&dense16),
    );

    c.bench_function("fig12_sim_model_het", |bch| {
        bch.iter(|| {
            let mut s = RunStats::default();
            for w in black_box(&layers) {
                let p = ChannelPartition::balanced(&w.act_sparsity, 0.9);
                s.push(&het.run_layer(w, Some(&p), LayerQuant::int4()));
            }
            s
        })
    });
    c.bench_function("fig12_sim_model_dense", |bch| {
        bch.iter(|| {
            let mut s = RunStats::default();
            for w in black_box(&layers) {
                s.push(&base.run_layer(w, None, LayerQuant::int4()));
            }
            s
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = bench_fig12
}
criterion_main!(benches);
