//! Table I harness: times the per-format quantized denoiser evaluation the
//! table is built from, and prints the divergence each format induces.

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_core::experiments::table1::table1_formats;
use sqdm_edm::{Denoiser, EdmSchedule, RunConfig, UNet, UNetConfig};
use sqdm_tensor::{Rng, Tensor};
use std::hint::black_box;
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    let mut rng = Rng::seed_from(10);
    let mut net = UNet::new(UNetConfig::default(), &mut rng).unwrap();
    let den = Denoiser::new(EdmSchedule::default());
    let x = Tensor::randn([1, 3, 16, 16], &mut rng);
    let reference = den
        .denoise(&mut net, &x, &[1.0], &mut RunConfig::infer())
        .unwrap();

    let mut group = c.benchmark_group("table1_denoise");
    for (name, assignment) in table1_formats(sqdm_edm::block_ids::COUNT) {
        // Print the one-step divergence so the bench doubles as a report.
        let mut rc = RunConfig {
            train: false,
            assignment: assignment.as_ref(),
            observer: None,
            batched: false,
            packs: None,
            delta: None,
        };
        let out = den.denoise(&mut net, &x, &[1.0], &mut rc).unwrap();
        println!(
            "table1 one-step divergence {name:>9}: {:.3e}",
            reference.mse(&out).unwrap()
        );
        group.bench_function(&name, |bch| {
            bch.iter(|| {
                let mut rc = RunConfig {
                    train: false,
                    assignment: assignment.as_ref(),
                    observer: None,
                    batched: false,
                    packs: None,
                    delta: None,
                };
                den.denoise(black_box(&mut net), black_box(&x), &[1.0], &mut rc)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = bench_table1
}
criterion_main!(benches);
