//! Figure 8 harness: the dense/sparse channel-group computation scheme.
//! Verifies that the split partial sums recompose the full convolution and
//! times full vs split execution in the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_accel::{Accelerator, AcceleratorConfig, ConvWorkload, LayerQuant};
use sqdm_sparsity::ChannelPartition;
use sqdm_tensor::ops::{conv2d, Conv2dGeometry};
use sqdm_tensor::{Rng, Tensor};
use std::hint::black_box;
use std::time::Duration;

/// Functional check: conv over dense channel group + conv over sparse
/// channel group equals conv over all channels (Figure 8's partial-sum
/// recomposition).
fn split_conv_matches_full() {
    let mut rng = Rng::seed_from(20);
    let g = Conv2dGeometry::same(3);
    let x = Tensor::randn([1, 8, 8, 8], &mut rng);
    let w = Tensor::randn([4, 8, 3, 3], &mut rng);
    let full = conv2d(&x, &w, None, g).unwrap();

    // Split channels {0,2,4,6} / {1,3,5,7}.
    let pick = |chs: &[usize], x: &Tensor, w: &Tensor| {
        let mut xs = Tensor::zeros([1, chs.len(), 8, 8]);
        let mut ws = Tensor::zeros([4, chs.len(), 3, 3]);
        for (i, &ch) in chs.iter().enumerate() {
            for y in 0..8 {
                for xx in 0..8 {
                    xs.set(&[0, i, y, xx], x.get(&[0, ch, y, xx]).unwrap())
                        .unwrap();
                }
            }
            for k in 0..4 {
                for r in 0..3 {
                    for s in 0..3 {
                        ws.set(&[k, i, r, s], w.get(&[k, ch, r, s]).unwrap())
                            .unwrap();
                    }
                }
            }
        }
        conv2d(&xs, &ws, None, g).unwrap()
    };
    let even = pick(&[0, 2, 4, 6], &x, &w);
    let odd = pick(&[1, 3, 5, 7], &x, &w);
    let recomposed = even.add(&odd).unwrap();
    let err = full.mse(&recomposed).unwrap();
    assert!(err < 1e-8, "split recomposition error {err}");
    println!("fig8: split-GEMM recomposition error = {err:.3e}");
}

fn bench_fig8(c: &mut Criterion) {
    split_conv_matches_full();

    let w = ConvWorkload::uniform(24, 24, 3, 3, 16, 16, 0.65);
    let partition = ChannelPartition::balanced(&w.act_sparsity, 0.9);
    let het = Accelerator::new(AcceleratorConfig::paper());
    let base = Accelerator::new(AcceleratorConfig::dense_baseline());

    let sh = het.run_layer(&w, Some(&partition), LayerQuant::int4());
    let sb = base.run_layer(&w, None, LayerQuant::int4());
    println!(
        "fig8: dense {} cycles vs split {} cycles ({:.2}x)",
        sb.cycles,
        sh.cycles,
        sb.cycles as f64 / sh.cycles as f64
    );

    c.bench_function("fig8_sim_split", |bch| {
        bch.iter(|| {
            het.run_layer(
                black_box(&w),
                Some(black_box(&partition)),
                LayerQuant::int4(),
            )
        })
    });
    c.bench_function("fig8_sim_dense", |bch| {
        bch.iter(|| base.run_layer(black_box(&w), None, LayerQuant::int4()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = bench_fig8
}
criterion_main!(benches);
