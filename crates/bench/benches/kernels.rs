//! Microbenchmarks of the math kernels underlying every experiment:
//! matmul, convolution (forward/backward), softmax, quantizers and the
//! sparse bitmap codec.

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_accel::SparseChannel;
use sqdm_quant::{fake_quant, ChannelLayout, QuantFormat};
use sqdm_tensor::ops::{conv2d, conv2d_backward, matmul, softmax_rows, Conv2dGeometry};
use sqdm_tensor::{Rng, Tensor};
use std::hint::black_box;
use std::time::Duration;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let a = Tensor::randn([64, 128], &mut rng);
    let b = Tensor::randn([128, 96], &mut rng);
    c.bench_function("matmul_64x128x96", |bch| {
        bch.iter(|| matmul(black_box(&a), black_box(&b)).unwrap())
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let x = Tensor::randn([1, 12, 16, 16], &mut rng);
    let w = Tensor::randn([12, 12, 3, 3], &mut rng);
    let g = Conv2dGeometry::same(3);
    c.bench_function("conv2d_fwd_12ch_16px", |bch| {
        bch.iter(|| conv2d(black_box(&x), black_box(&w), None, g).unwrap())
    });
    let y = conv2d(&x, &w, None, g).unwrap();
    let gout = Tensor::ones(y.dims());
    c.bench_function("conv2d_bwd_12ch_16px", |bch| {
        bch.iter(|| conv2d_backward(black_box(&x), black_box(&w), black_box(&gout), g).unwrap())
    });
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let x = Tensor::randn([64, 64], &mut rng);
    c.bench_function("softmax_64x64", |bch| {
        bch.iter(|| softmax_rows(black_box(&x)).unwrap())
    });
}

fn bench_quantizers(c: &mut Criterion) {
    let mut rng = Rng::seed_from(4);
    let x = Tensor::randn([1, 24, 16, 16], &mut rng);
    let mut group = c.benchmark_group("fake_quant");
    for fmt in [
        QuantFormat::int8(),
        QuantFormat::mxint8(),
        QuantFormat::int4(),
        QuantFormat::int4_vsq(),
        QuantFormat::ours_int4(),
    ] {
        group.bench_function(fmt.name, |bch| {
            bch.iter(|| fake_quant(black_box(&x), fmt, ChannelLayout::ACTIVATION).unwrap())
        });
    }
    group.finish();
}

fn bench_sparse_codec(c: &mut Criterion) {
    let mut rng = Rng::seed_from(5);
    let dense: Vec<f32> = (0..4096)
        .map(|_| {
            if rng.bernoulli(0.65) {
                0.0
            } else {
                rng.normal()
            }
        })
        .collect();
    c.bench_function("sparse_encode_4096_65pct", |bch| {
        bch.iter(|| SparseChannel::encode(black_box(&dense)))
    });
    let enc = SparseChannel::encode(&dense);
    c.bench_function("sparse_decode_4096_65pct", |bch| {
        bch.iter(|| black_box(&enc).decode())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = bench_matmul, bench_conv, bench_softmax, bench_quantizers, bench_sparse_codec
}
criterion_main!(benches);
