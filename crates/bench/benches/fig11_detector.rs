//! Figure 11 harness: the temporal sparsity detector — threshold
//! classification, the load-balanced partitioner and the threshold sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_accel::SparsityDetector;
use sqdm_sparsity::{threshold_sweep, ChannelPartition, TemporalTrace};
use sqdm_tensor::Rng;
use std::hint::black_box;
use std::time::Duration;

fn synthetic_trace(channels: usize, steps: usize) -> TemporalTrace {
    let mut rng = Rng::seed_from(30);
    let mut tr = TemporalTrace::new(channels);
    for _ in 0..steps {
        tr.push_step(
            (0..channels)
                .map(|_| rng.uniform_in(0.0, 1.0) as f64)
                .collect(),
        );
    }
    tr
}

fn bench_fig11(c: &mut Criterion) {
    let tr = synthetic_trace(256, 18);
    let sp: Vec<f64> = tr.step(0).to_vec();

    c.bench_function("fig11_classify_256ch", |bch| {
        bch.iter(|| ChannelPartition::classify(black_box(&sp), 0.3))
    });
    c.bench_function("fig11_balanced_256ch", |bch| {
        bch.iter(|| ChannelPartition::balanced(black_box(&sp), 0.9))
    });
    c.bench_function("fig11_threshold_sweep", |bch| {
        let ths: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
        bch.iter(|| threshold_sweep(black_box(&tr), &ths))
    });

    let det = SparsityDetector::paper();
    println!(
        "fig11: detector scan of 16384 outputs = {} cycles",
        det.count_cycles(16384)
    );
    c.bench_function("fig11_detector_classify", |bch| {
        bch.iter(|| det.detect_from_sparsity(black_box(&sp)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = bench_fig11
}
criterion_main!(benches);
