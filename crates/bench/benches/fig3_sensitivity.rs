//! Figure 3 harness: times the single-block-at-4-bit denoiser evaluations
//! the sensitivity sweep is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use sqdm_core::experiments::fig3::single_block_4bit;
use sqdm_edm::{block_ids, Denoiser, EdmSchedule, RunConfig, UNet, UNetConfig};
use sqdm_tensor::{Rng, Tensor};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig3(c: &mut Criterion) {
    let mut rng = Rng::seed_from(12);
    let mut net = UNet::new(UNetConfig::default(), &mut rng).unwrap();
    let den = Denoiser::new(EdmSchedule::default());
    let x = Tensor::randn([1, 3, 16, 16], &mut rng);

    let mut group = c.benchmark_group("fig3_single_block_4bit");
    for block in [0usize, block_ids::MID_CONV, block_ids::OUT_CONV] {
        let a = single_block_4bit(block_ids::COUNT, block);
        group.bench_function(format!("block{block}"), |bch| {
            bch.iter(|| {
                let mut rc = RunConfig {
                    train: false,
                    assignment: Some(&a),
                    observer: None,
                    batched: false,
                    packs: None,
                    delta: None,
                };
                den.denoise(black_box(&mut net), black_box(&x), &[1.0], &mut rc)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = bench_fig3
}
criterion_main!(benches);
