//! Regenerates every table and figure of the paper in one run, sharing the
//! trained models across experiments. Set `SQDM_FAST=1` for a quick smoke
//! pass.

use sqdm_bench::{cached_pair, report_scale};
use sqdm_edm::DatasetKind;

fn main() {
    let scale = report_scale();
    let mut pairs: Vec<_> = DatasetKind::ALL
        .iter()
        .map(|&k| cached_pair(k, scale))
        .collect();

    println!("=== SQ-DM full reproduction report ===\n");

    println!(
        "{}",
        sqdm_core::experiments::fig4::run(&scale.model).render()
    );
    println!("{}", sqdm_core::experiments::fig6::run().render());

    let t1 = sqdm_core::experiments::table1::run(&mut pairs, &scale).expect("table1");
    println!("{}", t1.render());
    let t2 = sqdm_core::experiments::table2::run(&mut pairs, &scale).expect("table2");
    println!("{}", t2.render());

    let f3 = sqdm_core::experiments::fig3::run(&mut pairs[0], &scale).expect("fig3");
    println!("{}", f3.render());
    let f5 = sqdm_core::experiments::fig5::run(&mut pairs[0], &scale).expect("fig5");
    println!("{}", f5.render());
    let f7 = sqdm_core::experiments::fig7::run(&mut pairs[0], &scale).expect("fig7");
    println!("{}", f7.render());
    let f11 = sqdm_core::experiments::fig11::run(&mut pairs[0], &scale).expect("fig11");
    println!("{}", f11.render());
    let f12 = sqdm_core::experiments::fig12::run(&mut pairs, &scale).expect("fig12");
    println!("{}", f12.render());
    let f1 = sqdm_core::experiments::fig1::run(&mut pairs[0], &scale).expect("fig1");
    println!("{}", f1.render());
    let ext = sqdm_core::experiments::ext_weight_sparsity::run(&mut pairs[0], &scale).expect("ext");
    println!("{}", ext.render());

    println!("=== headline numbers (paper vs measured) ===");
    println!(
        "sparsity speed-up : paper 1.83x, measured {:.2}x",
        f12.mean_sparsity_speedup()
    );
    println!(
        "energy saving     : paper 51.5%, measured {:.1}%",
        f12.mean_energy_saving() * 100.0
    );
    println!(
        "total speed-up    : paper 6.91x, measured {:.2}x",
        f12.mean_total_speedup()
    );
}
