//! Regenerates Figure 5: activation distributions, Conv+SiLU vs Conv+ReLU.

use sqdm_bench::{cached_pair, report_scale};
use sqdm_edm::DatasetKind;

fn main() {
    let scale = report_scale();
    let mut pair = cached_pair(DatasetKind::CifarLike, scale);
    let f = sqdm_core::experiments::fig5::run(&mut pair, &scale).expect("fig5");
    println!("{}", f.render());
}
