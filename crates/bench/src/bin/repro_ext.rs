//! Extension report: 2:4 structured weight sparsity combined with the
//! paper's temporal activation sparsity (§II-B).

use sqdm_bench::{cached_pair, report_scale};
use sqdm_edm::DatasetKind;

fn main() {
    let scale = report_scale();
    let mut pair = cached_pair(DatasetKind::CifarLike, scale);
    let r = sqdm_core::experiments::ext_weight_sparsity::run(&mut pair, &scale).expect("ext");
    println!("{}", r.render());
}
