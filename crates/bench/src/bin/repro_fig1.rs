//! Regenerates Figure 1: headline quality/speed-up per format.

use sqdm_bench::{cached_pair, report_scale};
use sqdm_edm::DatasetKind;

fn main() {
    let scale = report_scale();
    let mut pair = cached_pair(DatasetKind::CifarLike, scale);
    let f = sqdm_core::experiments::fig1::run(&mut pair, &scale).expect("fig1");
    println!("{}", f.render());
}
