//! Demonstrates Figure 10: channel-last vs interleaved address mapping and
//! the burst counts of the sparsity-aware fetch plan.

use sqdm_accel::{ActAddressMap, FetchPlan, WeightAddressMap};

fn main() {
    let (c, h, w) = (16usize, 16usize, 16usize);
    let cl = ActAddressMap::channel_last(c, h, w);
    let il = ActAddressMap::interleaved(c, h, w);
    println!("Figure 10: channel-last data-address mapping");
    println!("activation tensor [C={c}, H={h}, W={w}]");
    println!(
        "  channel fetch bursts: channel-last = {}, interleaved = {}",
        cl.channel_bursts(0),
        il.channel_bursts(0)
    );
    let dense: Vec<usize> = (0..c / 4).collect();
    let sparse: Vec<usize> = (c / 4..c).collect();
    let plan = FetchPlan::for_activations(&cl, &dense, &sparse);
    println!(
        "  fetch plan: {} bursts, {} elements ({} dense ch -> DPE, {} sparse ch -> SPE)",
        plan.burst_count(),
        plan.total_elems(),
        dense.len(),
        sparse.len()
    );
    let wm = WeightAddressMap::new(16, c, 3, 3);
    println!(
        "weights [K=16, C={c}, R=3, S=3]: input-channel 3 occupies addresses {:?}",
        wm.input_channel_range(3)
    );
}
