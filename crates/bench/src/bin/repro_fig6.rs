//! Regenerates Figure 6: quantization level utilization, SiLU+INT4 vs
//! ReLU+UINT4.

fn main() {
    println!("{}", sqdm_core::experiments::fig6::run().render());
}
