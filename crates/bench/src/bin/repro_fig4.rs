//! Regenerates Figure 4: compute and memory breakdown by block type.

use sqdm_bench::report_scale;

fn main() {
    let scale = report_scale();
    let f = sqdm_core::experiments::fig4::run(&scale.model);
    println!("{}", f.render());
}
