//! Regenerates Figure 12: system speed-up and energy evaluation across all
//! datasets.

use sqdm_bench::{cached_pair, report_scale};
use sqdm_edm::DatasetKind;

fn main() {
    let scale = report_scale();
    let mut pairs: Vec<_> = DatasetKind::ALL
        .iter()
        .map(|&k| cached_pair(k, scale))
        .collect();
    let f = sqdm_core::experiments::fig12::run(&mut pairs, &scale).expect("fig12");
    println!("{}", f.render());
}
