//! Regenerates Table II: the proposed mixed-precision schemes vs INT4-VSQ,
//! with compute/memory savings.

use sqdm_bench::{cached_pair, report_scale};
use sqdm_edm::DatasetKind;

fn main() {
    let scale = report_scale();
    let mut pairs: Vec<_> = DatasetKind::ALL
        .iter()
        .map(|&k| cached_pair(k, scale))
        .collect();
    let t = sqdm_core::experiments::table2::run(&mut pairs, &scale).expect("table2");
    println!("{}", t.render());
}
