//! Machine-readable perf smoke harness for the CI perf trajectory.
//!
//! Runs small fixed-shape timings of the repo's hot kernels — dense f32
//! GEMM, native-int `qgemm`, temporal sparse-delta `qgemm_delta`, a
//! batched vs. one-at-a-time sampler step, and a Poisson-arrival online
//! serving scenario (continuous batching vs. gang scheduling, with
//! virtual-step latency metrics) — and emits **one JSON object per
//! result** (NDJSON) on stdout, mirrored into a `BENCH_ci.json` snapshot
//! that is committed at the repo root so the perf trajectory accumulates
//! in git history (CI also uploads it as a workflow artifact).
//!
//! Usage:
//!
//! ```text
//! repro_bench --json [--out BENCH_ci.json]
//! ```
//!
//! Without `--json` a short human-readable table is printed instead (the
//! JSON file is written either way). `ns_per_iter` is the wall-clock
//! **mean** over a fixed iteration budget (one warmup excluded); the JSON
//! carries the raw iteration count and total so downstream tooling can
//! apply its own statistics.

#![warn(missing_docs)]

use sqdm_bench::{delta_sweep_mask, poisson_arrivals};
use sqdm_edm::serve::{
    AdmissionPolicy, BatchSampler, ScheduledRequest, Scheduler, ServeRequest, ServeStats,
};
use sqdm_edm::{
    block_ids, sample, Denoiser, EdmSchedule, ModelRegistry, RegistryRequest, RegistryScheduler,
    SamplerConfig, UNet, UNetConfig,
};
use sqdm_quant::{BlockPrecision, ExecMode, PrecisionAssignment, QuantFormat};
use sqdm_tensor::ops::int::{qgemm, qgemm_delta, QuantizedMatrix, XQuant};
use sqdm_tensor::ops::matmul;
use sqdm_tensor::{parallel, Rng, Tensor};
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

/// GEMM edge for the kernel timings (one mid-sized conv lowering).
const GEMM_DIM: usize = 256;
/// Concurrent requests in the sampler-step comparison.
const BATCH: usize = 4;
/// Step budget per request in the sampler-step comparison.
const STEPS: usize = 3;
/// Requests in the Poisson-arrival serving scenario.
const SERVE_REQUESTS: usize = 6;
/// Mean arrivals per virtual step of the Poisson serving trace.
const SERVE_RATE: f64 = 0.8;
/// In-flight capacity of the serving scenario's scheduler.
const SERVE_MAX_BATCH: usize = 3;

/// One timing result, serialized by hand (one JSON object per line).
struct BenchResult {
    name: String,
    shape: String,
    iters: u32,
    total_ns: u128,
    /// Extra `"key": value` JSON fields (pre-rendered).
    extra: Vec<(String, String)>,
}

impl BenchResult {
    fn ns_per_iter(&self) -> f64 {
        self.total_ns as f64 / self.iters.max(1) as f64
    }

    fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"bench\": \"{}\", \"shape\": \"{}\", \"iters\": {}, \"total_ns\": {}, \"ns_per_iter\": {:.1}",
            self.name,
            self.shape,
            self.iters,
            self.total_ns,
            self.ns_per_iter()
        );
        for (k, v) in &self.extra {
            s.push_str(&format!(", \"{k}\": {v}"));
        }
        s.push('}');
        s
    }
}

/// Times `f` for `iters` iterations after one warmup call.
fn time<F: FnMut()>(name: impl Into<String>, shape: String, iters: u32, mut f: F) -> BenchResult {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    BenchResult {
        name: name.into(),
        shape,
        iters,
        total_ns: start.elapsed().as_nanos(),
        extra: Vec::new(),
    }
}

/// Seed of the sweep's scattered change masks (fixed so re-runs emit
/// byte-identical masks and reviewable `BENCH_ci.json` diffs).
const SWEEP_MASK_SEED: u64 = 1009;

fn kernel_benches(results: &mut Vec<BenchResult>) {
    let (m, k, n) = (GEMM_DIM, GEMM_DIM, GEMM_DIM);
    let shape = format!("{m}x{k}x{n}");
    let mut rng = Rng::seed_from(1);
    let w_codes: Vec<i8> = (0..m * k)
        .map(|_| (rng.uniform() * 254.0 - 127.0) as i8)
        .collect();
    let w_scales: Vec<f32> = (0..m).map(|_| 0.005 + rng.uniform() * 0.01).collect();
    let wq = QuantizedMatrix::per_channel(w_codes.clone(), m, k, w_scales.clone()).unwrap();
    let xq = XQuant::symmetric(0.02);
    let x_prev: Vec<i8> = (0..k * n)
        .map(|_| (rng.uniform() * 254.0 - 127.0) as i8)
        .collect();

    let wf = Tensor::from_vec(
        w_codes
            .iter()
            .enumerate()
            .map(|(i, &v)| v as f32 * w_scales[i / k])
            .collect(),
        [m, k],
    )
    .unwrap();
    let xf = Tensor::from_vec(
        x_prev.iter().map(|&v| v as f32 * xq.scale).collect(),
        [k, n],
    )
    .unwrap();

    results.push(time("dense_gemm_f32", shape.clone(), 20, || {
        black_box(matmul(black_box(&wf), black_box(&xf)).unwrap());
    }));

    let mut out = vec![0.0f32; m * n];
    results.push(time("qgemm_int8", shape.clone(), 20, || {
        qgemm(black_box(&wq), black_box(&x_prev), n, xq, &mut out).unwrap();
        black_box(out[0]);
    }));

    let dense_ns = results
        .last()
        .map(BenchResult::ns_per_iter)
        .unwrap_or(f64::NAN);

    // Sparsity sweep: the delta kernel across the fractions the CI perf
    // gate requires, with seeded scattered masks so every re-run emits
    // identical rows. `speedup_vs_dense` records the curve against the
    // dense int8 recomputation above.
    let mut prev_out = vec![0.0f32; m * n];
    qgemm(&wq, &x_prev, n, xq, &mut prev_out).unwrap();
    for unchanged in sqdm_bench::perf_gate::SWEEP_FRACTIONS {
        let mask = delta_sweep_mask(k, unchanged, SWEEP_MASK_SEED);
        let mut x_curr = x_prev.clone();
        for (r, &ch) in mask.iter().enumerate() {
            if ch {
                for v in &mut x_curr[r * n..(r + 1) * n] {
                    *v = v.wrapping_add(3);
                }
            }
        }
        let mut dout = vec![0.0f32; m * n];
        let mut res = time("qgemm_delta_int8", shape.clone(), 20, || {
            qgemm_delta(
                black_box(&wq),
                black_box(&x_curr),
                black_box(&x_prev),
                black_box(&mask),
                n,
                xq,
                black_box(&prev_out),
                &mut dout,
            )
            .unwrap();
            black_box(dout[0]);
        });
        res.extra
            .push(("unchanged_fraction".into(), format!("{unchanged}")));
        res.extra.push((
            "speedup_vs_dense".into(),
            format!("{:.3}", dense_ns / res.ns_per_iter()),
        ));
        results.push(res);
    }
}

fn sampler_benches(results: &mut Vec<BenchResult>) {
    let mut rng = Rng::seed_from(7);
    let mut net = UNet::new(UNetConfig::default(), &mut rng).expect("default UNet");
    let den = Denoiser::new(EdmSchedule::default());
    let asg = PrecisionAssignment::uniform(
        block_ids::COUNT,
        BlockPrecision::uniform(QuantFormat::int8()),
        "INT8",
    )
    .with_mode(ExecMode::NativeInt);
    let shape = format!(
        "{BATCH}x{}x{}x{} steps={STEPS} int8-native",
        net.config().in_channels,
        net.config().image_size,
        net.config().image_size
    );

    let sequential = time("sampler_steps_sequential", shape.clone(), 3, || {
        for seed in 0..BATCH as u64 {
            let mut r = Rng::seed_from(seed + 1);
            black_box(
                sample(
                    &mut net,
                    &den,
                    1,
                    SamplerConfig { steps: STEPS },
                    Some(&asg),
                    &mut r,
                )
                .unwrap(),
            );
        }
    });

    let sampler = BatchSampler::new(den).with_traces(false);
    let requests: Vec<ServeRequest> = (0..BATCH as u64)
        .map(|id| ServeRequest::new(id, STEPS).seed(id + 1))
        .collect();
    let mut batched = time("sampler_steps_batched", shape, 3, || {
        black_box(sampler.run(&mut net, &requests, Some(&asg)).unwrap());
    });
    let speedup = sequential.ns_per_iter() / batched.ns_per_iter();
    batched
        .extra
        .push(("speedup_vs_sequential".into(), format!("{speedup:.3}")));
    batched.extra.push(("batch".into(), format!("{BATCH}")));
    results.push(sequential);
    results.push(batched);
}

/// Online-serving scenario: the same Poisson-arrival trace drained by the
/// continuous-batching scheduler and by the gang-scheduling baseline.
/// Besides wall-clock, each result carries the deterministic virtual-step
/// latency metrics from `ServeStats`, so the perf trajectory records what
/// continuous admission buys (outputs are bitwise identical either way).
fn serving_benches(results: &mut Vec<BenchResult>) {
    let mut rng = Rng::seed_from(11);
    let mut net = UNet::new(UNetConfig::default(), &mut rng).expect("default UNet");
    let den = Denoiser::new(EdmSchedule::default());
    let asg = PrecisionAssignment::uniform(
        block_ids::COUNT,
        BlockPrecision::uniform(QuantFormat::int8()),
        "INT8",
    )
    .with_mode(ExecMode::NativeInt);
    let requests: Vec<ScheduledRequest> = poisson_arrivals(SERVE_REQUESTS, SERVE_RATE, 42)
        .into_iter()
        .enumerate()
        .map(|(i, arrival)| {
            ScheduledRequest::new(
                ServeRequest::new(i as u64, 2 + i % 2).seed(i as u64 + 1),
                arrival,
            )
        })
        .collect();
    let shape = format!(
        "{SERVE_REQUESTS}req rate={SERVE_RATE} max_batch={SERVE_MAX_BATCH} \
         {}x{}x{} int8-native",
        net.config().in_channels,
        net.config().image_size,
        net.config().image_size
    );

    let continuous = Scheduler::new(den, SERVE_MAX_BATCH).with_traces(false);
    let gang = continuous.with_policy(AdmissionPolicy::Gang);
    let latency_fields = |stats: &ServeStats| {
        vec![
            (
                "mean_latency_steps".into(),
                format!("{:.3}", stats.mean_latency()),
            ),
            (
                "mean_queue_delay_steps".into(),
                format!("{:.3}", stats.mean_queue_delay()),
            ),
            (
                "mean_batch_occupancy".into(),
                format!("{:.3}", stats.mean_batch_occupancy()),
            ),
        ]
    };
    let cont_stats = continuous.run(&mut net, &requests, Some(&asg)).unwrap().1;
    let gang_stats = gang.run(&mut net, &requests, Some(&asg)).unwrap().1;

    let mut cont_res = time("serve_poisson_continuous", shape.clone(), 3, || {
        black_box(continuous.run(&mut net, &requests, Some(&asg)).unwrap());
    });
    cont_res.extra = latency_fields(&cont_stats);
    cont_res.extra.push((
        "latency_win_vs_gang".into(),
        format!(
            "{:.3}",
            gang_stats.mean_latency() / cont_stats.mean_latency()
        ),
    ));
    let mut gang_res = time("serve_poisson_gang", shape, 3, || {
        black_box(gang.run(&mut net, &requests, Some(&asg)).unwrap());
    });
    gang_res.extra = latency_fields(&gang_stats);
    results.push(cont_res);
    results.push(gang_res);
}

/// Requests per traffic scenario in the SLO-percentile suite.
const SCENARIO_REQUESTS: usize = 12;
/// Seed of the scenario traffic generators (fixed so the committed
/// `BENCH_ci.json` rows replay byte-identical traces).
const SCENARIO_SEED: u64 = 23;
/// In-flight capacity of the scenario suite's scheduler.
const SCENARIO_MAX_BATCH: usize = 3;

/// SLO-percentile scenario suite: every traffic shape in
/// `sqdm_edm::traffic::catalogue` drained by the continuous-batching
/// scheduler, one row per scenario (`serve_scenario_<name>`). Each row
/// carries the deterministic virtual-step latency percentiles
/// (p50/p95/p99) and the queue-depth timeline summary, so the perf
/// trajectory records throughput-vs-latency per traffic shape and the CI
/// perf gate can require the full catalogue to stay covered.
fn scenario_benches(results: &mut Vec<BenchResult>) {
    let mut rng = Rng::seed_from(19);
    let mut net = UNet::new(UNetConfig::default(), &mut rng).expect("default UNet");
    let den = Denoiser::new(EdmSchedule::default());
    let asg = PrecisionAssignment::uniform(
        block_ids::COUNT,
        BlockPrecision::uniform(QuantFormat::int8()),
        "INT8",
    )
    .with_mode(ExecMode::NativeInt);
    let shape = format!(
        "{SCENARIO_REQUESTS}req max_batch={SCENARIO_MAX_BATCH} {}x{}x{} int8-native",
        net.config().in_channels,
        net.config().image_size,
        net.config().image_size
    );
    // Unbounded FIFO admission: every request completes, so the latency
    // percentiles cover the full trace (backpressure behavior is pinned
    // separately by the proptest suite and the daemon overload e2e).
    let sched = Scheduler::new(den, SCENARIO_MAX_BATCH).with_traces(false);
    for (name, trace) in sqdm_edm::traffic::catalogue(SCENARIO_REQUESTS, SCENARIO_SEED) {
        let (_, stats) = sched
            .run(&mut net, &trace, Some(&asg))
            .expect("scenario serve");
        let mut res = time(format!("serve_scenario_{name}"), shape.clone(), 3, || {
            black_box(sched.run(&mut net, &trace, Some(&asg)).unwrap());
        });
        let pct = |p: Option<usize>| format!("{}", p.expect("all scenario requests complete"));
        res.extra
            .push(("p50_latency_steps".into(), pct(stats.p50_latency())));
        res.extra
            .push(("p95_latency_steps".into(), pct(stats.p95_latency())));
        res.extra
            .push(("p99_latency_steps".into(), pct(stats.p99_latency())));
        res.extra.push((
            "max_queue_depth".into(),
            format!("{}", stats.max_queue_depth()),
        ));
        res.extra.push((
            "mean_queue_depth".into(),
            format!("{:.3}", stats.mean_queue_depth()),
        ));
        res.extra.push((
            "throughput_steps".into(),
            format!("{:.4}", stats.throughput_per_step()),
        ));
        res.extra.push((
            "mean_latency_steps".into(),
            format!("{:.3}", stats.mean_latency()),
        ));
        results.push(res);
    }
}

/// Step window of the energy suite's per-window admission budget.
const ENERGY_WINDOW: u32 = 4;

/// Per-scenario budget in tenths of a nominal trajectory per window.
/// Dense shapes run at 1.5 streams' worth of round energy, so the cap
/// sheds concurrency the FIFO baseline packs; the slow trickle — whose
/// arrivals land in separate windows and would sail under any per-window
/// budget — gets a cap below one trajectory, which routes every
/// admission through the stall guard and serializes its brief overlaps.
fn energy_budget_tenths(scenario: &str) -> u64 {
    match scenario {
        "slow_trickle" => 4,
        _ => 15,
    }
}

/// Energy-aware serving suite: every traffic shape in
/// `sqdm_edm::traffic::catalogue` drained twice under the accelerator
/// cost model — FIFO admission as the baseline and `EnergyCapped` under
/// a per-window budget — one row per scenario (`serve_energy_<name>`).
/// Each row carries the simulated energy per image for both policies,
/// the capped run's occupancy summary and SLO percentiles, and the FIFO
/// p99, so the CI perf gate can require the cap to keep saving energy at
/// bounded latency inflation. Outputs are bitwise identical either way
/// (costs are simulated and never touch the denoise arithmetic), so the
/// rows measure pure scheduling differences.
fn energy_benches(results: &mut Vec<BenchResult>) {
    use sqdm_accel::PowerProfile;
    use sqdm_edm::{AccelCostModel, CostModel, CostModelConfig};

    let mut rng = Rng::seed_from(29);
    let mut net = UNet::new(UNetConfig::default(), &mut rng).expect("default UNet");
    let den = Denoiser::new(EdmSchedule::default());
    let asg = PrecisionAssignment::uniform(
        block_ids::COUNT,
        BlockPrecision::uniform(QuantFormat::int8()),
        "INT8",
    )
    .with_mode(ExecMode::NativeInt);
    let cost = CostModelConfig::Accel {
        profile: PowerProfile::Efficiency,
    };
    // One stream's nominal per-round energy prices the window budget in
    // trajectory units, the same way the serve-layer unit tests tune it.
    let unit = AccelCostModel::new(PowerProfile::Efficiency, SCENARIO_MAX_BATCH)
        .stream_cost(1)
        .round_energy_pj;
    let shape = format!(
        "{SCENARIO_REQUESTS}req max_batch={SCENARIO_MAX_BATCH} \
         window={ENERGY_WINDOW} {}x{}x{} int8-native",
        net.config().in_channels,
        net.config().image_size,
        net.config().image_size
    );
    let fifo_sched = Scheduler::new(den, SCENARIO_MAX_BATCH)
        .with_traces(false)
        .with_cost_model(cost);
    for (name, trace) in sqdm_edm::traffic::catalogue(SCENARIO_REQUESTS, SCENARIO_SEED) {
        let tenths = energy_budget_tenths(name);
        let budget_pj = (unit * f64::from(ENERGY_WINDOW) * tenths as f64 / 10.0) as u64;
        let capped_sched = fifo_sched.with_policy(AdmissionPolicy::EnergyCapped {
            budget_pj,
            window: ENERGY_WINDOW,
        });
        let (_, fifo) = fifo_sched
            .run(&mut net, &trace, Some(&asg))
            .expect("fifo energy serve");
        let (_, capped) = capped_sched
            .run(&mut net, &trace, Some(&asg))
            .expect("capped energy serve");
        let mut res = time(format!("serve_energy_{name}"), shape.clone(), 3, || {
            black_box(capped_sched.run(&mut net, &trace, Some(&asg)).unwrap());
        });
        res.extra.push((
            "energy_per_image_pj".into(),
            format!("{:.1}", capped.energy_per_image_pj()),
        ));
        res.extra.push((
            "fifo_energy_per_image_pj".into(),
            format!("{:.1}", fifo.energy_per_image_pj()),
        ));
        res.extra.push((
            "energy_savings_vs_fifo".into(),
            format!(
                "{:.3}",
                fifo.energy_per_image_pj() / capped.energy_per_image_pj()
            ),
        ));
        res.extra.push((
            "mean_occupancy".into(),
            format!("{:.3}", capped.mean_occupancy()),
        ));
        res.extra.push((
            "peak_occupancy".into(),
            format!("{:.3}", capped.peak_occupancy()),
        ));
        let pct = |p: Option<usize>| format!("{}", p.expect("all energy requests complete"));
        res.extra
            .push(("p50_latency_steps".into(), pct(capped.p50_latency())));
        res.extra
            .push(("p95_latency_steps".into(), pct(capped.p95_latency())));
        res.extra
            .push(("p99_latency_steps".into(), pct(capped.p99_latency())));
        res.extra
            .push(("fifo_p99_latency_steps".into(), pct(fifo.p99_latency())));
        res.extra.push(("budget_pj".into(), format!("{budget_pj}")));
        results.push(res);
    }
}

/// Multi-tenant registry serving: two resident models, two tenants, the
/// shared Poisson arrival trace, fair-share admission. One timed row for
/// the trajectory plus the zero-allocation steady-state accounting row.
///
/// The steady-state measurement compares two serves that differ only in
/// step budget: the per-request setup cost (streams, stats, noise draws)
/// is identical, so the allocation difference divided by the round
/// difference is the marginal heap cost of one warm serving round. It
/// runs on a single thread — worker threads keep their arena pools
/// disabled by design, so the zero-allocation contract is a property of
/// the serial schedule (see `sqdm_tensor::arena`).
fn registry_benches(results: &mut Vec<BenchResult>) {
    const MODELS: usize = 2;
    const TENANTS: u32 = 2;
    let mut rng = Rng::seed_from(13);
    let den = Denoiser::new(EdmSchedule::default());
    let asg = PrecisionAssignment::uniform(
        block_ids::COUNT,
        BlockPrecision::uniform(QuantFormat::int8()),
        "INT8",
    )
    .with_mode(ExecMode::NativeInt);
    let mut registry = ModelRegistry::new();
    for m in 0..MODELS {
        let net = UNet::new(UNetConfig::default(), &mut rng).expect("default UNet");
        registry.register(format!("model-{m}"), net, Some(asg.clone()), den);
    }
    let mcfg = *registry.model(0).expect("model 0").config();
    let requests = |steps_of: &dyn Fn(usize) -> usize| -> Vec<RegistryRequest> {
        poisson_arrivals(SERVE_REQUESTS, SERVE_RATE, 42)
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                RegistryRequest::new(
                    i % MODELS,
                    ScheduledRequest::new(
                        ServeRequest::new(i as u64, steps_of(i))
                            .seed(i as u64 + 1)
                            .tenant((i as u32) % TENANTS),
                        arrival,
                    ),
                )
            })
            .collect()
    };
    let shape = format!(
        "{MODELS}models {SERVE_REQUESTS}req {TENANTS}tenants rate={SERVE_RATE} \
         max_batch={SERVE_MAX_BATCH} {}x{}x{} int8-native",
        mcfg.in_channels, mcfg.image_size, mcfg.image_size
    );
    let sched = RegistryScheduler::new(SERVE_MAX_BATCH);

    // Timed multi-tenant scenario, with the per-tenant rollups attached.
    let mixed = requests(&|i| 2 + i % 2);
    let (_, stats) = sched.run(&mut registry, &mixed).expect("registry serve");
    let mut timed = time("serve_multi_tenant", shape.clone(), 3, || {
        black_box(sched.run(&mut registry, &mixed).unwrap());
    });
    timed
        .extra
        .push(("rounds".into(), format!("{}", stats.rounds)));
    for r in stats.tenant_rollups() {
        timed.extra.push((
            format!("tenant{}_mean_latency_steps", r.tenant),
            format!("{:.3}", r.mean_latency),
        ));
    }
    results.push(timed);

    // Steady-state allocation accounting, serial by construction.
    let short = requests(&|_| 3);
    let long = requests(&|_| 8);
    let steady = parallel::with_threads(1, || {
        // Warm the pack caches and the arena pool for every shape class
        // the measured serves will touch.
        sched.run(&mut registry, &long).expect("warmup serve");
        let builds_before = registry.pack_builds();
        let t0 = Instant::now();
        let a0 = allocations();
        let (_, s_short) = sched.run(&mut registry, &short).expect("short serve");
        let a1 = allocations();
        let (_, s_long) = sched.run(&mut registry, &long).expect("long serve");
        let a2 = allocations();
        let elapsed = t0.elapsed().as_nanos();
        let extra_rounds = (s_long.rounds - s_short.rounds) as f64;
        let marginal = match (a0, a1, a2) {
            (Some(a0), Some(a1), Some(a2)) => Some((a2 - a1) as f64 - (a1 - a0) as f64),
            _ => None,
        };
        let mut res = BenchResult {
            name: "serve_steady_state".into(),
            shape,
            iters: 2,
            total_ns: elapsed,
            extra: Vec::new(),
        };
        if let Some(marginal) = marginal {
            res.extra.push((
                "allocs_per_round".into(),
                format!("{:.3}", marginal / extra_rounds),
            ));
        }
        res.extra.push((
            "redundant_pack_builds".into(),
            format!("{}", registry.pack_builds() - builds_before),
        ));
        res.extra
            .push(("rounds_measured".into(), format!("{extra_rounds}")));
        res
    });
    results.push(steady);
}

/// Network-serving scenario: the same continuous-batching loop behind the
/// `sqdmd` HTTP boundary. An in-process daemon on an ephemeral port
/// serves Poisson-free back-to-back submissions over real TCP; the timing
/// covers the full wire round trip (submit over the socket, poll status
/// until every image has crossed back), so the trajectory records what
/// the network layer costs on top of in-process serving.
fn daemon_benches(results: &mut Vec<BenchResult>) {
    use sqdm_edm::daemon::{self, DaemonConfig};
    use sqdm_edm::wire::{client, json, RegisterModel, StatsReply, StatusReply, Submit};
    use std::time::Duration;

    let handle = daemon::spawn(DaemonConfig {
        max_batch: SERVE_MAX_BATCH,
        ..DaemonConfig::default()
    })
    .expect("daemon spawn");
    let addr = handle.addr();
    let timeout = Duration::from_secs(60);
    let request = |method: &str, path: &str, body: Option<&str>| {
        let resp = client::request(addr, method, path, body, timeout).expect("daemon request");
        assert!(resp.is_success(), "{} {path}: {}", resp.status, resp.body);
        resp.body
    };
    let body = json::to_string(&RegisterModel {
        name: "bench".into(),
        preset: "micro".into(),
        precision: "int8-native".into(),
        seed: 17,
    })
    .expect("register body");
    request("POST", "/v1/models", Some(&body));

    // Request ids are unique for the daemon's lifetime, so each timed
    // iteration takes a fresh id range.
    let mut next_id = 0u64;
    let shape = format!("{SERVE_REQUESTS}req max_batch={SERVE_MAX_BATCH} http 1x8x8 int8-native");
    let mut res = time("serve_daemon", shape, 3, || {
        let base = next_id;
        next_id += SERVE_REQUESTS as u64;
        for i in 0..SERVE_REQUESTS {
            let sub = Submit {
                model: 0,
                id: base + i as u64,
                seed: i as u64 + 1,
                steps: 2 + i % 2,
                tenant: (i % 2) as u32,
                priority: 0,
            };
            let body = json::to_string(&sub).expect("submit body");
            request("POST", "/v1/submit", Some(&body));
        }
        for i in 0..SERVE_REQUESTS {
            loop {
                let body = request("GET", &format!("/v1/status/{}", base + i as u64), None);
                let status: StatusReply = json::from_str(&body).expect("status decodes");
                match status.state.as_str() {
                    "done" => break,
                    "failed" => panic!("request failed: {:?}", status.error),
                    _ => std::thread::sleep(Duration::from_micros(200)),
                }
            }
        }
    });
    let stats: StatsReply =
        json::from_str(&request("GET", "/v1/stats", None)).expect("stats decode");
    res.extra
        .push(("completed".into(), format!("{}", stats.models[0].completed)));
    res.extra
        .push(("rounds".into(), format!("{}", stats.rounds)));
    if let (Some(p50), Some(p95)) = (stats.models[0].p50_latency, stats.models[0].p95_latency) {
        res.extra
            .push(("p50_latency_steps".into(), format!("{p50}")));
        res.extra
            .push(("p95_latency_steps".into(), format!("{p95}")));
    }
    results.push(res);
    request("POST", "/v1/drain", None);
    handle.shutdown();
}

/// Allocator calls so far, when the counting allocator is installed.
#[cfg(feature = "alloc-count")]
fn allocations() -> Option<u64> {
    Some(sqdm_bench::alloc_count::allocations())
}

/// Without `--features alloc-count` there is nothing to count; the
/// steady-state row is still emitted (the scenario-coverage diff keys on
/// it) but carries no `allocs_per_round`, which the perf gate rejects —
/// regenerating the committed snapshot requires the counting build.
#[cfg(not(feature = "alloc-count"))]
fn allocations() -> Option<u64> {
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_ci.json".to_string());

    let mut results = Vec::new();
    kernel_benches(&mut results);
    sampler_benches(&mut results);
    serving_benches(&mut results);
    scenario_benches(&mut results);
    energy_benches(&mut results);
    registry_benches(&mut results);
    daemon_benches(&mut results);

    // The process default exec mode (`SQDM_EXEC`) and the git revision
    // make a trajectory row attributable without consulting CI logs. The
    // scenarios above pin their modes explicitly; the meta field records
    // the environment the harness ran under.
    let exec_mode = match ExecMode::from_env() {
        ExecMode::NativeInt => "native-int",
        ExecMode::FakeQuant => "fake-quant",
    };
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let meta = format!(
        "{{\"bench\": \"meta\", \"threads\": {}, \"exec_mode\": \"{exec_mode}\", \"rev\": \"{rev}\", \"gemm_dim\": {GEMM_DIM}, \"sampler_batch\": {BATCH}, \"sampler_steps\": {STEPS}, \"serve_requests\": {SERVE_REQUESTS}, \"serve_max_batch\": {SERVE_MAX_BATCH}, \"scenario_requests\": {SCENARIO_REQUESTS}, \"scenario_seed\": {SCENARIO_SEED}}}",
        parallel::current_threads()
    );
    let mut lines = vec![meta];
    lines.extend(results.iter().map(BenchResult::to_json));

    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    for line in &lines {
        writeln!(file, "{line}").expect("write bench line");
    }

    if json {
        for line in &lines {
            println!("{line}");
        }
    } else {
        println!("repro_bench — {} results -> {out_path}", results.len());
        for r in &results {
            println!(
                "  {:<26} {:>12.1} ns/iter  [{}]",
                r.name,
                r.ns_per_iter(),
                r.shape
            );
        }
    }
}
