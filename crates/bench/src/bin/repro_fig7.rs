//! Regenerates Figure 7: the temporal per-channel sparsity bitmap.

use sqdm_bench::{cached_pair, report_scale};
use sqdm_edm::DatasetKind;

fn main() {
    let scale = report_scale();
    let mut pair = cached_pair(DatasetKind::CifarLike, scale);
    let f = sqdm_core::experiments::fig7::run(&mut pair, &scale).expect("fig7");
    println!("{}", f.render());
}
