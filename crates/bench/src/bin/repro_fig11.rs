//! Regenerates Figure 11: sparsity threshold analysis and update-frequency
//! vs speed-up.

use sqdm_bench::{cached_pair, report_scale};
use sqdm_edm::DatasetKind;

fn main() {
    let scale = report_scale();
    let mut pair = cached_pair(DatasetKind::CifarLike, scale);
    let f = sqdm_core::experiments::fig11::run(&mut pair, &scale).expect("fig11");
    println!("{}", f.render());
}
