//! Regenerates Figure 3: block-wise quantization sensitivity.

use sqdm_bench::{cached_pair, report_scale};
use sqdm_edm::DatasetKind;

fn main() {
    let scale = report_scale();
    let mut pair = cached_pair(DatasetKind::CifarLike, scale);
    let f = sqdm_core::experiments::fig3::run(&mut pair, &scale).expect("fig3");
    println!("{}", f.render());
    println!("most sensitive blocks: {:?}", f.most_sensitive(4));
}
