//! Regenerates Table I: sFID of existing quantization formats across the
//! four synthetic datasets.

use sqdm_bench::{cached_pair, report_scale};
use sqdm_edm::DatasetKind;

fn main() {
    let scale = report_scale();
    let mut pairs: Vec<_> = DatasetKind::ALL
        .iter()
        .map(|&k| cached_pair(k, scale))
        .collect();
    let t = sqdm_core::experiments::table1::run(&mut pairs, &scale).expect("table1");
    println!("{}", t.render());
}
