//! CI perf gate over a `BENCH_ci.json`-style NDJSON report.
//!
//! ```text
//! perf_gate <report.json> [<report.json> …]
//! ```
//!
//! Exits nonzero — listing every violation — unless each report shows
//! `qgemm_int8` no slower than `dense_gemm_f32` at the gated 256³ shape,
//! carries the full delta-kernel sparsity sweep (0/25/50/75/90 %
//! unchanged rows), and covers every serving scenario in
//! `perf_gate::REQUIRED_SCENARIOS` — including one `serve_scenario_*`
//! row with p50/p95/p99 latency and queue-depth fields per traffic shape
//! in `sqdm_edm::traffic::catalogue`, and one `serve_energy_*` row per
//! shape proving energy-capped admission spends less simulated energy
//! per image than FIFO at bounded p99 inflation. This is what turns the
//! repo's central perf claims from prose into checked invariants: a
//! kernel, serving, or energy regression fails CI instead of silently
//! landing in the bench trajectory.

#![warn(missing_docs)]

use sqdm_bench::perf_gate;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: perf_gate <report.json> [<report.json> …]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let report = match std::fs::read_to_string(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("perf_gate: cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        let errs = perf_gate::violations(&report);
        if errs.is_empty() {
            println!("perf_gate: {path}: OK");
        } else {
            failed = true;
            eprintln!("perf_gate: {path}: FAILED");
            for e in &errs {
                eprintln!("  - {e}");
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
