//! # sqdm-bench
//!
//! Benchmark harness support for the SQ-DM reproduction: shared fixtures
//! for the Criterion benches (`benches/`) and the `repro_*` report binaries
//! (`src/bin/`) that regenerate every table and figure of the paper.
//!
//! Run `cargo run --release -p sqdm-bench --bin repro_all` for the complete
//! paper-scale report, or individual `repro_table1` … `repro_fig12`
//! binaries for single artifacts. `cargo bench` measures the kernels and
//! experiment components on small fixed workloads.

#![warn(missing_docs)]

use sqdm_core::{ExperimentScale, TrainedPair};
use sqdm_edm::DatasetKind;
use std::sync::{Mutex, OnceLock};

/// Scale used by the report binaries. Override the training budget with
/// `SQDM_FAST=1` for a fast smoke run.
pub fn report_scale() -> ExperimentScale {
    if std::env::var("SQDM_FAST").is_ok() {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    }
}

/// Scale used by Criterion benches (small and fixed, so timing noise stays
/// low).
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale::quick()
}

/// Deterministic Poisson-process arrival trace for the serving benches:
/// `n` arrival steps with exponential inter-arrival gaps of mean
/// `1.0 / rate` virtual steps, floored onto the scheduler's integer step
/// clock. Seeded, so every bench and CI run replays the identical trace.
pub fn poisson_arrivals(n: usize, rate: f64, seed: u64) -> Vec<usize> {
    assert!(rate > 0.0, "arrival rate must be positive");
    let mut rng = sqdm_tensor::Rng::seed_from(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            // Inverse-CDF exponential; uniform() is in [0, 1), so the
            // argument of ln stays strictly positive.
            let u = f64::from(rng.uniform());
            t += -(1.0 - u).ln() / rate;
            t.floor() as usize
        })
        .collect()
}

/// Deterministic scattered change mask for the delta-kernel sparsity
/// sweep: exactly `round((1 − unchanged_fraction) · k)` of the `k` rows
/// are marked changed, chosen by a seeded partial Fisher–Yates shuffle so
/// re-runs emit identical masks (and therefore reviewable `BENCH_ci.json`
/// diffs), while the scatter keeps the mask representative of real
/// temporal traces (changed rows spread across scale blocks rather than
/// packed at the front).
pub fn delta_sweep_mask(k: usize, unchanged_fraction: f64, seed: u64) -> Vec<bool> {
    assert!(
        (0.0..=1.0).contains(&unchanged_fraction),
        "unchanged_fraction must be in [0, 1]"
    );
    let changed = ((1.0 - unchanged_fraction) * k as f64).round() as usize;
    let changed = changed.min(k);
    let mut rows: Vec<usize> = (0..k).collect();
    let mut rng = sqdm_tensor::Rng::seed_from(seed);
    let mut mask = vec![false; k];
    for slot in 0..changed {
        let span = k - slot;
        let offset = ((f64::from(rng.uniform()) * span as f64) as usize).min(span - 1);
        rows.swap(slot, slot + offset);
        mask[rows[slot]] = true;
    }
    mask
}

/// Allocation accounting for the zero-allocation steady-state gate.
///
/// With the `alloc-count` feature a counting [`std::alloc::GlobalAlloc`]
/// wraps the system allocator so `repro_bench` can measure how many real
/// allocator calls a steady-state serving round performs (the arena pool
/// is deliberately *not* an allocator wrapper, so pool hits are invisible
/// here — exactly the point of the metric).
#[cfg(feature = "alloc-count")]
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// The counting allocator: system allocation plus one relaxed atomic
    /// increment per `alloc`/`realloc` call.
    struct CountingAlloc;

    // SAFETY: delegates every operation unchanged to `System`; the counter
    // has no effect on the returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Total allocator calls (`alloc` + `realloc`) since process start.
    /// Monotone; measure an interval by differencing two reads.
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// The CI perf gate over `BENCH_ci.json`-style NDJSON reports.
pub mod perf_gate {
    /// The GEMM shape the int8-vs-f32 comparison is gated at.
    pub const GATED_SHAPE: &str = "256x256x256";
    /// The `unchanged_fraction` sweep points the delta speedup curve must
    /// cover (0/25/50/75/90 % unchanged rows).
    pub const SWEEP_FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 0.9];
    /// Ceiling on marginal heap allocations per steady-state serving
    /// round. The arena pool absorbs every per-round buffer after warmup;
    /// the small slack covers amortized growth of the stats vectors.
    pub const MAX_ALLOCS_PER_ROUND: f64 = 2.0;
    /// Ceiling on p99 latency inflation the energy-capped policy may pay
    /// for its energy savings, as a multiple of the FIFO baseline's p99
    /// over the same trace.
    pub const ENERGY_P99_INFLATION_LIMIT: f64 = 4.0;
    /// Serving rows every `BENCH_ci.json` report must carry: the
    /// registry, daemon, and steady-state scenarios plus one
    /// `serve_scenario_<name>` row and one `serve_energy_<name>` row per
    /// traffic shape in `sqdm_edm::traffic::catalogue`. This is the
    /// single source both the perf gate and the CI scenario-coverage
    /// diff key on, so the catalogue cannot silently shrink.
    pub const REQUIRED_SCENARIOS: &[&str] = &[
        "serve_multi_tenant",
        "serve_daemon",
        "serve_steady_state",
        "serve_scenario_bursty",
        "serve_scenario_diurnal",
        "serve_scenario_heavy_tailed",
        "serve_scenario_coordinated_spike",
        "serve_scenario_slow_trickle",
        "serve_energy_bursty",
        "serve_energy_diurnal",
        "serve_energy_heavy_tailed",
        "serve_energy_coordinated_spike",
        "serve_energy_slow_trickle",
    ];

    /// One parsed NDJSON benchmark row (only the gated fields).
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        /// `"bench"` field.
        pub bench: String,
        /// `"shape"` field.
        pub shape: String,
        /// `"ns_per_iter"` field, when present.
        pub ns_per_iter: Option<f64>,
        /// `"unchanged_fraction"` field, when present.
        pub unchanged_fraction: Option<f64>,
        /// `"allocs_per_round"` field, when present.
        pub allocs_per_round: Option<f64>,
        /// `"redundant_pack_builds"` field, when present.
        pub redundant_pack_builds: Option<f64>,
        /// `"p50_latency_steps"` field, when present.
        pub p50_latency_steps: Option<f64>,
        /// `"p95_latency_steps"` field, when present.
        pub p95_latency_steps: Option<f64>,
        /// `"p99_latency_steps"` field, when present.
        pub p99_latency_steps: Option<f64>,
        /// `"max_queue_depth"` field, when present.
        pub max_queue_depth: Option<f64>,
        /// `"mean_queue_depth"` field, when present.
        pub mean_queue_depth: Option<f64>,
        /// `"energy_per_image_pj"` field, when present.
        pub energy_per_image_pj: Option<f64>,
        /// `"fifo_energy_per_image_pj"` field, when present.
        pub fifo_energy_per_image_pj: Option<f64>,
        /// `"mean_occupancy"` field, when present.
        pub mean_occupancy: Option<f64>,
        /// `"peak_occupancy"` field, when present.
        pub peak_occupancy: Option<f64>,
        /// `"fifo_p99_latency_steps"` field, when present.
        pub fifo_p99_latency_steps: Option<f64>,
    }

    /// Extracts a `"key": <string>` field from one NDJSON line.
    fn str_field(line: &str, key: &str) -> Option<String> {
        let tag = format!("\"{key}\": \"");
        let start = line.find(&tag)? + tag.len();
        let end = line[start..].find('"')?;
        Some(line[start..start + end].to_string())
    }

    /// Extracts a `"key": <number>` field from one NDJSON line.
    fn num_field(line: &str, key: &str) -> Option<f64> {
        let tag = format!("\"{key}\": ");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    /// Parses the benchmark rows out of an NDJSON report (lines without a
    /// `"bench"` field — and the `meta` line — are skipped).
    pub fn parse_rows(report: &str) -> Vec<Row> {
        report
            .lines()
            .filter_map(|line| {
                let bench = str_field(line, "bench")?;
                if bench == "meta" {
                    return None;
                }
                Some(Row {
                    bench,
                    shape: str_field(line, "shape").unwrap_or_default(),
                    ns_per_iter: num_field(line, "ns_per_iter"),
                    unchanged_fraction: num_field(line, "unchanged_fraction"),
                    allocs_per_round: num_field(line, "allocs_per_round"),
                    redundant_pack_builds: num_field(line, "redundant_pack_builds"),
                    p50_latency_steps: num_field(line, "p50_latency_steps"),
                    p95_latency_steps: num_field(line, "p95_latency_steps"),
                    p99_latency_steps: num_field(line, "p99_latency_steps"),
                    max_queue_depth: num_field(line, "max_queue_depth"),
                    mean_queue_depth: num_field(line, "mean_queue_depth"),
                    energy_per_image_pj: num_field(line, "energy_per_image_pj"),
                    fifo_energy_per_image_pj: num_field(line, "fifo_energy_per_image_pj"),
                    mean_occupancy: num_field(line, "mean_occupancy"),
                    peak_occupancy: num_field(line, "peak_occupancy"),
                    fifo_p99_latency_steps: num_field(line, "fifo_p99_latency_steps"),
                })
            })
            .collect()
    }

    /// Checks the perf gate over a report: the quantized kernel must not
    /// be slower than dense f32 at [`GATED_SHAPE`], and the delta sweep
    /// must cover every fraction in [`SWEEP_FRACTIONS`]. Returns the list
    /// of violations (empty ⇒ gate passes).
    pub fn violations(report: &str) -> Vec<String> {
        let rows = parse_rows(report);
        let mut errs = Vec::new();
        let gemm_at = |name: &str| {
            rows.iter()
                .find(|r| r.bench == name && r.shape == GATED_SHAPE)
                .and_then(|r| r.ns_per_iter)
        };
        match (gemm_at("qgemm_int8"), gemm_at("dense_gemm_f32")) {
            (Some(int8), Some(f32ns)) => {
                if int8 > f32ns {
                    errs.push(format!(
                        "qgemm_int8 ({int8:.1} ns/iter) is slower than dense_gemm_f32 \
                         ({f32ns:.1} ns/iter) at {GATED_SHAPE}: the quantized path must \
                         beat the dense baseline"
                    ));
                }
            }
            (int8, f32ns) => {
                if int8.is_none() {
                    errs.push(format!("missing qgemm_int8 row at {GATED_SHAPE}"));
                }
                if f32ns.is_none() {
                    errs.push(format!("missing dense_gemm_f32 row at {GATED_SHAPE}"));
                }
            }
        }
        for want in SWEEP_FRACTIONS {
            let present = rows.iter().any(|r| {
                r.bench == "qgemm_delta_int8"
                    && r.shape == GATED_SHAPE
                    && r.unchanged_fraction
                        .is_some_and(|f| (f - want).abs() < 1e-9)
            });
            if !present {
                errs.push(format!(
                    "missing qgemm_delta_int8 sweep row at unchanged_fraction={want} \
                     ({GATED_SHAPE})"
                ));
            }
        }
        // Every serving scenario in the shared catalogue must be in the
        // trajectory (registry, daemon, steady-state, and the full
        // traffic-shape suite), so serving regressions show up in the
        // same NDJSON diff as kernel regressions.
        for name in REQUIRED_SCENARIOS {
            if !rows.iter().any(|r| r.bench == *name) {
                errs.push(format!("missing {name} row (required serving scenario)"));
            }
        }
        // Traffic-scenario rows must carry the SLO percentiles and the
        // queue-depth summary: a row that lost its latency fields is a
        // silently broken trajectory even if its timing still exists.
        for row in rows
            .iter()
            .filter(|r| r.bench.starts_with("serve_scenario_"))
        {
            match (
                row.p50_latency_steps,
                row.p95_latency_steps,
                row.p99_latency_steps,
            ) {
                (Some(p50), Some(p95), Some(p99)) => {
                    if !(p50 <= p95 && p95 <= p99) {
                        errs.push(format!(
                            "{} latency percentiles are not monotone \
                             (p50={p50}, p95={p95}, p99={p99})",
                            row.bench
                        ));
                    }
                }
                _ => errs.push(format!(
                    "{} row lacks p50/p95/p99_latency_steps (SLO percentiles)",
                    row.bench
                )),
            }
            if row.max_queue_depth.is_none() || row.mean_queue_depth.is_none() {
                errs.push(format!(
                    "{} row lacks max/mean_queue_depth (queue-depth timeline)",
                    row.bench
                ));
            }
        }
        // Energy-scenario rows pin the paper's hardware-in-the-loop
        // claim: over the same trace and cost model, energy-capped
        // admission must spend strictly less simulated energy per image
        // than FIFO while inflating p99 latency by at most
        // [`ENERGY_P99_INFLATION_LIMIT`]×. A row that lost its energy or
        // occupancy fields is a broken trajectory even if present.
        for row in rows.iter().filter(|r| r.bench.starts_with("serve_energy_")) {
            match (row.energy_per_image_pj, row.fifo_energy_per_image_pj) {
                (Some(capped), Some(fifo)) => {
                    if capped >= fifo {
                        errs.push(format!(
                            "{} energy-capped admission spends {capped:.1} pJ/image vs \
                             FIFO's {fifo:.1}: the cap must save energy",
                            row.bench
                        ));
                    }
                }
                _ => errs.push(format!(
                    "{} row lacks energy_per_image_pj/fifo_energy_per_image_pj",
                    row.bench
                )),
            }
            match (row.p99_latency_steps, row.fifo_p99_latency_steps) {
                (Some(p99), Some(fifo_p99)) => {
                    if p99 > fifo_p99 * ENERGY_P99_INFLATION_LIMIT {
                        errs.push(format!(
                            "{} energy-capped p99 latency {p99} steps exceeds \
                             {ENERGY_P99_INFLATION_LIMIT}x the FIFO baseline ({fifo_p99})",
                            row.bench
                        ));
                    }
                }
                _ => errs.push(format!(
                    "{} row lacks p99_latency_steps/fifo_p99_latency_steps",
                    row.bench
                )),
            }
            match (row.mean_occupancy, row.peak_occupancy) {
                (Some(mean), Some(peak)) => {
                    if !(mean > 0.0 && mean <= peak && peak <= 1.0) {
                        errs.push(format!(
                            "{} occupancy out of range (mean={mean}, peak={peak}; \
                             need 0 < mean <= peak <= 1)",
                            row.bench
                        ));
                    }
                }
                _ => errs.push(format!(
                    "{} row lacks mean/peak_occupancy",
                    row.bench
                )),
            }
        }
        // Zero-allocation steady state: the row must have been produced
        // by an `alloc-count` build and must stay within the pinned
        // per-round allocation budget with no redundant pack builds
        // (presence is covered by the REQUIRED_SCENARIOS loop above).
        if let Some(row) = rows.iter().find(|r| r.bench == "serve_steady_state") {
            match row.allocs_per_round {
                None => errs.push(
                    "serve_steady_state row lacks allocs_per_round (regenerate the \
                     report with --features alloc-count)"
                        .into(),
                ),
                Some(a) if a > MAX_ALLOCS_PER_ROUND => errs.push(format!(
                    "serve_steady_state allocates {a:.2} times per round; the \
                     steady-state budget is {MAX_ALLOCS_PER_ROUND}"
                )),
                Some(_) => {}
            }
            match row.redundant_pack_builds {
                None => errs.push("serve_steady_state row lacks redundant_pack_builds".into()),
                Some(b) if b != 0.0 => errs.push(format!(
                    "serve_steady_state rebuilt {b} weight packs after warmup; the \
                     registry contract is zero"
                )),
                Some(_) => {}
            }
        }
        errs
    }
}

static PAIRS: OnceLock<Mutex<Vec<(DatasetKind, ExperimentScale, TrainedPair)>>> = OnceLock::new();

/// A trained pair for `kind` at `scale`, cached per process so benches and
/// multi-figure reports never train the same model twice.
///
/// # Panics
///
/// Panics if training fails (configuration errors only).
pub fn cached_pair(kind: DatasetKind, scale: ExperimentScale) -> TrainedPair {
    let cache = PAIRS.get_or_init(|| Mutex::new(Vec::new()));
    let mut guard = cache.lock().expect("pair cache poisoned");
    if let Some((_, _, p)) = guard.iter().find(|(k, s, _)| *k == kind && *s == scale) {
        return p.clone();
    }
    eprintln!("[sqdm-bench] training {} pair…", kind.name());
    let pair = sqdm_core::prepare(kind, scale).expect("training must succeed");
    guard.push((kind, scale, pair.clone()));
    pair
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_pair_is_reused() {
        let scale = ExperimentScale::quick();
        let a = cached_pair(DatasetKind::FfhqLike, scale);
        let b = cached_pair(DatasetKind::FfhqLike, scale);
        // Clones of the same trained model: identical parameters.
        assert_eq!(
            format!("{:?}", a.dataset.kind),
            format!("{:?}", b.dataset.kind)
        );
    }

    #[test]
    fn scales_resolve() {
        let _ = bench_scale();
        let s = report_scale();
        assert!(s.train.steps > 0);
    }

    #[test]
    fn delta_sweep_mask_is_deterministic_with_exact_counts() {
        for (k, unchanged) in [
            (256usize, 0.0f64),
            (256, 0.25),
            (256, 0.5),
            (256, 0.9),
            (7, 0.75),
        ] {
            let a = delta_sweep_mask(k, unchanged, 31);
            let b = delta_sweep_mask(k, unchanged, 31);
            assert_eq!(a, b, "mask must be reproducible");
            let want = ((1.0 - unchanged) * k as f64).round() as usize;
            assert_eq!(a.iter().filter(|&&c| c).count(), want, "u={unchanged}");
        }
        // Different seeds scatter differently (whp for these sizes).
        assert_ne!(delta_sweep_mask(256, 0.5, 1), delta_sweep_mask(256, 0.5, 2));
        // The scatter is not a prefix run: at 50% of 256 rows, both
        // halves of the mask must contain changed rows.
        let m = delta_sweep_mask(256, 0.5, 31);
        assert!(m[..128].iter().any(|&c| c) && m[128..].iter().any(|&c| c));
    }

    #[test]
    fn perf_gate_passes_on_a_complete_fast_report() {
        let mut report = String::from(
            "{\"bench\": \"meta\", \"threads\": 4}\n\
             {\"bench\": \"dense_gemm_f32\", \"shape\": \"256x256x256\", \"iters\": 20, \"total_ns\": 40, \"ns_per_iter\": 2.0}\n\
             {\"bench\": \"qgemm_int8\", \"shape\": \"256x256x256\", \"iters\": 20, \"total_ns\": 20, \"ns_per_iter\": 1.0}\n",
        );
        for f in perf_gate::SWEEP_FRACTIONS {
            report.push_str(&format!(
                "{{\"bench\": \"qgemm_delta_int8\", \"shape\": \"256x256x256\", \"iters\": 20, \"total_ns\": 10, \"ns_per_iter\": 0.5, \"unchanged_fraction\": {f}}}\n"
            ));
        }
        report.push_str(
            "{\"bench\": \"serve_multi_tenant\", \"shape\": \"2models\", \"iters\": 3, \"total_ns\": 30, \"ns_per_iter\": 10.0}\n\
             {\"bench\": \"serve_steady_state\", \"shape\": \"2models\", \"iters\": 1, \"total_ns\": 10, \"ns_per_iter\": 10.0, \"allocs_per_round\": 0.45, \"redundant_pack_builds\": 0}\n\
             {\"bench\": \"serve_daemon\", \"shape\": \"6req max_batch=3 http\", \"iters\": 3, \"total_ns\": 30, \"ns_per_iter\": 10.0}\n",
        );
        for name in perf_gate::REQUIRED_SCENARIOS {
            if name.starts_with("serve_scenario_") {
                report.push_str(&format!(
                    "{{\"bench\": \"{name}\", \"shape\": \"12req max_batch=3\", \"iters\": 3, \"total_ns\": 30, \"ns_per_iter\": 10.0, \"p50_latency_steps\": 4, \"p95_latency_steps\": 9, \"p99_latency_steps\": 9, \"max_queue_depth\": 3, \"mean_queue_depth\": 0.8, \"throughput_steps\": 0.4, \"mean_latency_steps\": 4.5}}\n"
                ));
            } else if name.starts_with("serve_energy_") {
                report.push_str(&format!(
                    "{{\"bench\": \"{name}\", \"shape\": \"12req max_batch=3\", \"iters\": 3, \"total_ns\": 30, \"ns_per_iter\": 10.0, \"energy_per_image_pj\": 120.0, \"fifo_energy_per_image_pj\": 180.0, \"mean_occupancy\": 0.4, \"peak_occupancy\": 0.7, \"p50_latency_steps\": 5, \"p95_latency_steps\": 11, \"p99_latency_steps\": 11, \"fifo_p99_latency_steps\": 9}}\n"
                ));
            }
        }
        assert_eq!(perf_gate::violations(&report), Vec::<String>::new());
        // Equality is allowed: the gate is int8 ≤ f32, not strictly less.
        let tied = report.replace("\"ns_per_iter\": 1.0", "\"ns_per_iter\": 2.0");
        assert_eq!(perf_gate::violations(&tied), Vec::<String>::new());
        // The allocation budget is a ceiling, so sitting exactly on it
        // passes too.
        let at_budget = report.replace(
            "\"allocs_per_round\": 0.45",
            &format!("\"allocs_per_round\": {}", perf_gate::MAX_ALLOCS_PER_ROUND),
        );
        assert_eq!(perf_gate::violations(&at_budget), Vec::<String>::new());
    }

    #[test]
    fn perf_gate_flags_allocation_and_scenario_regressions() {
        let mut report = String::from(
            "{\"bench\": \"dense_gemm_f32\", \"shape\": \"256x256x256\", \"ns_per_iter\": 2.0}\n\
             {\"bench\": \"qgemm_int8\", \"shape\": \"256x256x256\", \"ns_per_iter\": 1.0}\n",
        );
        for f in perf_gate::SWEEP_FRACTIONS {
            report.push_str(&format!(
                "{{\"bench\": \"qgemm_delta_int8\", \"shape\": \"256x256x256\", \"ns_per_iter\": 0.5, \"unchanged_fraction\": {f}}}\n"
            ));
        }
        // No serving rows at all: every serving scenario reported
        // missing, including the full traffic-shape suite.
        let errs = perf_gate::violations(&report);
        for name in perf_gate::REQUIRED_SCENARIOS {
            assert!(
                errs.iter()
                    .any(|e| e.contains(&format!("missing {name} row"))),
                "{name}: {errs:?}"
            );
        }
        assert!(
            errs.iter().any(|e| e.contains("serve_multi_tenant")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("serve_steady_state")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("missing serve_daemon")),
            "{errs:?}"
        );
        // A steady-state row over the allocation budget, with redundant
        // pack builds, from a build without the counter: each violation is
        // its own error.
        report.push_str(
            "{\"bench\": \"serve_multi_tenant\", \"shape\": \"2models\", \"ns_per_iter\": 10.0}\n",
        );
        let over = format!(
            "{report}{{\"bench\": \"serve_steady_state\", \"shape\": \"2models\", \"ns_per_iter\": 10.0, \"allocs_per_round\": 37.5, \"redundant_pack_builds\": 4}}\n"
        );
        let errs = perf_gate::violations(&over);
        assert!(
            errs.iter().any(|e| e.contains("37.50 times per round")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("rebuilt 4 weight packs")),
            "{errs:?}"
        );
        let uncounted = format!(
            "{report}{{\"bench\": \"serve_steady_state\", \"shape\": \"2models\", \"ns_per_iter\": 10.0}}\n"
        );
        let errs = perf_gate::violations(&uncounted);
        assert!(
            errs.iter().any(|e| e.contains("lacks allocs_per_round")),
            "{errs:?}"
        );
        assert!(
            errs.iter()
                .any(|e| e.contains("lacks redundant_pack_builds")),
            "{errs:?}"
        );
    }

    #[test]
    fn perf_gate_flags_degenerate_scenario_rows() {
        // A scenario row without its percentile fields is flagged even
        // though the row itself is present.
        let bare =
            "{\"bench\": \"serve_scenario_bursty\", \"shape\": \"12req\", \"ns_per_iter\": 10.0}\n";
        let errs = perf_gate::violations(bare);
        assert!(
            errs.iter()
                .any(|e| e.contains("serve_scenario_bursty row lacks p50/p95/p99")),
            "{errs:?}"
        );
        assert!(
            errs.iter()
                .any(|e| e.contains("serve_scenario_bursty row lacks max/mean_queue_depth")),
            "{errs:?}"
        );
        // Non-monotone percentiles are impossible under a correct
        // order-statistics implementation, so the gate treats them as a
        // broken report.
        let skewed = "{\"bench\": \"serve_scenario_bursty\", \"shape\": \"12req\", \"ns_per_iter\": 10.0, \"p50_latency_steps\": 9, \"p95_latency_steps\": 4, \"p99_latency_steps\": 4, \"max_queue_depth\": 3, \"mean_queue_depth\": 0.8}\n";
        let errs = perf_gate::violations(skewed);
        assert!(
            errs.iter()
                .any(|e| e.contains("latency percentiles are not monotone")),
            "{errs:?}"
        );
        assert!(
            !errs
                .iter()
                .any(|e| e.contains("serve_scenario_bursty row lacks")),
            "{errs:?}"
        );
    }

    #[test]
    fn perf_gate_flags_energy_regressions() {
        // A bare energy row is flagged for every missing field group.
        let bare =
            "{\"bench\": \"serve_energy_bursty\", \"shape\": \"12req\", \"ns_per_iter\": 10.0}\n";
        let errs = perf_gate::violations(bare);
        assert!(
            errs.iter().any(|e| {
                e.contains("serve_energy_bursty row lacks energy_per_image_pj")
            }),
            "{errs:?}"
        );
        assert!(
            errs.iter()
                .any(|e| e.contains("serve_energy_bursty row lacks p99_latency_steps")),
            "{errs:?}"
        );
        assert!(
            errs.iter()
                .any(|e| e.contains("serve_energy_bursty row lacks mean/peak_occupancy")),
            "{errs:?}"
        );
        // The cap must save energy: equality or a regression is flagged.
        let hot = "{\"bench\": \"serve_energy_bursty\", \"shape\": \"12req\", \"ns_per_iter\": 10.0, \"energy_per_image_pj\": 200.0, \"fifo_energy_per_image_pj\": 180.0, \"mean_occupancy\": 0.4, \"peak_occupancy\": 0.7, \"p99_latency_steps\": 11, \"fifo_p99_latency_steps\": 9}\n";
        let errs = perf_gate::violations(hot);
        assert!(
            errs.iter().any(|e| e.contains("the cap must save energy")),
            "{errs:?}"
        );
        // Unbounded latency inflation is flagged even when energy drops.
        let slow = "{\"bench\": \"serve_energy_bursty\", \"shape\": \"12req\", \"ns_per_iter\": 10.0, \"energy_per_image_pj\": 120.0, \"fifo_energy_per_image_pj\": 180.0, \"mean_occupancy\": 0.4, \"peak_occupancy\": 0.7, \"p99_latency_steps\": 99, \"fifo_p99_latency_steps\": 9}\n";
        let errs = perf_gate::violations(slow);
        assert!(
            errs.iter()
                .any(|e| e.contains("exceeds 4x the FIFO baseline")),
            "{errs:?}"
        );
        // Impossible occupancy (peak above 1, or mean above peak) is a
        // broken accounting pipeline, not a tuning choice.
        let broken = "{\"bench\": \"serve_energy_bursty\", \"shape\": \"12req\", \"ns_per_iter\": 10.0, \"energy_per_image_pj\": 120.0, \"fifo_energy_per_image_pj\": 180.0, \"mean_occupancy\": 0.9, \"peak_occupancy\": 0.7, \"p99_latency_steps\": 11, \"fifo_p99_latency_steps\": 9}\n";
        let errs = perf_gate::violations(broken);
        assert!(
            errs.iter().any(|e| e.contains("occupancy out of range")),
            "{errs:?}"
        );
    }

    #[test]
    fn perf_gate_flags_slow_int8_and_missing_sweep_rows() {
        // int8 slower than f32, and only one sweep fraction present.
        let report = "{\"bench\": \"dense_gemm_f32\", \"shape\": \"256x256x256\", \"ns_per_iter\": 2.0}\n\
                      {\"bench\": \"qgemm_int8\", \"shape\": \"256x256x256\", \"ns_per_iter\": 3.5}\n\
                      {\"bench\": \"qgemm_delta_int8\", \"shape\": \"256x256x256\", \"ns_per_iter\": 0.5, \"unchanged_fraction\": 0.5}\n";
        let errs = perf_gate::violations(report);
        assert!(
            errs.iter()
                .any(|e| e.contains("slower than dense_gemm_f32")),
            "{errs:?}"
        );
        // 4 of the 5 sweep fractions are missing.
        assert_eq!(
            errs.iter().filter(|e| e.contains("sweep row")).count(),
            4,
            "{errs:?}"
        );
        // An empty report reports every requirement as missing.
        let errs = perf_gate::violations("");
        assert!(errs.iter().any(|e| e.contains("missing qgemm_int8")));
        assert!(errs.iter().any(|e| e.contains("missing dense_gemm_f32")));
        assert_eq!(errs.iter().filter(|e| e.contains("sweep row")).count(), 5);
    }

    #[test]
    fn perf_gate_parses_repro_bench_lines() {
        let line = "{\"bench\": \"qgemm_delta_int8\", \"shape\": \"256x256x256\", \"iters\": 20, \"total_ns\": 33979976, \"ns_per_iter\": 1698998.8, \"unchanged_fraction\": 0.75, \"speedup_vs_dense\": 1.912}";
        let rows = perf_gate::parse_rows(line);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].bench, "qgemm_delta_int8");
        assert_eq!(rows[0].shape, "256x256x256");
        assert_eq!(rows[0].ns_per_iter, Some(1698998.8));
        assert_eq!(rows[0].unchanged_fraction, Some(0.75));
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_monotone() {
        let a = poisson_arrivals(16, 0.7, 42);
        let b = poisson_arrivals(16, 0.7, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals sorted: {a:?}");
        // A higher rate packs the same requests into fewer steps.
        let dense = poisson_arrivals(16, 7.0, 42);
        assert!(dense.last() < a.last(), "{dense:?} vs {a:?}");
    }
}
