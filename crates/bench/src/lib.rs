//! # sqdm-bench
//!
//! Benchmark harness support for the SQ-DM reproduction: shared fixtures
//! for the Criterion benches (`benches/`) and the `repro_*` report binaries
//! (`src/bin/`) that regenerate every table and figure of the paper.
//!
//! Run `cargo run --release -p sqdm-bench --bin repro_all` for the complete
//! paper-scale report, or individual `repro_table1` … `repro_fig12`
//! binaries for single artifacts. `cargo bench` measures the kernels and
//! experiment components on small fixed workloads.

#![warn(missing_docs)]

use sqdm_core::{ExperimentScale, TrainedPair};
use sqdm_edm::DatasetKind;
use std::sync::{Mutex, OnceLock};

/// Scale used by the report binaries. Override the training budget with
/// `SQDM_FAST=1` for a fast smoke run.
pub fn report_scale() -> ExperimentScale {
    if std::env::var("SQDM_FAST").is_ok() {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    }
}

/// Scale used by Criterion benches (small and fixed, so timing noise stays
/// low).
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale::quick()
}

static PAIRS: OnceLock<Mutex<Vec<(DatasetKind, ExperimentScale, TrainedPair)>>> = OnceLock::new();

/// A trained pair for `kind` at `scale`, cached per process so benches and
/// multi-figure reports never train the same model twice.
///
/// # Panics
///
/// Panics if training fails (configuration errors only).
pub fn cached_pair(kind: DatasetKind, scale: ExperimentScale) -> TrainedPair {
    let cache = PAIRS.get_or_init(|| Mutex::new(Vec::new()));
    let mut guard = cache.lock().expect("pair cache poisoned");
    if let Some((_, _, p)) = guard.iter().find(|(k, s, _)| *k == kind && *s == scale) {
        return p.clone();
    }
    eprintln!("[sqdm-bench] training {} pair…", kind.name());
    let pair = sqdm_core::prepare(kind, scale).expect("training must succeed");
    guard.push((kind, scale, pair.clone()));
    pair
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_pair_is_reused() {
        let scale = ExperimentScale::quick();
        let a = cached_pair(DatasetKind::FfhqLike, scale);
        let b = cached_pair(DatasetKind::FfhqLike, scale);
        // Clones of the same trained model: identical parameters.
        assert_eq!(
            format!("{:?}", a.dataset.kind),
            format!("{:?}", b.dataset.kind)
        );
    }

    #[test]
    fn scales_resolve() {
        let _ = bench_scale();
        let s = report_scale();
        assert!(s.train.steps > 0);
    }
}
