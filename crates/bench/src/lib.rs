//! # sqdm-bench
//!
//! Benchmark harness support for the SQ-DM reproduction: shared fixtures
//! for the Criterion benches (`benches/`) and the `repro_*` report binaries
//! (`src/bin/`) that regenerate every table and figure of the paper.
//!
//! Run `cargo run --release -p sqdm-bench --bin repro_all` for the complete
//! paper-scale report, or individual `repro_table1` … `repro_fig12`
//! binaries for single artifacts. `cargo bench` measures the kernels and
//! experiment components on small fixed workloads.

#![warn(missing_docs)]

use sqdm_core::{ExperimentScale, TrainedPair};
use sqdm_edm::DatasetKind;
use std::sync::{Mutex, OnceLock};

/// Scale used by the report binaries. Override the training budget with
/// `SQDM_FAST=1` for a fast smoke run.
pub fn report_scale() -> ExperimentScale {
    if std::env::var("SQDM_FAST").is_ok() {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    }
}

/// Scale used by Criterion benches (small and fixed, so timing noise stays
/// low).
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale::quick()
}

/// Deterministic Poisson-process arrival trace for the serving benches:
/// `n` arrival steps with exponential inter-arrival gaps of mean
/// `1.0 / rate` virtual steps, floored onto the scheduler's integer step
/// clock. Seeded, so every bench and CI run replays the identical trace.
pub fn poisson_arrivals(n: usize, rate: f64, seed: u64) -> Vec<usize> {
    assert!(rate > 0.0, "arrival rate must be positive");
    let mut rng = sqdm_tensor::Rng::seed_from(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            // Inverse-CDF exponential; uniform() is in [0, 1), so the
            // argument of ln stays strictly positive.
            let u = f64::from(rng.uniform());
            t += -(1.0 - u).ln() / rate;
            t.floor() as usize
        })
        .collect()
}

static PAIRS: OnceLock<Mutex<Vec<(DatasetKind, ExperimentScale, TrainedPair)>>> = OnceLock::new();

/// A trained pair for `kind` at `scale`, cached per process so benches and
/// multi-figure reports never train the same model twice.
///
/// # Panics
///
/// Panics if training fails (configuration errors only).
pub fn cached_pair(kind: DatasetKind, scale: ExperimentScale) -> TrainedPair {
    let cache = PAIRS.get_or_init(|| Mutex::new(Vec::new()));
    let mut guard = cache.lock().expect("pair cache poisoned");
    if let Some((_, _, p)) = guard.iter().find(|(k, s, _)| *k == kind && *s == scale) {
        return p.clone();
    }
    eprintln!("[sqdm-bench] training {} pair…", kind.name());
    let pair = sqdm_core::prepare(kind, scale).expect("training must succeed");
    guard.push((kind, scale, pair.clone()));
    pair
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_pair_is_reused() {
        let scale = ExperimentScale::quick();
        let a = cached_pair(DatasetKind::FfhqLike, scale);
        let b = cached_pair(DatasetKind::FfhqLike, scale);
        // Clones of the same trained model: identical parameters.
        assert_eq!(
            format!("{:?}", a.dataset.kind),
            format!("{:?}", b.dataset.kind)
        );
    }

    #[test]
    fn scales_resolve() {
        let _ = bench_scale();
        let s = report_scale();
        assert!(s.train.steps > 0);
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_monotone() {
        let a = poisson_arrivals(16, 0.7, 42);
        let b = poisson_arrivals(16, 0.7, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals sorted: {a:?}");
        // A higher rate packs the same requests into fewer steps.
        let dense = poisson_arrivals(16, 7.0, 42);
        assert!(dense.last() < a.last(), "{dense:?} vs {a:?}");
    }
}
