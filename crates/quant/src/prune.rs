//! Structured 2:4 weight pruning.
//!
//! The paper's §II-B notes that its activation sparsity "can be combined
//! with weight sparsity to enable additional efficiency": current-gen
//! tensor cores double math throughput for weights where at most 2 of
//! every 4 adjacent values are nonzero. This module provides the pruning
//! transform; the accelerator consumes the resulting density through
//! [`ConvWorkload::weight_density`](https://docs.rs/sqdm-accel).

use crate::error::{QuantError, Result};
use crate::qtensor::ChannelLayout;
use sqdm_tensor::Tensor;

/// Zeroes the `n - m` smallest-magnitude values in every group of `n`
/// consecutive elements within each channel slice (m:n structured
/// sparsity; the hardware-standard case is 2:4).
///
/// Groups shorter than `n` at a slice boundary are pruned proportionally
/// (keep `ceil(len·m/n)` values).
///
/// # Errors
///
/// Returns an error if `m > n`, `n == 0`, or the layout is invalid.
pub fn prune_m_of_n(weights: &Tensor, m: usize, n: usize, layout: ChannelLayout) -> Result<Tensor> {
    if n == 0 || m > n {
        return Err(QuantError::InvalidFormat {
            reason: format!("invalid m:n sparsity pattern {m}:{n}"),
        });
    }
    let (num_slices, slice_len) = layout.slices(weights.dims())?;
    let mut out = weights.clone();
    let ov = out.as_mut_slice();
    for s in 0..num_slices {
        let slice = &mut ov[s * slice_len..(s + 1) * slice_len];
        for group in slice.chunks_mut(n) {
            let keep = if group.len() == n {
                m
            } else {
                (group.len() * m).div_ceil(n)
            };
            if keep >= group.len() {
                continue;
            }
            // Indices sorted by |value| descending; zero the tail.
            let mut idx: Vec<usize> = (0..group.len()).collect();
            idx.sort_by(|&a, &b| group[b].abs().total_cmp(&group[a].abs()));
            for &i in &idx[keep..] {
                group[i] = 0.0;
            }
        }
    }
    Ok(out)
}

/// Standard 2:4 structured pruning of a weight tensor.
///
/// # Errors
///
/// Propagates layout errors.
pub fn prune_2_4(weights: &Tensor) -> Result<Tensor> {
    prune_m_of_n(weights, 2, 4, ChannelLayout::WEIGHT)
}

/// Checks that a tensor satisfies the m:n pattern under a layout.
pub fn satisfies_m_of_n(weights: &Tensor, m: usize, n: usize, layout: ChannelLayout) -> bool {
    let Ok((num_slices, slice_len)) = layout.slices(weights.dims()) else {
        return false;
    };
    let wv = weights.as_slice();
    for s in 0..num_slices {
        let slice = &wv[s * slice_len..(s + 1) * slice_len];
        for group in slice.chunks(n) {
            let limit = if group.len() == n {
                m
            } else {
                (group.len() * m).div_ceil(n)
            };
            if group.iter().filter(|&&v| v != 0.0).count() > limit {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_tensor::Rng;

    #[test]
    fn prunes_exactly_half() {
        let mut rng = Rng::seed_from(1);
        let w = Tensor::randn([8, 4, 3, 3], &mut rng);
        let p = prune_2_4(&w).unwrap();
        assert!(satisfies_m_of_n(&p, 2, 4, ChannelLayout::WEIGHT));
        // 36 elements per slice = 9 groups of 4 → exactly 18 nonzero kept
        // per slice (assuming no exact zeros in the random input).
        assert!((p.sparsity() - 0.5).abs() < 1e-9, "{}", p.sparsity());
    }

    #[test]
    fn keeps_largest_magnitudes() {
        let w = Tensor::from_vec(vec![1.0, -5.0, 0.1, 3.0], [1, 1, 2, 2]).unwrap();
        let p = prune_2_4(&w).unwrap();
        assert_eq!(p.as_slice(), &[0.0, -5.0, 0.0, 3.0]);
    }

    #[test]
    fn ragged_tail_pruned_proportionally() {
        // Slice of 6 = one group of 4 + tail of 2; tail keeps ceil(2·2/4)=1.
        let w = Tensor::from_vec(vec![4.0, 3.0, 2.0, 1.0, 9.0, 8.0], [1, 6]).unwrap();
        let p = prune_m_of_n(&w, 2, 4, ChannelLayout::WEIGHT).unwrap();
        assert_eq!(p.as_slice(), &[4.0, 3.0, 0.0, 0.0, 9.0, 0.0]);
    }

    #[test]
    fn already_sparse_is_fixed_point() {
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], [1, 4]).unwrap();
        let p = prune_m_of_n(&w, 2, 4, ChannelLayout::WEIGHT).unwrap();
        assert_eq!(p, w);
    }

    #[test]
    fn invalid_patterns_rejected() {
        let w = Tensor::zeros([2, 4]);
        assert!(prune_m_of_n(&w, 5, 4, ChannelLayout::WEIGHT).is_err());
        assert!(prune_m_of_n(&w, 1, 0, ChannelLayout::WEIGHT).is_err());
    }

    #[test]
    fn pruning_error_is_moderate() {
        // Dropping the two smallest of four Gaussian values loses little
        // energy: relative RMS error well under the tensor's own RMS.
        let mut rng = Rng::seed_from(2);
        let w = Tensor::randn([16, 16, 3, 3], &mut rng);
        let p = prune_2_4(&w).unwrap();
        let err = w.mse(&p).unwrap().sqrt();
        let rms = (w.map(|v| v * v).mean()).sqrt();
        assert!(err < 0.5 * rms, "err {err} vs rms {rms}");
    }
}
