//! Static activation calibration.
//!
//! The fake-quantization in [`crate::fake_quant`] computes scales
//! *dynamically* from each tensor it sees — the idealized setting.
//! Hardware deployments (and the paper's PTQ baselines) fix activation
//! scales *statically* from a calibration set and reuse them for every
//! input. This module collects running absolute-maximum statistics over
//! calibration tensors and then quantizes new tensors with the frozen
//! scales, exposing the static-vs-dynamic gap as a measurable quantity.

use crate::error::{QuantError, Result};
use crate::format::{Granularity, QuantFormat};
use crate::qtensor::ChannelLayout;
use serde::{Deserialize, Serialize};
use sqdm_tensor::Tensor;

/// Running calibration statistics for one activation site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibrator {
    format: QuantFormat,
    layout: ChannelLayout,
    /// Per-group absolute maxima (layout depends on granularity).
    group_absmax: Vec<f32>,
    /// Shape the calibrator was locked to by the first observation.
    dims: Option<Vec<usize>>,
    samples: usize,
}

impl Calibrator {
    /// Creates an empty calibrator for a format and layout.
    pub fn new(format: QuantFormat, layout: ChannelLayout) -> Self {
        Calibrator {
            format,
            layout,
            group_absmax: Vec::new(),
            dims: None,
            samples: 0,
        }
    }

    /// Number of calibration tensors observed.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Observes one calibration tensor, updating per-group maxima.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor shape differs from earlier
    /// observations or the layout is invalid.
    pub fn observe(&mut self, x: &Tensor) -> Result<()> {
        match &self.dims {
            None => self.dims = Some(x.dims().to_vec()),
            Some(d) if d != x.dims() => {
                return Err(QuantError::Layout {
                    reason: format!("calibration shape changed from {:?} to {:?}", d, x.dims()),
                });
            }
            _ => {}
        }
        let (num_slices, slice_len) = self.layout.slices(x.dims())?;
        let block_len = self.format.granularity.block_len(slice_len);
        let blocks_per_slice = match self.format.granularity {
            Granularity::PerTensor => 1,
            Granularity::PerChannel => 1,
            Granularity::PerBlock(_) => slice_len.div_ceil(block_len.max(1)).max(1),
        };
        let total_groups = match self.format.granularity {
            Granularity::PerTensor => 1,
            _ => num_slices * blocks_per_slice,
        };
        if self.group_absmax.len() != total_groups {
            self.group_absmax = vec![0.0; total_groups];
        }
        let xv = x.as_slice();
        match self.format.granularity {
            Granularity::PerTensor => {
                self.group_absmax[0] = self.group_absmax[0].max(x.abs_max());
            }
            Granularity::PerChannel => {
                for s in 0..num_slices {
                    let m = xv[s * slice_len..(s + 1) * slice_len]
                        .iter()
                        .fold(0.0f32, |m, &v| m.max(v.abs()));
                    self.group_absmax[s] = self.group_absmax[s].max(m);
                }
            }
            Granularity::PerBlock(_) => {
                for s in 0..num_slices {
                    let slice = &xv[s * slice_len..(s + 1) * slice_len];
                    for (b, block) in slice.chunks(block_len).enumerate() {
                        let m = block.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                        let g = s * blocks_per_slice + b;
                        self.group_absmax[g] = self.group_absmax[g].max(m);
                    }
                }
            }
        }
        self.samples += 1;
        Ok(())
    }

    /// The frozen per-group scales implied by the observed maxima
    /// (encoded per the format's scale encoding).
    pub fn scales(&self) -> Vec<f32> {
        let qmax = self.format.grid.qmax() as f32;
        self.group_absmax
            .iter()
            .map(|&m| self.format.scale_encoding.encode(m / qmax))
            .collect()
    }

    /// Quantize-dequantizes a tensor with the *frozen* calibration scales.
    ///
    /// Values beyond the calibrated range clip, exactly as they would in
    /// hardware with static scales.
    ///
    /// # Errors
    ///
    /// Returns an error if no calibration was observed or the shape
    /// mismatches.
    pub fn fake_quant_static(&self, x: &Tensor) -> Result<Tensor> {
        let Some(dims) = &self.dims else {
            return Err(QuantError::Layout {
                reason: "calibrator has observed no data".into(),
            });
        };
        if dims != x.dims() {
            return Err(QuantError::Layout {
                reason: format!("expected shape {:?}, got {:?}", dims, x.dims()),
            });
        }
        let (num_slices, slice_len) = self.layout.slices(x.dims())?;
        let block_len = self.format.granularity.block_len(slice_len);
        let blocks_per_slice = slice_len.div_ceil(block_len.max(1)).max(1);
        let scales = self.scales();
        let grid = self.format.grid;
        let xv = x.as_slice();
        let mut out = vec![0.0f32; xv.len()];
        for s in 0..num_slices {
            for i in 0..slice_len {
                let g = match self.format.granularity {
                    Granularity::PerTensor => 0,
                    Granularity::PerChannel => s,
                    Granularity::PerBlock(_) => s * blocks_per_slice + i / block_len,
                };
                let scale = scales[g];
                let idx = s * slice_len + i;
                out[idx] = grid.decode(grid.encode(xv[idx], scale), scale);
            }
        }
        Ok(Tensor::from_vec(out, x.dims().to_vec())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qtensor::fake_quant;
    use sqdm_tensor::Rng;

    #[test]
    fn calibrated_matches_dynamic_on_calibration_data() {
        // If the evaluation tensor *is* the calibration tensor, static and
        // dynamic scales coincide.
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn([1, 4, 8, 8], &mut rng);
        let fmt = QuantFormat::int8();
        let mut cal = Calibrator::new(fmt, ChannelLayout::ACTIVATION);
        cal.observe(&x).unwrap();
        let st = cal.fake_quant_static(&x).unwrap();
        let dy = fake_quant(&x, fmt, ChannelLayout::ACTIVATION).unwrap();
        assert_eq!(st, dy);
    }

    #[test]
    fn static_scales_clip_out_of_range_data() {
        let fmt = QuantFormat::int8();
        let mut cal = Calibrator::new(fmt, ChannelLayout { axis: 0 });
        cal.observe(&Tensor::from_slice(&[1.0, -1.0, 0.5, 0.2]))
            .unwrap();
        // New data exceeds the calibrated range: clips at ±1.
        let y = cal
            .fake_quant_static(&Tensor::from_slice(&[5.0, -3.0, 0.5, 0.0]))
            .unwrap();
        assert!((y.get(&[0]).unwrap() - 1.0).abs() < 0.02, "{y:?}");
        assert!((y.get(&[1]).unwrap() + 1.0).abs() < 0.02);
        assert_eq!(y.get(&[3]).unwrap(), 0.0);
    }

    #[test]
    fn maxima_accumulate_across_batches() {
        let fmt = QuantFormat::int8();
        let mut cal = Calibrator::new(fmt, ChannelLayout { axis: 0 });
        cal.observe(&Tensor::from_slice(&[0.5, 0.1])).unwrap();
        cal.observe(&Tensor::from_slice(&[0.2, 2.0])).unwrap();
        assert_eq!(cal.samples(), 2);
        // Per-channel groups (axis 0 of a rank-1 tensor = one group per
        // element): each tracks its own running maximum.
        let s = cal.scales();
        assert!((s[0] - 0.5 / 127.0).abs() < 1e-6, "{s:?}");
        assert!((s[1] - 2.0 / 127.0).abs() < 1e-6, "{s:?}");
    }

    #[test]
    fn static_error_at_least_dynamic_error() {
        // Dynamic scaling adapts to each tensor; frozen scales cannot do
        // better on unseen data (up to clipping ties).
        let mut rng = Rng::seed_from(2);
        let fmt = QuantFormat::int4();
        let mut cal = Calibrator::new(fmt, ChannelLayout::ACTIVATION);
        for _ in 0..4 {
            cal.observe(&Tensor::randn([1, 4, 8, 8], &mut rng)).unwrap();
        }
        let mut static_err = 0.0f64;
        let mut dynamic_err = 0.0f64;
        for _ in 0..4 {
            let x = Tensor::randn([1, 4, 8, 8], &mut rng);
            static_err += x.mse(&cal.fake_quant_static(&x).unwrap()).unwrap() as f64;
            dynamic_err += x
                .mse(&fake_quant(&x, fmt, ChannelLayout::ACTIVATION).unwrap())
                .unwrap() as f64;
        }
        assert!(
            static_err >= 0.8 * dynamic_err,
            "static {static_err} vs dynamic {dynamic_err}"
        );
    }

    #[test]
    fn shape_changes_rejected() {
        let mut cal = Calibrator::new(QuantFormat::int8(), ChannelLayout { axis: 0 });
        cal.observe(&Tensor::zeros([4])).unwrap();
        assert!(cal.observe(&Tensor::zeros([5])).is_err());
        assert!(cal.fake_quant_static(&Tensor::zeros([5])).is_err());
        let empty = Calibrator::new(QuantFormat::int8(), ChannelLayout { axis: 0 });
        assert!(empty.fake_quant_static(&Tensor::zeros([4])).is_err());
    }

    #[test]
    fn per_block_calibration_tracks_groups() {
        let mut rng = Rng::seed_from(3);
        let fmt = QuantFormat::mxint8();
        let mut cal = Calibrator::new(fmt, ChannelLayout::ACTIVATION);
        let x = Tensor::randn([1, 2, 8, 8], &mut rng);
        cal.observe(&x).unwrap();
        // 2 slices × (64/32) blocks = 4 groups.
        assert_eq!(cal.scales().len(), 4);
        let y = cal.fake_quant_static(&x).unwrap();
        assert!(x.mse(&y).unwrap() < 1e-3);
    }
}
