//! Mixed-precision policies and the compute/memory cost model.
//!
//! Reproduces §III-A of the paper: only the first and last few blocks of the
//! EDM U-Net are quantization-sensitive, so they stay at MXINT8 while the
//! bulk of the Conv+activation blocks drop to 4-bit. The cost model uses the
//! paper's iso-resource equivalence (1 FP16 = 2 INT8 = 4 INT4 multiplies)
//! to report the average compute and memory savings printed in Table II.

use crate::format::QuantFormat;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// How quantized layers are executed.
///
/// `FakeQuant` is the evaluation methodology (quantize→dequantize, then
/// f32 math); `NativeInt` runs the integer engine: operands stay in ≤8-bit
/// codes, multiply-accumulate is exact i32, and one requantization step
/// maps accumulators back to real values. Both paths share the same
/// deterministic worker-pool partitioning, so each is bitwise reproducible
/// at any `SQDM_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ExecMode {
    /// Quantize→dequantize, then f32 kernels (paper §II-A methodology).
    #[default]
    FakeQuant,
    /// Integer kernels: i8 codes, i32 accumulation, requantized epilogue.
    NativeInt,
}

impl ExecMode {
    /// The process-wide default mode: `SQDM_EXEC=native-int` selects
    /// [`ExecMode::NativeInt`]; anything else (or unset) selects
    /// [`ExecMode::FakeQuant`]. Read once and cached.
    pub fn from_env() -> ExecMode {
        static DEFAULT: OnceLock<ExecMode> = OnceLock::new();
        *DEFAULT.get_or_init(|| match std::env::var("SQDM_EXEC") {
            Ok(v) if v.trim().eq_ignore_ascii_case("native-int") => ExecMode::NativeInt,
            _ => ExecMode::FakeQuant,
        })
    }
}

/// The four block types of the EDM architecture (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// Convolution followed by a non-linearity; >90% of compute (Figure 4).
    ConvAct,
    /// Encoder→decoder skip-connection handling.
    Skip,
    /// Noise-level / label embedding linear layers.
    Embedding,
    /// Image self-attention block.
    Attention,
}

impl BlockKind {
    /// All four kinds, in the paper's presentation order.
    pub const ALL: [BlockKind; 4] = [
        BlockKind::ConvAct,
        BlockKind::Skip,
        BlockKind::Embedding,
        BlockKind::Attention,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BlockKind::ConvAct => "Conv+Act",
            BlockKind::Skip => "Skip",
            BlockKind::Embedding => "Embedding",
            BlockKind::Attention => "Attention",
        }
    }
}

/// Numeric precision assigned to one block.
///
/// `None` in a format slot means "keep floating point" (FP16).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockPrecision {
    /// Weight quantization format, or FP16 if absent.
    pub weights: Option<QuantFormat>,
    /// Activation quantization format, or FP16 if absent.
    pub activations: Option<QuantFormat>,
}

impl BlockPrecision {
    /// Full floating-point precision.
    pub const FP16: BlockPrecision = BlockPrecision {
        weights: None,
        activations: None,
    };

    /// Same quantization format for weights and activations.
    pub fn uniform(format: QuantFormat) -> Self {
        BlockPrecision {
            weights: Some(format),
            activations: Some(format),
        }
    }

    /// Relative multiply throughput of this block versus FP16.
    ///
    /// A multiply runs at the speed of its *wider* operand: W4A8 is INT8
    /// rate, W4A4 is INT4 rate.
    pub fn throughput_vs_fp16(&self) -> f64 {
        let wb = self.weights.map(|f| f.grid.bits).unwrap_or(16);
        let ab = self.activations.map(|f| f.grid.bits).unwrap_or(16);
        16.0 / wb.max(ab) as f64
    }

    /// Weight storage bits per element (amortized scales included).
    pub fn weight_bits(&self, channel_len: usize) -> f64 {
        self.weights
            .map(|f| f.bits_per_element(channel_len))
            .unwrap_or(16.0)
    }

    /// Activation storage bits per element (amortized scales included).
    pub fn activation_bits(&self, channel_len: usize) -> f64 {
        self.activations
            .map(|f| f.bits_per_element(channel_len))
            .unwrap_or(16.0)
    }
}

/// Static workload description of one U-Net block, used for cost accounting
/// and for the accelerator's workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockProfile {
    /// Position of the block in execution order.
    pub index: usize,
    /// Which of the four block types this is.
    pub kind: BlockKind,
    /// Multiply-accumulate count for one forward evaluation.
    pub macs: u64,
    /// Number of weight elements.
    pub weight_elems: u64,
    /// Number of activation elements read + written.
    pub act_elems: u64,
    /// Representative channel slice length (for scale amortization).
    pub channel_len: usize,
}

/// A mixed-precision assignment: one [`BlockPrecision`] per block index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecisionAssignment {
    per_block: Vec<BlockPrecision>,
    /// Display name of the policy that produced this assignment.
    pub name: String,
    /// Execution mode the assignment is evaluated under. Constructors
    /// default this to [`ExecMode::from_env`], so `SQDM_EXEC=native-int`
    /// switches every experiment to the integer engine without code
    /// changes; [`PrecisionAssignment::with_mode`] overrides per run.
    mode: ExecMode,
}

impl PrecisionAssignment {
    /// Uniform assignment: every block gets the same precision.
    pub fn uniform(n_blocks: usize, precision: BlockPrecision, name: impl Into<String>) -> Self {
        PrecisionAssignment {
            per_block: vec![precision; n_blocks],
            name: name.into(),
            mode: ExecMode::from_env(),
        }
    }

    /// Assignment from an explicit per-block precision vector (used by
    /// sensitivity sweeps that perturb a single block).
    pub fn from_blocks(per_block: Vec<BlockPrecision>, name: impl Into<String>) -> Self {
        PrecisionAssignment {
            per_block,
            name: name.into(),
            mode: ExecMode::from_env(),
        }
    }

    /// This assignment with an explicit execution mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// The execution mode layers run under.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The paper's mixed-precision policy (§III-A): the first `head` and
    /// last `tail` blocks and all non-Conv blocks run MXINT8; the remaining
    /// Conv+Act blocks run the 4-bit format (`ours_int4` weights, and
    /// `ours_uint4` activations when `relu_activations` is set, since ReLU
    /// outputs are non-negative).
    pub fn paper_mixed(
        profiles: &[BlockProfile],
        head: usize,
        tail: usize,
        relu_activations: bool,
    ) -> Self {
        let n = profiles.len();
        let eight = BlockPrecision::uniform(QuantFormat::mxint8());
        let four = BlockPrecision {
            weights: Some(QuantFormat::ours_int4()),
            activations: Some(if relu_activations {
                QuantFormat::ours_uint4()
            } else {
                QuantFormat::ours_int4()
            }),
        };
        let per_block = profiles
            .iter()
            .map(|p| {
                let sensitive = p.index < head || p.index + tail >= n;
                if sensitive || p.kind != BlockKind::ConvAct {
                    eight
                } else {
                    four
                }
            })
            .collect();
        PrecisionAssignment {
            per_block,
            name: if relu_activations {
                "Ours(MP+ReLU)".to_string()
            } else {
                "Ours(MP-only)".to_string()
            },
            mode: ExecMode::from_env(),
        }
    }

    /// Precision of block `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block(&self, index: usize) -> BlockPrecision {
        self.per_block[index]
    }

    /// Number of blocks covered.
    pub fn len(&self) -> usize {
        self.per_block.len()
    }

    /// Returns `true` if the assignment covers no blocks.
    pub fn is_empty(&self) -> bool {
        self.per_block.is_empty()
    }

    /// Iterates over per-block precisions.
    pub fn iter(&self) -> impl Iterator<Item = &BlockPrecision> {
        self.per_block.iter()
    }
}

/// Compute and memory savings of an assignment relative to FP16.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostSavings {
    /// `1 - quantized_compute / fp16_compute` (0.75 = "75% saving").
    pub compute_saving: f64,
    /// `1 - quantized_memory / fp16_memory`.
    pub memory_saving: f64,
    /// Weighted-average speed-up of compute (`fp16 / quantized`).
    pub compute_speedup: f64,
}

/// Evaluates the cost model for an assignment over a workload.
///
/// Compute cost of a block is `macs / throughput`; memory cost is
/// `weight_elems · weight_bits + act_elems · act_bits`. Savings are relative
/// to an all-FP16 run, matching the paper's Table II columns.
///
/// # Panics
///
/// Panics if the assignment covers fewer blocks than `profiles`.
pub fn evaluate_cost(profiles: &[BlockProfile], assignment: &PrecisionAssignment) -> CostSavings {
    assert!(
        assignment.len() >= profiles.len(),
        "assignment covers {} blocks, workload has {}",
        assignment.len(),
        profiles.len()
    );
    let mut fp16_compute = 0.0f64;
    let mut q_compute = 0.0f64;
    let mut fp16_mem = 0.0f64;
    let mut q_mem = 0.0f64;
    for p in profiles {
        let prec = assignment.block(p.index);
        fp16_compute += p.macs as f64;
        q_compute += p.macs as f64 / prec.throughput_vs_fp16();
        fp16_mem += (p.weight_elems + p.act_elems) as f64 * 16.0;
        q_mem += p.weight_elems as f64 * prec.weight_bits(p.channel_len)
            + p.act_elems as f64 * prec.activation_bits(p.channel_len);
    }
    CostSavings {
        compute_saving: 1.0 - q_compute / fp16_compute.max(1.0),
        memory_saving: 1.0 - q_mem / fp16_mem.max(1.0),
        compute_speedup: fp16_compute.max(1.0) / q_compute.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_profiles(n: usize) -> Vec<BlockProfile> {
        (0..n)
            .map(|i| BlockProfile {
                index: i,
                kind: if i % 7 == 3 {
                    BlockKind::Attention
                } else if i % 5 == 2 {
                    BlockKind::Skip
                } else {
                    BlockKind::ConvAct
                },
                macs: 1_000_000,
                weight_elems: 10_000,
                act_elems: 40_000,
                channel_len: 256,
            })
            .collect()
    }

    #[test]
    fn uniform_int4_saves_75_percent_compute() {
        let profiles = demo_profiles(10);
        let a = PrecisionAssignment::uniform(
            10,
            BlockPrecision::uniform(QuantFormat::int4_vsq()),
            "INT4-VSQ",
        );
        let c = evaluate_cost(&profiles, &a);
        assert!((c.compute_saving - 0.75).abs() < 1e-9, "{c:?}");
        assert!((c.compute_speedup - 4.0).abs() < 1e-9);
        // Memory saving slightly under 75% because of scale overhead.
        assert!(c.memory_saving > 0.70 && c.memory_saving < 0.75, "{c:?}");
    }

    #[test]
    fn paper_mixed_saves_close_to_75() {
        // Table II reports 73%/72% for the mixed policy: a little below the
        // uniform-4-bit 75% because ~5% of blocks stay 8-bit.
        let profiles = demo_profiles(24);
        let a = PrecisionAssignment::paper_mixed(&profiles, 1, 1, true);
        let c = evaluate_cost(&profiles, &a);
        assert!(
            c.compute_saving > 0.55 && c.compute_saving < 0.75,
            "{:?}",
            c
        );
        assert!(c.memory_saving > 0.55 && c.memory_saving < 0.75);
    }

    #[test]
    fn sensitive_blocks_get_8bit() {
        let profiles = demo_profiles(10);
        let a = PrecisionAssignment::paper_mixed(&profiles, 2, 1, false);
        // First two and last one are 8-bit.
        for i in [0usize, 1, 9] {
            assert_eq!(a.block(i).weights.unwrap().grid.bits, 8, "block {i}");
        }
        // A middle Conv+Act block is 4-bit.
        let mid = profiles
            .iter()
            .find(|p| p.index > 1 && p.index < 9 && p.kind == BlockKind::ConvAct)
            .unwrap();
        assert_eq!(a.block(mid.index).weights.unwrap().grid.bits, 4);
    }

    #[test]
    fn non_conv_blocks_stay_8bit() {
        let profiles = demo_profiles(24);
        let a = PrecisionAssignment::paper_mixed(&profiles, 1, 1, true);
        for p in &profiles {
            if p.kind != BlockKind::ConvAct {
                assert_eq!(a.block(p.index).weights.unwrap().grid.bits, 8);
            }
        }
    }

    #[test]
    fn relu_variant_uses_unsigned_activations() {
        let profiles = demo_profiles(12);
        let relu = PrecisionAssignment::paper_mixed(&profiles, 1, 1, true);
        let silu = PrecisionAssignment::paper_mixed(&profiles, 1, 1, false);
        let mid = profiles
            .iter()
            .find(|p| p.index > 0 && p.index < 11 && p.kind == BlockKind::ConvAct)
            .unwrap()
            .index;
        assert!(!relu.block(mid).activations.unwrap().grid.signed);
        assert!(silu.block(mid).activations.unwrap().grid.signed);
    }

    #[test]
    fn mixed_throughput_w4a8_runs_at_int8_rate() {
        let p = BlockPrecision {
            weights: Some(QuantFormat::ours_int4()),
            activations: Some(QuantFormat::mxint8()),
        };
        assert_eq!(p.throughput_vs_fp16(), 2.0);
    }

    #[test]
    fn fp16_assignment_saves_nothing() {
        let profiles = demo_profiles(4);
        let a = PrecisionAssignment::uniform(4, BlockPrecision::FP16, "FP16");
        let c = evaluate_cost(&profiles, &a);
        assert!(c.compute_saving.abs() < 1e-9);
        assert!(c.memory_saving.abs() < 1e-9);
        assert!((c.compute_speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn block_kind_names() {
        assert_eq!(BlockKind::ConvAct.name(), "Conv+Act");
        assert_eq!(BlockKind::ALL.len(), 4);
    }
}
