//! Software emulation of the narrow floating-point formats used by SQ-DM:
//! IEEE half precision (FP16) and OCP FP8 E4M3 (used for the scale factors
//! of the paper's 4-bit format, §III-A).

/// Parameters of a saturating small-float format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatFormat {
    /// Mantissa bits (excluding the implicit leading one).
    pub mantissa_bits: i32,
    /// Minimum normal exponent (unbiased).
    pub min_exponent: i32,
    /// Largest finite magnitude; values beyond saturate.
    pub max_finite: f32,
    /// Display name.
    pub name: &'static str,
}

/// IEEE 754 binary16: 10 mantissa bits, exponents down to 2⁻¹⁴, max 65504.
pub const FP16: FloatFormat = FloatFormat {
    mantissa_bits: 10,
    min_exponent: -14,
    max_finite: 65504.0,
    name: "FP16",
};

/// OCP FP8 E4M3 (the "FN" variant): 3 mantissa bits, exponents down to 2⁻⁶,
/// max finite 448.
pub const FP8_E4M3: FloatFormat = FloatFormat {
    mantissa_bits: 3,
    min_exponent: -6,
    max_finite: 448.0,
    name: "FP8-E4M3",
};

impl FloatFormat {
    /// Rounds `x` to the nearest representable value of this format
    /// (round-to-nearest-even), saturating at `max_finite` and flushing
    /// values below half the smallest subnormal to zero.
    ///
    /// NaN is propagated unchanged.
    pub fn round(&self, x: f32) -> f32 {
        if x.is_nan() {
            return f32::NAN;
        }
        let sign = if x.is_sign_negative() { -1.0 } else { 1.0 };
        let a = x.abs();
        if a == 0.0 {
            return 0.0;
        }
        if a >= self.max_finite {
            return sign * self.max_finite;
        }
        // True floor(log2(a)) for normal f32 inputs, read from the exponent
        // bits; f32 subnormals are far below any target format's range.
        let bits = a.to_bits();
        let e_raw = ((bits >> 23) & 0xff) as i32;
        let e = if e_raw == 0 { -127 } else { e_raw - 127 };
        let step_exp = if e < self.min_exponent {
            // Subnormal range of the target: fixed grid.
            self.min_exponent - self.mantissa_bits
        } else {
            e - self.mantissa_bits
        };
        let step = (step_exp as f32).exp2();
        let y = (a / step).round_ties_even() * step;
        if y > self.max_finite {
            sign * self.max_finite
        } else {
            sign * y
        }
    }

    /// Rounds `x` *up* to the nearest representable value at or above it
    /// (in magnitude). Used for scale factors, where rounding a scale down
    /// would clip the largest tensor element.
    pub fn round_up(&self, x: f32) -> f32 {
        let r = self.round(x);
        if r.abs() >= x.abs() {
            return r;
        }
        // Nudge one ulp of the target grid upward.
        let a = x.abs();
        let bits = a.to_bits();
        let e_raw = ((bits >> 23) & 0xff) as i32;
        let e = if e_raw == 0 { -127 } else { e_raw - 127 };
        let step_exp = if e < self.min_exponent {
            self.min_exponent - self.mantissa_bits
        } else {
            e - self.mantissa_bits
        };
        let step = (step_exp as f32).exp2();

        ((r.abs() + step).min(self.max_finite)) * x.signum()
    }

    /// Smallest positive representable value (subnormal).
    pub fn min_positive(&self) -> f32 {
        ((self.min_exponent - self.mantissa_bits) as f32).exp2()
    }
}

/// Rounds every element of a slice to FP16, in place.
pub fn round_slice_fp16(xs: &mut [f32]) {
    for x in xs {
        *x = FP16.round(*x);
    }
}

/// Rounds a positive scale factor up to the next power of two.
///
/// This models the MX shared-exponent (E8M0) scale encoding: scales are pure
/// powers of two, chosen upward so the block maximum never clips.
///
/// Returns 1.0 for non-positive input (degenerate all-zero blocks).
pub fn round_up_pow2(s: f32) -> f32 {
    if s <= 0.0 || !s.is_finite() {
        return 1.0;
    }
    let e = s.log2().ceil();
    let p = e.exp2();
    // Guard against log2 round-off putting us one step low.
    if p < s {
        (e + 1.0).exp2()
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp16_exact_values_pass_through() {
        for v in [0.0f32, 1.0, -2.0, 0.5, 65504.0, 1024.0, -0.25] {
            assert_eq!(FP16.round(v), v);
        }
    }

    #[test]
    fn fp16_rounds_to_11_bit_significand() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10 → ties to
        // even → 1.0.
        let x = 1.0 + (2.0f32).powi(-11);
        assert_eq!(FP16.round(x), 1.0);
        // 1 + 3·2^-11 is halfway between 1+2^-10 and 1+2^-9 → ties to even →
        // 1 + 2^-9... check: mantissa candidates 1 and 2 (in 2^-10 units);
        // tie goes to 2 (even).
        let y = 1.0 + 3.0 * (2.0f32).powi(-11);
        assert_eq!(FP16.round(y), 1.0 + 2.0 * (2.0f32).powi(-10));
    }

    #[test]
    fn fp16_saturates() {
        assert_eq!(FP16.round(1e9), 65504.0);
        assert_eq!(FP16.round(-1e9), -65504.0);
    }

    #[test]
    fn fp16_flushes_tiny_to_zero() {
        assert_eq!(FP16.round(1e-12), 0.0);
        // Smallest FP16 subnormal is 2^-24; just above half of it rounds up.
        let sub = (2.0f32).powi(-24);
        assert_eq!(FP16.round(sub), sub);
        assert_eq!(FP16.round(sub * 0.4), 0.0);
    }

    #[test]
    fn e4m3_representable_grid() {
        // E4M3 around 1.0: steps of 1/8.
        assert_eq!(FP8_E4M3.round(1.0), 1.0);
        assert_eq!(FP8_E4M3.round(1.0625), 1.0); // 1+1/16 ties to even → 1.0
        assert_eq!(FP8_E4M3.round(1.1), 1.125);
        assert_eq!(FP8_E4M3.round(440.0), 448.0);
        assert_eq!(FP8_E4M3.round(1000.0), 448.0);
        assert_eq!(FP8_E4M3.round(-3.1), -3.0);
    }

    #[test]
    fn e4m3_subnormals() {
        // Min subnormal 2^-9.
        let m = FP8_E4M3.min_positive();
        assert_eq!(m, (2.0f32).powi(-9));
        assert_eq!(FP8_E4M3.round(m), m);
        assert_eq!(FP8_E4M3.round(m * 0.4), 0.0);
    }

    #[test]
    fn round_up_never_below_input() {
        for v in [0.001f32, 0.3, 1.0, 1.01, 7.3, 100.0, 447.0] {
            let r = FP8_E4M3.round_up(v);
            assert!(r >= v, "round_up({v}) = {r}");
        }
    }

    #[test]
    fn pow2_rounding() {
        assert_eq!(round_up_pow2(1.0), 1.0);
        assert_eq!(round_up_pow2(0.9), 1.0);
        assert_eq!(round_up_pow2(1.1), 2.0);
        assert_eq!(round_up_pow2(0.25), 0.25);
        assert_eq!(round_up_pow2(0.0), 1.0);
        for s in [0.003f32, 0.7, 3.0, 100.0] {
            let p = round_up_pow2(s);
            assert!(p >= s && p < 2.0 * s);
            assert_eq!(p.log2().fract(), 0.0);
        }
    }

    #[test]
    fn nan_propagates() {
        assert!(FP16.round(f32::NAN).is_nan());
        assert!(FP8_E4M3.round(f32::NAN).is_nan());
    }
}
