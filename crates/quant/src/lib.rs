//! # sqdm-quant
//!
//! Quantization machinery for the SQ-DM reproduction: the data formats of
//! the paper's Tables I/II (INT8, MXINT8, INT4, INT4-VSQ and the proposed
//! INT4/UINT4 with FP8 scale factors), software FP16/FP8 rounding, scale
//! granularities, fake quantization, mixed-precision policies and the
//! compute/memory cost model.
//!
//! # Examples
//!
//! ```
//! use sqdm_quant::{fake_quant, ChannelLayout, QuantFormat};
//! use sqdm_tensor::{Rng, Tensor};
//! # fn main() -> Result<(), sqdm_quant::QuantError> {
//! let mut rng = Rng::seed_from(1);
//! let acts = Tensor::randn([1, 8, 16, 16], &mut rng);
//! // MXINT8 keeps the tensor close to the original…
//! let q8 = fake_quant(&acts, QuantFormat::mxint8(), ChannelLayout::ACTIVATION)?;
//! // …while coarse INT4 does not (Table I).
//! let q4 = fake_quant(&acts, QuantFormat::int4(), ChannelLayout::ACTIVATION)?;
//! let err8 = acts.mse(&q8).unwrap();
//! let err4 = acts.mse(&q4).unwrap();
//! assert!(err8 < err4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod calibrate;
mod error;
pub mod float;
mod format;
mod levels;
mod policy;
mod prune;
mod qtensor;

pub use calibrate::Calibrator;
pub use error::{QuantError, Result};
pub use format::{Granularity, IntGrid, QuantFormat, ScaleEncoding};
pub use levels::{figure6_comparison, level_utilization, LevelUtilization};
pub use policy::{
    evaluate_cost, BlockKind, BlockPrecision, BlockProfile, CostSavings, ExecMode,
    PrecisionAssignment,
};
pub use prune::{prune_2_4, prune_m_of_n, satisfies_m_of_n};
pub use qtensor::{fake_quant, quant_rmse, ChannelLayout, QuantizedTensor};
