//! Quantization-level utilization analysis (paper Figure 6).
//!
//! SiLU outputs on `x ∈ [-1, 1]` span `[-0.269, 0.731]`: quantizing with a
//! signed INT4 grid scaled to the positive maximum leaves the deep negative
//! codes unreachable, wasting levels. ReLU outputs span `[0, 1]` and an
//! unsigned UINT4 grid reaches all 16 codes.

use crate::format::IntGrid;
use serde::{Deserialize, Serialize};
use sqdm_tensor::ops::Activation;

/// Result of a level-utilization measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelUtilization {
    /// The activation function measured.
    pub activation: String,
    /// The integer grid used.
    pub grid: IntGrid,
    /// Number of distinct codes reachable.
    pub used_levels: u32,
    /// Total representable codes of the grid (16 for 4-bit two's-complement
    /// hardware, counting the asymmetric minimum).
    pub total_levels: u32,
    /// `used / total`.
    pub utilization: f64,
}

/// Measures how many quantization codes the composition
/// `quantize(activation(x))` can reach for pre-activations `x ∈ [lo, hi]`.
///
/// The scale is calibrated symmetrically to the output's absolute maximum
/// (the uniform symmetric scheme of §II-A). `total_levels` counts the full
/// two's-complement range (`2^bits`), matching the paper's "10 of the 16
/// levels" phrasing for signed INT4.
pub fn level_utilization(
    activation: Activation,
    grid: IntGrid,
    lo: f32,
    hi: f32,
    samples: usize,
) -> LevelUtilization {
    let samples = samples.max(2);
    let mut abs_max = 0.0f32;
    let mut outputs = Vec::with_capacity(samples);
    for i in 0..samples {
        let x = lo + (hi - lo) * i as f32 / (samples - 1) as f32;
        let y = activation.apply(x);
        abs_max = abs_max.max(y.abs());
        outputs.push(y);
    }
    let scale = if abs_max > 0.0 {
        abs_max / grid.qmax() as f32
    } else {
        1.0
    };
    let mut used = std::collections::BTreeSet::new();
    for y in outputs {
        used.insert(grid.encode(y, scale));
    }
    let total = 1u32 << grid.bits;
    LevelUtilization {
        activation: format!("{activation:?}"),
        grid,
        used_levels: used.len() as u32,
        total_levels: total,
        utilization: used.len() as f64 / total as f64,
    }
}

/// The paper's Figure 6 comparison: SiLU + signed INT4 versus ReLU + UINT4
/// on `x ∈ [-1, 1]`.
///
/// The two level sweeps are independent, so they run as one
/// [`sqdm_tensor::parallel::par_join`] pair on the worker pool.
///
/// Returns `(silu_int4, relu_uint4)`.
pub fn figure6_comparison() -> (LevelUtilization, LevelUtilization) {
    sqdm_tensor::parallel::par_join(
        || level_utilization(Activation::Silu, IntGrid::signed(4), -1.0, 1.0, 100_000),
        || level_utilization(Activation::Relu, IntGrid::unsigned(4), -1.0, 1.0, 100_000),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_uint4_uses_all_levels() {
        let u = level_utilization(Activation::Relu, IntGrid::unsigned(4), -1.0, 1.0, 10_000);
        assert_eq!(u.used_levels, 16);
        assert_eq!(u.total_levels, 16);
        assert!((u.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn silu_int4_wastes_levels() {
        // Paper: ~10 of 16 levels. SiLU on [-1,1] spans [-0.269, 0.731], so
        // codes below round(-0.269/0.731 · 7) ≈ -3 are unreachable, as are
        // -8..-4: at most 11 of 16 codes.
        let u = level_utilization(Activation::Silu, IntGrid::signed(4), -1.0, 1.0, 100_000);
        assert!(u.used_levels <= 11, "used {}", u.used_levels);
        assert!(u.used_levels >= 9, "used {}", u.used_levels);
        assert_eq!(u.total_levels, 16);
        assert!(u.utilization < 0.75);
    }

    #[test]
    fn figure6_ordering() {
        let (silu, relu) = figure6_comparison();
        assert!(relu.utilization > silu.utilization);
        assert_eq!(relu.used_levels, 16);
    }

    #[test]
    fn identity_signed_uses_nearly_full_symmetric_range() {
        let u = level_utilization(Activation::Identity, IntGrid::signed(4), -1.0, 1.0, 10_000);
        // Symmetric data reaches -7..7 = 15 of the 16 two's-complement codes.
        assert_eq!(u.used_levels, 15);
    }

    #[test]
    fn degenerate_zero_range() {
        let u = level_utilization(Activation::Relu, IntGrid::unsigned(4), -2.0, -1.0, 100);
        // ReLU of negative inputs is identically zero: one code.
        assert_eq!(u.used_levels, 1);
    }
}
