//! Quantization format descriptions.
//!
//! A [`QuantFormat`] combines three orthogonal choices the paper explores:
//!
//! 1. the **integer grid** (bit width and signedness — INT8, INT4, UINT4),
//! 2. the **scale granularity** (per tensor / per channel / per 16-element
//!    vector / per 32-element block — Table I's coarse vs fine-grained axis),
//! 3. the **scale encoding** (f32, FP8 E4M3, or power-of-two shared
//!    exponent — the paper's INT4+FP8 format and MXINT8 respectively).

use crate::float::{FloatFormat, FP8_E4M3};
use serde::{Deserialize, Serialize};

/// Integer grid for quantized values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IntGrid {
    /// Total bits, including sign if signed.
    pub bits: u8,
    /// Whether the grid is signed (symmetric around zero) or unsigned.
    pub signed: bool,
}

impl IntGrid {
    /// Signed grid with the given bit width (symmetric: `[-qmax, +qmax]`).
    pub const fn signed(bits: u8) -> Self {
        IntGrid { bits, signed: true }
    }

    /// Unsigned grid with the given bit width (`[0, 2^bits - 1]`).
    pub const fn unsigned(bits: u8) -> Self {
        IntGrid {
            bits,
            signed: false,
        }
    }

    /// Largest representable code.
    ///
    /// Signed grids are symmetric (`2^(bits-1) - 1`, e.g. ±7 for INT4, the
    /// convention used by the paper and by VS-Quant); unsigned grids use the
    /// full range (`2^bits - 1`, e.g. 0..15 for UINT4).
    pub fn qmax(&self) -> i32 {
        if self.signed {
            (1 << (self.bits - 1)) - 1
        } else {
            (1 << self.bits) - 1
        }
    }

    /// Smallest representable code (`-qmax` for signed, 0 for unsigned).
    pub fn qmin(&self) -> i32 {
        if self.signed {
            -self.qmax()
        } else {
            0
        }
    }

    /// Number of distinct representable levels.
    pub fn levels(&self) -> u32 {
        (self.qmax() - self.qmin() + 1) as u32
    }

    /// Quantizes `x / scale` onto the grid, returning the clamped code.
    pub fn encode(&self, x: f32, scale: f32) -> i32 {
        if scale == 0.0 {
            return 0;
        }
        let q = (x / scale).round_ties_even();
        let q = if q.is_nan() { 0.0 } else { q };
        (q as i32).clamp(self.qmin(), self.qmax())
    }

    /// Reconstructs a real value from a code.
    pub fn decode(&self, code: i32, scale: f32) -> f32 {
        code as f32 * scale
    }
}

/// How scale factors are grouped over a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// One scale for the whole tensor.
    PerTensor,
    /// One scale per channel slice (the paper's "coarse-grained" setting
    /// used by plain INT8/INT4).
    PerChannel,
    /// One scale per `n` consecutive elements within a channel
    /// ("fine-grained"; 16 for VSQ vectors, 32 for MX blocks).
    PerBlock(usize),
}

impl Granularity {
    /// Block length within a channel slice, given the slice length.
    pub fn block_len(&self, channel_len: usize) -> usize {
        match *self {
            Granularity::PerTensor | Granularity::PerChannel => channel_len.max(1),
            Granularity::PerBlock(n) => n.max(1).min(channel_len.max(1)),
        }
    }
}

/// How scale factors are themselves represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScaleEncoding {
    /// Full-precision f32 scales (idealized).
    F32,
    /// FP8 E4M3 scales — the paper's proposal for its 4-bit format,
    /// improving dynamic range over shared exponents at 8 bits per block.
    Fp8E4M3,
    /// Power-of-two scales with an 8-bit shared exponent (the MX / MXINT8
    /// convention).
    PowerOfTwo,
    /// Two-level VS-Quant encoding: a coarse f32 scale per channel times a
    /// per-vector unsigned integer scale of the given bit width.
    VsqTwoLevel {
        /// Bits of the per-vector integer scale (4 in the paper's INT4-VSQ).
        scale_bits: u8,
    },
}

impl ScaleEncoding {
    /// Encodes a raw (exact) scale into its representable value.
    ///
    /// Scales are rounded *upward* where the encoding is lossy, so the block
    /// maximum never clips. `VsqTwoLevel` is handled by the quantizer itself
    /// (it needs the channel context) and passes through here.
    pub fn encode(&self, raw: f32) -> f32 {
        match self {
            ScaleEncoding::F32 | ScaleEncoding::VsqTwoLevel { .. } => raw,
            ScaleEncoding::Fp8E4M3 => {
                let f: &FloatFormat = &FP8_E4M3;
                if raw <= 0.0 {
                    0.0
                } else {
                    f.round_up(raw).max(f.min_positive())
                }
            }
            ScaleEncoding::PowerOfTwo => {
                if raw <= 0.0 {
                    0.0
                } else {
                    crate::float::round_up_pow2(raw)
                }
            }
        }
    }

    /// Bits used to store one scale factor.
    pub fn storage_bits(&self) -> f64 {
        match self {
            // f32 scales in a hardware context would be FP16/FP32; the paper
            // charges coarse-grained scales nothing measurable. Use 16.
            ScaleEncoding::F32 => 16.0,
            ScaleEncoding::Fp8E4M3 => 8.0,
            ScaleEncoding::PowerOfTwo => 8.0,
            ScaleEncoding::VsqTwoLevel { scale_bits } => *scale_bits as f64,
        }
    }
}

/// A complete quantization format: integer grid + granularity + scale
/// encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantFormat {
    /// The integer grid values are stored in.
    pub grid: IntGrid,
    /// Scale grouping.
    pub granularity: Granularity,
    /// Scale representation.
    pub scale_encoding: ScaleEncoding,
    /// Display name (e.g. `"MXINT8"`). Not serialized; empty after
    /// deserialization.
    #[serde(skip)]
    pub name: &'static str,
}

impl QuantFormat {
    /// A 16-bit surrogate for FP16 in quality evaluations: a 16-bit
    /// integer grid with fine-grained scales has quantization error far
    /// below any measurable quality impact, matching Table I's finding
    /// that FP16 ≡ FP32 in FID. (Bit-exact FP16 rounding lives in
    /// [`crate::float::FP16`] and is used where the *format* itself is
    /// under test.) Throughput accounting is identical to FP16.
    pub const fn fp16_surrogate() -> Self {
        QuantFormat {
            grid: IntGrid::signed(16),
            granularity: Granularity::PerBlock(32),
            scale_encoding: ScaleEncoding::F32,
            name: "FP16",
        }
    }

    /// Coarse per-channel INT8 (Table I's `INT8` row).
    pub const fn int8() -> Self {
        QuantFormat {
            grid: IntGrid::signed(8),
            granularity: Granularity::PerChannel,
            scale_encoding: ScaleEncoding::F32,
            name: "INT8",
        }
    }

    /// MXINT8: INT8 values, 32-element blocks, shared power-of-two scale
    /// (Table I's `MXINT8` row).
    pub const fn mxint8() -> Self {
        QuantFormat {
            grid: IntGrid::signed(8),
            granularity: Granularity::PerBlock(32),
            scale_encoding: ScaleEncoding::PowerOfTwo,
            name: "MXINT8",
        }
    }

    /// Coarse per-channel INT4 (Table I's catastrophic `INT4` row).
    pub const fn int4() -> Self {
        QuantFormat {
            grid: IntGrid::signed(4),
            granularity: Granularity::PerChannel,
            scale_encoding: ScaleEncoding::F32,
            name: "INT4",
        }
    }

    /// INT4-VSQ: INT4 values, 16-element vectors, two-level scales
    /// (4-bit per-vector × f32 per-channel), after VS-Quant.
    pub const fn int4_vsq() -> Self {
        QuantFormat {
            grid: IntGrid::signed(4),
            granularity: Granularity::PerBlock(16),
            scale_encoding: ScaleEncoding::VsqTwoLevel { scale_bits: 4 },
            name: "INT4-VSQ",
        }
    }

    /// The paper's 4-bit format: signed INT4 values over 32-element blocks
    /// with FP8 E4M3 scale factors (§III-A).
    pub const fn ours_int4() -> Self {
        QuantFormat {
            grid: IntGrid::signed(4),
            granularity: Granularity::PerBlock(32),
            scale_encoding: ScaleEncoding::Fp8E4M3,
            name: "INT4-FP8S",
        }
    }

    /// The paper's unsigned variant for ReLU activations: UINT4 over
    /// 32-element blocks with FP8 scales (§III-B, Figure 6).
    pub const fn ours_uint4() -> Self {
        QuantFormat {
            grid: IntGrid::unsigned(4),
            granularity: Granularity::PerBlock(32),
            scale_encoding: ScaleEncoding::Fp8E4M3,
            name: "UINT4-FP8S",
        }
    }

    /// The signed-grid counterpart of this format (same bit width,
    /// granularity and scale encoding).
    ///
    /// Unsigned activation formats (UINT4 for ReLU outputs) only apply to
    /// provably non-negative tensors; layers consuming signed data inside
    /// an otherwise-unsigned block (residual skip convolutions, embedding
    /// projections) quantize with this variant instead.
    pub const fn as_signed(self) -> Self {
        if self.grid.signed {
            self
        } else {
            QuantFormat {
                grid: IntGrid::signed(self.grid.bits),
                granularity: self.granularity,
                scale_encoding: self.scale_encoding,
                name: "signed-variant",
            }
        }
    }

    /// Average storage bits per element, including amortized scale bits.
    pub fn bits_per_element(&self, channel_len: usize) -> f64 {
        let b = self.grid.bits as f64;
        let block = self.granularity.block_len(channel_len) as f64;
        let scale_bits = match self.scale_encoding {
            // VSQ also stores an f32/f16 per-channel scale on top of the
            // per-vector codes.
            ScaleEncoding::VsqTwoLevel { scale_bits } => {
                scale_bits as f64 + 16.0 / channel_len.max(1) as f64 * block
            }
            ref e => e.storage_bits(),
        };
        b + scale_bits / block
    }

    /// Relative multiply throughput versus FP16 on iso-resource hardware
    /// (the paper's equivalence: 1 FP16 = 2 INT8 = 4 INT4 multiplications).
    pub fn throughput_vs_fp16(&self) -> f64 {
        16.0 / self.grid.bits as f64
    }
}

impl std::fmt::Display for QuantFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_ranges() {
        assert_eq!(IntGrid::signed(4).qmax(), 7);
        assert_eq!(IntGrid::signed(4).qmin(), -7);
        assert_eq!(IntGrid::signed(4).levels(), 15);
        assert_eq!(IntGrid::unsigned(4).qmax(), 15);
        assert_eq!(IntGrid::unsigned(4).qmin(), 0);
        assert_eq!(IntGrid::unsigned(4).levels(), 16);
        assert_eq!(IntGrid::signed(8).qmax(), 127);
    }

    #[test]
    fn encode_decode_round_trip_on_grid() {
        let g = IntGrid::signed(4);
        let s = 0.5;
        for code in -7..=7 {
            let x = g.decode(code, s);
            assert_eq!(g.encode(x, s), code);
        }
    }

    #[test]
    fn encode_clamps() {
        let g = IntGrid::signed(4);
        assert_eq!(g.encode(100.0, 0.5), 7);
        assert_eq!(g.encode(-100.0, 0.5), -7);
        let u = IntGrid::unsigned(4);
        assert_eq!(u.encode(-3.0, 0.5), 0);
        assert_eq!(u.encode(100.0, 0.5), 15);
    }

    #[test]
    fn zero_scale_encodes_zero() {
        assert_eq!(IntGrid::signed(8).encode(3.0, 0.0), 0);
    }

    #[test]
    fn block_len_clips_to_channel() {
        assert_eq!(Granularity::PerBlock(32).block_len(16), 16);
        assert_eq!(Granularity::PerBlock(16).block_len(64), 16);
        assert_eq!(Granularity::PerChannel.block_len(64), 64);
        assert_eq!(Granularity::PerTensor.block_len(64), 64);
    }

    #[test]
    fn scale_encodings_never_round_down() {
        for raw in [0.0013f32, 0.02, 0.7, 1.3, 11.0] {
            assert!(ScaleEncoding::Fp8E4M3.encode(raw) >= raw);
            assert!(ScaleEncoding::PowerOfTwo.encode(raw) >= raw);
            assert_eq!(ScaleEncoding::F32.encode(raw), raw);
        }
    }

    #[test]
    fn format_storage_accounting() {
        // MXINT8: 8 + 8/32 = 8.25 bits/element.
        assert!((QuantFormat::mxint8().bits_per_element(256) - 8.25).abs() < 1e-9);
        // Ours INT4: 4 + 8/32 = 4.25 bits/element.
        assert!((QuantFormat::ours_int4().bits_per_element(256) - 4.25).abs() < 1e-9);
        // INT4-VSQ: 4 + 4/16 + 16/256·16/16 ≈ 4.3125.
        let vsq = QuantFormat::int4_vsq().bits_per_element(256);
        assert!(vsq > 4.2 && vsq < 4.5, "{vsq}");
    }

    #[test]
    fn throughput_matches_paper_equivalence() {
        assert_eq!(QuantFormat::int8().throughput_vs_fp16(), 2.0);
        assert_eq!(QuantFormat::ours_int4().throughput_vs_fp16(), 4.0);
        assert_eq!(QuantFormat::ours_uint4().throughput_vs_fp16(), 4.0);
    }

    #[test]
    fn named_formats_display() {
        assert_eq!(QuantFormat::mxint8().to_string(), "MXINT8");
        assert_eq!(QuantFormat::int4_vsq().to_string(), "INT4-VSQ");
    }
}
