//! Quantized tensors: encode, decode, and fake-quantization.
//!
//! The quantizer views a tensor through a [`ChannelLayout`]: a channel axis
//! splits the flat buffer into contiguous channel slices, and the format's
//! granularity splits each slice into scale blocks. Weights `[K, C, kh, kw]`
//! use axis 0 (per output channel); activations `[N, C, H, W]` use axis 1
//! (per channel within each batch element).

use crate::error::{QuantError, Result};
use crate::format::{Granularity, QuantFormat, ScaleEncoding};
use serde::{Deserialize, Serialize};
use sqdm_tensor::Tensor;

/// Identifies which tensor axis is the channel axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelLayout {
    /// Index of the channel axis.
    pub axis: usize,
}

impl ChannelLayout {
    /// Layout for weight tensors `[K, C, kh, kw]` (channel = output channel).
    pub const WEIGHT: ChannelLayout = ChannelLayout { axis: 0 };
    /// Layout for activation tensors `[N, C, H, W]`.
    pub const ACTIVATION: ChannelLayout = ChannelLayout { axis: 1 };

    /// Splits `dims` into `(num_slices, slice_len)`: the number of contiguous
    /// channel slices and the length of each.
    ///
    /// # Errors
    ///
    /// Returns a layout error if the axis is out of range.
    pub fn slices(&self, dims: &[usize]) -> Result<(usize, usize)> {
        if self.axis >= dims.len() {
            return Err(QuantError::Layout {
                reason: format!("channel axis {} out of range for dims {dims:?}", self.axis),
            });
        }
        let outer: usize = dims[..=self.axis].iter().product();
        let inner: usize = dims[self.axis + 1..].iter().product();
        Ok((outer, inner))
    }
}

/// A tensor quantized under some [`QuantFormat`].
///
/// Stores the integer codes, the (already encoded) per-block scales and
/// enough layout information to reconstruct the dense tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    format: QuantFormat,
    dims: Vec<usize>,
    layout: ChannelLayout,
    /// One code per element, row-major (i16 holds INT4 and INT8 plus
    /// unsigned ranges).
    codes: Vec<i16>,
    /// One effective scale per block, in block order.
    scales: Vec<f32>,
    /// Block length actually used (granularity clipped to slice length).
    block_len: usize,
}

impl QuantizedTensor {
    /// Quantizes a dense tensor.
    ///
    /// # Errors
    ///
    /// Returns a layout error if the channel axis is invalid for the
    /// tensor's shape.
    pub fn quantize(x: &Tensor, format: QuantFormat, layout: ChannelLayout) -> Result<Self> {
        let dims = x.dims().to_vec();
        let (num_slices, slice_len) = layout.slices(&dims)?;
        let xv = x.as_slice();
        let grid = format.grid;
        let qmax = grid.qmax() as f32;

        // Per-tensor granularity: one scale over everything.
        if matches!(format.granularity, Granularity::PerTensor) {
            let raw = x.abs_max() / qmax;
            let s = format.scale_encoding.encode(raw);
            let codes = xv.iter().map(|&v| grid.encode(v, s) as i16).collect();
            return Ok(QuantizedTensor {
                format,
                dims,
                layout,
                codes,
                scales: vec![s],
                block_len: xv.len().max(1),
            });
        }

        let block_len = format.granularity.block_len(slice_len);
        let blocks_per_slice = slice_len.div_ceil(block_len.max(1)).max(1);
        let mut codes = vec![0i16; xv.len()];
        let mut scales = Vec::with_capacity(num_slices * blocks_per_slice);

        for s_idx in 0..num_slices {
            let slice = &xv[s_idx * slice_len..(s_idx + 1) * slice_len];

            match format.scale_encoding {
                ScaleEncoding::VsqTwoLevel { scale_bits } => {
                    // Two-level VS-Quant: raw per-vector scales, a coarse
                    // per-channel scale covering their max, then integer
                    // per-vector multipliers (rounded up so nothing clips).
                    let svmax = ((1u32 << scale_bits) - 1) as f32;
                    let raw: Vec<f32> = slice
                        .chunks(block_len)
                        .map(|b| b.iter().fold(0.0f32, |m, &v| m.max(v.abs())) / qmax)
                        .collect();
                    let max_raw = raw.iter().fold(0.0f32, |m, &v| m.max(v));
                    let s_c = if max_raw > 0.0 { max_raw / svmax } else { 0.0 };
                    for (b_idx, block) in slice.chunks(block_len).enumerate() {
                        let sv = if s_c > 0.0 {
                            (raw[b_idx] / s_c).ceil().clamp(1.0, svmax)
                        } else {
                            1.0
                        };
                        let eff = sv * s_c;
                        scales.push(eff);
                        let base = s_idx * slice_len + b_idx * block_len;
                        for (j, &v) in block.iter().enumerate() {
                            codes[base + j] = grid.encode(v, eff) as i16;
                        }
                    }
                }
                _ => {
                    let per_channel = matches!(format.granularity, Granularity::PerChannel);
                    if per_channel {
                        let raw = slice.iter().fold(0.0f32, |m, &v| m.max(v.abs())) / qmax;
                        let s = format.scale_encoding.encode(raw);
                        scales.push(s);
                        let base = s_idx * slice_len;
                        for (j, &v) in slice.iter().enumerate() {
                            codes[base + j] = grid.encode(v, s) as i16;
                        }
                    } else {
                        for (b_idx, block) in slice.chunks(block_len).enumerate() {
                            let raw = block.iter().fold(0.0f32, |m, &v| m.max(v.abs())) / qmax;
                            let s = format.scale_encoding.encode(raw);
                            scales.push(s);
                            let base = s_idx * slice_len + b_idx * block_len;
                            for (j, &v) in block.iter().enumerate() {
                                codes[base + j] = grid.encode(v, s) as i16;
                            }
                        }
                    }
                }
            }
        }

        Ok(QuantizedTensor {
            format,
            dims,
            layout,
            codes,
            scales,
            block_len,
        })
    }

    /// Reconstructs the dense tensor from codes and scales.
    pub fn dequantize(&self) -> Tensor {
        let (num_slices, slice_len) = self
            .layout
            .slices(&self.dims)
            .expect("layout validated at construction");
        let mut out = vec![0.0f32; self.codes.len()];

        if self.scales.len() == 1 {
            let s = self.scales[0];
            for (o, &c) in out.iter_mut().zip(self.codes.iter()) {
                *o = self.format.grid.decode(c as i32, s);
            }
        } else {
            let blocks_per_slice = slice_len.div_ceil(self.block_len.max(1)).max(1);
            for s_idx in 0..num_slices {
                for b_idx in 0..blocks_per_slice {
                    let s = self.scales[s_idx * blocks_per_slice + b_idx];
                    let start = s_idx * slice_len + b_idx * self.block_len;
                    let end = (start + self.block_len).min((s_idx + 1) * slice_len);
                    for (o, &code) in out[start..end].iter_mut().zip(&self.codes[start..end]) {
                        *o = self.format.grid.decode(code as i32, s);
                    }
                }
            }
        }
        Tensor::from_vec(out, self.dims.clone()).expect("dims consistent with codes")
    }

    /// The format this tensor was quantized with.
    pub fn format(&self) -> &QuantFormat {
        &self.format
    }

    /// The original tensor dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The integer codes, row-major.
    pub fn codes(&self) -> &[i16] {
        &self.codes
    }

    /// The encoded per-block scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The effective block length (granularity clipped to the slice length).
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Total storage in bits (codes + scales), for memory-cost accounting.
    pub fn storage_bits(&self) -> u64 {
        let code_bits = self.codes.len() as u64 * self.format.grid.bits as u64;
        let scale_bits = self.scales.len() as u64
            * match self.format.scale_encoding {
                ScaleEncoding::F32 => 16,
                ScaleEncoding::Fp8E4M3 | ScaleEncoding::PowerOfTwo => 8,
                ScaleEncoding::VsqTwoLevel { scale_bits } => scale_bits as u64,
            };
        code_bits + scale_bits
    }
}

/// Quantizes and immediately dequantizes a tensor: the standard
/// fake-quantization used to evaluate format quality in a float pipeline.
///
/// # Errors
///
/// Returns a layout error if the channel axis is invalid.
///
/// # Examples
///
/// ```
/// use sqdm_quant::{fake_quant, ChannelLayout, QuantFormat};
/// use sqdm_tensor::Tensor;
/// # fn main() -> Result<(), sqdm_quant::QuantError> {
/// let x = Tensor::from_slice(&[0.1, -0.9, 0.5, 0.72]);
/// let q = fake_quant(&x, QuantFormat::mxint8(), ChannelLayout { axis: 0 })?;
/// assert_eq!(q.dims(), x.dims());
/// # Ok(())
/// # }
/// ```
pub fn fake_quant(x: &Tensor, format: QuantFormat, layout: ChannelLayout) -> Result<Tensor> {
    Ok(QuantizedTensor::quantize(x, format, layout)?.dequantize())
}

/// Root-mean-square quantization error of a format on a tensor.
///
/// # Errors
///
/// Returns a layout error if the channel axis is invalid.
pub fn quant_rmse(x: &Tensor, format: QuantFormat, layout: ChannelLayout) -> Result<f64> {
    let fq = fake_quant(x, format, layout)?;
    let mut acc = 0.0f64;
    for (&a, &b) in x.as_slice().iter().zip(fq.as_slice()) {
        let d = (a - b) as f64;
        acc += d * d;
    }
    Ok((acc / x.len().max(1) as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_tensor::Rng;

    #[test]
    fn round_trip_preserves_shape_and_bounds_error() {
        let mut rng = Rng::seed_from(50);
        let x = Tensor::randn([2, 8, 4, 4], &mut rng);
        for fmt in [
            QuantFormat::int8(),
            QuantFormat::mxint8(),
            QuantFormat::int4(),
            QuantFormat::int4_vsq(),
            QuantFormat::ours_int4(),
        ] {
            let q = QuantizedTensor::quantize(&x, fmt, ChannelLayout::ACTIVATION).unwrap();
            let y = q.dequantize();
            assert_eq!(y.dims(), x.dims());
            // Error is bounded by one step of the coarsest per-slice scale.
            let rmse = quant_rmse(&x, fmt, ChannelLayout::ACTIVATION).unwrap();
            assert!(rmse < 0.6, "{}: rmse {rmse}", fmt.name);
        }
    }

    #[test]
    fn finer_granularity_gives_lower_error() {
        // The premise of Table I: per-block beats per-channel at 4 bits.
        let mut rng = Rng::seed_from(51);
        // Heavy-tailed data: mostly small values with a few large outliers.
        let x = Tensor::randn([1, 4, 8, 8], &mut rng).map(|v| v * v * v);
        let coarse = quant_rmse(&x, QuantFormat::int4(), ChannelLayout::ACTIVATION).unwrap();
        let fine = quant_rmse(&x, QuantFormat::ours_int4(), ChannelLayout::ACTIVATION).unwrap();
        assert!(
            fine < coarse,
            "fine {fine} should beat coarse {coarse} on outlier data"
        );
    }

    #[test]
    fn int8_beats_int4_on_error() {
        let mut rng = Rng::seed_from(52);
        let x = Tensor::randn([1, 4, 8, 8], &mut rng);
        let e8 = quant_rmse(&x, QuantFormat::int8(), ChannelLayout::ACTIVATION).unwrap();
        let e4 = quant_rmse(&x, QuantFormat::int4(), ChannelLayout::ACTIVATION).unwrap();
        assert!(e8 < e4);
    }

    #[test]
    fn uint4_on_nonnegative_beats_int4() {
        // Figure 6's claim: for ReLU (non-negative) data, UINT4 uses all 16
        // levels where signed INT4 wastes the negative half.
        let mut rng = Rng::seed_from(53);
        let x = Tensor::randn([1, 2, 16, 16], &mut rng).map(|v| v.max(0.0));
        let eu = quant_rmse(&x, QuantFormat::ours_uint4(), ChannelLayout::ACTIVATION).unwrap();
        let es = quant_rmse(
            &x,
            QuantFormat {
                grid: crate::format::IntGrid::signed(4),
                granularity: Granularity::PerBlock(32),
                scale_encoding: ScaleEncoding::Fp8E4M3,
                name: "INT4-FP8S",
            },
            ChannelLayout::ACTIVATION,
        )
        .unwrap();
        assert!(eu < es, "uint4 {eu} vs int4 {es}");
    }

    #[test]
    fn zeros_stay_exactly_zero() {
        // Symmetric quantization must preserve exact zeros — this is what
        // lets quantization and activation sparsity compose (§III-C).
        let x = Tensor::from_slice(&[0.0, 0.5, 0.0, -0.25, 0.0, 0.0, 1.0, 0.0]);
        for fmt in [
            QuantFormat::int8(),
            QuantFormat::mxint8(),
            QuantFormat::int4_vsq(),
            QuantFormat::ours_int4(),
            QuantFormat::ours_uint4(),
        ] {
            let y = fake_quant(&x, fmt, ChannelLayout { axis: 0 }).unwrap();
            for (i, (&a, &b)) in x.as_slice().iter().zip(y.as_slice()).enumerate() {
                if a == 0.0 {
                    assert_eq!(b, 0.0, "{}: index {i}", fmt.name);
                }
            }
            assert!(y.sparsity() >= x.sparsity());
        }
    }

    #[test]
    fn all_zero_tensor_round_trips() {
        let x = Tensor::zeros([2, 4, 2, 2]);
        for fmt in [
            QuantFormat::int4(),
            QuantFormat::int4_vsq(),
            QuantFormat::mxint8(),
        ] {
            let y = fake_quant(&x, fmt, ChannelLayout::ACTIVATION).unwrap();
            assert_eq!(y, x);
        }
    }

    #[test]
    fn per_tensor_granularity() {
        let x = Tensor::from_slice(&[1.0, -2.0, 4.0, -8.0]);
        let fmt = QuantFormat {
            grid: crate::format::IntGrid::signed(8),
            granularity: Granularity::PerTensor,
            scale_encoding: ScaleEncoding::F32,
            name: "INT8-PT",
        };
        let q = QuantizedTensor::quantize(&x, fmt, ChannelLayout { axis: 0 }).unwrap();
        assert_eq!(q.scales().len(), 1);
        let y = q.dequantize();
        assert!((y.get(&[3]).unwrap() + 8.0).abs() < 0.1);
    }

    #[test]
    fn scale_counts_match_granularity() {
        let x = Tensor::zeros([1, 4, 8, 8]); // slice len 64
        let q = QuantizedTensor::quantize(&x, QuantFormat::mxint8(), ChannelLayout::ACTIVATION)
            .unwrap();
        // 4 slices × (64/32) blocks = 8 scales.
        assert_eq!(q.scales().len(), 8);
        let q2 =
            QuantizedTensor::quantize(&x, QuantFormat::int4(), ChannelLayout::ACTIVATION).unwrap();
        assert_eq!(q2.scales().len(), 4);
    }

    #[test]
    fn vsq_never_clips_block_max() {
        let mut rng = Rng::seed_from(54);
        let x = Tensor::randn([1, 2, 8, 8], &mut rng).scale(3.0);
        let y = fake_quant(&x, QuantFormat::int4_vsq(), ChannelLayout::ACTIVATION).unwrap();
        // Round-up scale encoding: reconstruction of the max never falls
        // short by more than one quantization step.
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!(b.abs() <= a.abs() + 1.0, "{a} -> {b}");
        }
    }

    #[test]
    fn invalid_axis_rejected() {
        let x = Tensor::zeros([4]);
        assert!(fake_quant(&x, QuantFormat::int8(), ChannelLayout { axis: 3 }).is_err());
    }

    #[test]
    fn storage_bits_accounting() {
        let x = Tensor::zeros([1, 2, 4, 8]); // 64 elements, slice 32
        let q = QuantizedTensor::quantize(&x, QuantFormat::ours_int4(), ChannelLayout::ACTIVATION)
            .unwrap();
        // 64 codes × 4 bits + 2 scales × 8 bits = 272.
        assert_eq!(q.storage_bits(), 272);
    }
}
