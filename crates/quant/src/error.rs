//! Error type for quantization operations.

use std::fmt;

/// Error produced by quantizer construction and application.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// A tensor axis or layout was incompatible with the requested
    /// granularity.
    Layout {
        /// Explanation of the incompatibility.
        reason: String,
    },
    /// A format parameter was invalid (e.g. zero bits, zero block size).
    InvalidFormat {
        /// Explanation of the invalid parameter.
        reason: String,
    },
    /// An underlying tensor operation failed.
    Tensor(sqdm_tensor::TensorError),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::Layout { reason } => write!(f, "layout error: {reason}"),
            QuantError::InvalidFormat { reason } => write!(f, "invalid format: {reason}"),
            QuantError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for QuantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QuantError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sqdm_tensor::TensorError> for QuantError {
    fn from(e: sqdm_tensor::TensorError) -> Self {
        QuantError::Tensor(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, QuantError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = QuantError::Layout {
            reason: "bad axis".into(),
        };
        assert!(e.to_string().contains("bad axis"));
        let t = QuantError::from(sqdm_tensor::TensorError::ReshapeMismatch { from: 1, to: 2 });
        assert!(std::error::Error::source(&t).is_some());
    }
}
