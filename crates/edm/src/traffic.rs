//! Deterministic traffic-scenario generators for the serving load harness.
//!
//! Real serving traffic is not a single Poisson process: production loads
//! burst, breathe with the clock, mix heavy-tailed step budgets into a sea
//! of short requests, spike in coordination, and sometimes trickle so
//! slowly that batching never forms. Each generator here produces one of
//! those shapes as a seeded, **fully deterministic** request trace — the
//! same `(n, seed)` always yields byte-identical [`ScheduledRequest`]s —
//! so `repro_bench` can publish per-scenario p50/p95/p99 latency and
//! queue-depth rows that are comparable across machines and commits, and
//! the proptest suite can replay any scenario bit-for-bit.
//!
//! Requests carry mixed tenants and priorities so every admission policy
//! (fair share, priority, preemption) has something to act on; arrival
//! steps are the only thing that differs between scenarios. Step budgets
//! stay small (CI serves real denoise rounds), except for the deliberate
//! heavy tail in [`heavy_tailed`].

use crate::serve::{ScheduledRequest, ServeRequest};
use sqdm_tensor::Rng;

/// Builds one request with scenario-local id `i`: seed drawn from the
/// generator's RNG, tenant cycling over a small set, and an occasional
/// elevated priority so priority/preempt policies have work to reorder.
fn request(rng: &mut Rng, i: usize, steps: usize, arrival: usize) -> ScheduledRequest {
    let tenant = (rng.index(3) + 1) as u32;
    let priority = if rng.bernoulli(0.2) { 5 } else { 0 };
    ScheduledRequest::new(
        ServeRequest::new(i as u64, steps)
            .seed(rng.next_u64())
            .tenant(tenant)
            .priority(priority),
        arrival,
    )
}

/// A short mixed step budget in `2..=6`, weighted toward the small end.
fn short_budget(rng: &mut Rng) -> usize {
    2 + rng.index(5) * rng.index(2)
}

/// Bursty traffic: clusters of ~3 requests land together every ~6 virtual
/// steps, with quiet gaps between bursts. Stresses queue growth at burst
/// edges and drain behavior in the gaps.
pub fn bursty(n: usize, seed: u64) -> Vec<ScheduledRequest> {
    let mut rng = Rng::seed_from(seed).fork(0xb0);
    let mut out = Vec::with_capacity(n);
    let mut burst_start = 0usize;
    while out.len() < n {
        let burst = 2 + rng.index(3); // 2..=4 requests per burst
        let mut offset = 0usize;
        for _ in 0..burst {
            if out.len() >= n {
                break;
            }
            // Within a burst everyone lands on the same step or straggles
            // a step behind; the offset accumulates so submission order
            // stays arrival-ordered.
            offset += rng.index(2);
            let steps = short_budget(&mut rng);
            let i = out.len();
            out.push(request(&mut rng, i, steps, burst_start + offset));
        }
        burst_start += 4 + rng.index(5); // quiet gap: 4..=8 steps
    }
    out
}

/// Diurnal traffic: inter-arrival gaps follow a slow sinusoid, tight at
/// "peak hours" and wide in the "trough", emulating a day-night load
/// curve compressed onto the virtual clock.
pub fn diurnal(n: usize, seed: u64) -> Vec<ScheduledRequest> {
    let mut rng = Rng::seed_from(seed).fork(0xd1);
    let mut out = Vec::with_capacity(n);
    let mut clock = 0usize;
    for i in 0..n {
        // Phase sweeps one full period over the trace; gap oscillates
        // between ~1 (peak) and ~5 (trough) virtual steps.
        let phase = (i as f64 / n.max(1) as f64) * std::f64::consts::TAU;
        let gap = (3.0 - 2.0 * phase.cos()).round() as usize;
        clock += gap + rng.index(2);
        let steps = short_budget(&mut rng);
        out.push(request(&mut rng, i, steps, clock));
    }
    out
}

/// Heavy-tailed step budgets: ~85% of requests are short (2–3 steps) but
/// the tail carries 8–12 step budgets, so one admitted elephant can hold
/// slots for many mouse lifetimes — the scenario preemption exists for.
pub fn heavy_tailed(n: usize, seed: u64) -> Vec<ScheduledRequest> {
    let mut rng = Rng::seed_from(seed).fork(0x47);
    let mut out = Vec::with_capacity(n);
    let mut clock = 0usize;
    for i in 0..n {
        clock += 1 + rng.index(3);
        let steps = if rng.bernoulli(0.15) {
            8 + rng.index(5) // the elephant tail: 8..=12
        } else {
            2 + rng.index(2) // the mice: 2..=3
        };
        out.push(request(&mut rng, i, steps, clock));
    }
    out
}

/// Coordinated spike: a thin warm-up trickle, then every remaining
/// request arrives on the **same** virtual step — the thundering herd a
/// bounded queue exists to survive.
pub fn coordinated_spike(n: usize, seed: u64) -> Vec<ScheduledRequest> {
    let mut rng = Rng::seed_from(seed).fork(0x5e);
    let mut out = Vec::with_capacity(n);
    let trickle = (n / 4).max(1).min(n);
    let mut clock = 0usize;
    for i in 0..trickle {
        clock += 1 + rng.index(2);
        let steps = short_budget(&mut rng);
        out.push(request(&mut rng, i, steps, clock));
    }
    let spike_step = clock + 2;
    for i in trickle..n {
        let steps = short_budget(&mut rng);
        out.push(request(&mut rng, i, steps, spike_step));
    }
    out
}

/// Slow trickle: one request every 4–6 virtual steps, so the batch almost
/// never holds two streams. Measures the starvation floor — per-request
/// latency with batching amortization mostly unavailable.
pub fn slow_trickle(n: usize, seed: u64) -> Vec<ScheduledRequest> {
    let mut rng = Rng::seed_from(seed).fork(0x71);
    let mut out = Vec::with_capacity(n);
    let mut clock = 0usize;
    for i in 0..n {
        clock += 4 + rng.index(3);
        let steps = short_budget(&mut rng);
        out.push(request(&mut rng, i, steps, clock));
    }
    out
}

/// The full scenario catalogue as `(name, trace)` pairs — the single
/// source every consumer (benches, tests, docs) iterates so scenario
/// coverage cannot drift between them. Names are stable identifiers used
/// in `BENCH_ci.json` row names (`serve_scenario_<name>`).
pub fn catalogue(n: usize, seed: u64) -> Vec<(&'static str, Vec<ScheduledRequest>)> {
    vec![
        ("bursty", bursty(n, seed)),
        ("diurnal", diurnal(n, seed)),
        ("heavy_tailed", heavy_tailed(n, seed)),
        ("coordinated_spike", coordinated_spike(n, seed)),
        ("slow_trickle", slow_trickle(n, seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_well_formed(trace: &[ScheduledRequest], n: usize) {
        assert_eq!(trace.len(), n);
        // Ids are the dense scenario-local indices (unique by design).
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.request.id, i as u64);
            assert!(r.request.steps >= 2, "Karras grid needs two endpoints");
            assert!((1..=3).contains(&r.request.tenant));
        }
        // Arrivals are non-decreasing in submission order.
        for w in trace.windows(2) {
            assert!(w[0].arrival_step <= w[1].arrival_step);
        }
    }

    #[test]
    fn generators_are_deterministic_and_well_formed() {
        let n = 24;
        for (name, trace) in catalogue(n, 9) {
            assert_well_formed(&trace, n);
            let again: Vec<_> = catalogue(n, 9)
                .into_iter()
                .find(|(nm, _)| *nm == name)
                .unwrap()
                .1;
            assert_eq!(trace, again, "{name} must be a pure function of seed");
            let other: Vec<_> = catalogue(n, 10)
                .into_iter()
                .find(|(nm, _)| *nm == name)
                .unwrap()
                .1;
            assert_ne!(trace, other, "{name} must actually use the seed");
        }
    }

    #[test]
    fn scenarios_have_their_defining_shape() {
        let n = 32;
        // Bursty: at least one step receives 2+ simultaneous arrivals.
        let b = bursty(n, 3);
        let max_same = {
            let mut best = 0;
            for r in &b {
                let same = b
                    .iter()
                    .filter(|x| x.arrival_step == r.arrival_step)
                    .count();
                best = best.max(same);
            }
            best
        };
        assert!(max_same >= 2, "bursty must cluster arrivals");

        // Heavy-tailed: both mice and at least one elephant.
        let h = heavy_tailed(64, 3);
        assert!(h.iter().any(|r| r.request.steps <= 3));
        assert!(h.iter().any(|r| r.request.steps >= 8));
        assert!(h.iter().all(|r| r.request.steps <= 12));

        // Coordinated spike: the bulk shares one arrival step.
        let c = coordinated_spike(n, 3);
        let spike = c.last().unwrap().arrival_step;
        let at_spike = c.iter().filter(|r| r.arrival_step == spike).count();
        assert!(at_spike >= n / 2, "spike must carry the bulk of the trace");

        // Slow trickle: strictly increasing arrivals, gaps >= 4.
        let s = slow_trickle(n, 3);
        for w in s.windows(2) {
            assert!(w[1].arrival_step - w[0].arrival_step >= 4);
        }

        // Priorities and tenants are actually mixed somewhere.
        let all = catalogue(64, 5);
        assert!(all
            .iter()
            .any(|(_, t)| t.iter().any(|r| r.request.priority > 0)));
        assert!(all
            .iter()
            .any(|(_, t)| t.iter().any(|r| r.request.tenant != t[0].request.tenant)));
    }
}
