//! Deterministic second-order (Heun) EDM sampler — Algorithm 1 of the EDM
//! paper without stochastic churn.

use crate::delta::DeltaSession;
use crate::denoiser::Denoiser;
use crate::error::Result;
use crate::model::{RunConfig, UNet};
use serde::{Deserialize, Serialize};
use sqdm_nn::PackCache;
use sqdm_quant::PrecisionAssignment;
use sqdm_tensor::{Rng, Tensor};

/// Sampler settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Number of sigma grid points (model evaluations ≈ 2·steps − 1).
    pub steps: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig { steps: 12 }
    }
}

/// Callback invoked once per time step with `(step_index, sigma, x)` so
/// callers can trace activation sparsity across the diffusion trajectory.
pub type StepObserver<'a> = dyn FnMut(usize, f32, &Tensor) + 'a;

/// Generates a batch of samples by integrating the probability-flow ODE
/// with Heun's method on the Karras sigma grid.
///
/// `assignment` optionally quantizes the model per block, which is how
/// every quantization-quality experiment in the paper samples. The
/// assignment also carries the execution mode
/// ([`sqdm_quant::ExecMode`]): `FakeQuant` simulates quantization in f32,
/// `NativeInt` runs every supported layer on the integer engine — both
/// flow through each denoiser evaluation of every Heun step, so a whole
/// trajectory can be generated end-to-end on either path.
///
/// # Errors
///
/// Propagates model errors.
pub fn sample(
    net: &mut UNet,
    den: &Denoiser,
    batch: usize,
    cfg: SamplerConfig,
    assignment: Option<&PrecisionAssignment>,
    rng: &mut Rng,
) -> Result<Tensor> {
    sample_with_observer(net, den, batch, cfg, assignment, rng, None)
}

/// [`sample`] with a per-step observer (used by the temporal-sparsity
/// analyses, which must see the model state at every time step).
///
/// # Errors
///
/// Propagates model errors.
#[allow(clippy::too_many_arguments)]
pub fn sample_with_observer(
    net: &mut UNet,
    den: &Denoiser,
    batch: usize,
    cfg: SamplerConfig,
    assignment: Option<&PrecisionAssignment>,
    rng: &mut Rng,
    step_observer: Option<&mut StepObserver<'_>>,
) -> Result<Tensor> {
    sample_inner(net, den, batch, cfg, assignment, rng, step_observer, None)
}

/// [`sample`] with a temporal-delta session: the U-Net's Conv+Act
/// convolutions carry codes and outputs across the trajectory's denoiser
/// evaluations and recompute only changed reduction rows on the integer
/// engine (see [`crate::delta`]). Off the native engine the session is
/// inert and this is exactly [`sample`].
///
/// # Errors
///
/// Propagates model errors.
pub fn sample_delta(
    net: &mut UNet,
    den: &Denoiser,
    batch: usize,
    cfg: SamplerConfig,
    assignment: Option<&PrecisionAssignment>,
    rng: &mut Rng,
    session: &mut DeltaSession,
) -> Result<Tensor> {
    sample_inner(net, den, batch, cfg, assignment, rng, None, Some(session))
}

#[allow(clippy::too_many_arguments)]
fn sample_inner(
    net: &mut UNet,
    den: &Denoiser,
    batch: usize,
    cfg: SamplerConfig,
    assignment: Option<&PrecisionAssignment>,
    rng: &mut Rng,
    mut step_observer: Option<&mut StepObserver<'_>>,
    mut delta: Option<&mut DeltaSession>,
) -> Result<Tensor> {
    let mcfg = *net.config();
    let s = mcfg.image_size;
    let grid = den.schedule.sigma_steps(cfg.steps);
    let mut x = Tensor::randn([batch, mcfg.in_channels, s, s], rng).scale(grid[0]);
    // One weight-pack cache per trajectory: every layer's quantization
    // artifact is built on the first denoiser evaluation and reused by the
    // remaining ~2·steps−1 evaluations.
    let packs = PackCache::new();

    for i in 0..cfg.steps {
        let (sig, sig_next) = (grid[i], grid[i + 1]);
        if let Some(obs) = step_observer.as_deref_mut() {
            obs(i, sig, &x);
        }
        let sigmas = vec![sig; batch];
        let d0 = {
            let mut rc = RunConfig {
                train: false,
                assignment,
                observer: None,
                batched: false,
                packs: Some(&packs),
                delta: delta.as_deref_mut(),
            };
            den.denoise(net, &x, &sigmas, &mut rc)?
        };
        // dx/dσ = (x − D(x, σ)) / σ
        let slope = x.sub(&d0)?.scale(1.0 / sig);
        let mut x_next = x.clone();
        x_next.add_scaled(&slope, sig_next - sig)?;

        if sig_next > 0.0 {
            // Heun correction.
            let sigmas_next = vec![sig_next; batch];
            let d1 = {
                let mut rc = RunConfig {
                    train: false,
                    assignment,
                    observer: None,
                    batched: false,
                    packs: Some(&packs),
                    delta: delta.as_deref_mut(),
                };
                den.denoise(net, &x_next, &sigmas_next, &mut rc)?
            };
            let slope2 = x_next.sub(&d1)?.scale(1.0 / sig_next);
            let mut avg = slope.clone();
            avg.add_scaled(&slope2, 1.0)?;
            x_next = x.clone();
            x_next.add_scaled(&avg, 0.5 * (sig_next - sig))?;
        }
        x = x_next;
    }
    Ok(x)
}

/// Stochastic churn settings for [`sample_stochastic`] (EDM Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Total churn budget `S_churn`; 0 recovers the deterministic sampler.
    pub s_churn: f32,
    /// Lower sigma bound for churn injection.
    pub s_tmin: f32,
    /// Upper sigma bound for churn injection.
    pub s_tmax: f32,
    /// Noise inflation factor `S_noise`.
    pub s_noise: f32,
}

impl Default for ChurnConfig {
    /// EDM's ImageNet defaults.
    fn default() -> Self {
        ChurnConfig {
            s_churn: 10.0,
            s_tmin: 0.05,
            s_tmax: 50.0,
            s_noise: 1.003,
        }
    }
}

/// Stochastic EDM sampler (Algorithm 2): at each step within
/// `[s_tmin, s_tmax]` the state is re-noised up to `σ̂ = σ·(1 + γ)` before
/// the Heun update, trading determinism for sample diversity.
///
/// # Errors
///
/// Propagates model errors.
#[allow(clippy::too_many_arguments)]
pub fn sample_stochastic(
    net: &mut UNet,
    den: &Denoiser,
    batch: usize,
    cfg: SamplerConfig,
    churn: ChurnConfig,
    assignment: Option<&PrecisionAssignment>,
    rng: &mut Rng,
) -> Result<Tensor> {
    let mcfg = *net.config();
    let s = mcfg.image_size;
    let grid = den.schedule.sigma_steps(cfg.steps);
    let mut x = Tensor::randn([batch, mcfg.in_channels, s, s], rng).scale(grid[0]);
    let gamma_base = (churn.s_churn / cfg.steps as f32).min(2.0f32.sqrt() - 1.0);
    let packs = PackCache::new();

    for i in 0..cfg.steps {
        let (sig, sig_next) = (grid[i], grid[i + 1]);
        // Churn: inflate sigma and inject matching noise.
        let gamma = if churn.s_churn > 0.0 && sig >= churn.s_tmin && sig <= churn.s_tmax {
            gamma_base
        } else {
            0.0
        };
        let sig_hat = sig * (1.0 + gamma);
        if gamma > 0.0 {
            let extra = (sig_hat * sig_hat - sig * sig).max(0.0).sqrt() * churn.s_noise;
            let noise = Tensor::randn(x.dims(), rng);
            x.add_scaled(&noise, extra)?;
        }

        let sigmas = vec![sig_hat; batch];
        let d0 = {
            let mut rc = RunConfig {
                train: false,
                assignment,
                observer: None,
                batched: false,
                packs: Some(&packs),
                delta: None,
            };
            den.denoise(net, &x, &sigmas, &mut rc)?
        };
        let slope = x.sub(&d0)?.scale(1.0 / sig_hat);
        let mut x_next = x.clone();
        x_next.add_scaled(&slope, sig_next - sig_hat)?;
        if sig_next > 0.0 {
            let sigmas_next = vec![sig_next; batch];
            let d1 = {
                let mut rc = RunConfig {
                    train: false,
                    assignment,
                    observer: None,
                    batched: false,
                    packs: Some(&packs),
                    delta: None,
                };
                den.denoise(net, &x_next, &sigmas_next, &mut rc)?
            };
            let slope2 = x_next.sub(&d1)?.scale(1.0 / sig_next);
            let mut avg = slope.clone();
            avg.add_scaled(&slope2, 1.0)?;
            x_next = x.clone();
            x_next.add_scaled(&avg, 0.5 * (sig_next - sig_hat))?;
        }
        x = x_next;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::UNetConfig;
    use crate::schedule::EdmSchedule;

    #[test]
    fn sample_shape_and_determinism() {
        let mut rng = Rng::seed_from(1);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let cfg = SamplerConfig { steps: 4 };
        let mut r1 = Rng::seed_from(9);
        let a = sample(&mut net, &den, 2, cfg, None, &mut r1).unwrap();
        let mut r2 = Rng::seed_from(9);
        let b = sample(&mut net, &den, 2, cfg, None, &mut r2).unwrap();
        assert_eq!(a.dims(), &[2, 1, 8, 8]);
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_finite_and_bounded() {
        let mut rng = Rng::seed_from(2);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let mut r = Rng::seed_from(3);
        let x = sample(&mut net, &den, 1, SamplerConfig { steps: 6 }, None, &mut r).unwrap();
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        // Even an untrained net contracts the σ_max=80 initial noise: the
        // c_skip path alone brings magnitudes down to data scale.
        assert!(x.abs_max() < 40.0, "max {}", x.abs_max());
    }

    #[test]
    fn native_int_sampling_is_deterministic_and_tracks_fake_quant() {
        use sqdm_quant::{BlockPrecision, ExecMode, PrecisionAssignment, QuantFormat};
        let mut rng = Rng::seed_from(8);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let cfg = SamplerConfig { steps: 4 };
        let base = PrecisionAssignment::uniform(
            crate::model::block_ids::COUNT,
            BlockPrecision::uniform(QuantFormat::int8()),
            "INT8",
        );
        let fake = base.clone().with_mode(ExecMode::FakeQuant);
        let native = base.with_mode(ExecMode::NativeInt);

        let mut r1 = Rng::seed_from(31);
        let yf = sample(&mut net, &den, 1, cfg, Some(&fake), &mut r1).unwrap();
        let mut r2 = Rng::seed_from(31);
        let yn = sample(&mut net, &den, 1, cfg, Some(&native), &mut r2).unwrap();
        let mut r3 = Rng::seed_from(31);
        let yn2 = sample(&mut net, &den, 1, cfg, Some(&native), &mut r3).unwrap();

        // The integer engine is deterministic…
        assert_eq!(yn, yn2);
        // …and an INT8 trajectory stays close to the fake-quant one: the
        // two paths quantize identically and differ only by accumulation
        // rounding compounded over the trajectory.
        assert!(yn.as_slice().iter().all(|v| v.is_finite()));
        let gap = yf.mse(&yn).unwrap();
        assert!(gap < 1e-3, "trajectory gap {gap}");
    }

    #[test]
    fn delta_sampling_dispatch_paths_agree_bitwise() {
        use sqdm_quant::{BlockPrecision, ExecMode, PrecisionAssignment, QuantFormat};
        let mut rng = Rng::seed_from(14);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let cfg = SamplerConfig { steps: 4 };
        let native = PrecisionAssignment::uniform(
            crate::model::block_ids::COUNT,
            BlockPrecision::uniform(QuantFormat::int8()),
            "INT8",
        )
        .with_mode(ExecMode::NativeInt);

        // Force the row-skipping sparse path vs the packed dense fallback:
        // the kernel's two dispatch paths are bitwise identical, so whole
        // trajectories must be too.
        let mut sparse = DeltaSession::new(0.05).with_dense_threshold(2.0);
        let mut r1 = Rng::seed_from(41);
        let ys = sample_delta(&mut net, &den, 1, cfg, Some(&native), &mut r1, &mut sparse).unwrap();
        let mut dense = DeltaSession::new(0.05).with_dense_threshold(0.0);
        let mut r2 = Rng::seed_from(41);
        let yd = sample_delta(&mut net, &den, 1, cfg, Some(&native), &mut r2, &mut dense).unwrap();
        assert_eq!(ys, yd);
        // Both sessions saw work, and every step ran through the delta
        // engine (carry or dense refresh).
        let total = sparse.delta_steps() + sparse.dense_steps();
        assert!(total > 0, "delta engine never engaged");
        assert_eq!(total, dense.delta_steps() + dense.dense_steps());

        // Determinism of the delta trajectory itself.
        let mut again = DeltaSession::new(0.05).with_dense_threshold(2.0);
        let mut r3 = Rng::seed_from(41);
        let ys2 = sample_delta(&mut net, &den, 1, cfg, Some(&native), &mut r3, &mut again).unwrap();
        assert_eq!(ys, ys2);
    }

    #[test]
    fn delta_sampling_stays_close_to_plain_native_sampling() {
        use sqdm_quant::{BlockPrecision, ExecMode, PrecisionAssignment, QuantFormat};
        let mut rng = Rng::seed_from(15);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let cfg = SamplerConfig { steps: 4 };
        let native = PrecisionAssignment::uniform(
            crate::model::block_ids::COUNT,
            BlockPrecision::uniform(QuantFormat::int8()),
            "INT8",
        )
        .with_mode(ExecMode::NativeInt);
        let mut r1 = Rng::seed_from(42);
        let plain = sample(&mut net, &den, 1, cfg, Some(&native), &mut r1).unwrap();
        let mut session = DeltaSession::default();
        let mut r2 = Rng::seed_from(42);
        let delta =
            sample_delta(&mut net, &den, 1, cfg, Some(&native), &mut r2, &mut session).unwrap();
        assert!(delta.as_slice().iter().all(|v| v.is_finite()));
        // The delta engine carries a sticky activation scale (up to 2x
        // coarser than the per-step fresh scale) so consecutive steps share
        // a grid; that costs a small, bounded quantization gap versus the
        // from-scratch native path. Pin it relative to the signal power.
        let gap = plain.mse(&delta).unwrap();
        let power = plain.as_slice().iter().map(|v| v * v).sum::<f32>() / plain.len() as f32;
        assert!(
            gap < 0.05 * power.max(1.0),
            "trajectory gap {gap} vs power {power}"
        );
    }

    #[test]
    fn zero_churn_matches_deterministic_sampler() {
        let mut rng = Rng::seed_from(6);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let cfg = SamplerConfig { steps: 5 };
        let no_churn = ChurnConfig {
            s_churn: 0.0,
            ..ChurnConfig::default()
        };
        let mut r1 = Rng::seed_from(21);
        let det = sample(&mut net, &den, 1, cfg, None, &mut r1).unwrap();
        let mut r2 = Rng::seed_from(21);
        let sto = sample_stochastic(&mut net, &den, 1, cfg, no_churn, None, &mut r2).unwrap();
        assert_eq!(det, sto);
    }

    #[test]
    fn churn_changes_trajectory_but_stays_bounded() {
        let mut rng = Rng::seed_from(7);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let cfg = SamplerConfig { steps: 6 };
        let mut r1 = Rng::seed_from(22);
        let det = sample(&mut net, &den, 1, cfg, None, &mut r1).unwrap();
        let mut r2 = Rng::seed_from(22);
        let sto = sample_stochastic(
            &mut net,
            &den,
            1,
            cfg,
            ChurnConfig::default(),
            None,
            &mut r2,
        )
        .unwrap();
        assert!(det.mse(&sto).unwrap() > 1e-8);
        assert!(sto.as_slice().iter().all(|v| v.is_finite()));
        assert!(sto.abs_max() < 40.0);
    }

    #[test]
    fn observer_sees_every_step_with_decreasing_sigma() {
        let mut rng = Rng::seed_from(4);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let mut seen: Vec<(usize, f32)> = Vec::new();
        let mut obs = |i: usize, s: f32, _x: &Tensor| seen.push((i, s));
        let mut r = Rng::seed_from(5);
        sample_with_observer(
            &mut net,
            &den,
            1,
            SamplerConfig { steps: 5 },
            None,
            &mut r,
            Some(&mut obs),
        )
        .unwrap();
        assert_eq!(seen.len(), 5);
        for w in seen.windows(2) {
            assert!(w[0].1 > w[1].1);
            assert_eq!(w[0].0 + 1, w[1].0);
        }
    }
}
